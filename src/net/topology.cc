#include "src/net/topology.h"

#include <algorithm>

namespace walter {

Topology::Topology(size_t num_sites)
    : names_(num_sites), rtt_(num_sites, std::vector<SimDuration>(num_sites, 0)) {
  for (size_t i = 0; i < num_sites; ++i) {
    names_[i] = "site" + std::to_string(i);
  }
}

Topology Topology::Ec2() {
  // RTT matrix from Section 8.1 (milliseconds):
  //        VA   CA   IE   SG
  //  VA   0.5   82   87  261
  //  CA        0.3  153  190
  //  IE             0.5  277
  //  SG                  0.3
  Topology t(4);
  t.SetName(0, "VA");
  t.SetName(1, "CA");
  t.SetName(2, "IE");
  t.SetName(3, "SG");
  t.SetRtt(0, 0, Millis(0.5));
  t.SetRtt(1, 1, Millis(0.3));
  t.SetRtt(2, 2, Millis(0.5));
  t.SetRtt(3, 3, Millis(0.3));
  t.SetRtt(0, 1, Millis(82));
  t.SetRtt(0, 2, Millis(87));
  t.SetRtt(0, 3, Millis(261));
  t.SetRtt(1, 2, Millis(153));
  t.SetRtt(1, 3, Millis(190));
  t.SetRtt(2, 3, Millis(277));
  return t;
}

Topology Topology::Ec2Subset(size_t num_sites) {
  Topology full = Ec2();
  Topology t(num_sites);
  for (SiteId a = 0; a < num_sites; ++a) {
    t.SetName(a, full.name(a));
    for (SiteId b = 0; b < num_sites; ++b) {
      t.SetRtt(a, b, full.Rtt(a, b));
    }
  }
  return t;
}

Topology Topology::Uniform(size_t num_sites, SimDuration cross_rtt, SimDuration intra_rtt) {
  Topology t(num_sites);
  for (SiteId a = 0; a < num_sites; ++a) {
    for (SiteId b = 0; b < num_sites; ++b) {
      t.SetRtt(a, b, a == b ? intra_rtt : cross_rtt);
    }
  }
  return t;
}

void Topology::SetRtt(SiteId a, SiteId b, SimDuration rtt) {
  rtt_[a][b] = rtt;
  rtt_[b][a] = rtt;
}

SimDuration Topology::MaxRttFrom(SiteId s) const {
  SimDuration m = 0;
  for (size_t other = 0; other < num_sites(); ++other) {
    if (other != s) {
      m = std::max(m, rtt_[s][other]);
    }
  }
  return m;
}

}  // namespace walter
