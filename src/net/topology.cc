#include "src/net/topology.h"

#include <algorithm>

namespace walter {

Topology::Topology(size_t num_sites)
    : names_(num_sites), rtt_(num_sites, std::vector<SimDuration>(num_sites, 0)) {
  for (size_t i = 0; i < num_sites; ++i) {
    names_[i] = "site" + std::to_string(i);
  }
}

Topology Topology::Ec2() {
  // RTT matrix from Section 8.1 (milliseconds):
  //        VA   CA   IE   SG
  //  VA   0.5   82   87  261
  //  CA        0.3  153  190
  //  IE             0.5  277
  //  SG                  0.3
  Topology t(4);
  t.SetName(0, "VA");
  t.SetName(1, "CA");
  t.SetName(2, "IE");
  t.SetName(3, "SG");
  t.SetRtt(0, 0, Millis(0.5));
  t.SetRtt(1, 1, Millis(0.3));
  t.SetRtt(2, 2, Millis(0.5));
  t.SetRtt(3, 3, Millis(0.3));
  t.SetRtt(0, 1, Millis(82));
  t.SetRtt(0, 2, Millis(87));
  t.SetRtt(0, 3, Millis(261));
  t.SetRtt(1, 2, Millis(153));
  t.SetRtt(1, 3, Millis(190));
  t.SetRtt(2, 3, Millis(277));
  return t;
}

Topology Topology::Ec2Subset(size_t num_sites) {
  Topology full = Ec2();
  Topology t(num_sites);
  for (SiteId a = 0; a < num_sites; ++a) {
    t.SetName(a, full.name(a));
    for (SiteId b = 0; b < num_sites; ++b) {
      t.SetRtt(a, b, full.Rtt(a, b));
    }
  }
  return t;
}

Topology Topology::Uniform(size_t num_sites, SimDuration cross_rtt, SimDuration intra_rtt) {
  Topology t(num_sites);
  for (SiteId a = 0; a < num_sites; ++a) {
    for (SiteId b = 0; b < num_sites; ++b) {
      t.SetRtt(a, b, a == b ? intra_rtt : cross_rtt);
    }
  }
  return t;
}

Topology Topology::ShardExpand(const Topology& sites,
                               const std::vector<size_t>& servers_per_site) {
  size_t total = 0;
  for (size_t n : servers_per_site) {
    total += n;
  }
  Topology t(total);
  t.cross_bw_bps_ = sites.cross_bw_bps_;
  t.intra_bw_bps_ = sites.intra_bw_bps_;
  t.site_of_.reserve(total);
  SiteId node = 0;
  for (SiteId s = 0; s < static_cast<SiteId>(servers_per_site.size()); ++s) {
    for (size_t k = 0; k < servers_per_site[s]; ++k) {
      t.SetName(node, sites.name(s) + "/" + std::to_string(k));
      t.site_of_.push_back(s);
      ++node;
    }
  }
  for (SiteId a = 0; a < static_cast<SiteId>(total); ++a) {
    for (SiteId b = a; b < static_cast<SiteId>(total); ++b) {
      SiteId sa = t.site_of_[a];
      SiteId sb = t.site_of_[b];
      // Same-site pairs — a server to itself or to a co-located shard — use
      // the site's own (intra-site) RTT entry.
      t.SetRtt(a, b, sites.Rtt(sa, sb));
    }
  }
  return t;
}

void Topology::SetRtt(SiteId a, SiteId b, SimDuration rtt) {
  rtt_[a][b] = rtt;
  rtt_[b][a] = rtt;
}

SimDuration Topology::MaxRttFrom(SiteId s) const {
  SimDuration m = 0;
  for (size_t other = 0; other < num_sites(); ++other) {
    if (other != s) {
      m = std::max(m, rtt_[s][other]);
    }
  }
  return m;
}

}  // namespace walter
