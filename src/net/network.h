// Simulated message network and RPC layer.
//
// Endpoints are addressed by (site, port). Delivery between two endpoints
// models: one-way propagation latency from the topology, per-link serialization
// delay from the bandwidth cap (this is what throttles cross-site propagation
// batches at 22 Mbps), optional jitter, FIFO ordering per directed link (TCP-
// like), and fault injection (message loss, site partitions, downed endpoints).
//
// On top of raw messages, RpcEndpoint provides one-way sends and matched
// request/response calls with timeouts — enough to express every protocol
// message in Figures 10-13 and the Paxos rounds of the configuration service.
//
// Hot-path design: payloads are ref-counted immutable buffers (Payload), so a
// message's bytes are serialized once and shared across destinations, resends
// and the delivery event — no per-hop byte copies. Endpoint and link lookups
// are dense site/port-indexed vectors rather than ordered maps.
//
// Runtime seam: the network runs in one of two dispatch modes.
//  - Sim (default): deliveries are events on the shared deterministic
//    Simulator, with the full latency/bandwidth/FIFO model. Single-threaded;
//    the event sequence is byte-identical to what it was before the threaded
//    runtime existed.
//  - Threaded (EnableThreadedDispatch): deliveries are closures posted to the
//    mailbox of the executor owning the destination endpoint; the real thread
//    handoff is the latency. Counters, rpc ids and fault flags are atomics,
//    and the endpoint table is guarded by a shared_mutex, so senders on any
//    executor race-freely against registration and fault injection. The
//    latency/bandwidth model is skipped — threaded mode measures hardware,
//    not EC2.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/runtime/executor.h"
#include "src/sim/simulator.h"

namespace walter {

// Well-known ports.
inline constexpr uint32_t kWalterPort = 1;
inline constexpr uint32_t kConfigPort = 2;
inline constexpr uint32_t kFdPort = 3;  // failure-detector heartbeats
inline constexpr uint32_t kClientPortBase = 100;

struct Address {
  SiteId site = kNoSite;
  uint32_t port = 0;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

  std::string ToString() const {
    return "addr(" + std::to_string(site) + ":" + std::to_string(port) + ")";
  }
};

struct Message {
  uint32_t type = 0;       // protocol-defined message/RPC type
  Payload payload;         // serialized body (ByteWriter format), shared buffer
  // RPC plumbing (filled by the network layer).
  Address from;
  uint64_t rpc_id = 0;     // nonzero for RPC requests/responses
  bool is_response = false;
};

class RpcEndpoint;

class Network {
 public:
  Network(Simulator* sim, Topology topology);

  Simulator* sim() { return sim_; }
  const Topology& topology() const { return topology_; }

  // Threaded dispatch: routes every delivery to the executor owning the
  // destination address instead of scheduling a simulator event. The resolver
  // must be safe to call from any executor (in practice: it reads tables
  // frozen before threads start). Call before any traffic flows; there is no
  // way back to sim dispatch.
  using ExecutorResolver = std::function<Executor*(const Address&)>;
  void EnableThreadedDispatch(ExecutorResolver resolver);
  bool threaded() const { return threaded_; }

  // Fault injection -----------------------------------------------------------
  // All toggles are atomics, so a control thread may flip them while worker
  // executors send (the threaded chaos tests do exactly that).
  // Drop every message between sites a and b (both directions).
  void SetPartitioned(SiteId a, SiteId b, bool partitioned);
  // Isolate a site from all others (its intra-site traffic still flows).
  void IsolateSite(SiteId s, bool isolated);
  // Probability of dropping any single cross-site message.
  void SetLossProbability(double p) { loss_probability_.store(p, std::memory_order_relaxed); }
  // Extra multiplicative latency jitter: delay *= U[1, 1+jitter].
  void SetJitter(double jitter) { jitter_.store(jitter, std::memory_order_relaxed); }
  // Targeted fault injection: drop every message for which the filter returns
  // true (checked before loss/partitions; nullptr disables). Lets tests drop
  // e.g. exactly one commit response. Not thread-safe: set it before threads
  // start (or use the atomic toggles above in threaded mode).
  using DropFilter = std::function<bool(const Message&, const Address& from, const Address& to)>;
  void SetDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }

  uint64_t messages_sent() const { return messages_sent_.load(std::memory_order_relaxed); }
  uint64_t messages_dropped() const { return messages_dropped_.load(std::memory_order_relaxed); }
  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }

  // Dumps the cluster-wide transport counters into the shared registry.
  void ExportMetrics(MetricsRegistry& metrics) const {
    metrics.Set("net.messages_sent", kNoSite, static_cast<double>(messages_sent()));
    metrics.Set("net.messages_dropped", kNoSite, static_cast<double>(messages_dropped()));
    metrics.Set("net.bytes_sent", kNoSite, static_cast<double>(bytes_sent()));
  }

 private:
  friend class RpcEndpoint;

  void Register(RpcEndpoint* ep);
  void Unregister(const Address& addr);
  // Sends msg (already stamped with from/rpc fields); the payload size drives
  // the serialization delay.
  void SendMessage(const Address& from, const Address& to, Message msg);
  void SendMessageThreaded(const Address& from, const Address& to, Message msg);

  bool IsCut(SiteId a, SiteId b) const;
  void CountDrop(SiteId site, uint64_t rpc_id, uint32_t type);

  RpcEndpoint* Lookup(const Address& addr) {
    if (addr.site >= endpoints_.size()) {
      return nullptr;
    }
    auto& ports = endpoints_[addr.site];
    return addr.port < ports.size() ? ports[addr.port] : nullptr;
  }

  size_t LinkIndex(SiteId from, SiteId to) const { return from * num_sites_ + to; }

  Simulator* sim_;
  Topology topology_;
  size_t num_sites_;
  // endpoints_[site][port]; ports are small dense integers (well-known ports
  // plus client ports allocated upward from kClientPortBase). Guarded by
  // endpoints_mu_ in threaded mode (registration vs. concurrent lookups); sim
  // mode is single-threaded and reads it lock-free on the delivery hot path.
  std::vector<std::vector<RpcEndpoint*>> endpoints_;
  mutable std::shared_mutex endpoints_mu_;
  std::vector<std::atomic<uint8_t>> partitioned_;  // [a*n+b], symmetric
  std::vector<std::atomic<uint8_t>> isolated_;
  std::atomic<double> loss_probability_{0};
  std::atomic<double> jitter_{0.1};
  // Per directed (site,site) link: when the link is next free (serialization)
  // and the latest scheduled arrival (FIFO ordering). Sim dispatch only.
  struct LinkState {
    SimTime next_free = 0;
    SimTime last_arrival = 0;
  };
  std::vector<LinkState> links_;  // [from*n+to]
  DropFilter drop_filter_;
  std::atomic<uint64_t> messages_sent_{0};
  std::atomic<uint64_t> messages_dropped_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  // RPC ids are minted network-wide so a replacement endpoint at a reused
  // address can never mistake a stale response for one of its own calls.
  std::atomic<uint64_t> next_rpc_id_{1};
  bool threaded_ = false;
  ExecutorResolver resolver_;
};

// A network endpoint with message handlers and RPC support.
class RpcEndpoint {
 public:
  using ReplyFn = std::function<void(Message response)>;
  // Handler for an incoming request: must eventually invoke reply exactly once
  // (one-way messages pass a no-op reply).
  using Handler = std::function<void(const Message& request, ReplyFn reply)>;
  using ResponseCallback = std::function<void(Status status, const Message& response)>;

  // `timer_sim` is where RPC timeout events are scheduled — the owning
  // executor's simulator in threaded mode. Defaults to the network's shared
  // simulator, which is the (only) right choice in sim mode.
  RpcEndpoint(Network* net, Address addr, Simulator* timer_sim = nullptr);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  const Address& address() const { return addr_; }
  Simulator* sim() { return timer_sim_; }
  Network* network() { return net_; }

  // Registers the handler for a message type.
  void Handle(uint32_t type, Handler handler);

  // One-way message (no response expected). Passing the same Payload to
  // several destinations shares one buffer across all of them.
  void Send(const Address& to, uint32_t type, Payload payload);

  // RPC: delivers the request, waits for the response or timeout.
  // timeout <= 0 means no timeout.
  void Call(const Address& to, uint32_t type, Payload payload, ResponseCallback cb,
            SimDuration timeout = Seconds(10));

  // Takes the endpoint down: all traffic to it is dropped and pending inbound
  // deliveries are discarded on arrival. Outstanding calls FROM it time out.
  void SetDown(bool down) { down_ = down; }
  bool down() const { return down_; }

 private:
  friend class Network;

  void Deliver(Message msg);

  Network* net_;
  Address addr_;
  Simulator* timer_sim_;
  bool down_ = false;
  std::unordered_map<uint32_t, Handler> handlers_;
  struct PendingCall {
    ResponseCallback cb;
    EventId timeout_event = 0;
  };
  std::unordered_map<uint64_t, PendingCall> pending_;
};

}  // namespace walter

#endif  // SRC_NET_NETWORK_H_
