// Site topology: round-trip latencies and bandwidth between sites.
//
// The default topology is the EC2 deployment of the paper's evaluation
// (Section 8.1): Virginia, California, Ireland, Singapore, with the measured
// RTT matrix, >600 Mbps within a site and 22 Mbps across sites.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/time.h"

namespace walter {

class Topology {
 public:
  // A topology with `num_sites` sites; latencies must be set afterwards.
  explicit Topology(size_t num_sites);

  // The paper's 4-site EC2 topology (VA, CA, IE, SG) with measured RTTs.
  static Topology Ec2();

  // The first `num_sites` sites of the EC2 topology (the paper's 1-site,
  // 2-sites, 3-sites, 4-sites experiment configurations).
  static Topology Ec2Subset(size_t num_sites);

  // A uniform topology: same RTT between every pair of distinct sites.
  static Topology Uniform(size_t num_sites, SimDuration cross_rtt, SimDuration intra_rtt);

  // Expand a per-site topology into a per-server one: site s contributes
  // servers_per_site[s] nodes named "<site>/<shard>". Any two servers of the
  // same site — including two distinct shards — are linked at the site's own
  // intra-site RTT and bandwidth; cross-site links inherit the site pair's
  // RTT. The expanded topology remembers which site each node belongs to.
  static Topology ShardExpand(const Topology& sites,
                              const std::vector<size_t>& servers_per_site);

  size_t num_sites() const { return names_.size(); }
  const std::string& name(SiteId s) const { return names_[s]; }

  void SetName(SiteId s, std::string name) { names_[s] = std::move(name); }
  void SetRtt(SiteId a, SiteId b, SimDuration rtt);  // symmetric
  SimDuration Rtt(SiteId a, SiteId b) const { return rtt_[a][b]; }
  SimDuration OneWay(SiteId a, SiteId b) const { return rtt_[a][b] / 2; }

  void SetCrossSiteBandwidthBps(double bps) { cross_bw_bps_ = bps; }
  void SetIntraSiteBandwidthBps(double bps) { intra_bw_bps_ = bps; }
  double BandwidthBps(SiteId a, SiteId b) const {
    return SiteOf(a) == SiteOf(b) ? intra_bw_bps_ : cross_bw_bps_;
  }

  // The geographic site a node belongs to. Identity unless this topology came
  // from ShardExpand, where several co-located servers share one site.
  SiteId SiteOf(SiteId node) const {
    return site_of_.empty() ? node : site_of_[node];
  }

  // Maximum RTT from `s` to any other site — the RTTmax of Sections 8.3/8.5.
  SimDuration MaxRttFrom(SiteId s) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<SimDuration>> rtt_;
  std::vector<SiteId> site_of_;  // empty = every node is its own site
  double cross_bw_bps_ = 22e6;   // 22 Mbps (Section 8.1)
  double intra_bw_bps_ = 600e6;  // 600 Mbps (Section 8.1)
};

}  // namespace walter

#endif  // SRC_NET_TOPOLOGY_H_
