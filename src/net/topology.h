// Site topology: round-trip latencies and bandwidth between sites.
//
// The default topology is the EC2 deployment of the paper's evaluation
// (Section 8.1): Virginia, California, Ireland, Singapore, with the measured
// RTT matrix, >600 Mbps within a site and 22 Mbps across sites.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/time.h"

namespace walter {

class Topology {
 public:
  // A topology with `num_sites` sites; latencies must be set afterwards.
  explicit Topology(size_t num_sites);

  // The paper's 4-site EC2 topology (VA, CA, IE, SG) with measured RTTs.
  static Topology Ec2();

  // The first `num_sites` sites of the EC2 topology (the paper's 1-site,
  // 2-sites, 3-sites, 4-sites experiment configurations).
  static Topology Ec2Subset(size_t num_sites);

  // A uniform topology: same RTT between every pair of distinct sites.
  static Topology Uniform(size_t num_sites, SimDuration cross_rtt, SimDuration intra_rtt);

  size_t num_sites() const { return names_.size(); }
  const std::string& name(SiteId s) const { return names_[s]; }

  void SetName(SiteId s, std::string name) { names_[s] = std::move(name); }
  void SetRtt(SiteId a, SiteId b, SimDuration rtt);  // symmetric
  SimDuration Rtt(SiteId a, SiteId b) const { return rtt_[a][b]; }
  SimDuration OneWay(SiteId a, SiteId b) const { return rtt_[a][b] / 2; }

  void SetCrossSiteBandwidthBps(double bps) { cross_bw_bps_ = bps; }
  void SetIntraSiteBandwidthBps(double bps) { intra_bw_bps_ = bps; }
  double BandwidthBps(SiteId a, SiteId b) const {
    return a == b ? intra_bw_bps_ : cross_bw_bps_;
  }

  // Maximum RTT from `s` to any other site — the RTTmax of Sections 8.3/8.5.
  SimDuration MaxRttFrom(SiteId s) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<SimDuration>> rtt_;
  double cross_bw_bps_ = 22e6;   // 22 Mbps (Section 8.1)
  double intra_bw_bps_ = 600e6;  // 600 Mbps (Section 8.1)
};

}  // namespace walter

#endif  // SRC_NET_TOPOLOGY_H_
