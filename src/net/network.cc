#include "src/net/network.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/obs/trace.h"

namespace walter {

namespace {
// Fixed per-message overhead (headers etc.) for the serialization-delay model.
constexpr size_t kMessageOverheadBytes = 64;

// Loss decisions in threaded mode come from a per-thread stream: the shared
// simulator RNG belongs to the control thread and must not be touched from
// worker executors.
Rng& ThreadRng() {
  static thread_local Rng rng(
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return rng;
}

// Trace timestamp for network-layer events: the calling executor's virtual
// clock in threaded mode, the shared simulator in sim mode.
SimTime TraceNow(Simulator* sim, bool threaded) {
  if (threaded) {
    Executor* cur = Executor::Current();
    return cur != nullptr ? cur->sim().Now() : 0;
  }
  return sim->Now();
}
}  // namespace

Network::Network(Simulator* sim, Topology topology)
    : sim_(sim),
      topology_(std::move(topology)),
      num_sites_(topology_.num_sites()),
      endpoints_(num_sites_),
      partitioned_(num_sites_ * num_sites_),
      isolated_(num_sites_),
      links_(num_sites_ * num_sites_) {}

void Network::EnableThreadedDispatch(ExecutorResolver resolver) {
  WCHECK(resolver != nullptr, "threaded dispatch needs an executor resolver");
  resolver_ = std::move(resolver);
  threaded_ = true;
}

void Network::Register(RpcEndpoint* ep) {
  const Address& addr = ep->address();
  WCHECK(addr.site < num_sites_, "endpoint site out of range " << addr.ToString());
  std::unique_lock<std::shared_mutex> lk(endpoints_mu_);
  auto& ports = endpoints_[addr.site];
  if (addr.port >= ports.size()) {
    ports.resize(addr.port + 1, nullptr);
  }
  WCHECK(ports[addr.port] == nullptr, "duplicate endpoint " << addr.ToString());
  ports[addr.port] = ep;
}

void Network::Unregister(const Address& addr) {
  std::unique_lock<std::shared_mutex> lk(endpoints_mu_);
  if (addr.site < endpoints_.size() && addr.port < endpoints_[addr.site].size()) {
    endpoints_[addr.site][addr.port] = nullptr;
  }
}

void Network::SetPartitioned(SiteId a, SiteId b, bool partitioned) {
  partitioned_[LinkIndex(a, b)].store(partitioned ? 1 : 0, std::memory_order_relaxed);
  partitioned_[LinkIndex(b, a)].store(partitioned ? 1 : 0, std::memory_order_relaxed);
}

void Network::IsolateSite(SiteId s, bool isolated) {
  isolated_[s].store(isolated ? 1 : 0, std::memory_order_relaxed);
}

bool Network::IsCut(SiteId a, SiteId b) const {
  if (a == b) {
    return false;
  }
  if (isolated_[a].load(std::memory_order_relaxed) ||
      isolated_[b].load(std::memory_order_relaxed)) {
    return true;
  }
  return partitioned_[LinkIndex(a, b)].load(std::memory_order_relaxed) != 0;
}

void Network::CountDrop(SiteId site, uint64_t rpc_id, uint32_t type) {
  messages_dropped_.fetch_add(1, std::memory_order_relaxed);
  WTRACE(TraceNow(sim_, threaded_), TraceKind::kNetDrop, 0, site, rpc_id, type);
}

void Network::SendMessage(const Address& from, const Address& to, Message msg) {
  if (threaded_) {
    SendMessageThreaded(from, to, std::move(msg));
    return;
  }
  size_t size_bytes = msg.payload.size();
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(size_bytes, std::memory_order_relaxed);
  if (drop_filter_ && drop_filter_(msg, from, to)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  if (IsCut(from.site, to.site)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  double loss = loss_probability_.load(std::memory_order_relaxed);
  if (from.site != to.site && loss > 0 && sim_->rng().Bernoulli(loss)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  WTRACE(sim_->Now(), TraceKind::kNetEnqueue, 0, from.site, msg.rpc_id, msg.type);

  LinkState& link = links_[LinkIndex(from.site, to.site)];
  SimTime start = std::max(sim_->Now(), link.next_free);
  double bw = topology_.BandwidthBps(from.site, to.site);
  auto tx_delay = static_cast<SimDuration>(
      static_cast<double>((size_bytes + kMessageOverheadBytes) * 8) / bw * 1e6);
  link.next_free = start + tx_delay;

  SimDuration propagation = topology_.OneWay(from.site, to.site);
  double jitter = jitter_.load(std::memory_order_relaxed);
  if (jitter > 0) {
    propagation = static_cast<SimDuration>(
        static_cast<double>(propagation) * (1.0 + jitter * sim_->rng().NextDouble()));
  }
  SimTime arrival = start + tx_delay + propagation;
  // FIFO per directed link (TCP-like ordering).
  arrival = std::max(arrival, link.last_arrival);
  link.last_arrival = arrival;

  // The delivery event aliases the payload buffer (refcount bump, no copy).
  sim_->At(arrival, [this, to, msg = std::move(msg)]() mutable {
    RpcEndpoint* ep = Lookup(to);
    if (ep == nullptr || ep->down()) {
      CountDrop(to.site, msg.rpc_id, msg.type);
      return;
    }
    ep->Deliver(std::move(msg));
  });
}

void Network::SendMessageThreaded(const Address& from, const Address& to, Message msg) {
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  if (drop_filter_ && drop_filter_(msg, from, to)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  if (IsCut(from.site, to.site)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  double loss = loss_probability_.load(std::memory_order_relaxed);
  if (from.site != to.site && loss > 0 && ThreadRng().Bernoulli(loss)) {
    CountDrop(from.site, msg.rpc_id, msg.type);
    return;
  }
  Executor* target = resolver_(to);
  if (target == nullptr) {
    CountDrop(to.site, msg.rpc_id, msg.type);
    return;
  }
  // The mailbox handoff is the delivery latency; the closure re-resolves the
  // endpoint on arrival (same late-lookup semantics as the sim event, so a
  // replaced server's stale address drops instead of dangling). The payload
  // buffer crosses threads by refcount alias — shared_ptr counts are atomic.
  target->Post([this, to, msg = std::move(msg)]() mutable {
    RpcEndpoint* ep;
    {
      std::shared_lock<std::shared_mutex> lk(endpoints_mu_);
      ep = Lookup(to);
    }
    if (ep == nullptr || ep->down()) {
      CountDrop(to.site, msg.rpc_id, msg.type);
      return;
    }
    ep->Deliver(std::move(msg));
  });
}

RpcEndpoint::RpcEndpoint(Network* net, Address addr, Simulator* timer_sim)
    : net_(net), addr_(addr), timer_sim_(timer_sim != nullptr ? timer_sim : net->sim()) {
  net_->Register(this);
}

RpcEndpoint::~RpcEndpoint() {
  // Cancel outstanding timeout timers: their callbacks capture `this`, which
  // is about to dangle (server replacement destroys the old endpoint).
  for (auto& [id, pending] : pending_) {
    if (pending.timeout_event != 0) {
      sim()->Cancel(pending.timeout_event);
    }
  }
  net_->Unregister(addr_);
}

void RpcEndpoint::Handle(uint32_t type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void RpcEndpoint::Send(const Address& to, uint32_t type, Payload payload) {
  if (down_) {
    return;
  }
  Message msg;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.from = addr_;
  net_->SendMessage(addr_, to, std::move(msg));
}

void RpcEndpoint::Call(const Address& to, uint32_t type, Payload payload,
                       ResponseCallback cb, SimDuration timeout) {
  if (down_) {
    return;
  }
  Message msg;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.from = addr_;
  msg.rpc_id = net_->next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  uint64_t rpc_id = msg.rpc_id;

  PendingCall pending;
  pending.cb = std::move(cb);
  if (timeout > 0) {
    pending.timeout_event = sim()->After(timeout, [this, rpc_id]() {
      auto it = pending_.find(rpc_id);
      if (it == pending_.end()) {
        return;
      }
      ResponseCallback cb = std::move(it->second.cb);
      pending_.erase(it);
      WTRACE(sim()->Now(), TraceKind::kNetRpcTimeout, 0, addr_.site, rpc_id);
      cb(Status::Timeout("rpc timeout"), Message{});
    });
  }
  pending_[rpc_id] = std::move(pending);

  net_->SendMessage(addr_, to, std::move(msg));
}

void RpcEndpoint::Deliver(Message msg) {
  if (down_) {
    return;
  }
  if (msg.is_response) {
    auto it = pending_.find(msg.rpc_id);
    if (it == pending_.end()) {
      return;  // response for a timed-out or duplicate call
    }
    PendingCall pending = std::move(it->second);
    pending_.erase(it);
    if (pending.timeout_event != 0) {
      sim()->Cancel(pending.timeout_event);
    }
    pending.cb(Status::Ok(), msg);
    return;
  }

  auto it = handlers_.find(msg.type);
  if (it == handlers_.end()) {
    WLOG(kWarn, "no handler for message type " << msg.type << " at " << addr_.ToString());
    return;
  }
  ReplyFn reply;
  if (msg.rpc_id != 0) {
    Address to = msg.from;
    uint64_t rpc_id = msg.rpc_id;
    uint32_t type = msg.type;
    reply = [this, to, rpc_id, type](Message response) {
      if (down_) {
        return;
      }
      response.type = type;
      response.from = addr_;
      response.rpc_id = rpc_id;
      response.is_response = true;
      net_->SendMessage(addr_, to, std::move(response));
    };
  } else {
    reply = [](Message) {};
  }
  it->second(msg, std::move(reply));
}

}  // namespace walter
