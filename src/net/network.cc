#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace walter {

namespace {
// Fixed per-message overhead (headers etc.) for the serialization-delay model.
constexpr size_t kMessageOverheadBytes = 64;
}  // namespace

Network::Network(Simulator* sim, Topology topology)
    : sim_(sim), topology_(std::move(topology)), isolated_(topology_.num_sites(), false) {}

void Network::Register(RpcEndpoint* ep) {
  WCHECK(endpoints_.find(ep->address()) == endpoints_.end(),
         "duplicate endpoint " << ep->address().ToString());
  endpoints_[ep->address()] = ep;
}

void Network::Unregister(const Address& addr) { endpoints_.erase(addr); }

void Network::SetPartitioned(SiteId a, SiteId b, bool partitioned) {
  partitions_[{std::min(a, b), std::max(a, b)}] = partitioned;
}

void Network::IsolateSite(SiteId s, bool isolated) { isolated_[s] = isolated; }

bool Network::IsCut(SiteId a, SiteId b) const {
  if (a == b) {
    return false;
  }
  if (isolated_[a] || isolated_[b]) {
    return true;
  }
  auto it = partitions_.find({std::min(a, b), std::max(a, b)});
  return it != partitions_.end() && it->second;
}

void Network::SendMessage(const Address& from, const Address& to, Message msg,
                          size_t size_bytes) {
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  if (drop_filter_ && drop_filter_(msg, from, to)) {
    ++messages_dropped_;
    return;
  }
  if (IsCut(from.site, to.site)) {
    ++messages_dropped_;
    return;
  }
  if (from.site != to.site && loss_probability_ > 0 &&
      sim_->rng().Bernoulli(loss_probability_)) {
    ++messages_dropped_;
    return;
  }

  LinkState& link = links_[{from.site, to.site}];
  SimTime start = std::max(sim_->Now(), link.next_free);
  double bw = topology_.BandwidthBps(from.site, to.site);
  auto tx_delay = static_cast<SimDuration>(
      static_cast<double>((size_bytes + kMessageOverheadBytes) * 8) / bw * 1e6);
  link.next_free = start + tx_delay;

  SimDuration propagation = topology_.OneWay(from.site, to.site);
  if (jitter_ > 0) {
    propagation = static_cast<SimDuration>(
        static_cast<double>(propagation) * (1.0 + jitter_ * sim_->rng().NextDouble()));
  }
  SimTime arrival = start + tx_delay + propagation;
  // FIFO per directed link (TCP-like ordering).
  arrival = std::max(arrival, link.last_arrival);
  link.last_arrival = arrival;

  sim_->At(arrival, [this, to, msg = std::move(msg)]() mutable {
    auto it = endpoints_.find(to);
    if (it == endpoints_.end() || it->second->down()) {
      ++messages_dropped_;
      return;
    }
    it->second->Deliver(std::move(msg));
  });
}

RpcEndpoint::RpcEndpoint(Network* net, Address addr) : net_(net), addr_(addr) {
  net_->Register(this);
}

RpcEndpoint::~RpcEndpoint() {
  // Cancel outstanding timeout timers: their callbacks capture `this`, which
  // is about to dangle (server replacement destroys the old endpoint).
  for (auto& [id, pending] : pending_) {
    if (pending.timeout_event != 0) {
      sim()->Cancel(pending.timeout_event);
    }
  }
  net_->Unregister(addr_);
}

void RpcEndpoint::Handle(uint32_t type, Handler handler) {
  handlers_[type] = std::move(handler);
}

void RpcEndpoint::Send(const Address& to, uint32_t type, std::string payload) {
  if (down_) {
    return;
  }
  Message msg;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.from = addr_;
  size_t size = msg.payload.size();
  net_->SendMessage(addr_, to, std::move(msg), size);
}

void RpcEndpoint::Call(const Address& to, uint32_t type, std::string payload,
                       ResponseCallback cb, SimDuration timeout) {
  if (down_) {
    return;
  }
  Message msg;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.from = addr_;
  msg.rpc_id = net_->next_rpc_id_++;
  uint64_t rpc_id = msg.rpc_id;

  PendingCall pending;
  pending.cb = std::move(cb);
  if (timeout > 0) {
    pending.timeout_event = sim()->After(timeout, [this, rpc_id]() {
      auto it = pending_.find(rpc_id);
      if (it == pending_.end()) {
        return;
      }
      ResponseCallback cb = std::move(it->second.cb);
      pending_.erase(it);
      cb(Status::Timeout("rpc timeout"), Message{});
    });
  }
  pending_[rpc_id] = std::move(pending);

  size_t size = msg.payload.size();
  net_->SendMessage(addr_, to, std::move(msg), size);
}

void RpcEndpoint::Deliver(Message msg) {
  if (down_) {
    return;
  }
  if (msg.is_response) {
    auto it = pending_.find(msg.rpc_id);
    if (it == pending_.end()) {
      return;  // response for a timed-out or duplicate call
    }
    PendingCall pending = std::move(it->second);
    pending_.erase(it);
    if (pending.timeout_event != 0) {
      sim()->Cancel(pending.timeout_event);
    }
    pending.cb(Status::Ok(), msg);
    return;
  }

  auto it = handlers_.find(msg.type);
  if (it == handlers_.end()) {
    WLOG(kWarn, "no handler for message type " << msg.type << " at " << addr_.ToString());
    return;
  }
  ReplyFn reply;
  if (msg.rpc_id != 0) {
    Address to = msg.from;
    uint64_t rpc_id = msg.rpc_id;
    uint32_t type = msg.type;
    reply = [this, to, rpc_id, type](Message response) {
      if (down_) {
        return;
      }
      response.type = type;
      response.from = addr_;
      response.rpc_id = rpc_id;
      response.is_response = true;
      size_t size = response.payload.size();
      net_->SendMessage(addr_, to, std::move(response), size);
    };
  } else {
    reply = [](Message) {};
  }
  it->second(msg, std::move(reply));
}

}  // namespace walter
