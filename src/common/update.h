// Transaction update records: the unit written to object histories and the WAL,
// and shipped between sites by the propagation protocol.
//
// A transaction's update buffer (x.updates in Figures 10-13) is a sequence of
// ObjectUpdate entries: DATA(data) writes to regular objects, ADD(id)/DEL(id)
// operations on cset objects. A committed transaction is summarized by a
// TxRecord: its id, origin site, commit version, start vector timestamp and
// updates.
#ifndef SRC_COMMON_UPDATE_H_
#define SRC_COMMON_UPDATE_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"

namespace walter {

enum class UpdateKind : uint8_t {
  kData = 0,  // write to a regular object (empty data == nil, i.e. destroyed)
  kAdd = 1,   // cset add(elem)
  kDel = 2,   // cset rem(elem)
};

struct ObjectUpdate {
  ObjectId oid;
  UpdateKind kind = UpdateKind::kData;
  std::string data;  // kData payload
  ObjectId elem;     // kAdd/kDel element

  static ObjectUpdate Data(ObjectId oid, std::string data) {
    return {oid, UpdateKind::kData, std::move(data), {}};
  }
  static ObjectUpdate Add(ObjectId setid, ObjectId elem) {
    return {setid, UpdateKind::kAdd, {}, elem};
  }
  static ObjectUpdate Del(ObjectId setid, ObjectId elem) {
    return {setid, UpdateKind::kDel, {}, elem};
  }

  friend bool operator==(const ObjectUpdate&, const ObjectUpdate&) = default;
};

// A committed transaction as recorded in the WAL and propagated across sites.
struct TxRecord {
  TxId tid = 0;
  SiteId origin = kNoSite;          // site(x): where the transaction executed
  Version version;                  // <origin, seqno> assigned at commit
  VectorTimestamp start_vts;        // snapshot the transaction read from
  std::vector<ObjectUpdate> updates;

  void Serialize(ByteWriter* w) const;
  static TxRecord Deserialize(ByteReader* r);

  // Approximate wire/disk footprint, for the network/WAL size models.
  size_t ByteSize() const;
};

void SerializeObjectUpdate(const ObjectUpdate& u, ByteWriter* w);
ObjectUpdate DeserializeObjectUpdate(ByteReader* r);

}  // namespace walter

#endif  // SRC_COMMON_UPDATE_H_
