#include "src/common/status.h"

namespace walter {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace walter
