// Measurement utilities used by benchmarks and tests: latency recorders with
// percentile/CDF extraction, simple counters, and table formatting helpers.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace walter {

// Collects latency samples (any unit; benches use microseconds) and reports
// percentiles and CDF points. Storage is exact (one double per sample), which
// is fine at bench scale (hundreds of thousands of samples).
class LatencyRecorder {
 public:
  void Add(double sample) {
    if (samples_.size() == samples_.capacity()) {
      // Start with a bench-sized block so the measurement loop does not pay a
      // ladder of small grow-and-copy steps.
      samples_.reserve(std::max<size_t>(4096, samples_.capacity() * 2));
    }
    samples_.push_back(sample);
    sorted_ = false;
  }

  // Pre-sizes the sample buffer (e.g. for an expected op count).
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min();
  double Max();
  double Mean() const;

  // p in [0, 100]. Nearest-rank percentile.
  double Percentile(double p);
  double Median() { return Percentile(50); }

  // Returns (latency, cumulative fraction) pairs suitable for plotting a CDF,
  // downsampled to at most `points` entries.
  std::vector<std::pair<double, double>> Cdf(size_t points = 100);

  // All the summary statistics, extracted from one sort pass.
  struct SummaryStats {
    size_t n = 0;
    double min = 0, mean = 0, p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
  };
  SummaryStats Stats();

  // Prints "p50=.. p90=.. p99=.. p99.9=.. max=.." with the given unit suffix.
  // Sorts (at most) once regardless of how many percentiles it reports.
  std::string Summary(const std::string& unit = "us");

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void Sort();
  // Percentile lookup that assumes Sort() already ran (no per-call check).
  double PercentileSorted(double p) const;

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Fixed-width text table printer: benches use it to emit paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders the table with aligned columns and a header separator.
  std::string Render() const;

  static std::string Fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace walter

#endif  // SRC_COMMON_STATS_H_
