// Measurement utilities used by benchmarks and tests: latency recorders with
// percentile/CDF extraction, simple counters, and table formatting helpers.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace walter {

// Collects latency samples (any unit; benches use microseconds) and reports
// percentiles and CDF points. Storage is exact (one double per sample), which
// is fine at bench scale (hundreds of thousands of samples).
class LatencyRecorder {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min();
  double Max();
  double Mean() const;

  // p in [0, 100]. Nearest-rank percentile.
  double Percentile(double p);
  double Median() { return Percentile(50); }

  // Returns (latency, cumulative fraction) pairs suitable for plotting a CDF,
  // downsampled to at most `points` entries.
  std::vector<std::pair<double, double>> Cdf(size_t points = 100);

  // Prints "p50=.. p90=.. p99=.. p99.9=.. max=.." with the given unit suffix.
  std::string Summary(const std::string& unit = "us");

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void Sort();

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Fixed-width text table printer: benches use it to emit paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders the table with aligned columns and a header separator.
  std::string Render() const;

  static std::string Fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace walter

#endif  // SRC_COMMON_STATS_H_
