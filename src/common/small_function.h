// Small-buffer-optimized move-only callable, used on the simulator hot path.
//
// std::function heap-allocates any callable larger than its tiny inline buffer
// (16 bytes on libstdc++), and this codebase's typical event closures —
// Guard() wrappers capturing a shared_ptr plus an inner lambda, RPC
// continuations capturing endpoints and ids — are bigger than that. With an
// inline buffer of kSmallFunctionSbo bytes, scheduling such a closure performs
// no allocation at all; only unusually fat captures fall back to the heap.
//
// Unlike std::function, SmallFunction is move-only and therefore accepts
// move-only captures (e.g. a captured Payload or unique_ptr).
#ifndef SRC_COMMON_SMALL_FUNCTION_H_
#define SRC_COMMON_SMALL_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace walter {

// Inline capture budget. 64 bytes covers the network delivery closure (a
// Message — payload handle, addresses, rpc id — plus the network pointer),
// which is scheduled once per message and is the hottest closure in the
// system, as well as every Guard()-wrapped protocol callback.
inline constexpr size_t kSmallFunctionSbo = 64;

template <typename Signature, size_t SboSize = kSmallFunctionSbo>
class SmallFunction;

template <typename R, typename... Args, size_t SboSize>
class SmallFunction<R(Args...), SboSize> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= SboSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(std::move(other)); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Reset(); }

  // Destroys the held callable (releasing everything it captured).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    // Move-constructs the callable from src into dst, then destroys src.
    void (*relocate)(unsigned char* src, unsigned char* dst);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  struct InlineOps {
    static R Invoke(unsigned char* s, Args&&... args) {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
    }
    static void Relocate(unsigned char* src, unsigned char* dst) {
      Fn* f = std::launder(reinterpret_cast<Fn*>(src));
      ::new (static_cast<void*>(dst)) Fn(std::move(*f));
      f->~Fn();
    }
    static void Destroy(unsigned char* s) {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(unsigned char* s) {
      return *std::launder(reinterpret_cast<Fn**>(s));
    }
    static R Invoke(unsigned char* s, Args&&... args) {
      return (*Ptr(s))(std::forward<Args>(args)...);
    }
    static void Relocate(unsigned char* src, unsigned char* dst) {
      ::new (static_cast<void*>(dst)) Fn*(Ptr(src));
    }
    static void Destroy(unsigned char* s) { delete Ptr(s); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(SmallFunction&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[SboSize];
  const Ops* ops_ = nullptr;
};

}  // namespace walter

#endif  // SRC_COMMON_SMALL_FUNCTION_H_
