// Core identifier and version types shared by every Walter module.
//
// Terminology follows the paper (SOSP'11, Sections 4-5):
//  - A *site* is a data center running one Walter server.
//  - Objects live in *containers*; all objects of a container share a preferred
//    site and a replica set.
//  - A *version* is the pair <site, seqno> assigned to a transaction at commit.
//  - A *vector timestamp* represents a snapshot: for each site, how many of that
//    site's transactions are reflected in the snapshot.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace walter {

// Identifies a site (data center). Sites are numbered 0..num_sites-1.
using SiteId = uint32_t;

// Sentinel for "no site".
inline constexpr SiteId kNoSite = static_cast<SiteId>(-1);

// Identifies a container: a group of objects sharing a preferred site and
// replica set (Section 4.1).
using ContainerId = uint64_t;

// Distinguishes objects within a container.
using LocalId = uint64_t;

// Globally unique transaction id.
using TxId = uint64_t;

// The two object types Walter stores (Section 4.1): regular byte-sequence
// objects and counting-set (cset) objects.
enum class ObjectType : uint8_t {
  kRegular = 0,
  kCset = 1,
};

// Per-transaction consistency level (docs/CONSISTENCY.md). kPsi is the
// paper's protocol and the default; the other two are opt-in per transaction:
//  - kNmsi weakens PSI by dropping the cross-shard/cross-site visibility
//    waits (non-monotonic snapshots: a read may return an older committed
//    version instead of parking for propagation).
//  - kSerializable strengthens PSI with commit-time read-set validation
//    (backward OCC): the transaction's read set joins its write set in the
//    2PC conflict check, so write skew between serializable transactions
//    aborts instead of committing.
enum class ConsistencyMode : uint8_t {
  kPsi = 0,
  kNmsi = 1,
  kSerializable = 2,
};

inline const char* ConsistencyModeName(ConsistencyMode m) {
  switch (m) {
    case ConsistencyMode::kPsi:
      return "psi";
    case ConsistencyMode::kNmsi:
      return "nmsi";
    case ConsistencyMode::kSerializable:
      return "ser";
  }
  return "unknown";
}

// Object id: container id plus a local id. The container id is embedded in the
// object id, so an object's container (and hence preferred site) never changes.
struct ObjectId {
  ContainerId container = 0;
  LocalId local = 0;

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;

  std::string ToString() const;
};

// Version number <site, seqno> assigned to a transaction when it commits
// (Section 5.2). seqno orders all transactions executed at `site`.
struct Version {
  SiteId site = kNoSite;
  uint64_t seqno = 0;

  friend bool operator==(const Version&, const Version&) = default;
  friend auto operator<=>(const Version&, const Version&) = default;

  std::string ToString() const;
};

// A vector timestamp represents a snapshot: entry s is the number of
// transactions from site s included in the snapshot (Section 5.2).
class VectorTimestamp {
 public:
  VectorTimestamp() = default;
  explicit VectorTimestamp(size_t num_sites) : counts_(num_sites, 0) {}
  explicit VectorTimestamp(std::vector<uint64_t> counts) : counts_(std::move(counts)) {}

  size_t num_sites() const { return counts_.size(); }

  uint64_t at(SiteId s) const { return s < counts_.size() ? counts_[s] : 0; }
  void set(SiteId s, uint64_t v);

  // Increments entry s by one and returns the new value.
  uint64_t Advance(SiteId s);

  // True if version v is visible to this snapshot: v.seqno <= counts[v.site].
  bool Sees(const Version& v) const { return v.site != kNoSite && v.seqno <= at(v.site); }

  // Entry-wise maximum (least upper bound of the two snapshots).
  void MergeMax(const VectorTimestamp& other);

  // Entry-wise minimum (greatest lower bound; missing entries count as 0).
  // The pointwise min of causally-closed snapshots is causally closed, which
  // is what makes the GC stability frontier safe to fold histories at.
  void MergeMin(const VectorTimestamp& other);

  // True if every entry of this is >= the corresponding entry of other, i.e.
  // this snapshot includes everything other does.
  bool Covers(const VectorTimestamp& other) const;

  const std::vector<uint64_t>& counts() const { return counts_; }

  friend bool operator==(const VectorTimestamp&, const VectorTimestamp&) = default;

  std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
};

// Hash support so ids can key unordered containers.
struct ObjectIdHash {
  size_t operator()(const ObjectId& id) const {
    // 64-bit mix of the two halves; splitmix-style finalizer.
    uint64_t x = id.container * 0x9e3779b97f4a7c15ULL ^ (id.local + 0xbf58476d1ce4e5b9ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace walter

template <>
struct std::hash<walter::ObjectId> {
  size_t operator()(const walter::ObjectId& id) const { return walter::ObjectIdHash{}(id); }
};

#endif  // SRC_COMMON_TYPES_H_
