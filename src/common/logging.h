// Minimal leveled logging. Off by default so simulations stay fast;
// tests/benches can raise the level for debugging.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace walter {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

// Global log threshold; messages above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace log_internal {
void Emit(LogLevel level, const char* file, int line, const std::string& msg);
}  // namespace log_internal

}  // namespace walter

#define WLOG(level, ...)                                                              \
  do {                                                                                \
    if (static_cast<int>(::walter::LogLevel::level) <=                                \
        static_cast<int>(::walter::GetLogLevel())) {                                  \
      std::ostringstream walter_log_os_;                                              \
      walter_log_os_ << __VA_ARGS__;                                                  \
      ::walter::log_internal::Emit(::walter::LogLevel::level, __FILE__, __LINE__,     \
                                   walter_log_os_.str());                             \
    }                                                                                 \
  } while (0)

// Invariant check that stays on in release builds: protocol bugs must not pass
// silently in benchmarks.
#define WCHECK(cond, ...)                                                             \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::ostringstream walter_chk_os_;                                              \
      walter_chk_os_ << "CHECK failed: " #cond " " << __VA_ARGS__;                    \
      ::walter::log_internal::Emit(::walter::LogLevel::kError, __FILE__, __LINE__,    \
                                   walter_chk_os_.str());                             \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

#endif  // SRC_COMMON_LOGGING_H_
