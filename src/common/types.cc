#include "src/common/types.h"

#include <algorithm>
#include <sstream>

namespace walter {

std::string ObjectId::ToString() const {
  std::ostringstream os;
  os << "oid(" << container << ":" << local << ")";
  return os.str();
}

std::string Version::ToString() const {
  std::ostringstream os;
  if (site == kNoSite) {
    os << "v(-)";
  } else {
    os << "v(" << site << ":" << seqno << ")";
  }
  return os.str();
}

void VectorTimestamp::set(SiteId s, uint64_t v) {
  if (s >= counts_.size()) {
    counts_.resize(s + 1, 0);
  }
  counts_[s] = v;
}

uint64_t VectorTimestamp::Advance(SiteId s) {
  if (s >= counts_.size()) {
    counts_.resize(s + 1, 0);
  }
  return ++counts_[s];
}

void VectorTimestamp::MergeMax(const VectorTimestamp& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] = std::max(counts_[i], other.counts_[i]);
  }
}

void VectorTimestamp::MergeMin(const VectorTimestamp& other) {
  if (other.counts_.size() < counts_.size()) {
    counts_.resize(other.counts_.size());
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] = std::min(counts_[i], other.counts_[i]);
  }
}

bool VectorTimestamp::Covers(const VectorTimestamp& other) const {
  for (size_t i = 0; i < other.counts_.size(); ++i) {
    uint64_t mine = i < counts_.size() ? counts_[i] : 0;
    if (mine < other.counts_[i]) {
      return false;
    }
  }
  return true;
}

std::string VectorTimestamp::ToString() const {
  std::ostringstream os;
  os << "<";
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << counts_[i];
  }
  os << ">";
  return os.str();
}

}  // namespace walter
