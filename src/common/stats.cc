#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <iomanip>

namespace walter {

void LatencyRecorder::Sort() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyRecorder::Min() {
  Sort();
  return samples_.empty() ? 0 : samples_.front();
}

double LatencyRecorder::Max() {
  Sort();
  return samples_.empty() ? 0 : samples_.back();
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyRecorder::Percentile(double p) {
  if (samples_.empty()) {
    return 0;
  }
  Sort();
  return PercentileSorted(p);
}

double LatencyRecorder::PercentileSorted(double p) const {
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto idx = static_cast<size_t>(rank);
  if (idx + 1 >= samples_.size()) {
    return samples_.back();
  }
  double frac = rank - static_cast<double>(idx);
  return samples_[idx] * (1 - frac) + samples_[idx + 1] * frac;
}

LatencyRecorder::SummaryStats LatencyRecorder::Stats() {
  SummaryStats out;
  out.n = samples_.size();
  if (samples_.empty()) {
    return out;
  }
  Sort();  // the single sort pass; every statistic below reads the sorted vector
  out.min = samples_.front();
  out.max = samples_.back();
  out.mean = Mean();
  out.p50 = PercentileSorted(50);
  out.p90 = PercentileSorted(90);
  out.p99 = PercentileSorted(99);
  out.p999 = PercentileSorted(99.9);
  return out;
}

std::vector<std::pair<double, double>> LatencyRecorder::Cdf(size_t points) {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty()) {
    return out;
  }
  Sort();
  size_t n = samples_.size();
  size_t step = std::max<size_t>(1, n / points);
  for (size_t i = 0; i < n; i += step) {
    out.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().second < 1.0) {
    out.emplace_back(samples_.back(), 1.0);
  }
  return out;
}

std::string LatencyRecorder::Summary(const std::string& unit) {
  SummaryStats s = Stats();
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << "n=" << s.n << " p50=" << s.p50 << unit << " p90=" << s.p90 << unit
     << " p99=" << s.p99 << unit << " p99.9=" << s.p999 << unit << " max=" << s.max << unit;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[i]))
         << (i < cells.size() ? cells[i] : "") << " ";
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (size_t i = 0; i < widths.size(); ++i) {
    os << "|" << std::string(widths[i] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace walter
