#include "src/common/update.h"

namespace walter {

void SerializeObjectUpdate(const ObjectUpdate& u, ByteWriter* w) {
  w->PutObjectId(u.oid);
  w->PutU8(static_cast<uint8_t>(u.kind));
  if (u.kind == UpdateKind::kData) {
    w->PutString(u.data);
  } else {
    w->PutObjectId(u.elem);
  }
}

ObjectUpdate DeserializeObjectUpdate(ByteReader* r) {
  ObjectUpdate u;
  u.oid = r->GetObjectId();
  u.kind = static_cast<UpdateKind>(r->GetU8());
  if (u.kind == UpdateKind::kData) {
    u.data = r->GetString();
  } else {
    u.elem = r->GetObjectId();
  }
  return u;
}

void TxRecord::Serialize(ByteWriter* w) const {
  w->PutU64(tid);
  w->PutU32(origin);
  w->PutVersion(version);
  w->PutVts(start_vts);
  w->PutU32(static_cast<uint32_t>(updates.size()));
  for (const auto& u : updates) {
    SerializeObjectUpdate(u, w);
  }
}

TxRecord TxRecord::Deserialize(ByteReader* r) {
  TxRecord rec;
  rec.tid = r->GetU64();
  rec.origin = r->GetU32();
  rec.version = r->GetVersion();
  rec.start_vts = r->GetVts();
  uint32_t n = r->GetU32();
  if (r->failed()) {
    return rec;
  }
  rec.updates.reserve(n);
  for (uint32_t i = 0; i < n && !r->failed(); ++i) {
    rec.updates.push_back(DeserializeObjectUpdate(r));
  }
  return rec;
}

size_t TxRecord::ByteSize() const {
  size_t n = 8 + 4 + 12 + 4 + 8 * start_vts.num_sites() + 4;
  for (const auto& u : updates) {
    n += 17 + (u.kind == UpdateKind::kData ? 4 + u.data.size() : 16);
  }
  return n;
}

}  // namespace walter
