#include "src/common/logging.h"

namespace walter {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    default:
      return "?";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip the directory prefix for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace log_internal

}  // namespace walter
