// Lightweight error-handling vocabulary (no exceptions on hot paths).
//
// Status carries a code plus a human-readable message; Result<T> is a Status
// or a value. Codes mirror the outcomes a Walter client can observe: a commit
// can succeed, abort due to a conflict, or fail due to unavailability.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace walter {

enum class StatusCode : uint8_t {
  kOk = 0,
  kAborted,        // transaction aborted (write-write conflict or lock conflict)
  kNotFound,       // object/container does not exist
  kUnavailable,    // site/server down, lease not held, or reconfiguration in progress
  kInvalidArgument,
  kFailedPrecondition,  // API misuse (e.g. write to cset object)
  kTimeout,
  kInternal,
  kOverloaded,  // server shed the request (admission control); retry after a hint
};

// Returns a stable lower-case name for the code ("ok", "aborted", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Aborted(std::string m = "") { return {StatusCode::kAborted, std::move(m)}; }
  static Status NotFound(std::string m = "") { return {StatusCode::kNotFound, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status InvalidArgument(std::string m = "") {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status FailedPrecondition(std::string m = "") {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status Timeout(std::string m = "") { return {StatusCode::kTimeout, std::move(m)}; }
  static Status Internal(std::string m = "") { return {StatusCode::kInternal, std::move(m)}; }
  static Status Overloaded(std::string m = "") { return {StatusCode::kOverloaded, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value of type T.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result from Status requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace walter

#endif  // SRC_COMMON_STATUS_H_
