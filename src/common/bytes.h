// Byte-level serialization used by the WAL, the RPC layer, and checkpoints.
//
// Encoding: little-endian fixed-width integers plus length-prefixed byte
// strings. Readers are bounds-checked: on malformed input they latch an error
// flag instead of reading out of bounds, which lets WAL recovery detect a torn
// tail and stop cleanly.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace walter {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }

  // Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  void PutObjectId(const ObjectId& id) {
    PutU64(id.container);
    PutU64(id.local);
  }

  void PutVersion(const Version& v) {
    PutU32(v.site);
    PutU64(v.seqno);
  }

  void PutVts(const VectorTimestamp& vts) {
    PutU32(static_cast<uint32_t>(vts.num_sites()));
    for (uint64_t c : vts.counts()) {
      PutU64(c);
    }
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  ObjectId GetObjectId() {
    ObjectId id;
    id.container = GetU64();
    id.local = GetU64();
    return id;
  }

  Version GetVersion() {
    Version v;
    v.site = GetU32();
    v.seqno = GetU64();
    return v;
  }

  VectorTimestamp GetVts() {
    uint32_t n = GetU32();
    if (failed_ || n > remaining() / sizeof(uint64_t)) {
      failed_ = true;
      return VectorTimestamp{};
    }
    std::vector<uint64_t> counts(n);
    for (uint32_t i = 0; i < n; ++i) {
      counts[i] = GetU64();
    }
    return VectorTimestamp(std::move(counts));
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }

  // True if any read ran past the end of the buffer (malformed/truncated input).
  bool failed() const { return failed_; }

 private:
  void GetFixed(void* p, size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace walter

#endif  // SRC_COMMON_BYTES_H_
