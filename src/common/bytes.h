// Byte-level serialization used by the WAL, the RPC layer, and checkpoints.
//
// Encoding: little-endian fixed-width integers plus length-prefixed byte
// strings. Readers are bounds-checked: on malformed input they latch an error
// flag instead of reading out of bounds, which lets WAL recovery detect a torn
// tail and stop cleanly.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace walter {

// Ref-counted immutable byte buffer: the payload type of the messaging layer.
//
// Serialized bytes are produced once (ByteWriter) and then shared by
// reference: sending one PropagateBatch to three destinations, resending it on
// an ack timeout, or holding it in a delivery event all alias the same buffer.
// Immutability makes the sharing safe — no receiver can observe another
// receiver's (nonexistent) mutations — and copying a Payload is two pointer
// writes instead of a byte copy.
//
// Thread safety (the threaded runtime's dispatch path): the buffer is held by
// shared_ptr, whose control-block refcount is atomic, so distinct Payload
// values aliasing one buffer may be copied, read and destroyed concurrently
// from different executors — exactly what happens when a sender's closure
// carrying the Payload is posted to the destination's mailbox while the
// sender keeps its own reference for resends. (A single Payload *object* is
// still not a synchronization point; don't mutate one from two threads.) The
// bytes_wrapped_ counter is thread-local, so wrapping never contends either.
class Payload {
 public:
  Payload() = default;
  // Wraps freshly produced bytes (one control-block allocation, no byte copy).
  Payload(std::string bytes)  // NOLINT(runtime/explicit): std::string is a payload
      : buf_(bytes.empty() ? nullptr
                           : std::make_shared<const std::string>(std::move(bytes))) {
    bytes_wrapped_ += buf_ ? buf_->size() : 0;
  }
  Payload(const char* bytes) : Payload(std::string(bytes)) {}  // NOLINT(runtime/explicit)

  std::string_view view() const {
    return buf_ ? std::string_view(*buf_) : std::string_view();
  }
  operator std::string_view() const { return view(); }  // NOLINT(runtime/explicit)

  const char* data() const { return view().data(); }
  size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }
  std::string ToString() const { return std::string(view()); }

  // Total bytes that were materialized into payload buffers (deep "copies").
  // Shares bump a refcount instead; benches report wrapped-bytes-per-message
  // to show the effect of buffer sharing on fanout and resends. Thread-local
  // so concurrent simulations (ParallelRunner) never contend or race.
  static uint64_t bytes_wrapped() { return bytes_wrapped_; }

 private:
  std::shared_ptr<const std::string> buf_;
  static inline thread_local uint64_t bytes_wrapped_ = 0;
};

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }

  // Length-prefixed byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  void PutObjectId(const ObjectId& id) {
    PutU64(id.container);
    PutU64(id.local);
  }

  void PutVersion(const Version& v) {
    PutU32(v.site);
    PutU64(v.seqno);
  }

  void PutVts(const VectorTimestamp& vts) {
    PutU32(static_cast<uint32_t>(vts.num_sites()));
    for (uint64_t c : vts.counts()) {
      PutU64(c);
    }
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutFixed(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    uint8_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }
  int64_t GetI64() {
    int64_t v = 0;
    GetFixed(&v, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return {};
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  ObjectId GetObjectId() {
    ObjectId id;
    id.container = GetU64();
    id.local = GetU64();
    return id;
  }

  Version GetVersion() {
    Version v;
    v.site = GetU32();
    v.seqno = GetU64();
    return v;
  }

  VectorTimestamp GetVts() {
    uint32_t n = GetU32();
    if (failed_ || n > remaining() / sizeof(uint64_t)) {
      failed_ = true;
      return VectorTimestamp{};
    }
    std::vector<uint64_t> counts(n);
    for (uint32_t i = 0; i < n; ++i) {
      counts[i] = GetU64();
    }
    return VectorTimestamp(std::move(counts));
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }

  // True if any read ran past the end of the buffer (malformed/truncated input).
  bool failed() const { return failed_; }

 private:
  void GetFixed(void* p, size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace walter

#endif  // SRC_COMMON_BYTES_H_
