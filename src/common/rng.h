// Deterministic pseudo-random number generation for simulations and workloads.
//
// Every experiment takes an explicit seed so results are exactly reproducible.
// The generator is xoshiro256**; Zipf sampling uses the standard rejection
// inversion method so social-network workloads get realistic skew.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace walter {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    // SplitMix64 to spread the seed across the state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform integer in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with given mean (inter-arrival times for open-loop clients).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) {
      u = 0.999999999;
    }
    return -mean * std::log1p(-u);
  }

  // Zipf-distributed integer in [0, n) with skew theta (0 = uniform-ish).
  // Uses the Gray et al. computation with cached zeta when n is stable.
  uint64_t Zipf(uint64_t n, double theta) {
    if (n <= 1) {
      return 0;
    }
    if (n != zipf_n_ || theta != zipf_theta_) {
      zipf_n_ = n;
      zipf_theta_ = theta;
      zeta_ = Zeta(n, theta);
      double zeta2 = Zeta(2, theta);
      alpha_ = 1.0 / (1.0 - theta);
      eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - zeta2 / zeta_);
    }
    double u = NextDouble();
    double uz = u * zeta_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, zipf_theta_)) {
      return 1;
    }
    auto v = static_cast<uint64_t>(
        static_cast<double>(zipf_n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= zipf_n_ ? zipf_n_ - 1 : v;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t state_[4];

  uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0;
  double zeta_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
};

}  // namespace walter

#endif  // SRC_COMMON_RNG_H_
