// Counting set (cset): the conflict-free replicated set of Section 2/3.3/3.5.
//
// A cset maps element ids to integer counts, possibly negative. add(x)
// increments x's count, rem(x) decrements it; because increments and decrements
// commute, concurrent cset transactions never write-write conflict, which is
// why Walter can fast-commit cset updates at any site. Removing from an empty
// cset yields count -1 (an "anti-element"): a later add cancels it out.
//
// Two views (Section 3.5):
//  - counted view: Count()/NonZeroElements(), when counts mean something
//    (inventory, reference counts);
//  - set view: Contains()/PresentElements(), which treats count >= 1 as present
//    and <= 0 as absent, for friend lists, timelines, albums.
#ifndef SRC_CRDT_CSET_H_
#define SRC_CRDT_CSET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"
#include "src/common/update.h"

namespace walter {

class CountingSet {
 public:
  CountingSet() = default;

  // Current count of elem (0 if never touched).
  int64_t Count(const ObjectId& elem) const;

  // Set view: present iff count >= 1.
  bool Contains(const ObjectId& elem) const { return Count(elem) >= 1; }

  void Add(const ObjectId& elem, int64_t n = 1);
  void Remove(const ObjectId& elem, int64_t n = 1) { Add(elem, -n); }

  // Applies a kAdd/kDel ObjectUpdate (kData is invalid for csets).
  void ApplyOp(const ObjectUpdate& update);

  // Elements with non-zero count, as returned by the PSI setRead operation.
  std::vector<ObjectId> NonZeroElements() const;

  // Set-view elements: count >= 1 (what applications show to users).
  std::vector<ObjectId> PresentElements() const;

  // Element-wise sum of counts. Commutative and associative — merging replicas
  // in any order and grouping converges (the CRDT property; tested).
  void MergeAdd(const CountingSet& other);

  size_t entry_count() const { return counts_.size(); }
  bool empty() const;

  void Serialize(ByteWriter* w) const;
  static CountingSet Deserialize(ByteReader* r);

  friend bool operator==(const CountingSet& a, const CountingSet& b);

 private:
  std::unordered_map<ObjectId, int64_t> counts_;
};

}  // namespace walter

#endif  // SRC_CRDT_CSET_H_
