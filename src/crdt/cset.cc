#include "src/crdt/cset.h"

#include <algorithm>

#include "src/common/logging.h"

namespace walter {

int64_t CountingSet::Count(const ObjectId& elem) const {
  auto it = counts_.find(elem);
  return it == counts_.end() ? 0 : it->second;
}

void CountingSet::Add(const ObjectId& elem, int64_t n) {
  int64_t& c = counts_[elem];
  c += n;
  if (c == 0) {
    counts_.erase(elem);  // keep the map canonical so equality is structural
  }
}

void CountingSet::ApplyOp(const ObjectUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kAdd:
      Add(update.elem, 1);
      break;
    case UpdateKind::kDel:
      Remove(update.elem, 1);
      break;
    case UpdateKind::kData:
      WCHECK(false, "DATA update applied to cset " << update.oid.ToString());
  }
}

std::vector<ObjectId> CountingSet::NonZeroElements() const {
  std::vector<ObjectId> out;
  out.reserve(counts_.size());
  for (const auto& [elem, count] : counts_) {
    if (count != 0) {
      out.push_back(elem);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> CountingSet::PresentElements() const {
  std::vector<ObjectId> out;
  for (const auto& [elem, count] : counts_) {
    if (count >= 1) {
      out.push_back(elem);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CountingSet::MergeAdd(const CountingSet& other) {
  for (const auto& [elem, count] : other.counts_) {
    Add(elem, count);
  }
}

bool CountingSet::empty() const { return counts_.empty(); }

void CountingSet::Serialize(ByteWriter* w) const {
  // Sort for deterministic bytes (checkpoints are compared in tests).
  std::vector<std::pair<ObjectId, int64_t>> entries(counts_.begin(), counts_.end());
  std::sort(entries.begin(), entries.end());
  w->PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [elem, count] : entries) {
    w->PutObjectId(elem);
    w->PutI64(count);
  }
}

CountingSet CountingSet::Deserialize(ByteReader* r) {
  CountingSet s;
  uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && !r->failed(); ++i) {
    ObjectId elem = r->GetObjectId();
    int64_t count = r->GetI64();
    if (count != 0) {
      s.counts_[elem] = count;
    }
  }
  return s;
}

bool operator==(const CountingSet& a, const CountingSet& b) { return a.counts_ == b.counts_; }

}  // namespace walter
