// WalterServer: the per-site Walter server (Sections 5-6).
//
// Implements, over the simulated network:
//  - the per-site state of Figure 9 (CurrSeqNo, CommittedVTS, History, GotVTS),
//  - transaction execution (Figure 10) with server-side update buffers and
//    snapshot reads, including remote reads for objects not replicated locally,
//  - fast commit (Figure 11) for transactions whose write-set is local-preferred
//    (and for cset-only transactions, which never conflict),
//  - slow commit (Figure 12): two-phase commit among the preferred sites of
//    written objects, with object locks,
//  - asynchronous propagation (Figure 13): per-destination batches with
//    cumulative acks, disaster-safe durability announcements, and visibility
//    acks; batching makes disaster-safe durability land in [RTTmax, 2*RTTmax]
//    as in Figure 19,
//  - write-ahead logging with group commit, checkpointing, and server
//    replacement recovery (Sections 5.7 and 6).
//
// Single-threaded: all handlers run on the simulator's event loop; "atomic
// regions" of the paper's pseudocode are single events here.
#ifndef SRC_CORE_SERVER_H_
#define SRC_CORE_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/update.h"
#include "src/core/container.h"
#include "src/core/messages.h"
#include "src/core/perf_model.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/sim/clock.h"
#include "src/sim/disk.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/storage/store.h"

namespace walter {

class WalterServer {
 public:
  struct Options {
    SiteId site = 0;
    size_t num_sites = 1;
    // Intra-site sharding (virtual-server model): when the cluster shards a
    // site across co-located servers, `site` is really a global server id and
    // `num_sites` the total server count — every vector clock, propagation
    // destination and 2PC participant is per-server. This flag marks that
    // mode for the few places whose behavior must differ (snapshot reads may
    // arrive at a shard before the snapshot's commits do — see DoRead).
    bool sharded = false;
    PerfModel perf = PerfModel::Ec2();
    DiskConfig disk = DiskConfig::Ec2();
    // Disaster-safe durability parameter: a transaction is disaster-safe once
    // f+1 sites replicating each written object (including its preferred site)
    // have received it. -1 = all sites (the measurement convention of §8.1).
    int f = -1;
    // Floor between consecutive propagation batches to one destination (a new
    // batch otherwise departs as soon as the previous one is acked).
    SimDuration min_batch_interval = Millis(2);
    // Resend window for unacked propagation batches and 2PC prepares.
    SimDuration resend_timeout = Seconds(2);
    // Exponential backoff for consecutive unacked propagation-batch resends to
    // one destination: the window doubles per attempt (with jitter) up to this
    // cap, instead of hammering a partitioned peer at a fixed period forever.
    SimDuration resend_backoff_cap = Seconds(30);
    // 2PC prepare RPC attempts per participant site (1 = a single RPC; a
    // timeout counts as a no vote, as before).
    size_t prepare_attempts = 1;
    // Periodic re-announcement of durability/visibility state (heals losses).
    SimDuration gossip_interval = Seconds(1);
    // Server-side buffers of transactions whose client went silent (crashed,
    // or gave up its retry budget mid-transaction) are dropped after this
    // idle period. 0 disables the sweep.
    SimDuration idle_tx_timeout = 0;
    size_t cache_bytes = size_t{1} << 30;
    // Cap on transactions per propagation batch.
    size_t max_batch_records = 20000;
    // Commit/abort outcomes (the retransmission dedup state) are dropped this
    // long after the outcome settled, once globally visible. Must stay far
    // above any client retry horizon: dropping an outcome a client is still
    // retransmitting against would double-apply the commit. Aged by time, never
    // by the GC frontier (the frontier can advance within a client's retry
    // window). 0 retains outcomes forever.
    SimDuration tx_outcome_retention = Seconds(30);
    // Decentralized stability-frontier exchange: each site piggybacks its
    // stability floor on propagation acks and folds its own histories from the
    // acked floors, instead of relying on the cluster-level GC coordinator.
    // Off by default: the extra ack payload changes wire bytes, and sites
    // GC'ing at different frontiers forces sub-frontier remote reads to be
    // refused rather than answered.
    bool frontier_gossip = false;
    // Real-file WAL backing: when non-empty, the WAL mirrors every append into
    // segmented log files under this directory (see FileWalDevice) and fsyncs
    // on group-commit flush. Empty (default) keeps the in-memory image only —
    // the simulated benchmarks' behavior is unchanged.
    std::string wal_dir;
    // Decision/visibility decoupling (the Figure-13 lock-lifetime split, wired
    // from ClusterOptions::early_lock_release). On: participants release 2PC
    // prepare locks when the coordinator's commit decision arrives, installing
    // per-object visibility watermarks that park readers (instead of holding
    // the lock until the record propagates back durable + covered); prepares
    // and fast commits blocked on a held lock wait with wound-wait ordering
    // instead of aborting; all-co-sited 2PCs acquire sites in global object
    // order; and remote records from a co-sited origin commit without waiting
    // for disaster-safe durability (co-located shards fail together — the
    // same §5.7 single-shard caveat sharding already documents). Off: every
    // code path and wire byte is identical to the pre-watermark protocol.
    bool early_lock_release = false;
    // How long a prepare or fast commit blocked on a held lock waits for the
    // holder to resolve before voting no / aborting (early_lock_release only).
    // Must stay below resend_timeout or the coordinator counts a still-parked
    // participant as a transport-dead no vote.
    SimDuration lock_wait_timeout = Millis(500);
    // Bounded re-park for reads blocked by a visibility watermark (or, in
    // sharded mode, by a sibling-shard snapshot gap). The first
    // read_park_soft_retries attempts re-park at 1ms — legitimate propagation
    // gaps resolve well inside this phase, so healthy runs are unchanged —
    // then the delay doubles from 2ms up to read_park_backoff_cap. A read
    // still blocked once the accumulated wait reaches read_park_budget gives
    // up with kUnavailable (Stats::reads_starved, TraceKind::kReadStarved),
    // so a watermark that will never clear surfaces as a starved read and a
    // liveness-watchdog verdict instead of a silent 1ms re-park loop forever.
    uint32_t read_park_soft_retries = 256;
    SimDuration read_park_backoff_cap = Millis(50);
    SimDuration read_park_budget = Seconds(10);
    // Admission control (overload defense; both 0 = off, the default — every
    // figure bench is byte-identical). When on, a client op arriving while
    // this server's CPU queue is at least admission_max_queue deep, or while
    // admission_max_inflight admitted ops are still unanswered, is rejected
    // before any CPU is charged: kOverloaded plus a retry-after hint sized to
    // the queue's drain time. Aborts are always admitted — they release
    // server-side state and shrink the overload. Wired from
    // ClusterOptions::admission / the WALTER_ADMISSION kill-switch.
    size_t admission_max_queue = 0;
    size_t admission_max_inflight = 0;
    // Geographic site of each global server id (filled by the cluster from its
    // shard map). Empty = every server is its own geo site, which disables the
    // co-sited fast-visibility path.
    std::vector<SiteId> geo_site_of;
    // Clock-ordered WAN commits (wired from ClusterOptions::clock_commit / the
    // WALTER_CLOCK_COMMIT kill-switch; requires early_lock_release). On: the
    // slow-commit coordinator stamps each WAN prepare with a future commit
    // timestamp (its local clock + clock_max_owd + 2*skew bound + clock_slack);
    // participants hold the vote until their own clock passes it and evaluate
    // held votes in (commit_ts, coordinator, tid) order, so concurrent
    // conflicting slow commits resolve identically at every participant. The
    // conflict check also becomes snapshot-aware: a visibility watermark whose
    // decided version the writer's snapshot already Sees is not a conflict
    // (the writer builds on that version; remote apply is causality-gated), so
    // dependent back-to-back slow commits stop false-aborting for the
    // propagation round trip. Off: every code path and wire byte is identical.
    bool clock_commit = false;
    ClockModel::Options clock;          // per-site skew/drift model
    // Maximum one-way delay to any 2PC participant (the cluster wires this
    // from its topology: max RTT / 2). Sizes the future commit timestamp.
    SimDuration clock_max_owd = Millis(100);
    // Safety margin on top of max OWD + skew so an on-time prepare still
    // arrives before the participant's clock passes commit_ts.
    SimDuration clock_slack = Millis(1);
  };

  // Storage-layer milestones, exposed for crash-point enumeration: the crash
  // fuzzer hooks these to kill the server exactly at a WAL append, checkpoint
  // write, or WAL truncation boundary. `offset` is the logical WAL position
  // after the event. The hook may call Crash(); the server stops the current
  // storage operation cleanly when it does.
  enum class StorageEvent : uint8_t {
    kWalAppend = 0,
    kCheckpoint = 1,
    kWalTruncate = 2,
  };
  using StorageEventHook = std::function<void(StorageEvent event, size_t offset)>;

  // Called whenever a transaction commits at this site (local commits and
  // remote propagated commits alike), in this site's commit order.
  using CommitObserver = std::function<void(SiteId site, const TxRecord& record)>;

  WalterServer(Simulator* sim, Network* net, Options options, ContainerDirectory* directory);

  ~WalterServer();

  SiteId site() const { return options_.site; }
  const VectorTimestamp& committed_vts() const { return committed_vts_; }
  const VectorTimestamp& got_vts() const { return got_vts_; }
  uint64_t curr_seqno() const { return curr_seqno_; }
  Store& store() { return store_; }
  Disk& disk() { return disk_; }
  const Options& options() const { return options_; }
  // Currently held slow-commit locks / server-side transaction buffers (leak
  // detectors in chaos tests assert both drain after heal).
  size_t lock_count() const { return locks_.size(); }
  size_t active_tx_count() const { return active_.size(); }
  // Live visibility watermarks / parked lock waiters (same leak-canary role as
  // lock_count(): both must drain to zero once traffic stops and heals settle).
  size_t watermark_count() const { return store_.watermark_count(); }
  size_t lock_waiter_count() const { return lock_waiters_.size(); }
  // Parked reads / gap-parked commits / admitted-unanswered ops (same leak-
  // canary role: all must drain to zero once traffic stops and heals settle).
  size_t parked_read_count() const { return parked_reads_.size(); }
  size_t gap_commit_waiter_count() const { return gap_commit_waiters_.size(); }
  size_t admitted_inflight() const { return admitted_inflight_; }
  // Clock-held prepare votes (drains by timer; same leak-canary role) and the
  // server's clock model (tests use InjectStep to step the clock backwards).
  size_t held_prepare_count() const { return held_prepares_.size(); }
  ClockModel& clock() { return clock_; }
  // Retained (not yet globally visible) own commit by sequence number, or
  // nullptr. After a restore this covers every own record the replacement
  // committed silently, letting a harness recover records no observer saw.
  const TxRecord* RetainedLocalCommit(uint64_t seqno) const {
    auto it = local_commits_.find(seqno);
    return it == local_commits_.end() ? nullptr : &it->second.record;
  }

  void SetCommitObserver(CommitObserver observer) { observer_ = std::move(observer); }
  void SetStorageEventHook(StorageEventHook hook) { storage_hook_ = std::move(hook); }
  // Preferred-site lease check (Section 5.1): writes to containers whose
  // preferred site is here are rejected when the lease is not held.
  void SetLeaseChecker(std::function<bool(ContainerId)> checker) {
    lease_checker_ = std::move(checker);
  }

  // Durability/visibility watermarks for this site's own transactions.
  uint64_t ds_durable_through() const { return ds_durable_through_; }
  uint64_t globally_visible_through() const { return visible_through_; }
  // Logical WAL offset of the flush-confirmed prefix. The gap up to
  // wal().base() + wal().size() is in flight: lost on a crash, except what a
  // torn write exposes. The crash fuzzer reads this at each storage event to
  // size its torn-tail sweep.
  size_t durable_wal_bytes() const { return durable_wal_bytes_; }

  // Failure handling ---------------------------------------------------------
  // What survives a crash: the checkpoint plus the durably flushed WAL prefix.
  struct DurableImage {
    std::string checkpoint;
    std::string wal_bytes;
    size_t wal_base = 0;
  };

  // Takes a checkpoint (Section 6): object state + GotVTS + still-replicating
  // local transactions; allows WAL prefix truncation afterwards.
  void Checkpoint();

  // Simulates a server crash: endpoint down, volatile state untouched but
  // unreachable. The durable image can seed a replacement server.
  void Crash();
  bool crashed() const { return crashed_; }
  DurableImage TakeDurableImage() const;

  // The durable image as a faulty device would present it: consumes faults
  // armed on this server's Disk (see DiskFaults). A torn tail appends a prefix
  // of the unflushed WAL bytes — fsynced bytes are never torn — while bit rot
  // and checkpoint rot damage the durable contents themselves. Identical to
  // TakeDurableImage() when no faults are armed.
  DurableImage TakeFaultyImage();

  // Rebuilds state from a durable image (replacement server, Section 5.7).
  // Must be called before the server processes any request.
  void Restore(const DurableImage& image);

  // Aggressive site-failure recovery (Section 5.7): discard replicated data of
  // failed site `s` beyond `survive_through` (its last surviving seqno).
  void DiscardNonSurviving(SiteId s, uint64_t survive_through);

  // The self-facing counterpart: this site learns (after a restart, or after
  // being isolated) that the survivors removed it with the given surviving
  // prefix. Own commits beyond it are dropped, the sequence number rewinds,
  // and the watermarks roll back so reused seqnos replicate normally.
  void TruncateOwnLog(uint64_t survive_through);

  // Recovery-coordination support (Section 5.7): extract this site's copies of
  // `origin`'s transactions in [from, to] from the WAL, so survivors can fill
  // each other's gaps when the origin site is gone.
  std::vector<TxRecord> CollectRecords(SiteId origin, uint64_t from, uint64_t to) const;
  // Feeds records into the normal remote-apply path (guards still apply).
  void InjectRemoteRecords(SiteId origin, std::vector<TxRecord> records);
  // Declares `origin`'s prefix durable by configuration fiat (the surviving
  // prefix of a removed site), unblocking remote commit of those transactions.
  void SetDurableKnown(SiteId origin, uint64_t through);

  // Membership gating (Section 5.7): while `s` is removed from the
  // configuration, its stale propagation batches, 2PC prepares and durability
  // announcements are rejected here, so a removed-but-alive site that has not
  // yet learned its removal cannot resurrect discarded transactions. The
  // configuration service drives this from RemoveSite / ReintegrateSite.
  void SetSiteActive(SiteId s, bool active);
  bool IsSiteActive(SiteId s) const { return site_active_[s]; }

  // Maintenance ---------------------------------------------------------------
  // Folds object histories below the current global stability frontier (the
  // entry-wise minimum everyone has committed, i.e. this site's GotVTS floor).
  size_t GarbageCollect(const VectorTimestamp& stable);

  // GC / checkpoint driving (the stability-frontier subsystem) ---------------
  // Per-origin seqnos durably logged AND applied here. Rollback-proof: a crash
  // followed by Restore replays the durable WAL, so the restored watermarks
  // never fall below what was announced. The frontier is derived from this,
  // not from the volatile GotVTS.
  const VectorTimestamp& durable_applied() const { return durable_applied_; }

  // This site's contribution to the stability frontier: the entry-wise min of
  // its committed and durably-applied state, optionally lowered to the oldest
  // local snapshot pin. The pointwise min of these floors across in-config
  // sites is causally closed, hence safe to fold histories at.
  VectorTimestamp StabilityFloor(bool include_pins = true) const;

  // Oldest live local snapshot (nullopt when none) — wired by the cluster to
  // this site's SnapshotPinRegistry.
  void SetPinFloorProvider(std::function<std::optional<VectorTimestamp>()> provider) {
    pin_floor_provider_ = std::move(provider);
  }

  // Folds histories at `frontier` (a coordinator-established stability
  // frontier). Returns entries folded; traces kGcRun.
  size_t DriveGc(const VectorTimestamp& frontier);

  // Checkpoint variant that truncates the WAL only up to what every in-config
  // site has durably applied (per-origin `wal_floors`), so resyncs and §5.7
  // gap-filling can still be served from the log. The no-arg Checkpoint()
  // keeps the original truncate-everything semantics for manual callers.
  void CheckpointRetaining(const VectorTimestamp& wal_floors);

  // Drops commit/abort dedup outcomes older than tx_outcome_retention whose
  // records are globally visible. Driven on the GC cadence.
  void AgeTxOutcomes();

  size_t retained_local_commits() const { return local_commits_.size(); }
  size_t retained_tx_outcomes() const {
    return committed_versions_.size() + aborted_tids_.size();
  }

  // Stats ----------------------------------------------------------------------
  struct Stats {
    uint64_t fast_commits = 0;
    uint64_t slow_commits = 0;
    uint64_t aborts = 0;
    uint64_t reads = 0;
    uint64_t remote_reads = 0;
    uint64_t remote_txns_applied = 0;
    uint64_t batches_sent = 0;
    uint64_t prepares_handled = 0;
    uint64_t batch_resends = 0;    // propagation batches retransmitted on timeout
    uint64_t prepare_retries = 0;  // 2PC prepare RPC retransmissions
    uint64_t commit_dedups = 0;    // retransmitted commits answered from history
    uint64_t op_dedups = 0;        // retransmitted buffering ops dropped by op_seq
    uint64_t gc_runs = 0;          // DriveGc invocations that reached the store
    uint64_t gc_folded_entries = 0;   // history entries folded by GC
    uint64_t gc_stale_reads = 0;      // snapshot reads refused below the frontier
    uint64_t wal_truncated_bytes = 0; // WAL bytes released by retention-aware checkpoints
    uint64_t recoveries = 0;              // Restore() invocations
    uint64_t recovery_replayed = 0;       // WAL tail records replayed by Restore
    uint64_t recovery_torn_tails = 0;     // restores that truncated a torn WAL tail
    uint64_t recovery_bad_checkpoints = 0;  // checkpoint images rejected by CRC
    uint64_t recovery_backfilled = 0;     // own records re-installed from peers
    // Early lock release / visibility watermarks.
    uint64_t decisions_sent = 0;          // commit decisions sent to participants
    uint64_t decisions_received = 0;      // commit decisions received
    uint64_t early_releases = 0;          // participant lock sets released at decision
    uint64_t watermarks_set = 0;          // per-object visibility watermarks installed
    uint64_t watermarks_cleared = 0;      // watermarks cleared by remote commit
    uint64_t watermark_read_waits = 0;    // reads parked on a watermark
    uint64_t reads_starved = 0;           // parked reads that exhausted read_park_budget
    uint64_t remote_reads_starved = 0;    // server-to-server reads that starved out
    uint64_t read_park_dedups = 0;        // retransmitted reads chained onto a live park
    uint64_t commit_gap_parks = 0;        // commits parked on a sibling-shard snapshot gap
    uint64_t commits_starved = 0;         // parked commits that exhausted read_park_budget
    // Admission control / backpressure (all stay 0 with admission off).
    uint64_t admit_rejects = 0;           // client ops shed with kOverloaded
    uint64_t admitted_inflight_peak = 0;  // high-water mark of admitted-unanswered ops
    uint64_t cpu_queue_peak = 0;          // high-water mark of the CPU queue at admission
    uint64_t lock_waits = 0;              // prepares/fast commits parked on a held lock
    uint64_t lock_wounds = 0;             // wound-wait victims aborted here
    uint64_t lock_wait_timeouts = 0;      // parked waiters that hit lock_wait_timeout
    uint64_t aborts_conflict = 0;         // abort breakdown: write-write conflict
    uint64_t aborts_wound = 0;            //   wound-wait victim
    uint64_t aborts_timeout = 0;          //   lock-wait timeout
    uint64_t stale_lock_queries = 0;      // kTxStatus probes for stale prepare locks
    uint64_t stale_watermark_queries = 0; // kTxStatus probes for stale watermarks
    // Clock-ordered commits / consistency modes (all stay 0 at defaults).
    uint64_t clock_commits = 0;           // slow commits stamped with a commit_ts
    uint64_t clock_holds = 0;             // prepare votes held until commit_ts
    uint64_t clock_fallbacks = 0;         // prepares answered classically (clock already past)
    uint64_t clock_rearms = 0;            // hold timers re-armed (clock stepped backwards)
    uint64_t clock_conflict_bypasses = 0; // snapshot-covered watermark conflicts allowed
    uint64_t ser_validations = 0;         // serializable commits with a validated read set
    uint64_t aborts_ser_validation = 0;   //   of which aborted on a stale read (write skew)
    uint64_t nmsi_reads_unparked = 0;     // NMSI reads served where PSI would have parked
  };
  const Stats& stats() const { return stats_; }

  // Dumps this site's counters into the shared registry ("server.*" names).
  void ExportMetrics(MetricsRegistry& metrics) const;

 private:
  // Server-side state of an executing transaction (its update buffer).
  struct ActiveTx {
    VectorTimestamp start_vts;
    std::vector<ObjectUpdate> updates;
    bool committing = false;
    uint64_t max_op_seq = 0;  // highest client op_seq buffered (retry dedup)
    SimTime last_touch = 0;   // for idle expiry (abandoned clients)
    // Per-transaction consistency level (docs/CONSISTENCY.md); kPsi from a
    // mode-unaware client.
    ConsistencyMode mode = ConsistencyMode::kPsi;
    // Serializable mode: the read set, validated and locked through commit
    // like the write set (filtered of written oids in DoCommit, kept sorted).
    std::vector<ObjectId> read_oids;
  };

  // A locally committed transaction, retained until globally visible.
  struct LocalCommit {
    TxRecord record;
    bool flushed = false;     // group-commit flush completed
    bool committed = false;   // CommittedVTS advanced past it
    bool ds_durable = false;
    bool want_durable = false;
    bool want_visible = false;
    uint32_t reply_port = 0;  // client endpoint for notifications
    SiteId reply_site = kNoSite;  // client's node when not this server's own
    std::function<void(ClientOpResponse)> respond;  // client reply, sent at commit
  };

  // Outbound replication state per destination site.
  struct DestState {
    uint64_t acked_through = 0;    // cumulative PROPAGATE-ACK
    uint64_t sent_through = 0;     // highest seqno included in a sent batch
    uint64_t visible_through = 0;  // cumulative VISIBLE ack (CommittedVTS[us] there)
    bool in_flight = false;
    SimTime last_batch_sent = 0;
    EventId resend_timer = 0;
    EventId batch_timer = 0;  // pending min-interval delayed batch
    uint32_t resend_attempts = 0;  // consecutive unacked resends (backoff)
  };

  // A remote transaction applied to the store but not yet committed here.
  struct PendingRemote {
    TxRecord record;
  };

  // In-flight slow commit at the coordinator.
  struct SlowCommitState {
    TxId tid = 0;
    ActiveTx tx;
    std::vector<SiteId> sites;  // preferred sites of the write-set
    std::vector<SiteId> yes_votes;  // remote sites holding locks for us
    size_t votes_pending = 0;
    bool any_no = false;
    bool finished = false;
    std::function<void(ClientOpResponse)> reply;
    bool want_durable = false;
    bool want_visible = false;
    uint32_t reply_port = 0;
    SiteId reply_site = kNoSite;
    // early_lock_release additions (all inert when the flag is off):
    AbortReason abort_reason = AbortReason::kConflict;  // first no-vote's reason
    uint64_t priority = 0;            // wound-wait age (commit entry time + 1)
    bool sequential = false;          // all-co-sited: acquire sites one at a time
    std::vector<SiteId> site_order;   // sequential mode: sites by smallest oid
    size_t next_site = 0;             // sequential mode: cursor into site_order
    // Lock-set partition by preferred site: the write set, plus (serializable
    // mode) the read set — read oids are validated and locked like writes but
    // never applied or watermarked.
    std::map<SiteId, std::vector<ObjectId>> by_site;
    // Clock-ordered path: the future timestamp stamped on WAN prepares
    // (coordinator's local clock units). 0 = classic immediate votes.
    int64_t commit_ts = 0;
  };

  // --- request plumbing ---
  void HandleClientOp(const Message& msg, RpcEndpoint::ReplyFn reply);
  void ProcessClientOp(const ClientOpRequest& req,
                       std::function<void(ClientOpResponse)> respond);
  // Handles a retransmitted commit: answers (or chains onto) the recorded /
  // in-flight outcome instead of double-applying. Returns true if handled.
  bool DedupRetransmittedCommit(const ClientOpRequest& req,
                                std::function<void(ClientOpResponse)>& respond);
  void DoRead(const ClientOpRequest& req, const VectorTimestamp& vts, const ActiveTx* tx,
              std::function<void(ClientOpResponse)> respond, uint32_t park_attempt = 0);
  // Next re-park delay for the park_attempt'th blocked retry of a read, or
  // nullopt once the accumulated wait exhausts read_park_budget (give up).
  std::optional<SimDuration> ReadParkDelay(uint32_t park_attempt) const;
  // Parks a blocked read: the reply closure is stored in parked_reads_ keyed
  // by (tid, op_seq) — so a retransmitted read (the park outlived the client's
  // RPC timeout) chains onto the live park instead of starting a second park
  // chain with a fresh starvation budget — and the retry timer re-enters
  // DoRead with the registry's current closure.
  void ParkRead(const ClientOpRequest& req, const VectorTimestamp& vts,
                std::function<void(ClientOpResponse)> respond, uint32_t park_attempt,
                SimDuration delay);
  // Admission-control gate (HandleClientOp, before the CPU charge). Returns
  // false after rejecting with kOverloaded; on admit, wraps `respond` with the
  // inflight-accounting token when limits are on.
  bool AdmitClientOp(const ClientOpRequest& req,
                     std::function<void(ClientOpResponse)>& respond);
  // True when `req` retransmits an op this server already holds state for (a
  // still-parked read, or a commit with an in-flight/parked/settled outcome):
  // the dedup machinery services it from that state, so the admission gate
  // must not bounce it — rejecting would fail a client whose original op
  // still occupies its admission slot.
  bool IsAdmittedRetransmission(const ClientOpRequest& req) const;
  void DoCommit(TxId tid, ActiveTx tx, bool want_durable, bool want_visible,
                uint32_t reply_port, SiteId reply_site,
                std::function<void(ClientOpResponse)> respond, uint32_t park_attempt = 0);

  // --- commit protocols ---
  void FastCommit(TxId tid, ActiveTx tx, bool want_durable, bool want_visible,
                  uint32_t reply_port, SiteId reply_site,
                  std::function<void(ClientOpResponse)> respond, SimTime deadline = 0);
  void SlowCommit(TxId tid, ActiveTx tx, std::vector<SiteId> sites, bool want_durable,
                  bool want_visible, uint32_t reply_port, SiteId reply_site,
                  std::function<void(ClientOpResponse)> respond);
  void FinishSlowCommit(std::shared_ptr<SlowCommitState> state);
  // Shared local-commit tail: assign seqno, apply, group-commit flush.
  void CommitLocally(TxId tid, const ActiveTx& tx, bool want_durable, bool want_visible,
                     uint32_t reply_port, SiteId reply_site,
                     std::function<void(ClientOpResponse)> respond);
  void OnLocalFlushed(uint64_t seqno);
  void AdvanceLocalCommits();

  bool PrepareLocal(TxId tid, const std::vector<ObjectId>& oids, const VectorTimestamp& vts,
                    SiteId coordinator, const std::vector<ObjectId>& read_oids = {});
  void HandlePrepare(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleAbort2pc(const Message& msg);
  void HandleTxStatus(const Message& msg, RpcEndpoint::ReplyFn reply);
  void LockAll(TxId tid, const std::vector<ObjectId>& oids, SiteId coordinator,
               uint64_t priority = 0, const std::vector<ObjectId>& read_oids = {});
  void ReleaseLocks(TxId tid);
  // 2PC termination: queries coordinators of stale prepare locks so an orphaned
  // lock (coordinator crashed mid-2PC) is eventually released. With early
  // release on, also probes stale watermarks (decision origin crashed before
  // the record became durable) and drops the ones the origin reports aborted.
  void SweepStaleLocks();
  // Stale-watermark half of the sweep (see SweepStaleLocks); separate so the
  // common flag-off path pays one has_watermarks() check only.
  void SweepStaleWatermarks();
  bool WatermarkStillLive(TxId tid) const;

  // --- early lock release (all no-ops / unreachable when the flag is off) ---
  // Classifies a prepare-style lock acquisition: grant, permanent conflict, or
  // blocked-by-a-live-holder (wait). Runs the wound-wait pass before answering
  // kWait: strictly younger holders whose 2PC this server coordinates are
  // wounded. Does not itself take locks.
  enum class PrepareCheck : uint8_t { kYes, kNo, kWait };
  PrepareCheck CheckPrepare(TxId tid, const std::vector<ObjectId>& oids,
                            const VectorTimestamp& vts, uint64_t priority, TxId* blocker);
  // Marks a coordinator-local slow commit as wound-aborted and frees its locks;
  // its outstanding vote drives the normal abort path.
  void WoundLocal(const std::shared_ptr<SlowCommitState>& victim, TxId winner);
  // Coordinator-side vote arrival, shared by the legacy parallel path, the
  // flag-on parallel path and the sequential (ordered, co-sited) path.
  void OnPrepareVote(const std::shared_ptr<SlowCommitState>& state, SiteId voter, bool yes,
                     AbortReason reason);
  // Sequential mode: issues the next site's prepare (or finishes).
  void AdvancePrepares(const std::shared_ptr<SlowCommitState>& state);
  // Coordinator's own vote (local lock acquisition), possibly parked.
  void StartLocalVote(const std::shared_ptr<SlowCommitState>& state,
                      const std::vector<ObjectId>& oids, SimTime deadline = 0);
  // Participant-side prepare answer with parking support; deadline 0 = fresh.
  // clock_fallback marks a clock-stamped prepare answered classically (the
  // local clock had already passed its commit_ts on arrival).
  void AnswerPrepare(PrepareRequest req, SiteId coordinator, RpcEndpoint::ReplyFn reply,
                     SimTime deadline, bool clock_fallback = false);
  void ReplyPrepareVote(TxId tid, SiteId coordinator, const RpcEndpoint::ReplyFn& reply,
                        bool yes, AbortReason reason, bool clock_fallback = false);
  // Clock-ordered path (all unreachable when clock_commit is off): queue a
  // clock-stamped prepare until the local clock passes its commit_ts, then
  // evaluate held prepares in (commit_ts, coordinator, tid) order.
  void HoldPrepare(PrepareRequest req, SiteId coordinator, RpcEndpoint::ReplyFn reply);
  void ArmClockRelease();
  void ReleaseDueHeldPrepares();
  void HandleCommitDecision(const Message& msg);
  // Lock-waiter machinery: park/resume parked prepares and fast commits.
  void ParkLockWaiter(TxId tid, uint64_t priority, std::vector<ObjectId> oids,
                      SimTime deadline, std::function<void(bool timed_out)> resume);
  void ResumeLockWaiter(TxId tid, bool timed_out);
  void WakeLockWaiters();

  // --- propagation ---
  void MaybeSendBatch(SiteId dest);
  void MaybeSendAllBatches();
  void SendPrepare(SiteId dest, PrepareRequest prep, std::shared_ptr<SlowCommitState> state,
                   size_t attempt);
  void HandleResync(const Message& msg);
  void SendResync(SiteId peer, bool is_reply);
  // Own-record backfill (corruption-tolerant recovery): when a resync shows a
  // peer holding own records the durable log lost (bit rot violated the fsync
  // contract), the seqnos are reserved immediately — so new commits never
  // reuse them — and the records are fetched back and re-installed in order.
  void HandleFetchRecords(const Message& msg, RpcEndpoint::ReplyFn reply);
  void RequestOwnRecordBackfill(SiteId peer, uint64_t through);
  void InstallOwnRecords(std::vector<TxRecord> records, SiteId peer);
  void HandlePropagate(const Message& msg);
  void ApplyRemoteReady(SiteId origin);
  void DrainAllPending();
  void HandlePropagateAck(const Message& msg);
  void HandleDsDurable(const Message& msg);
  void HandleVisibleAck(const Message& msg);
  void UpdateDsDurable();
  void TryCommitRemotes();
  void UpdateGloballyVisible();
  void NotifyClient(SiteId site, uint32_t port, uint32_t type, TxId tid);
  void StartGossip();
  void SweepIdleTxs();
  // Stamps a settled commit/abort outcome for time-based aging.
  void RecordOutcome(TxId tid);
  // frontier_gossip mode: folds local histories at the min of the peers' acked
  // stability floors (runs on the gossip tick).
  void GossipFrontierGc();
  // Shared checkpoint body (Checkpoint / CheckpointRetaining).
  std::string BuildCheckpointImage() const;

  // --- remote reads ---
  void HandleRemoteRead(const Message& msg, RpcEndpoint::ReplyFn reply);
  // Body of HandleRemoteRead past the CPU charge, re-entered by the watermark
  // read-park (the answer waits until the decided version commits here).
  void AnswerRemoteRead(RemoteReadRequest req, RpcEndpoint::ReplyFn reply,
                        uint32_t park_attempt = 0);

  bool IsDsDurableQuorum(const TxRecord& record) const;
  SimDuration Jittered(SimDuration base);
  SimDuration CostFor(const ClientOpRequest& req) const;
  VectorTimestamp SnapshotNow() const { return committed_vts_; }

  // Wraps a callback scheduled on the simulator so it becomes a no-op once
  // this server has been destroyed (replacement after a crash).
  template <typename F>
  auto Guard(F fn) {
    return [alive = alive_, fn = std::move(fn)]() mutable {
      if (*alive) {
        fn();
      }
    };
  }

  Simulator* sim_;
  Network* net_;
  Options options_;
  ContainerDirectory* directory_;
  RpcEndpoint endpoint_;
  Resource cpu_;
  Disk disk_;
  Store store_;
  // Bounded-skew local clock (ClockModel seam): pure function of simulated
  // time, so it exists — inert — even with clock_commit off.
  ClockModel clock_;

  // Figure 9 state.
  uint64_t curr_seqno_ = 0;
  VectorTimestamp committed_vts_;
  VectorTimestamp got_vts_;
  // Per-origin durably-logged-and-applied watermark (see durable_applied()).
  VectorTimestamp durable_applied_;

  std::unordered_map<TxId, ActiveTx> active_;
  std::map<uint64_t, LocalCommit> local_commits_;         // own seqno -> commit
  std::unordered_map<TxId, std::shared_ptr<SlowCommitState>> slow_commits_;

  // Locks (slow commit): object -> owning tid, plus reverse index with the
  // coordinator and acquisition time for the termination protocol.
  struct LockOwner {
    std::vector<ObjectId> oids;
    SiteId coordinator = kNoSite;
    SimTime acquired = 0;
    bool query_in_flight = false;
    uint64_t priority = 0;  // holder's wound-wait age (0 = pre-watermark protocol)
    // Serializable mode: the transaction's read set (sorted). Oids in here are
    // locked like the rest but are never written, so the commit decision must
    // not install visibility watermarks for them.
    std::vector<ObjectId> read_oids;
  };
  std::unordered_map<ObjectId, TxId> locks_;
  std::unordered_map<TxId, LockOwner> lock_owners_;
  // Parked lock waiters (early_lock_release): a prepare or fast commit blocked
  // on a held lock waits here until the holder resolves or the wait times out.
  // All maps stay empty with the flag off — ReleaseLocks' wake hook is gated on
  // that, so the legacy event sequence is untouched.
  struct LockWaiter {
    TxId tid = 0;
    uint64_t priority = 0;
    std::vector<ObjectId> oids;  // the full set it needs (re-checked on resume)
    SimTime deadline = 0;        // absolute; carried across re-parks
    EventId timeout_event = 0;
    std::function<void(bool timed_out)> resume;
  };
  std::unordered_map<TxId, LockWaiter> lock_waiters_;
  std::unordered_map<ObjectId, std::vector<TxId>> lock_waitlist_;
  // Clock-ordered path: prepares held until the local clock passes their
  // commit_ts, evaluated in key order. Empty whenever clock_commit is off.
  struct HeldPrepare {
    PrepareRequest req;
    SiteId coordinator = kNoSite;
    RpcEndpoint::ReplyFn reply;
  };
  std::map<std::tuple<int64_t, SiteId, TxId>, HeldPrepare> held_prepares_;
  // Release-timer bookkeeping: at most one live timer matters (the newest,
  // earliest one); stale generations fire as no-ops.
  uint64_t clock_timer_gen_ = 0;
  SimTime clock_timer_at_ = -1;  // -1 = no timer armed
  std::vector<TxId> pending_wakes_;  // tids to resume after the current event
  bool wake_scheduled_ = false;
  // A fast commit parked on a held lock: its buffered transaction and reply
  // plumbing, keyed by tid so a retransmitted commit can chain onto it.
  struct ParkedCommit {
    ActiveTx tx;
    bool want_durable = false;
    bool want_visible = false;
    uint32_t reply_port = 0;
    SiteId reply_site = kNoSite;
    std::function<void(ClientOpResponse)> respond;
  };
  std::unordered_map<TxId, ParkedCommit> parked_commits_;
  // Reply closures of reads parked on a watermark or sibling-shard snapshot
  // gap, keyed by (tid, op_seq). An entry exists exactly while the read is
  // parked; retransmissions chain onto it (see ParkRead).
  std::map<std::pair<TxId, uint64_t>, std::function<void(ClientOpResponse)>> parked_reads_;
  // Reply closures of commits parked on a sibling-shard snapshot gap, keyed by
  // tid. The buffered transaction itself rides the retry timer; this registry
  // exists so DedupRetransmittedCommit can chain a retransmitted commit onto
  // the parked one instead of refusing it as lost state (or, worse,
  // re-buffering and double-committing a piggybacked update).
  std::unordered_map<TxId, std::function<void(ClientOpResponse)>> gap_commit_waiters_;
  // Admitted-but-unanswered client ops (admission control's inflight gauge;
  // stays 0 with admission off).
  size_t admitted_inflight_ = 0;
  // When each watermark set was installed / which have a kTxStatus probe in
  // flight (the stale-watermark sweep's bookkeeping).
  std::unordered_map<TxId, SimTime> watermark_installed_;
  std::unordered_set<TxId> watermark_query_in_flight_;
  // Local commits by tid, kept while the record is retained (for kTxStatus).
  std::unordered_map<TxId, uint64_t> committed_tids_;
  // All-time commit outcomes by tid, kept past global visibility so a late
  // commit retransmission is answered instead of double-applied. (In the
  // simulation this grows with the run; a production server would age entries
  // out after the client lease expires.)
  std::unordered_map<TxId, Version> committed_versions_;
  std::unordered_set<TxId> aborted_tids_;
  // Outcomes in settle order with their settle time; AgeTxOutcomes() drains the
  // front once entries pass tx_outcome_retention and are globally visible.
  std::deque<std::pair<SimTime, TxId>> outcome_log_;

  // Inbound replication.
  std::vector<std::map<uint64_t, TxRecord>> pending_in_;      // per origin: buffered
  std::vector<std::map<uint64_t, PendingRemote>> uncommitted_remote_;  // applied, not committed
  std::vector<uint64_t> durable_known_;  // per origin: ds-durable-through
  std::vector<bool> site_active_;        // per site: in the current configuration

  // Outbound replication.
  std::vector<DestState> dests_;
  // The serialized PROPAGATE payload for seqno range [from, to], shared across
  // destinations and resends (the records of a committed seqno never change;
  // only TruncateOwnLog invalidates by reusing seqnos).
  struct BatchPayloadCache {
    uint64_t from = 0;
    uint64_t to = 0;
    Payload payload;
  };
  BatchPayloadCache batch_cache_;
  uint64_t ds_durable_through_ = 0;
  uint64_t visible_through_ = 0;

  size_t durable_wal_bytes_ = 0;  // flushed WAL prefix (survives crashes)
  std::string checkpoint_image_;
  size_t checkpoint_wal_base_ = 0;

  // Highest own seqno known to exist cluster-wide; > committed_vts_[site] only
  // while a backfill is in flight (the gap blocks AdvanceLocalCommits until
  // the lost records are re-installed).
  uint64_t backfill_target_ = 0;

  CommitObserver observer_;
  StorageEventHook storage_hook_;
  std::function<bool(ContainerId)> lease_checker_;
  std::function<std::optional<VectorTimestamp>()> pin_floor_provider_;
  // frontier_gossip mode: latest stability floor acked by each peer (empty =
  // not heard yet, contributes zero and blocks folding).
  std::vector<VectorTimestamp> peer_floors_;
  bool crashed_ = false;
  Stats stats_;
  std::shared_ptr<bool> alive_;
};

}  // namespace walter

#endif  // SRC_CORE_SERVER_H_
