// Server performance model: CPU service times charged per request type.
//
// The paper's throughput numbers are bound by RPC processing and the commit
// path's contended lock (Sections 8.2-8.3). We reproduce that with a single
// FIFO CPU resource per server and calibrated service times. Two presets
// mirror the paper's two measurement environments:
//
//  - PrivateCluster(): calibrated to Figure 16 (single-server read 72 Ktps,
//    write 33.5 Ktps on the private cluster).
//  - Ec2(): EC2 instances run at roughly 55% of the private machines for this
//    workload (Section 8.3's note on Figure 17 vs Figure 16), with remote
//    batch-apply costs calibrated so 4-site write throughput lands near the
//    paper's 52 Ktps.
#ifndef SRC_CORE_PERF_MODEL_H_
#define SRC_CORE_PERF_MODEL_H_

#include "src/sim/time.h"

namespace walter {

struct PerfModel {
  // Per-RPC CPU costs at the server.
  SimDuration read_op = Micros(22);       // read / setRead / setReadId
  SimDuration buffer_op = Micros(10);     // write / setAdd / setDel (buffering)
  SimDuration start_op = Micros(5);       // startTx (snapshot assignment)
  SimDuration commit_op = Micros(40);     // commit: conflict check + log + apply
  SimDuration prepare_op = Micros(22);    // slow-commit prepare vote
  // Applying one remote transaction from a propagation batch (amortized;
  // batching makes this much cheaper than a local commit).
  SimDuration remote_apply = Micros(7);
  // Multiplicative service-time jitter: cost *= U[1, 1+jitter].
  double jitter = 0.3;
  // CPU parallelism (effective servers of the FIFO queue).
  int cpu_capacity = 1;

  static PerfModel Ec2() { return PerfModel{}; }

  static PerfModel PrivateCluster() {
    PerfModel m;
    m.read_op = Micros(12);     // ~72 Ktps single-server reads (Figure 16)
    m.buffer_op = Micros(6);
    m.start_op = Micros(3);
    m.commit_op = Micros(20);   // ~33.5 Ktps single-server writes (Figure 16)
    m.prepare_op = Micros(12);
    m.remote_apply = Micros(4);
    return m;
  }

  // No CPU costs at all: tests of pure protocol logic use this so they don't
  // depend on the performance model.
  static PerfModel Instant() {
    PerfModel m;
    m.read_op = m.buffer_op = m.start_op = m.commit_op = m.prepare_op = m.remote_apply = 0;
    m.jitter = 0;
    return m;
  }
};

}  // namespace walter

#endif  // SRC_CORE_PERF_MODEL_H_
