// Cluster: assembles a complete simulated Walter deployment — simulator,
// network with a topology, one WalterServer per site, a container directory,
// and clients. This is the entry point examples, tests and benchmarks use.
#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/config/shard_map.h"
#include "src/core/client.h"
#include "src/core/container.h"
#include "src/core/gc_coordinator.h"
#include "src/core/server.h"
#include "src/core/snapshot_pins.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/runtime/executor.h"
#include "src/sim/simulator.h"

namespace walter {

struct ClusterOptions {
  size_t num_sites = 4;
  // Intra-site sharding: co-located servers per site (empty = 1 everywhere,
  // the paper's one-server-per-site model). When any entry exceeds 1 the
  // cluster runs in sharded mode: one WalterServer, one network node and one
  // CPU/disk Resource per shard, containers hashed to shards by the shard
  // map, and clients routing per-container. Must be empty or num_sites long.
  std::vector<size_t> servers_per_site;
  uint64_t seed = 1;
  // Early lock release (visibility watermarks + ordered/wound-wait lock
  // acquisition): 2PC participants free their prepare locks at the commit
  // decision instead of holding them until the committed record propagates
  // back. Default on; the env var WALTER_EARLY_LOCK_RELEASE=0 forces it off
  // (e.g. to reproduce pre-watermark figure output byte-for-byte).
  bool early_lock_release = true;
  // Clock-ordered slow commit (docs/CONSISTENCY.md, docs/PROTOCOL.md): the
  // coordinator stamps cross-site prepares with a future commit timestamp and
  // participants hold their vote until their local ClockModel passes it,
  // ordering conflicting WAN commits by (commit_ts, coordinator, tid) instead
  // of abort/retry. Default off — flag-off runs are byte-identical to a
  // clock-unaware build. The env var WALTER_CLOCK_COMMIT=1 forces it on and
  // =0 forces it off (mirroring WALTER_EARLY_LOCK_RELEASE's escape hatch).
  // Per-site clock behavior (skew bound, drift, seed) comes from
  // server.clock; server.clock_max_owd is derived from the topology's worst
  // one-way delay unless set explicitly.
  bool clock_commit = false;
  // Per-server options; site/num_sites are filled in per server.
  WalterServer::Options server;
  // Default RPC robustness options for clients created via AddClient.
  WalterClient::Options client;
  // Network topology; by default the paper's EC2 sites (truncated to num_sites).
  std::optional<Topology> topology;
  // Stability-frontier GC/checkpointing. Active (like gossip) only for
  // multi-site clusters with a nonzero gossip_interval — tests that rely on
  // RunUntilIdle quiescence disable both together — and not in the servers'
  // frontier_gossip mode, where each site folds from acked floors instead.
  GcOptions gc;
  // Threaded runtime (the wall-clock side of the runtime seam). workers = 0
  // (default) keeps everything on the shared deterministic simulator —
  // byte-identical to the pre-seam behavior. workers > 0 gives each server a
  // worker executor (round-robin), puts clients on worker executors too, and
  // switches the network to mailbox dispatch; drive it with StartThreads /
  // PumpControl* / StopThreads. Threaded mode runs the GC coordinator stood
  // down (its frontier probes assume simulator atomicity) and pins snapshots
  // at the zero floor, which is safe (GC never folds) just conservative.
  struct RuntimeOptions {
    size_t workers = 0;
    double time_scale = 1.0;  // virtual microseconds per real microsecond
  };
  RuntimeOptions runtime;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});
  // Stops worker threads (threaded mode) before members are torn down.
  ~Cluster();

  // Logical (geographic) sites. Equal to num_servers() unless sharded.
  size_t num_sites() const { return directories_.size(); }
  // Total servers across all sites; server ids index them densely, site 0's
  // shards first. With one server per site, server ids coincide with site ids.
  size_t num_servers() const { return servers_.size(); }
  const ShardMap& shard_map() const { return shard_map_; }
  SiteId site_of(SiteId server) const { return shard_map_.SiteOf(server); }
  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  // Each site caches container metadata independently (Section 5.1); the
  // site's co-located shards share its directory.
  ContainerDirectory& directory(SiteId s) { return *directories_[s]; }
  // By global server id (== site id when unsharded).
  WalterServer& server(SiteId s) { return *servers_[s]; }
  // Shard `shard` of site `site`.
  WalterServer& server_at(SiteId site, size_t shard) {
    return *servers_[shard_map_.ServerAt(site, shard)];
  }

  // Administrator convenience: installs container metadata at every site at
  // once (tests that need divergence write per-site directories directly).
  void UpsertContainerEverywhere(const ContainerInfo& info);

  // Creates a client at a site (each gets a unique port).
  WalterClient* AddClient(SiteId site);
  // Same, with per-client retry/timeout options overriding ClusterOptions.
  WalterClient* AddClient(SiteId site, WalterClient::Options options);

  // Replaces a crashed server with a fresh one restored from its durable image
  // (the replacement-server path of Section 5.7). The old server object is
  // destroyed; references to it become invalid. `s` is a global server id, so
  // under sharding each shard of a site is replaced (re-homed) independently.
  WalterServer& ReplaceServer(SiteId s);

  // Installs a commit observer on every server (e.g. a PsiChecker hook).
  void ObserveCommits(WalterServer::CommitObserver observer);

  // The stability-frontier GC/checkpoint driver; nullptr when disabled (single
  // site, gossip off, gc.enabled false, or frontier_gossip mode).
  GcCoordinator* gc() { return gc_.get(); }
  // Per-site snapshot-pin registry (owned here: it must survive ReplaceServer).
  SnapshotPinRegistry& pin_registry(SiteId s) { return *pin_registries_[s]; }

  // Dumps every server's counters plus the transport counters into the shared
  // registry (benches render the registry into their --json output).
  void ExportMetrics(MetricsRegistry& metrics) const;

  // Runs virtual time forward by `d`. Sim mode only.
  void RunFor(SimDuration d) { sim_.RunUntil(sim_.Now() + d); }
  // Runs until no events remain (all protocols quiesce; gossip must be off).
  void RunUntilIdle() { sim_.Run(); }

  // Threaded runtime -------------------------------------------------------
  bool threaded() const { return runtime_ != nullptr; }
  ThreadedRuntime* runtime() { return runtime_.get(); }
  // The executor owning server s (nullptr in sim mode).
  Executor* server_executor(SiteId s) {
    return runtime_ != nullptr ? server_execs_[s] : nullptr;
  }
  // The executor a client was assigned to at AddClient time.
  Executor* client_executor(const WalterClient* c) {
    auto it = client_execs_.find(c);
    return it != client_execs_.end() ? it->second : nullptr;
  }
  // Freezes shared directories and spawns the worker threads. Build the whole
  // deployment (containers, clients, observers) before calling this.
  void StartThreads();
  // Joins worker threads; the cluster is single-threaded again afterwards
  // (safe to read server state, export metrics, run checkers).
  void StopThreads();
  // Pumps the control executor (timers + mailbox of control-hosted state) on
  // the calling thread. Virtual durations, scaled by runtime.time_scale.
  void PumpControlFor(SimDuration d) { runtime_->control().PumpFor(d); }
  bool PumpControlUntil(const std::function<bool()>& pred, SimDuration max_wait) {
    return runtime_->control().PumpUntil(pred, max_wait);
  }
  // Runs fn on the executor owning server s and waits for it — the safe way
  // for a control thread to poke per-server state (crash, probes) mid-run.
  void RunOnServer(SiteId s, const std::function<void()>& fn);
  // Control-thread-safe snapshot of a server's CommittedVTS (probes cross the
  // owning executor via RunOnServer).
  VectorTimestamp SnapshotCommittedVts(SiteId s);

 private:
  // Attaches a server to its site's pin registry (ctor and ReplaceServer).
  void WirePinFloor(SiteId s);

  ClusterOptions options_;
  ShardMap shard_map_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  // Declared before servers/clients so worker simulators outlive the state
  // scheduled on them; ~Cluster stops the threads before any of this unwinds.
  std::unique_ptr<ThreadedRuntime> runtime_;
  std::vector<Executor*> server_execs_;  // per global server id; threaded only
  std::unordered_map<const WalterClient*, Executor*> client_execs_;
  // (site << 32 | port) -> owner, for the network resolver. Built by
  // AddClient before StartThreads; read-only (lock-free) once threads run.
  std::unordered_map<uint64_t, Executor*> client_execs_by_addr_;
  std::vector<std::unique_ptr<ContainerDirectory>> directories_;
  std::vector<std::unique_ptr<SnapshotPinRegistry>> pin_registries_;
  std::vector<std::unique_ptr<WalterServer>> servers_;
  std::vector<std::unique_ptr<WalterClient>> clients_;
  std::unique_ptr<GcCoordinator> gc_;
  uint32_t next_client_port_ = kClientPortBase;
  WalterServer::CommitObserver observer_;  // reapplied to replacement servers
};

}  // namespace walter

#endif  // SRC_CORE_CLUSTER_H_
