// Cluster: assembles a complete simulated Walter deployment — simulator,
// network with a topology, one WalterServer per site, a container directory,
// and clients. This is the entry point examples, tests and benchmarks use.
#ifndef SRC_CORE_CLUSTER_H_
#define SRC_CORE_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/container.h"
#include "src/core/gc_coordinator.h"
#include "src/core/server.h"
#include "src/core/snapshot_pins.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace walter {

struct ClusterOptions {
  size_t num_sites = 4;
  uint64_t seed = 1;
  // Per-server options; site/num_sites are filled in per server.
  WalterServer::Options server;
  // Default RPC robustness options for clients created via AddClient.
  WalterClient::Options client;
  // Network topology; by default the paper's EC2 sites (truncated to num_sites).
  std::optional<Topology> topology;
  // Stability-frontier GC/checkpointing. Active (like gossip) only for
  // multi-site clusters with a nonzero gossip_interval — tests that rely on
  // RunUntilIdle quiescence disable both together — and not in the servers'
  // frontier_gossip mode, where each site folds from acked floors instead.
  GcOptions gc;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  size_t num_sites() const { return servers_.size(); }
  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  // Each site caches container metadata independently (Section 5.1).
  ContainerDirectory& directory(SiteId s) { return *directories_[s]; }
  WalterServer& server(SiteId s) { return *servers_[s]; }

  // Administrator convenience: installs container metadata at every site at
  // once (tests that need divergence write per-site directories directly).
  void UpsertContainerEverywhere(const ContainerInfo& info);

  // Creates a client at a site (each gets a unique port).
  WalterClient* AddClient(SiteId site);
  // Same, with per-client retry/timeout options overriding ClusterOptions.
  WalterClient* AddClient(SiteId site, WalterClient::Options options);

  // Replaces a crashed server with a fresh one restored from its durable image
  // (the replacement-server path of Section 5.7). The old server object is
  // destroyed; references to it become invalid.
  WalterServer& ReplaceServer(SiteId s);

  // Installs a commit observer on every server (e.g. a PsiChecker hook).
  void ObserveCommits(WalterServer::CommitObserver observer);

  // The stability-frontier GC/checkpoint driver; nullptr when disabled (single
  // site, gossip off, gc.enabled false, or frontier_gossip mode).
  GcCoordinator* gc() { return gc_.get(); }
  // Per-site snapshot-pin registry (owned here: it must survive ReplaceServer).
  SnapshotPinRegistry& pin_registry(SiteId s) { return *pin_registries_[s]; }

  // Dumps every server's counters plus the transport counters into the shared
  // registry (benches render the registry into their --json output).
  void ExportMetrics(MetricsRegistry& metrics) const;

  // Runs virtual time forward by `d`.
  void RunFor(SimDuration d) { sim_.RunUntil(sim_.Now() + d); }
  // Runs until no events remain (all protocols quiesce; gossip must be off).
  void RunUntilIdle() { sim_.Run(); }

 private:
  // Attaches a server to its site's pin registry (ctor and ReplaceServer).
  void WirePinFloor(SiteId s);

  ClusterOptions options_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<ContainerDirectory>> directories_;
  std::vector<std::unique_ptr<SnapshotPinRegistry>> pin_registries_;
  std::vector<std::unique_ptr<WalterServer>> servers_;
  std::vector<std::unique_ptr<WalterClient>> clients_;
  std::unique_ptr<GcCoordinator> gc_;
  uint32_t next_client_port_ = kClientPortBase;
  WalterServer::CommitObserver observer_;  // reapplied to replacement servers
};

}  // namespace walter

#endif  // SRC_CORE_CLUSTER_H_
