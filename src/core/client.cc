#include "src/core/client.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace walter {

WalterClient::WalterClient(Network* net, SiteId site, uint32_t port)
    : WalterClient(net, site, port, Options{}) {}

WalterClient::WalterClient(Network* net, SiteId site, uint32_t port, Options options,
                           Simulator* timer_sim)
    : endpoint_(net, Address{site, port}, timer_sim),
      site_(site),
      options_(options),
      uid_((static_cast<uint64_t>(site) << 20) | port) {
  endpoint_.Handle(kDurableNotify, [this](const Message& m, RpcEndpoint::ReplyFn) {
    TxNotify n = TxNotify::Deserialize(m.payload);
    auto it = durable_watch_.find(n.tid);
    if (it != durable_watch_.end()) {
      auto cb = std::move(it->second);
      durable_watch_.erase(it);
      cb();
    }
  });
  endpoint_.Handle(kVisibleNotify, [this](const Message& m, RpcEndpoint::ReplyFn) {
    TxNotify n = TxNotify::Deserialize(m.payload);
    auto it = visible_watch_.find(n.tid);
    if (it != visible_watch_.end()) {
      auto cb = std::move(it->second);
      visible_watch_.erase(it);
      cb();
    }
  });
}

TxId WalterClient::NextTid() { return (uid_ << 32) | next_tx_++; }

ObjectId WalterClient::NewId(ContainerId container) {
  return ObjectId{container, (uid_ << 32) | next_local_id_++};
}

void WalterClient::Op(ClientOpRequest req,
                      std::function<void(Status, const ClientOpResponse&)> cb) {
  Op(site_, std::move(req), std::move(cb));
}

void WalterClient::Op(SiteId target, ClientOpRequest req,
                      std::function<void(Status, const ClientOpResponse&)> cb) {
  // Stamp once; retransmissions reuse the same op_seq so the server can
  // deduplicate a buffering op whose response (not request) was lost.
  if (req.op_seq == 0) {
    req.op_seq = next_op_seq_++;
  }
  TxId tid = req.tid;
  Attempt(target, std::move(req), std::move(cb), 1, tid);
}

SimDuration WalterClient::BackoffFor(size_t attempt) {
  SimDuration backoff = options_.backoff_base;
  for (size_t i = 1; i < attempt && backoff < options_.backoff_cap; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_cap);
  if (options_.backoff_jitter > 0) {
    backoff = static_cast<SimDuration>(
        static_cast<double>(backoff) *
        (1.0 + options_.backoff_jitter * sim()->rng().NextDouble()));
  }
  return backoff;
}

bool WalterClient::TakeOverloadToken() {
  SimTime now = sim()->Now();
  if (overload_tokens_ < 0) {
    overload_tokens_ = options_.overload_retry_tokens;  // first use: full bucket
  } else {
    double elapsed_s = ToSeconds(now - overload_refill_at_);
    overload_tokens_ = std::min(options_.overload_retry_tokens,
                                overload_tokens_ + elapsed_s * options_.overload_token_refill_per_s);
  }
  overload_refill_at_ = now;
  if (overload_tokens_ < 1.0) {
    return false;
  }
  overload_tokens_ -= 1.0;
  return true;
}

void WalterClient::Attempt(SiteId target, ClientOpRequest req,
                           std::function<void(Status, const ClientOpResponse&)> cb,
                           size_t attempt, TxId tid) {
  // Serialize once; retransmissions share the same immutable buffer (the
  // request, op_seq included, is bit-identical across attempts by design).
  Attempt(target, Payload(req.Serialize()), std::move(cb), attempt, tid);
}

void WalterClient::Attempt(SiteId target, Payload request,
                           std::function<void(Status, const ClientOpResponse&)> cb,
                           size_t attempt, TxId tid) {
  endpoint_.Call(
      Address{target, kWalterPort}, kClientOp, request,
      [this, target, request, cb = std::move(cb), attempt, tid](Status status,
                                                                const Message& m) mutable {
        if (status.ok()) {
          ClientOpResponse resp = ClientOpResponse::Deserialize(m.payload);
          if (resp.status == StatusCode::kOverloaded &&
              options_.overload_retry_tokens > 0) {
            // Server shed us at admission. Retransmit after its retry-after
            // hint (doubled per repeated rejection, capped at the backoff
            // cap — not the generic transport backoff, whose 250ms base
            // would dwarf a millisecond-scale queue drain), paying one
            // budget token — the bucket, not max_attempts, bounds these: a
            // shed request costs the server almost nothing, but an unbounded
            // retry loop would double the offered load right when it hurts
            // most.
            if (TakeOverloadToken()) {
              SimDuration hint = std::max<SimDuration>(
                  static_cast<SimDuration>(resp.retry_after_us), Millis(1));
              SimDuration delay = std::min<SimDuration>(
                  hint << std::min<size_t>(attempt - 1, 10), options_.backoff_cap);
              if (options_.backoff_jitter > 0) {
                // Jitter as in BackoffFor: a surge rejects whole cohorts at
                // once; un-jittered hints would retry them as one thundering
                // herd at hint-multiples.
                delay = static_cast<SimDuration>(
                    static_cast<double>(delay) *
                    (1.0 + options_.backoff_jitter * sim()->rng().NextDouble()));
              }
              sim()->After(delay, [this, target, request = std::move(request),
                                   cb = std::move(cb), attempt, tid]() mutable {
                ++retries_sent_;
                ++overload_retries_sent_;
                WTRACE(sim()->Now(), TraceKind::kClientRetry, tid, site_, attempt + 1);
                Attempt(target, std::move(request), std::move(cb), attempt + 1, tid);
              });
              return;
            }
            ++overload_sheds_;
            WTRACE(sim()->Now(), TraceKind::kRetryBudgetExhausted, tid, site_, attempt);
            cb(Status::Unavailable("overload retry budget exhausted"), resp);
            return;
          }
          if (resp.status != StatusCode::kOk) {
            cb(Status(resp.status, ""), resp);
            return;
          }
          cb(Status::Ok(), resp);
          return;
        }
        // Transport failure (timeout): back off and retransmit, up to the
        // budget; then report unavailability instead of hanging forever.
        if (attempt >= options_.max_attempts) {
          WTRACE(sim()->Now(), TraceKind::kClientGiveUp, tid, site_, attempt);
          cb(Status::Unavailable("server unreachable after " + std::to_string(attempt) +
                                 " attempts"),
             ClientOpResponse{});
          return;
        }
        sim()->After(BackoffFor(attempt),
                     [this, target, request = std::move(request), cb = std::move(cb), attempt,
                      tid]() mutable {
                       ++retries_sent_;
                       WTRACE(sim()->Now(), TraceKind::kClientRetry, tid, site_, attempt + 1);
                       Attempt(target, std::move(request), std::move(cb), attempt + 1, tid);
                     });
      },
      options_.rpc_timeout);
}

Tx::Tx(WalterClient* client)
    : client_(client), tid_(client->NextTid()), pin_(client->PinSnapshot()) {}

Tx::~Tx() {
  if (!finished_) {
    // Abandoned (typically a read-only transaction the application just let
    // go of): nothing to undo server-side, but retire it in the trace stream
    // and release the snapshot pin so it stops holding the GC frontier down.
    client_->UnpinSnapshot(pin_);
    WTRACE(client_->sim()->Now(), TraceKind::kClientDone, tid_, client_->site(),
           static_cast<uint64_t>(StatusCode::kAborted));
  }
}

void Tx::SetMode(ConsistencyMode mode) {
  WCHECK(rpcs_issued_ == 0 && !buffered_, "SetMode after first operation");
  mode_ = mode;
}

void Tx::TrackRead(const ObjectId& oid) {
  if (mode_ != ConsistencyMode::kSerializable) {
    return;
  }
  if (std::find(read_set_.begin(), read_set_.end(), oid) == read_set_.end()) {
    read_set_.push_back(oid);
  }
}

ClientOpRequest Tx::BaseRequest() {
  ClientOpRequest req;
  req.tid = tid_;
  req.vts = vts_;
  req.start_tx = vts_.num_sites() == 0;
  req.mode = mode_;
  return req;
}

void Tx::AbsorbResponse(const ClientOpResponse& resp) {
  if (vts_.num_sites() == 0 && resp.assigned_vts.num_sites() > 0) {
    vts_ = resp.assigned_vts;
    // The pin was taken at a conservative floor; raise it to the exact
    // snapshot so it holds the GC frontier no lower than necessary.
    client_->RaisePin(pin_, vts_);
  }
}

void Tx::BufferUpdate(ClientOpKind kind, const ObjectId& oid, const ObjectId& elem,
                      std::string data) {
  WCHECK(!finished_, "update on finished transaction");
  if (commit_server_ == kNoSite) {
    // First write pins the transaction to the shard owning its container: that
    // server buffers the updates and coordinates the eventual commit.
    commit_server_ = client_->RouteFor(oid.container);
  }
  ClientOpRequest req = BaseRequest();
  req.op = kind;
  req.oid = oid;
  req.elem = elem;
  req.data = std::move(data);
  if (buffered_) {
    // Flush the previously buffered update; keep the new one pending.
    ClientOpRequest to_send = std::move(*buffered_);
    buffered_ = std::move(req);
    to_send.vts = vts_;
    ++update_rpcs_sent_;
    ++rpcs_issued_;
    WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
           static_cast<uint32_t>(to_send.op));
    client_->Op(commit_server_, std::move(to_send),
                [this, alive = AliveToken()](Status, const ClientOpResponse& resp) {
                  if (!alive.expired()) {
                    AbsorbResponse(resp);
                  }
                });
  } else {
    buffered_ = std::move(req);
  }
}

void Tx::Write(const ObjectId& oid, std::string data) {
  BufferUpdate(ClientOpKind::kWrite, oid, ObjectId{}, std::move(data));
}

void Tx::SetAdd(const ObjectId& setid, const ObjectId& id) {
  BufferUpdate(ClientOpKind::kSetAdd, setid, id, "");
}

void Tx::SetDel(const ObjectId& setid, const ObjectId& id) {
  BufferUpdate(ClientOpKind::kSetDel, setid, id, "");
}

void Tx::FlushBuffered(std::function<void(Status)> then) {
  if (!buffered_) {
    then(Status::Ok());
    return;
  }
  ClientOpRequest to_send = std::move(*buffered_);
  buffered_.reset();
  to_send.vts = vts_;
  ++update_rpcs_sent_;
  ++rpcs_issued_;
  WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
         static_cast<uint32_t>(to_send.op));
  client_->Op(commit_server_, std::move(to_send),
              [this, alive = AliveToken(), client = client_, tid = tid_,
               then = std::move(then)](Status status, const ClientOpResponse& resp) {
                if (alive.expired()) {
                  // Transaction abandoned while the RPC was in flight.
                  WTRACE(client->sim()->Now(), TraceKind::kClientDropLate, tid, client->site());
                  return;
                }
                AbsorbResponse(resp);
                then(status);
              });
}

void Tx::Read(const ObjectId& oid, ReadCallback cb) {
  TrackRead(oid);
  // Any buffered update must reach the server first so the read sees it.
  FlushBuffered([this, oid, cb = std::move(cb)](Status status) {
    if (!status.ok()) {
      cb(status, std::nullopt);
      return;
    }
    ClientOpRequest req = BaseRequest();
    req.op = ClientOpKind::kRead;
    req.oid = oid;
    ++rpcs_issued_;
    WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
           static_cast<uint32_t>(req.op));
    client_->Op(ReadTarget(oid.container), std::move(req),
                [this, alive = AliveToken(), client = client_, tid = tid_,
                 cb = std::move(cb)](Status status, const ClientOpResponse& resp) {
                  if (alive.expired()) {
                    WTRACE(client->sim()->Now(), TraceKind::kClientDropLate, tid,
                           client->site());
                    return;
                  }
                  AbsorbResponse(resp);
                  if (!status.ok()) {
                    cb(status, std::nullopt);
                    return;
                  }
                  cb(Status::Ok(), resp.found ? std::optional<std::string>(resp.data)
                                              : std::nullopt);
                });
  });
}

void Tx::SetRead(const ObjectId& setid, SetReadCallback cb) {
  TrackRead(setid);
  FlushBuffered([this, setid, cb = std::move(cb)](Status status) {
    if (!status.ok()) {
      cb(status, CountingSet{});
      return;
    }
    ClientOpRequest req = BaseRequest();
    req.op = ClientOpKind::kSetRead;
    req.oid = setid;
    ++rpcs_issued_;
    WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
           static_cast<uint32_t>(req.op));
    client_->Op(ReadTarget(setid.container), std::move(req),
                [this, alive = AliveToken(), cb = std::move(cb)](
                    Status status, const ClientOpResponse& resp) {
                  if (alive.expired()) {
                    return;
                  }
                  AbsorbResponse(resp);
                  if (!status.ok()) {
                    cb(status, CountingSet{});
                    return;
                  }
                  ByteReader r(resp.cset_bytes);
                  cb(Status::Ok(), CountingSet::Deserialize(&r));
                });
  });
}

void Tx::SetReadId(const ObjectId& setid, const ObjectId& id, CountCallback cb) {
  TrackRead(setid);
  FlushBuffered([this, setid, id, cb = std::move(cb)](Status status) {
    if (!status.ok()) {
      cb(status, 0);
      return;
    }
    ClientOpRequest req = BaseRequest();
    req.op = ClientOpKind::kSetReadId;
    req.oid = setid;
    req.elem = id;
    ++rpcs_issued_;
    WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
           static_cast<uint32_t>(req.op));
    client_->Op(ReadTarget(setid.container), std::move(req),
                [this, alive = AliveToken(), cb = std::move(cb)](
                    Status status, const ClientOpResponse& resp) {
                  if (alive.expired()) {
                    return;
                  }
                  AbsorbResponse(resp);
                  cb(status, resp.count);
                });
  });
}

void Tx::MultiRead(std::vector<ObjectId> oids, MultiReadCallback cb) {
  for (const ObjectId& oid : oids) {
    TrackRead(oid);
  }
  FlushBuffered([this, oids = std::move(oids), cb = std::move(cb)](Status status) mutable {
    if (!status.ok()) {
      cb(status, {});
      return;
    }
    // One server can answer the whole batch when the transaction is pinned to
    // its commit server or every container routes to the same shard — the
    // single-RPC path, and the only path in unsharded runs.
    SiteId target = oids.empty() ? client_->site() : ReadTarget(oids[0].container);
    bool single = true;
    for (const ObjectId& oid : oids) {
      if (ReadTarget(oid.container) != target) {
        single = false;
        break;
      }
    }
    if (single) {
      ClientOpRequest req = BaseRequest();
      req.op = ClientOpKind::kMultiRead;
      req.oids = std::move(oids);
      ++rpcs_issued_;
      WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
             static_cast<uint32_t>(req.op));
      client_->Op(target, std::move(req),
                  [this, alive = AliveToken(), cb = std::move(cb)](
                      Status status, const ClientOpResponse& resp) {
                    if (alive.expired()) {
                      return;
                    }
                    AbsorbResponse(resp);
                    cb(status, resp.values);
                  });
      return;
    }
    // The batch spans shards: one sub-read per shard, issued serially so the
    // first response's assigned snapshot flows into the rest (a parallel
    // fan-out could get a different snapshot per shard). Results merge back
    // into request order.
    struct Group {
      SiteId target;
      std::vector<size_t> indices;
      std::vector<ObjectId> oids;
    };
    auto groups = std::make_shared<std::vector<Group>>();
    for (size_t i = 0; i < oids.size(); ++i) {
      SiteId t = ReadTarget(oids[i].container);
      Group* g = nullptr;
      for (Group& cand : *groups) {
        if (cand.target == t) {
          g = &cand;
          break;
        }
      }
      if (g == nullptr) {
        groups->push_back(Group{t, {}, {}});
        g = &groups->back();
      }
      g->indices.push_back(i);
      g->oids.push_back(oids[i]);
    }
    auto values = std::make_shared<std::vector<std::optional<std::string>>>(oids.size());
    auto next = std::make_shared<std::function<void(size_t)>>();
    // The stored function refers to itself only weakly; each in-flight RPC
    // callback holds the one strong reference, so the chain frees itself when
    // the last response (or a drop) retires it — no shared_ptr cycle.
    std::weak_ptr<std::function<void(size_t)>> weak_next = next;
    *next = [this, alive = AliveToken(), groups, values, weak_next,
             cb = std::move(cb)](size_t k) mutable {
      if (k == groups->size()) {
        cb(Status::Ok(), std::move(*values));
        return;
      }
      auto self = weak_next.lock();
      Group& g = (*groups)[k];
      ClientOpRequest req = BaseRequest();
      req.op = ClientOpKind::kMultiRead;
      req.oids = g.oids;
      ++rpcs_issued_;
      WTRACE(client_->sim()->Now(), TraceKind::kClientOpRpc, tid_, client_->site(), 0,
             static_cast<uint32_t>(req.op));
      client_->Op(g.target, std::move(req),
                  [this, alive, groups, values, self, cb, k](
                      Status status, const ClientOpResponse& resp) mutable {
                    if (alive.expired()) {
                      return;
                    }
                    AbsorbResponse(resp);
                    if (!status.ok()) {
                      cb(status, {});
                      return;
                    }
                    const Group& g = (*groups)[k];
                    for (size_t j = 0; j < g.indices.size() && j < resp.values.size(); ++j) {
                      (*values)[g.indices[j]] = resp.values[j];
                    }
                    (*self)(k + 1);
                  });
    };
    (*next)(0);
  });
}

void Tx::Commit(CommitCallback cb, CommitOptions options) {
  WCHECK(!finished_, "double commit");
  finished_ = true;

  bool want_durable = static_cast<bool>(options.on_durable);
  bool want_visible = static_cast<bool>(options.on_visible);
  if (want_durable) {
    client_->WatchDurable(tid_, std::move(options.on_durable));
  }
  if (want_visible) {
    client_->WatchVisible(tid_, std::move(options.on_visible));
  }

  // Commit is terminal: after this call the outcome must reach `cb` exactly
  // once even if the caller drops its last reference to the Tx handle before
  // the commit RPCs resolve (examples/bank_transfer did exactly that, and the
  // old AliveToken guard on the flush continuation silently swallowed the
  // commit — the hang fixed in PR 3). So the chain below captures the client
  // and plain values, never `this`, and does not use AliveToken.
  WalterClient* client = client_;
  TxId tid = tid_;
  SiteId site = client->site();
  // Transactions with writes commit at their pinned shard; the commit request
  // names the client's own node when they differ, so durable/visible
  // notifications find their way home.
  SiteId target = commit_server_ == kNoSite ? site : commit_server_;
  uint64_t pin = pin_;

  CommitCallback done = [client, tid, site, pin, cb = std::move(cb)](Status status) {
    // The outcome is settled; retransmissions are answered from the server's
    // dedup state without re-reading the snapshot, so the pin can go.
    client->UnpinSnapshot(pin);
    WTRACE(client->sim()->Now(), TraceKind::kClientDone, tid, site,
           static_cast<uint64_t>(status.code()));
    cb(status);
  };
  // Serializable mode: the read set rides the commit-bearing request, sorted
  // so the wire bytes (and hence the server's validation order) are
  // independent of application read order.
  std::vector<ObjectId> read_oids = std::move(read_set_);
  std::sort(read_oids.begin(), read_oids.end());
  auto send_commit = [client, tid, site, target, want_durable, want_visible,
                      read_oids = std::move(read_oids)](ClientOpRequest req,
                                                        CommitCallback done) {
    req.commit_after = true;
    req.want_durable = want_durable;
    req.want_visible = want_visible;
    req.read_oids = read_oids;
    req.reply_port = client->port();
    if (target != site) {
      req.reply_site = site;
    }
    WTRACE(client->sim()->Now(), TraceKind::kClientCommitRpc, tid, site);
    client->Op(target, std::move(req),
               [done = std::move(done)](Status status, const ClientOpResponse&) {
                 done(status);
               });
  };

  if (buffered_ && update_rpcs_sent_ == 0) {
    // Single-update transaction: update + commit in one RPC (Section 8.2).
    ClientOpRequest req = std::move(*buffered_);
    buffered_.reset();
    req.vts = vts_;
    ++rpcs_issued_;
    send_commit(std::move(req), std::move(done));
    return;
  }
  if (buffered_) {
    // Flush the last buffered update, then send the bare commit. The flushed
    // update's assigned snapshot (when the transaction does not have one yet)
    // is threaded into the commit request directly rather than through the Tx,
    // keeping the chain independent of the handle's lifetime.
    ClientOpRequest flush = std::move(*buffered_);
    buffered_.reset();
    flush.vts = vts_;
    ++update_rpcs_sent_;
    rpcs_issued_ += 2;
    ClientOpRequest commit_req = BaseRequest();
    WTRACE(client->sim()->Now(), TraceKind::kClientOpRpc, tid, site, 0,
           static_cast<uint32_t>(flush.op));
    client->Op(target, std::move(flush),
               [commit_req = std::move(commit_req), done = std::move(done),
                send_commit](Status status, const ClientOpResponse& resp) mutable {
                 if (!status.ok()) {
                   done(status);
                   return;
                 }
                 if (commit_req.vts.num_sites() == 0 && resp.assigned_vts.num_sites() > 0) {
                   commit_req.vts = resp.assigned_vts;
                   commit_req.start_tx = false;
                 }
                 send_commit(std::move(commit_req), std::move(done));
               });
    return;
  }
  if (update_rpcs_sent_ == 0) {
    // Read-only transaction: commit is local (no RPC, Section 8.2).
    done(Status::Ok());
    return;
  }
  ++rpcs_issued_;
  send_commit(BaseRequest(), std::move(done));
}

void Tx::Abort(std::function<void()> done) {
  finished_ = true;
  buffered_.reset();
  WalterClient* client = client_;
  TxId tid = tid_;
  SiteId site = client->site();
  uint64_t pin = pin_;
  if (update_rpcs_sent_ == 0) {
    client->UnpinSnapshot(pin);
    WTRACE(client->sim()->Now(), TraceKind::kClientDone, tid, site,
           static_cast<uint64_t>(StatusCode::kAborted));
    if (done) {
      done();
    }
    return;
  }
  ClientOpRequest req = BaseRequest();
  req.abort = true;
  ++rpcs_issued_;
  WTRACE(client->sim()->Now(), TraceKind::kClientAbortRpc, tid, site);
  // Like Commit, the abort chain must not depend on the handle staying alive.
  // The server-side buffer (if any) lives at the pinned commit server.
  client->Op(commit_server_ == kNoSite ? site : commit_server_, std::move(req),
             [client, tid, site, pin, done = std::move(done)](Status, const ClientOpResponse&) {
               client->UnpinSnapshot(pin);
               WTRACE(client->sim()->Now(), TraceKind::kClientDone, tid, site,
                      static_cast<uint64_t>(StatusCode::kAborted));
               if (done) {
                 done();
               }
             });
}

}  // namespace walter
