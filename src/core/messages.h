// Wire messages of the Walter protocols.
//
// Client <-> server: a single unified ClientOpRequest carries one operation of
// the Figure 14 API plus piggyback flags — start_tx piggybacks the snapshot
// assignment onto the first access, commit_after piggybacks commit onto the
// last access, so single-access transactions need exactly one RPC (the
// optimization of Section 8.2).
//
// Server <-> server: slow-commit two-phase-commit (PREPARE / ABORT-2PC,
// Figure 12) and the asynchronous propagation protocol (PROPAGATE /
// PROPAGATE-ACK / DS-DURABLE / VISIBLE, Figure 13), plus remote reads for
// objects not replicated locally (Section 4.3).
#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/update.h"

namespace walter {

enum MessageType : uint32_t {
  kClientOp = 1,
  kDurableNotify = 2,   // server -> client: transaction is disaster-safe durable
  kVisibleNotify = 3,   // server -> client: transaction is globally visible
  kPrepare = 10,        // 2PC phase 1 (slow commit)
  kAbort2pc = 11,       // 2PC abort / lock release
  kPropagate = 12,      // batch of committed transactions (one-way)
  kPropagateAck = 13,   // cumulative ack of received transactions (one-way)
  kDsDurable = 14,      // origin announces a transaction is disaster-safe durable
  kVisibleAck = 15,     // remote site has committed the transaction (one-way)
  kRemoteRead = 16,     // read at the preferred site for non-replicated objects
  kTxStatus = 17,       // lock-holder asks a 2PC coordinator for an outcome
  kResync = 18,         // restored/truncated server resets a peer's cumulative acks
  kFetchRecords = 19,   // RPC: fetch an origin's records from a peer's WAL (backfill)
  kCommitDecision = 20, // coordinator -> participant: 2PC decided commit (one-way);
                        // the participant releases its prepare locks early and
                        // guards readers with a visibility watermark instead
};

// Why a commit attempt died, carried on no-vote prepare responses and recorded
// on abort traces (kTxAbort aux) so the bench abort breakdown is exact.
enum class AbortReason : uint8_t {
  kNone = 0,
  kConflict = 1,  // lock held / write-write conflict against the snapshot
  kWound = 2,     // wound-wait: an older transaction took the locks
  kTimeout = 3,   // lock-wait deadline expired before the holder resolved
};

// 2PC termination protocol: a site holding a prepare lock whose coordinator
// went quiet asks for the transaction's outcome. `kTxAborted` covers both
// "aborted" and "never heard of it" — an unknown tid at the coordinator means
// it never committed there (or is already globally visible, in which case the
// asking site released the lock when the transaction propagated to it).
enum class TxStatusOutcome : uint8_t {
  kTxAborted = 0,
  kTxPending = 1,
  kTxCommitted = 2,
};

struct TxStatusRequest {
  TxId tid = 0;

  std::string Serialize() const;
  static TxStatusRequest Deserialize(std::string_view bytes);
};

struct TxStatusResponse {
  TxStatusOutcome outcome = TxStatusOutcome::kTxAborted;

  std::string Serialize() const;
  static TxStatusResponse Deserialize(std::string_view bytes);
};

enum class ClientOpKind : uint8_t {
  kNone = 0,  // pure start / commit / abort carrier
  kRead,
  kWrite,
  kSetAdd,
  kSetDel,
  kSetRead,
  kSetReadId,
  kMultiRead,
};

struct ClientOpRequest {
  TxId tid = 0;
  bool start_tx = false;      // assign a snapshot if the transaction is new
  // Snapshot held by the client (returned by an earlier op of this
  // transaction); empty means "assign one now" when start_tx is set.
  VectorTimestamp vts;
  ClientOpKind op = ClientOpKind::kNone;
  ObjectId oid;               // target object (read/write/cset ops)
  ObjectId elem;              // cset element (setAdd/setDel/setReadId)
  std::string data;           // write payload
  std::vector<ObjectId> oids;  // multiRead targets
  bool commit_after = false;  // commit once the op is applied
  bool abort = false;         // abort the transaction
  bool want_durable = false;  // notify client at disaster-safe durability
  bool want_visible = false;  // notify client at global visibility
  uint32_t reply_port = 0;    // client's endpoint port for notifications
  // Client-assigned sequence number of this operation within the connection
  // (monotonic per client, stable across RPC retries). Lets the server drop a
  // retransmitted buffering op instead of double-applying the update.
  uint64_t op_seq = 0;
  // Node the client's endpoint lives on, when it differs from the server
  // handling the op — under intra-site sharding a client pinned to shard 0
  // may commit at a sibling shard, and durable/visible notifications must
  // come back to the client's own node. kNoSite = same node as the server.
  SiteId reply_site = kNoSite;
  // Per-transaction consistency level (docs/CONSISTENCY.md). Trailing
  // optional field group: a PSI transaction with no read set serializes the
  // exact pre-modes byte stream.
  ConsistencyMode mode = ConsistencyMode::kPsi;
  // Serializable mode only: the objects the transaction read, carried on the
  // commit-bearing request so the commit path can validate them against the
  // start snapshot (and lock them through 2PC).
  std::vector<ObjectId> read_oids;

  std::string Serialize() const;
  static ClientOpRequest Deserialize(std::string_view bytes);
};

struct ClientOpResponse {
  StatusCode status = StatusCode::kOk;
  // Snapshot assigned to the transaction (echoed so the client can pass it on
  // subsequent operations; makes read-only transactions stateless server-side).
  VectorTimestamp assigned_vts;
  bool found = false;           // regular read: object has a value
  std::string data;             // regular read result
  std::string cset_bytes;       // serialized CountingSet (setRead)
  int64_t count = 0;            // setReadId result
  std::vector<std::optional<std::string>> values;  // multiRead results
  Version commit_version;       // set when commit_after succeeded
  // Admission-control retry hint (microseconds). Trailing optional field: 0
  // (admission off) keeps the wire bytes identical to the pre-overload format.
  uint64_t retry_after_us = 0;

  std::string Serialize() const;
  static ClientOpResponse Deserialize(std::string_view bytes);
};

struct PrepareRequest {
  TxId tid = 0;
  std::vector<ObjectId> oids;  // written objects whose preferred site is the callee
  VectorTimestamp start_vts;
  // Wound-wait age (coordinator's sim time at slow-commit entry; smaller =
  // older = wins). Trailing optional field: 0 (early_lock_release off) keeps
  // the wire bytes identical to the pre-watermark format.
  uint64_t priority = 0;
  // Clock-ordered commit (docs/CONSISTENCY.md): the coordinator-assigned
  // future commit timestamp. The participant holds its vote until its local
  // clock passes this instant and releases held votes in (commit_ts,
  // coordinator site, tid) order. 0 = classic 2PC prepare. Trailing optional
  // group with mode/read_oids: all-default serializes the pre-clock bytes.
  int64_t commit_ts = 0;
  // The transaction's consistency level, so the participant's conflict check
  // matches the coordinator's (serializable validates read_oids too).
  ConsistencyMode mode = ConsistencyMode::kPsi;
  // Serializable mode: objects read by the transaction whose preferred site
  // is the callee. Validated against start_vts and locked through 2PC, but
  // never written.
  std::vector<ObjectId> read_oids;

  std::string Serialize() const;
  static PrepareRequest Deserialize(std::string_view bytes);
};

struct PrepareResponse {
  bool vote_yes = false;
  // Why a no vote (AbortReason); trailing optional like PrepareRequest's
  // priority — kNone (yes votes, and the pre-watermark protocol) is omitted.
  AbortReason reason = AbortReason::kNone;
  // Clock-ordered commit: the participant's local clock had already passed
  // the assigned commit_ts when the prepare arrived (skew bound violated or
  // the message ran slower than the one-way-delay budget), so the vote was
  // cast immediately, classic-2PC style. Metric-bearing only — the vote
  // itself is still valid. Trailing optional; false is omitted.
  bool clock_fallback = false;

  std::string Serialize() const;
  static PrepareResponse Deserialize(std::string_view bytes);
};

// One-way coordinator -> yes-voting participant: the 2PC decided commit and
// the decision record (the coordinator's local commit) is logged. On receipt
// the participant releases the transaction's prepare locks; if the version is
// not yet committed there, each previously locked object gets a visibility
// watermark so readers keep waiting exactly as long as the lock would have
// made them. Loss is tolerated: the locks then release on propagation as
// before (the old Figure-13 lifetime is the backstop).
struct CommitDecision {
  TxId tid = 0;
  Version version;  // the decided commit's version (origin site + seqno)

  std::string Serialize() const;
  static CommitDecision Deserialize(std::string_view bytes);
};

struct AbortMessage {
  TxId tid = 0;

  std::string Serialize() const;
  static AbortMessage Deserialize(std::string_view bytes);
};

struct PropagateBatch {
  SiteId origin = kNoSite;
  std::vector<TxRecord> records;  // contiguous seqnos from origin

  std::string Serialize() const;
  static PropagateBatch Deserialize(std::string_view bytes);
  size_t ByteSize() const;
};

struct PropagateAck {
  SiteId from = kNoSite;       // the acking site
  SiteId origin = kNoSite;     // whose transactions are acked
  uint64_t received_through = 0;  // cumulative: GotVTS[origin] at the acker
  // Optional tail (frontier-gossip mode only): the acker's stability floor —
  // the entry-wise min of its committed/durably-applied state and its local
  // snapshot pins. Empty (num_sites()==0) when the mode is off, in which case
  // the wire bytes are identical to the pre-gossip format.
  VectorTimestamp stability_floor;

  std::string Serialize() const;
  static PropagateAck Deserialize(std::string_view bytes);
};

struct DsDurableMessage {
  SiteId origin = kNoSite;
  uint64_t durable_through = 0;  // all origin seqnos <= this are disaster-safe

  std::string Serialize() const;
  static DsDurableMessage Deserialize(std::string_view bytes);
};

struct VisibleAck {
  SiteId from = kNoSite;
  SiteId origin = kNoSite;
  uint64_t committed_through = 0;  // CommittedVTS[origin] at the acking site

  std::string Serialize() const;
  static VisibleAck Deserialize(std::string_view bytes);
};

struct RemoteReadRequest {
  ObjectId oid;
  VectorTimestamp vts;
  bool is_cset = false;
  // For merging with the caller's local history (Figure 10): the caller holds
  // its own unreplicated updates from seqno >= local_min_seqno, so the callee
  // excludes its copies of those to avoid double counting.
  SiteId caller = kNoSite;
  uint64_t local_min_seqno = 0;  // 0 = caller holds nothing local
  // Consistency level of the reading transaction (trailing optional: omitted
  // at the default, so PSI serializes the pre-mode byte stream). NMSI remote
  // reads serve through live watermarks at the preferred site.
  ConsistencyMode mode = ConsistencyMode::kPsi;

  std::string Serialize() const;
  static RemoteReadRequest Deserialize(std::string_view bytes);
};

struct RemoteReadResponse {
  bool found = false;
  std::string data;
  Version version;           // version of the returned regular value
  std::string cset_bytes;    // folded cset (with exclusions applied)

  std::string Serialize() const;
  static RemoteReadResponse Deserialize(std::string_view bytes);
};

struct TxNotify {
  TxId tid = 0;

  std::string Serialize() const;
  static TxNotify Deserialize(std::string_view bytes);
};

// Sent by a restored (or log-truncated) server to every peer: "this is what I
// actually hold of yours". Cumulative PROPAGATE/VISIBLE acks are monotonic, so
// after a crash rolls a site's GotVTS back, the origins must be told to lower
// their watermarks or they would never resend the lost suffix. The receiver
// answers with its own kResync so both directions reset.
struct ResyncState {
  SiteId from = kNoSite;
  uint64_t got_through = 0;        // sender's GotVTS entry for the receiver
  uint64_t committed_through = 0;  // sender's CommittedVTS entry for the receiver
  // Sender's own disaster-safe watermark. kDsDurable announcements only fire
  // when the watermark advances, so a server restored after everything already
  // settled would otherwise wait forever for evidence that re-sent remote
  // records are durable at their origin — the resync carries it explicitly.
  uint64_t durable_through = 0;
  bool is_reply = false;           // set on the answering leg (stops the echo)

  std::string Serialize() const;
  static ResyncState Deserialize(std::string_view bytes);
};

// Own-record backfill (corruption-tolerant recovery): a restored server whose
// durable log lost records past the fsync contract (bit rot) asks a peer for
// its copies of the server's own transactions — the resync exchange is the
// evidence (the peer's got_through exceeds what the log restored). The peer
// answers from its WAL via CollectRecords.
struct FetchRecordsRequest {
  SiteId from = kNoSite;     // the asking site
  SiteId origin = kNoSite;   // whose records (the asker's own site on backfill)
  uint64_t from_seqno = 0;   // inclusive range
  uint64_t to_seqno = 0;

  std::string Serialize() const;
  static FetchRecordsRequest Deserialize(std::string_view bytes);
};

struct FetchRecordsResponse {
  std::vector<TxRecord> records;  // ascending seqno; may be partial (WAL truncated)

  std::string Serialize() const;
  static FetchRecordsResponse Deserialize(std::string_view bytes);
};

}  // namespace walter

#endif  // SRC_CORE_MESSAGES_H_
