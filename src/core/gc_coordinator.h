// GcCoordinator: autonomous stability-frontier garbage collection and
// checkpointing for a simulated Walter cluster.
//
// The stability frontier is the entry-wise minimum, over every site of the
// current configuration, of each site's stability floor:
//
//   floor(s) = min(CommittedVTS(s), DurableApplied(s))  MergeMin  MinPin(s)
//
// (a) the committed/durably-applied part is rollback-proof across crashes —
// a restored server replays its durable WAL, so it never retreats below what
// the coordinator already used; (b) the snapshot-pin part keeps every live
// transaction's startVTS above the frontier, so no read can ever need a folded
// version. The pointwise min of causally-closed snapshots is causally closed,
// which makes folding histories at the frontier invisible to PSI.
//
// The coordinator is an oracle: it reads server state directly on a jittered
// timer (its OWN Rng, never the simulator's — adding GC must not perturb a
// seeded run's message timings, which keeps every benchmark byte-identical
// with GC on or off) and drives every live server's GC in the same simulator
// event. Synchronized folding means all sites share one frontier, so remote
// reads never straddle two frontiers. The message-borne alternative is the
// servers' `frontier_gossip` mode.
//
// Stalling is safe and visible: a crashed-but-in-config site freezes the
// frontier at its last known floor (reason kDeadSite); a long-running snapshot
// holds it via its pin (kSnapshotPin); otherwise replication/flush lag
// (kLaggingSite). A §5.7-removed site (membership probe false) drops out of
// the frontier entirely, so GC resumes without it — but its last known
// durable-applied watermark still gates WAL truncation, because reintegration
// gap-fills from the survivors' logs.
#ifndef SRC_CORE_GC_COORDINATOR_H_
#define SRC_CORE_GC_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace walter {

class Cluster;

struct GcOptions {
  bool enabled = true;
  // Frontier recomputation cadence (jittered per tick).
  SimDuration interval = Millis(250);
  // Retention-aware checkpoint + WAL truncation cadence.
  SimDuration checkpoint_every = Seconds(5);
};

enum class GcStallReason : uint8_t {
  kNone = 0,      // frontier is caught up — nothing to collect (idle)
  kDeadSite,      // a crashed in-config site froze the frontier
  kSnapshotPin,   // a live transaction's snapshot pin holds it back
  kLaggingSite,   // replication/flush lag: a site's floor trails the rest
};

const char* GcStallReasonName(GcStallReason reason);

class GcCoordinator {
 public:
  GcCoordinator(Cluster* cluster, GcOptions options, uint64_t seed);

  // Schedules the first tick (call once, after the cluster is fully built).
  void Start();

  // One frontier recomputation; public so tests can drive it deterministically.
  void Tick();

  // In-config probe for §5.7 membership: false drops the site from the
  // frontier (GC resumes without it). Defaults to "every site is in-config".
  void SetMembershipProbe(std::function<bool(SiteId)> probe) { probe_ = std::move(probe); }

  const VectorTimestamp& last_frontier() const { return frontier_; }
  uint64_t runs() const { return runs_; }
  uint64_t stalls() const { return stalls_; }
  uint64_t checkpoints() const { return checkpoints_; }
  GcStallReason last_stall_reason() const { return last_stall_reason_; }
  SiteId last_stall_site() const { return last_stall_site_; }

  // "gc.*" gauges: frontier entries, stall state, run counters.
  void ExportMetrics(MetricsRegistry& metrics) const;

 private:
  void Schedule();
  // Refreshes the per-site floor/durable caches from live servers.
  void RefreshCaches();

  Cluster* cluster_;
  GcOptions options_;
  Rng rng_;  // private stream: jitter must not consume the simulation's Rng

  // Last known state per site, frozen while the site is crashed. Floors and
  // durable watermarks are monotone, so max-merge keeps them honest — except
  // at a removed site's own index, where §5.7 reuses seqnos (see Tick).
  std::vector<VectorTimestamp> last_floor_;
  std::vector<VectorTimestamp> last_durable_;
  std::vector<bool> in_config_;  // last probe verdict, for transition detection

  VectorTimestamp frontier_;
  uint64_t runs_ = 0;
  uint64_t stalls_ = 0;
  uint64_t checkpoints_ = 0;
  GcStallReason last_stall_reason_ = GcStallReason::kNone;
  SiteId last_stall_site_ = kNoSite;
  SimTime last_checkpoint_ = 0;
  std::function<bool(SiteId)> probe_;
  bool started_ = false;
};

}  // namespace walter

#endif  // SRC_CORE_GC_COORDINATOR_H_
