#include "src/core/cluster.h"

#include <utility>

namespace walter {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)), sim_(options_.seed) {
  Topology topo = options_.topology ? *options_.topology
                                    : (options_.num_sites <= 4
                                           ? Topology::Ec2Subset(options_.num_sites)
                                           : Topology::Uniform(options_.num_sites, Millis(100),
                                                               Millis(0.5)));
  net_ = std::make_unique<Network>(&sim_, std::move(topo));
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    directories_.push_back(std::make_unique<ContainerDirectory>(options_.num_sites));
    pin_registries_.push_back(std::make_unique<SnapshotPinRegistry>());
    WalterServer::Options so = options_.server;
    so.site = s;
    so.num_sites = options_.num_sites;
    servers_.push_back(
        std::make_unique<WalterServer>(&sim_, net_.get(), so, directories_[s].get()));
    WirePinFloor(s);
  }
  // The GC coordinator follows the gossip gating (RunUntilIdle-based tests
  // disable periodic work by setting gossip_interval = 0), and stands down in
  // frontier_gossip mode, where the servers fold from acked floors themselves.
  if (options_.num_sites > 1 && options_.server.gossip_interval > 0 &&
      options_.gc.enabled && !options_.server.frontier_gossip) {
    gc_ = std::make_unique<GcCoordinator>(this, options_.gc, options_.seed);
    gc_->Start();
  }
}

void Cluster::WirePinFloor(SiteId s) {
  servers_[s]->SetPinFloorProvider(
      [reg = pin_registries_[s].get()]() { return reg->MinPin(); });
}

void Cluster::UpsertContainerEverywhere(const ContainerInfo& info) {
  for (auto& dir : directories_) {
    dir->Upsert(info);
  }
}

WalterClient* Cluster::AddClient(SiteId site) { return AddClient(site, options_.client); }

WalterClient* Cluster::AddClient(SiteId site, WalterClient::Options options) {
  clients_.push_back(
      std::make_unique<WalterClient>(net_.get(), site, next_client_port_++, options));
  // Every transaction the client opens pins its snapshot in the site registry,
  // at a floor read from the (current) local server's CommittedVTS.
  clients_.back()->AttachPins(pin_registries_[site].get(), [this, site]() {
    return servers_[site]->committed_vts();
  });
  return clients_.back().get();
}

WalterServer& Cluster::ReplaceServer(SiteId s) {
  WalterServer::DurableImage image = servers_[s]->TakeDurableImage();
  WalterServer::Options so = servers_[s]->options();
  servers_[s].reset();  // frees the endpoint address
  servers_[s] = std::make_unique<WalterServer>(&sim_, net_.get(), so, directories_[s].get());
  servers_[s]->Restore(image);
  WirePinFloor(s);  // the registry outlives the server it was wired to
  if (observer_) {
    servers_[s]->SetCommitObserver(observer_);
  }
  return *servers_[s];
}

void Cluster::ObserveCommits(WalterServer::CommitObserver observer) {
  observer_ = std::move(observer);
  for (auto& server : servers_) {
    server->SetCommitObserver(observer_);
  }
}

void Cluster::ExportMetrics(MetricsRegistry& metrics) const {
  for (const auto& server : servers_) {
    server->ExportMetrics(metrics);
  }
  for (SiteId s = 0; s < pin_registries_.size(); ++s) {
    metrics.Set("gc.active_pins", s, static_cast<double>(pin_registries_[s]->active()));
  }
  if (gc_) {
    gc_->ExportMetrics(metrics);
  }
  net_->ExportMetrics(metrics);
  uint64_t retries = 0;
  for (const auto& client : clients_) {
    retries += client->retries_sent();
  }
  metrics.Set("client.retries_sent", kNoSite, static_cast<double>(retries));
}

}  // namespace walter
