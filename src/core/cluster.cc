#include "src/core/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace walter {

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      shard_map_(options_.servers_per_site.empty() ? ShardMap(options_.num_sites)
                                                   : ShardMap(options_.servers_per_site)),
      sim_(options_.seed) {
  Topology topo = options_.topology ? *options_.topology
                                    : (options_.num_sites <= 4
                                           ? Topology::Ec2Subset(options_.num_sites)
                                           : Topology::Uniform(options_.num_sites, Millis(100),
                                                               Millis(0.5)));
  if (!shard_map_.trivial()) {
    // One network node per server; co-located shards talk at the site's
    // intra-site RTT and bandwidth.
    topo = Topology::ShardExpand(topo, shard_map_.shards());
  }
  net_ = std::make_unique<Network>(&sim_, std::move(topo));
  if (options_.runtime.workers > 0) {
    ThreadedRuntime::Options ro;
    ro.workers = options_.runtime.workers;
    ro.time_scale = options_.runtime.time_scale;
    ro.seed = options_.seed;
    runtime_ = std::make_unique<ThreadedRuntime>(ro, &sim_);
    // Deliveries route by the executor that owns the destination: servers by
    // the round-robin assignment below, clients by their AddClient-time
    // executor. Both tables are frozen before StartThreads, so the resolver
    // reads them lock-free from any sender.
    net_->EnableThreadedDispatch([this](const Address& to) -> Executor* {
      if (to.port == kWalterPort) {
        return to.site < server_execs_.size() ? server_execs_[to.site] : nullptr;
      }
      auto it = client_execs_by_addr_.find((static_cast<uint64_t>(to.site) << 32) | to.port);
      return it != client_execs_by_addr_.end() ? it->second : nullptr;
    });
  }
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    directories_.push_back(std::make_unique<ContainerDirectory>(options_.num_sites));
    directories_.back()->AttachShardMap(&shard_map_);
    pin_registries_.push_back(std::make_unique<SnapshotPinRegistry>());
  }
  // One WalterServer per shard (the "virtual server" model): each is a full
  // Walter server whose `site` is its global server id and whose vector-clock
  // dimension is the total server count. The directory translation above makes
  // every container's replica set exactly one shard per site, so commit,
  // propagation, durability-quorum and recovery machinery are unchanged —
  // cross-shard transactions inside one site simply become slow commits whose
  // participants happen to be a LAN hop apart.
  bool early_release = options_.early_lock_release;
  if (const char* env = std::getenv("WALTER_EARLY_LOCK_RELEASE")) {
    early_release = !(env[0] == '0' && env[1] == '\0');
  }
  // Overload-defense kill switch: WALTER_ADMISSION=0 forces admission control
  // (and the clients' overload retry budgets) off regardless of options — the
  // byte-identity escape hatch, mirroring WALTER_EARLY_LOCK_RELEASE.
  bool admission_on = true;
  if (const char* env = std::getenv("WALTER_ADMISSION")) {
    admission_on = !(env[0] == '0' && env[1] == '\0');
  }
  if (!admission_on) {
    options_.server.admission_max_queue = 0;
    options_.server.admission_max_inflight = 0;
    options_.client.overload_retry_tokens = 0;
  }
  // Clock-ordered commit kill switch: WALTER_CLOCK_COMMIT=1 forces it on,
  // =0 forces it off, unset leaves the option as configured (default off —
  // the byte-identity baseline).
  bool clock_on = options_.clock_commit;
  if (const char* env = std::getenv("WALTER_CLOCK_COMMIT")) {
    clock_on = !(env[0] == '0' && env[1] == '\0');
  }
  options_.server.clock_commit = clock_on;
  if (clock_on) {
    // The hold budget must cover the worst prepare one-way delay in this
    // deployment, or far participants constantly fall back to classic votes.
    SimDuration max_owd = 0;
    const Topology& t = net_->topology();
    for (SiteId a = 0; a < static_cast<SiteId>(t.num_sites()); ++a) {
      max_owd = std::max(max_owd, t.MaxRttFrom(a) / 2);
    }
    if (max_owd > 0) {
      options_.server.clock_max_owd = max_owd;
    }
  }
  for (SiteId v = 0; v < static_cast<SiteId>(shard_map_.num_servers()); ++v) {
    WalterServer::Options so = options_.server;
    so.site = v;
    so.num_sites = shard_map_.num_servers();
    so.sharded = !shard_map_.trivial();
    so.early_lock_release = early_release;
    // Which geographic site each virtual server lives in: the co-sited test
    // behind sequential lock ordering and fast remote-commit visibility.
    so.geo_site_of.resize(shard_map_.num_servers());
    for (SiteId u = 0; u < static_cast<SiteId>(shard_map_.num_servers()); ++u) {
      so.geo_site_of[u] = shard_map_.SiteOf(u);
    }
    if (!so.wal_dir.empty()) {
      // Each server gets its own segment directory under the configured root.
      so.wal_dir += "/site-" + std::to_string(v);
    }
    // Threaded mode: each server's timers live on its owner executor's
    // simulator, so every handler it runs stays on one thread. Worker
    // threads are not running yet — construction-time scheduling (gossip
    // kickoff) lands in the owner's queue and fires after StartThreads.
    Executor* owner = runtime_ != nullptr
                          ? &runtime_->worker(v % runtime_->workers())
                          : nullptr;
    server_execs_.push_back(owner);
    Simulator* ssim = owner != nullptr ? &owner->sim() : &sim_;
    servers_.push_back(std::make_unique<WalterServer>(
        ssim, net_.get(), so, directories_[shard_map_.SiteOf(v)].get()));
    WirePinFloor(v);
  }
  // The GC coordinator follows the gossip gating (RunUntilIdle-based tests
  // disable periodic work by setting gossip_interval = 0), and stands down in
  // frontier_gossip mode, where the servers fold from acked floors themselves,
  // and in threaded mode, where its frontier probes would read server state
  // across executors.
  if (runtime_ == nullptr && shard_map_.num_servers() > 1 &&
      options_.server.gossip_interval > 0 &&
      options_.gc.enabled && !options_.server.frontier_gossip) {
    gc_ = std::make_unique<GcCoordinator>(this, options_.gc, options_.seed);
    gc_->Start();
  }
}

void Cluster::WirePinFloor(SiteId s) {
  servers_[s]->SetPinFloorProvider(
      [reg = pin_registries_[shard_map_.SiteOf(s)].get()]() { return reg->MinPin(); });
}

void Cluster::UpsertContainerEverywhere(const ContainerInfo& info) {
  for (auto& dir : directories_) {
    dir->Upsert(info);
  }
}

WalterClient* Cluster::AddClient(SiteId site) { return AddClient(site, options_.client); }

WalterClient* Cluster::AddClient(SiteId site, WalterClient::Options options) {
  WCHECK(runtime_ == nullptr || !runtime_->started(),
         "threaded mode: add clients before StartThreads");
  // Clients live on their site's first shard node; under sharding they route
  // each container to its owning shard instead of the node they sit on.
  SiteId node = shard_map_.ServerAt(site, 0);
  uint32_t port = next_client_port_++;
  // Threaded mode: clients round-robin across the worker executors, so client
  // work (serialization, retries, callbacks) parallelizes like server work.
  Executor* owner = runtime_ != nullptr
                        ? &runtime_->worker(clients_.size() % runtime_->workers())
                        : nullptr;
  clients_.push_back(std::make_unique<WalterClient>(
      net_.get(), node, port, options, owner != nullptr ? &owner->sim() : nullptr));
  if (owner != nullptr) {
    client_execs_[clients_.back().get()] = owner;
    client_execs_by_addr_[(static_cast<uint64_t>(node) << 32) | port] = owner;
  }
  if (!shard_map_.trivial()) {
    clients_.back()->SetRouter(
        [map = &shard_map_, site](ContainerId c) { return map->OwnerAt(c, site); });
  }
  // Every transaction the client opens pins its snapshot in the site registry,
  // at a floor read from the (current) local server's CommittedVTS — under
  // sharding the entrywise min across the site's shards, a lower bound on any
  // snapshot a shard could assign the transaction. Threaded mode pins at the
  // zero floor instead: reading other executors' CommittedVTS would race, and
  // with the GC coordinator stood down the floor's only job is to exist.
  if (runtime_ != nullptr) {
    clients_.back()->AttachPins(
        pin_registries_[site].get(),
        [n = shard_map_.num_servers()]() { return VectorTimestamp(n); });
  } else {
    clients_.back()->AttachPins(pin_registries_[site].get(), [this, site]() {
      VectorTimestamp floor = servers_[shard_map_.ServerAt(site, 0)]->committed_vts();
      for (size_t k = 1; k < shard_map_.shards_at(site); ++k) {
        const VectorTimestamp& v = servers_[shard_map_.ServerAt(site, k)]->committed_vts();
        for (SiteId i = 0; i < static_cast<SiteId>(floor.num_sites()); ++i) {
          floor.set(i, std::min(floor.at(i), v.at(i)));
        }
      }
      return floor;
    });
  }
  return clients_.back().get();
}

WalterServer& Cluster::ReplaceServer(SiteId s) {
  // Threaded mode: the whole replacement runs on the owner executor — the old
  // server's timers are canceled and the new one's scheduled on that
  // executor's simulator, and the caller blocks until the swap is done, so it
  // never observes a half-replaced server.
  RunOnServer(s, [this, s]() {
    // TakeFaultyImage == TakeDurableImage unless the test armed DiskFaults on
    // this server's disk; armed faults are consumed here, at the moment the
    // old medium is read back, which is where real torn writes and bit rot
    // surface.
    WalterServer::DurableImage image = servers_[s]->TakeFaultyImage();
    WalterServer::Options so = servers_[s]->options();
    Simulator* ssim = server_execs_.empty() || server_execs_[s] == nullptr
                          ? &sim_
                          : &server_execs_[s]->sim();
    servers_[s].reset();  // frees the endpoint address
    servers_[s] = std::make_unique<WalterServer>(ssim, net_.get(), so,
                                                 directories_[shard_map_.SiteOf(s)].get());
    servers_[s]->Restore(image);
    WirePinFloor(s);  // the registry outlives the server it was wired to
    if (observer_) {
      servers_[s]->SetCommitObserver(observer_);
    }
  });
  return *servers_[s];
}

Cluster::~Cluster() {
  if (runtime_ != nullptr) {
    runtime_->Stop();
  }
}

void Cluster::StartThreads() {
  WCHECK(runtime_ != nullptr, "StartThreads on a sim-mode cluster");
  for (auto& dir : directories_) {
    dir->Freeze();
  }
  runtime_->Start();
}

void Cluster::StopThreads() {
  WCHECK(runtime_ != nullptr, "StopThreads on a sim-mode cluster");
  runtime_->Stop();
}

void Cluster::RunOnServer(SiteId s, const std::function<void()>& fn) {
  if (runtime_ != nullptr) {
    server_execs_[s]->PostSync(fn);
  } else {
    fn();
  }
}

VectorTimestamp Cluster::SnapshotCommittedVts(SiteId s) {
  VectorTimestamp vts;
  RunOnServer(s, [this, s, &vts]() { vts = servers_[s]->committed_vts(); });
  return vts;
}

void Cluster::ObserveCommits(WalterServer::CommitObserver observer) {
  observer_ = std::move(observer);
  for (auto& server : servers_) {
    server->SetCommitObserver(observer_);
  }
}

void Cluster::ExportMetrics(MetricsRegistry& metrics) const {
  for (const auto& server : servers_) {
    server->ExportMetrics(metrics);
  }
  for (SiteId s = 0; s < pin_registries_.size(); ++s) {
    metrics.Set("gc.active_pins", s, static_cast<double>(pin_registries_[s]->active()));
  }
  if (gc_) {
    gc_->ExportMetrics(metrics);
  }
  net_->ExportMetrics(metrics);
  uint64_t retries = 0;
  uint64_t overload_retries = 0;
  uint64_t overload_sheds = 0;
  for (const auto& client : clients_) {
    retries += client->retries_sent();
    overload_retries += client->overload_retries_sent();
    overload_sheds += client->overload_sheds();
  }
  metrics.Set("client.retries_sent", kNoSite, static_cast<double>(retries));
  metrics.Set("client.overload_retries", kNoSite, static_cast<double>(overload_retries));
  metrics.Set("client.overload_sheds", kNoSite, static_cast<double>(overload_sheds));
}

}  // namespace walter
