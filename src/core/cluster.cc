#include "src/core/cluster.h"

#include <utility>

namespace walter {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)), sim_(options_.seed) {
  Topology topo = options_.topology ? *options_.topology
                                    : (options_.num_sites <= 4
                                           ? Topology::Ec2Subset(options_.num_sites)
                                           : Topology::Uniform(options_.num_sites, Millis(100),
                                                               Millis(0.5)));
  net_ = std::make_unique<Network>(&sim_, std::move(topo));
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    directories_.push_back(std::make_unique<ContainerDirectory>(options_.num_sites));
    WalterServer::Options so = options_.server;
    so.site = s;
    so.num_sites = options_.num_sites;
    servers_.push_back(
        std::make_unique<WalterServer>(&sim_, net_.get(), so, directories_[s].get()));
  }
}

void Cluster::UpsertContainerEverywhere(const ContainerInfo& info) {
  for (auto& dir : directories_) {
    dir->Upsert(info);
  }
}

WalterClient* Cluster::AddClient(SiteId site) { return AddClient(site, options_.client); }

WalterClient* Cluster::AddClient(SiteId site, WalterClient::Options options) {
  clients_.push_back(
      std::make_unique<WalterClient>(net_.get(), site, next_client_port_++, options));
  return clients_.back().get();
}

WalterServer& Cluster::ReplaceServer(SiteId s) {
  WalterServer::DurableImage image = servers_[s]->TakeDurableImage();
  WalterServer::Options so = servers_[s]->options();
  servers_[s].reset();  // frees the endpoint address
  servers_[s] = std::make_unique<WalterServer>(&sim_, net_.get(), so, directories_[s].get());
  servers_[s]->Restore(image);
  if (observer_) {
    servers_[s]->SetCommitObserver(observer_);
  }
  return *servers_[s];
}

void Cluster::ObserveCommits(WalterServer::CommitObserver observer) {
  observer_ = std::move(observer);
  for (auto& server : servers_) {
    server->SetCommitObserver(observer_);
  }
}

void Cluster::ExportMetrics(MetricsRegistry& metrics) const {
  for (const auto& server : servers_) {
    server->ExportMetrics(metrics);
  }
  net_->ExportMetrics(metrics);
  uint64_t retries = 0;
  for (const auto& client : clients_) {
    retries += client->retries_sent();
  }
  metrics.Set("client.retries_sent", kNoSite, static_cast<double>(retries));
}

}  // namespace walter
