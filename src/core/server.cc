#include "src/core/server.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace walter {

namespace {

// Wrapper around the checkpoint image: [magic][crc32 of the body][body]. Lets
// Restore detect a rotted checkpoint and degrade to WAL-only recovery instead
// of silently installing corrupt object state.
constexpr uint32_t kCheckpointMagic = 0x57434b50;  // "WCKP"

std::unique_ptr<WalDevice> MakeWalDevice(const WalterServer::Options& options) {
  if (options.wal_dir.empty()) {
    return nullptr;
  }
  return std::make_unique<FileWalDevice>(options.wal_dir);
}

// Deduplicated regular-object write set of an update buffer (the write-set of
// Figure 11 excludes cset updates).
std::vector<ObjectId> WriteSetOf(const std::vector<ObjectUpdate>& updates) {
  std::vector<ObjectId> ws;
  for (const auto& u : updates) {
    if (u.kind == UpdateKind::kData) {
      ws.push_back(u.oid);
    }
  }
  std::sort(ws.begin(), ws.end());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  return ws;
}

}  // namespace

WalterServer::WalterServer(Simulator* sim, Network* net, Options options,
                           ContainerDirectory* directory)
    : sim_(sim),
      net_(net),
      options_(options),
      directory_(directory),
      endpoint_(net, Address{options.site, kWalterPort}, sim),
      cpu_(sim, options.perf.cpu_capacity, "cpu@" + std::to_string(options.site)),
      disk_(sim, options.disk),
      store_(options.cache_bytes, MakeWalDevice(options)),
      clock_(options.site, options.clock),
      committed_vts_(options.num_sites),
      got_vts_(options.num_sites),
      durable_applied_(options.num_sites),
      pending_in_(options.num_sites),
      uncommitted_remote_(options.num_sites),
      durable_known_(options.num_sites, 0),
      site_active_(options.num_sites, true),
      dests_(options.num_sites),
      peer_floors_(options.num_sites),
      alive_(std::make_shared<bool>(true)) {
  endpoint_.Handle(kClientOp,
                   [this](const Message& m, RpcEndpoint::ReplyFn r) { HandleClientOp(m, std::move(r)); });
  endpoint_.Handle(kPrepare,
                   [this](const Message& m, RpcEndpoint::ReplyFn r) { HandlePrepare(m, std::move(r)); });
  endpoint_.Handle(kAbort2pc, [this](const Message& m, RpcEndpoint::ReplyFn) { HandleAbort2pc(m); });
  endpoint_.Handle(kCommitDecision,
                   [this](const Message& m, RpcEndpoint::ReplyFn) { HandleCommitDecision(m); });
  endpoint_.Handle(kPropagate, [this](const Message& m, RpcEndpoint::ReplyFn) { HandlePropagate(m); });
  endpoint_.Handle(kPropagateAck,
                   [this](const Message& m, RpcEndpoint::ReplyFn) { HandlePropagateAck(m); });
  endpoint_.Handle(kDsDurable, [this](const Message& m, RpcEndpoint::ReplyFn) { HandleDsDurable(m); });
  endpoint_.Handle(kVisibleAck, [this](const Message& m, RpcEndpoint::ReplyFn) { HandleVisibleAck(m); });
  endpoint_.Handle(kRemoteRead,
                   [this](const Message& m, RpcEndpoint::ReplyFn r) { HandleRemoteRead(m, std::move(r)); });
  endpoint_.Handle(kTxStatus,
                   [this](const Message& m, RpcEndpoint::ReplyFn r) { HandleTxStatus(m, std::move(r)); });
  endpoint_.Handle(kResync, [this](const Message& m, RpcEndpoint::ReplyFn) { HandleResync(m); });
  endpoint_.Handle(kFetchRecords, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandleFetchRecords(m, std::move(r));
  });
  if (options_.num_sites > 1 && options_.gossip_interval > 0) {
    StartGossip();
  }
  if (options_.idle_tx_timeout > 0) {
    SweepIdleTxs();
  }
}

WalterServer::~WalterServer() { *alive_ = false; }

SimDuration WalterServer::Jittered(SimDuration base) {
  if (base == 0 || options_.perf.jitter <= 0) {
    return base;
  }
  return static_cast<SimDuration>(static_cast<double>(base) *
                                  (1.0 + options_.perf.jitter * sim_->rng().NextDouble()));
}

SimDuration WalterServer::CostFor(const ClientOpRequest& req) const {
  const PerfModel& p = options_.perf;
  SimDuration cost = 0;
  switch (req.op) {
    case ClientOpKind::kRead:
    case ClientOpKind::kSetRead:
    case ClientOpKind::kSetReadId:
      cost += p.read_op;
      break;
    case ClientOpKind::kMultiRead:
      cost += p.read_op * static_cast<SimDuration>(std::max<size_t>(req.oids.size(), 1));
      break;
    case ClientOpKind::kWrite:
    case ClientOpKind::kSetAdd:
    case ClientOpKind::kSetDel:
      cost += p.buffer_op;
      break;
    case ClientOpKind::kNone:
      cost += p.start_op;
      break;
  }
  if (req.commit_after) {
    cost += p.commit_op;
  }
  return cost;
}

// ---------------------------------------------------------------------------
// Client operations (Figure 10)
// ---------------------------------------------------------------------------

void WalterServer::HandleClientOp(const Message& msg, RpcEndpoint::ReplyFn reply) {
  ClientOpRequest req = ClientOpRequest::Deserialize(msg.payload);
  WTRACE(sim_->Now(), TraceKind::kServerRecv, req.tid, options_.site, 0,
         static_cast<uint32_t>(req.op));
  std::function<void(ClientOpResponse)> respond = [reply = std::move(reply)](
                                                      ClientOpResponse resp) {
    Message m;
    m.payload = resp.Serialize();
    reply(std::move(m));
  };
  if (!AdmitClientOp(req, respond)) {
    return;
  }
  cpu_.Execute(Jittered(CostFor(req)),
               [this, req = std::move(req), respond = std::move(respond)]() mutable {
                 ProcessClientOp(req, std::move(respond));
               });
}

bool WalterServer::AdmitClientOp(const ClientOpRequest& req,
                                 std::function<void(ClientOpResponse)>& respond) {
  const bool enabled = options_.admission_max_queue > 0 || options_.admission_max_inflight > 0;
  if (!enabled) {
    return true;
  }
  const size_t queue = cpu_.queue_length();
  if (!req.abort) {
    const bool over_queue =
        options_.admission_max_queue > 0 && queue >= options_.admission_max_queue;
    const bool over_inflight = options_.admission_max_inflight > 0 &&
                               admitted_inflight_ >= options_.admission_max_inflight;
    if ((over_queue || over_inflight) && !IsAdmittedRetransmission(req)) {
      ++stats_.admit_rejects;
      ClientOpResponse resp;
      resp.status = StatusCode::kOverloaded;
      // Retry-after hint: roughly the time this CPU needs to drain its queue,
      // clamped so a client neither hammers back instantly nor sits out a
      // whole surge. Deterministic (no jitter) — the client adds its own.
      uint64_t drain = (static_cast<uint64_t>(queue) + 1) *
                       static_cast<uint64_t>(options_.perf.commit_op);
      resp.retry_after_us =
          std::clamp<uint64_t>(drain, static_cast<uint64_t>(Millis(1)),
                               static_cast<uint64_t>(Millis(100)));
      WTRACE(sim_->Now(), TraceKind::kAdmitReject, req.tid, options_.site, resp.retry_after_us,
             static_cast<uint32_t>(queue));
      respond(std::move(resp));
      return false;
    }
  }
  // Admitted: account it until the reply closure runs or is dropped — a parked
  // read holds its slot for as long as it holds server state. The token rides
  // `respond` by shared_ptr so chained/duplicated closures release it exactly
  // once, when the last copy dies.
  ++admitted_inflight_;
  stats_.admitted_inflight_peak =
      std::max<uint64_t>(stats_.admitted_inflight_peak, admitted_inflight_);
  if (queue + 1 > stats_.cpu_queue_peak) {
    stats_.cpu_queue_peak = queue + 1;
    WTRACE(sim_->Now(), TraceKind::kQueueDepth, 0, options_.site, queue + 1);
  }
  auto token = std::shared_ptr<void>(nullptr, [alive = alive_, this](void*) {
    if (*alive) {
      --admitted_inflight_;
    }
  });
  respond = [token = std::move(token),
             inner = std::move(respond)](ClientOpResponse resp) { inner(std::move(resp)); };
  return true;
}

bool WalterServer::IsAdmittedRetransmission(const ClientOpRequest& req) const {
  // A parked read keeps its reply closure registered under (tid, op_seq) for
  // the park's whole lifetime; a matching key means this very op was admitted
  // and is still being worked on.
  if (req.op_seq != 0 && parked_reads_.count({req.tid, req.op_seq}) > 0) {
    return true;
  }
  // A retransmitted commit with chained (2PC in flight, lock-parked,
  // gap-parked) or settled (committed/aborted) state short-circuits in
  // DedupRetransmittedCommit; bouncing it at admission would strand the
  // client without its outcome for as long as the overload lasts.
  if (req.commit_after &&
      (slow_commits_.contains(req.tid) || parked_commits_.contains(req.tid) ||
       gap_commit_waiters_.contains(req.tid) || committed_versions_.contains(req.tid) ||
       aborted_tids_.contains(req.tid))) {
    return true;
  }
  return false;
}

void WalterServer::ProcessClientOp(const ClientOpRequest& req,
                                   std::function<void(ClientOpResponse)> respond) {
  if (req.abort) {
    active_.erase(req.tid);
    ReleaseLocks(req.tid);
    aborted_tids_.insert(req.tid);
    RecordOutcome(req.tid);
    respond(ClientOpResponse{});
    return;
  }

  // A retransmitted commit (response lost, client retried) must be answered
  // from the recorded outcome, never re-applied.
  if (req.commit_after && DedupRetransmittedCommit(req, respond)) {
    return;
  }

  // Resolve the snapshot: carried by the client, held server-side, or new.
  auto it = active_.find(req.tid);
  VectorTimestamp vts;
  if (req.vts.num_sites() > 0) {
    vts = req.vts;
  } else if (it != active_.end()) {
    vts = it->second.start_vts;
  } else {
    vts = SnapshotNow();
  }

  // Buffering operations create/extend the server-side transaction state.
  ObjectUpdate update;
  bool is_update = true;
  switch (req.op) {
    case ClientOpKind::kWrite:
      update = ObjectUpdate::Data(req.oid, req.data);
      break;
    case ClientOpKind::kSetAdd:
      update = ObjectUpdate::Add(req.oid, req.elem);
      break;
    case ClientOpKind::kSetDel:
      update = ObjectUpdate::Del(req.oid, req.elem);
      break;
    default:
      is_update = false;
      break;
  }
  if (is_update) {
    ActiveTx& tx = active_[req.tid];
    tx.last_touch = sim_->Now();
    tx.mode = req.mode;  // the client stamps the same mode on every RPC
    if (tx.start_vts.num_sites() == 0) {
      tx.start_vts = vts;
    }
    if (tx.committing) {
      ClientOpResponse resp;
      resp.status = StatusCode::kFailedPrecondition;
      respond(std::move(resp));
      return;
    }
    if (req.op_seq != 0 && req.op_seq <= tx.max_op_seq) {
      // Retransmission of a buffering op whose response (not request) was
      // lost: the update is already buffered, just re-acknowledge.
      ++stats_.op_dedups;
    } else {
      tx.max_op_seq = std::max(tx.max_op_seq, req.op_seq);
      tx.updates.push_back(std::move(update));
    }
    it = active_.find(req.tid);
  }

  if (req.op == ClientOpKind::kRead || req.op == ClientOpKind::kSetRead ||
      req.op == ClientOpKind::kSetReadId || req.op == ClientOpKind::kMultiRead) {
    if (req.op_seq != 0) {
      auto pr = parked_reads_.find({req.tid, req.op_seq});
      if (pr != parked_reads_.end()) {
        // Retransmission of a read whose original is still parked (the park
        // outlived the client's RPC timeout): chain this reply onto the live
        // park. Starting a second DoRead chain here would hand the same
        // logical read a fresh starvation budget and count it starved once
        // per retransmission — the starvation metric and the watchdog verdict
        // would disagree about how many reads actually starved.
        ++stats_.read_park_dedups;
        auto prev = std::move(pr->second);
        pr->second = [prev = std::move(prev),
                      r = std::move(respond)](ClientOpResponse resp) {
          if (prev) {
            prev(resp);
          }
          r(std::move(resp));
        };
        return;
      }
    }
    ++stats_.reads;
    if (it != active_.end()) {
      it->second.last_touch = sim_->Now();
    }
    const ActiveTx* tx = it != active_.end() ? &it->second : nullptr;
    DoRead(req, vts, tx, std::move(respond));
    return;
  }

  if (req.commit_after) {
    ActiveTx tx;
    if (it != active_.end()) {
      tx = std::move(it->second);
      active_.erase(it);
    } else {
      tx.start_vts = vts;
    }
    tx.mode = req.mode;
    tx.read_oids = req.read_oids;  // serializable mode; empty otherwise
    DoCommit(req.tid, std::move(tx), req.want_durable, req.want_visible, req.reply_port,
             req.reply_site, std::move(respond));
    return;
  }

  // Pure buffering op (or explicit start): acknowledge with the snapshot.
  ClientOpResponse resp;
  resp.assigned_vts = vts;
  respond(std::move(resp));
}

std::optional<SimDuration> WalterServer::ReadParkDelay(uint32_t park_attempt) const {
  auto delay_at = [this](uint32_t a) -> SimDuration {
    if (a < options_.read_park_soft_retries) {
      return Millis(1);
    }
    uint32_t shift = std::min<uint32_t>(a - options_.read_park_soft_retries, 20);
    return std::min<SimDuration>(options_.read_park_backoff_cap, Millis(2) << shift);
  };
  SimDuration waited = 0;
  for (uint32_t a = 0; a < park_attempt; ++a) {
    waited += delay_at(a);
  }
  if (waited >= options_.read_park_budget) {
    return std::nullopt;
  }
  return delay_at(park_attempt);
}

void WalterServer::ParkRead(const ClientOpRequest& req, const VectorTimestamp& vts,
                            std::function<void(ClientOpResponse)> respond,
                            uint32_t park_attempt, SimDuration delay) {
  const std::pair<TxId, uint64_t> key{req.tid, req.op_seq};
  std::function<void(ClientOpResponse)> captured;
  if (req.op_seq != 0) {
    // Fresh park or re-park: (re)install the reply closure so a retransmission
    // arriving during the wait chains onto this park (see ProcessClientOp)
    // instead of opening a second chain with a fresh starvation budget.
    parked_reads_[key] = std::move(respond);
  } else {
    // Untagged request (raw test traffic): no identity to dedup on; the reply
    // rides the timer as before.
    captured = std::move(respond);
  }
  sim_->After(delay, Guard([this, req, vts, park_attempt, key,
                            captured = std::move(captured)]() mutable {
    std::function<void(ClientOpResponse)> respond = std::move(captured);
    if (req.op_seq != 0) {
      auto it = parked_reads_.find(key);
      if (it == parked_reads_.end()) {
        return;  // already resolved out from under the timer
      }
      respond = std::move(it->second);
      parked_reads_.erase(it);
    }
    auto at = active_.find(req.tid);
    const ActiveTx* tx2 = at != active_.end() ? &at->second : nullptr;
    DoRead(req, vts, tx2, std::move(respond), park_attempt + 1);
  }));
}

void WalterServer::DoRead(const ClientOpRequest& req, const VectorTimestamp& vts,
                          const ActiveTx* tx, std::function<void(ClientOpResponse)> respond,
                          uint32_t park_attempt) {
  ClientOpResponse resp;
  resp.assigned_vts = vts;

  if (!vts.Covers(store_.gc_frontier())) {
    // Snapshot below the GC frontier: folded bases may already include writes
    // the snapshot must not see, so no correct answer exists. Fail-stop with
    // kUnavailable (the client restarts on a fresh snapshot). Unreachable
    // while the snapshot-pin registry holds live transactions above the
    // frontier; reachable for a client-carried vts that outlived its pin.
    ++stats_.gc_stale_reads;
    WTRACE(sim_->Now(), TraceKind::kGcStaleRead, req.tid, options_.site);
    resp.status = StatusCode::kUnavailable;
    respond(std::move(resp));
    return;
  }

  if (options_.sharded && !committed_vts_.Covers(vts) &&
      req.mode != ConsistencyMode::kNmsi) {
    // Sharded mode only: the snapshot was assigned by a sibling shard whose
    // committed state runs ahead of ours for some origin, so our history may
    // still be missing versions the snapshot includes. The gap closes via
    // normal intra-site propagation (~min_batch_interval); park the read and
    // retry rather than serve a hole — bounded, so a gap that never closes
    // (partitioned sibling) starves out instead of re-parking forever. The
    // ActiveTx pointer is re-resolved on retry — the buffer can move or be
    // swept while we wait. NMSI transactions skip the park: serving from the
    // locally applied history is exactly the non-monotonic snapshot NMSI
    // permits (the read may miss versions the snapshot nominally includes).
    if (auto delay = ReadParkDelay(park_attempt)) {
      ParkRead(req, vts, std::move(respond), park_attempt, *delay);
    } else {
      ++stats_.reads_starved;
      WTRACE(sim_->Now(), TraceKind::kReadStarved, req.tid, options_.site, park_attempt);
      resp.status = StatusCode::kUnavailable;
      respond(std::move(resp));
    }
    return;
  }

  if (options_.early_lock_release && store_.has_watermarks()) {
    // Early lock release: a watermark marks a decided version our snapshot
    // includes but our history does not hold yet (the lock that used to delay
    // such snapshots is already released). Park until it commits here; the
    // watermark clears on the same propagation edge the lock release used to
    // ride, so the wait is the propagation gap, not a new failure mode.
    bool blocked = false;
    if (req.op == ClientOpKind::kMultiRead) {
      for (const auto& oid : req.oids) {
        if (store_.WatermarkBlocksRead(oid, vts)) {
          blocked = true;
          break;
        }
      }
    } else {
      blocked = store_.WatermarkBlocksRead(req.oid, vts);
    }
    if (blocked && req.mode == ConsistencyMode::kNmsi) {
      // NMSI: serve the latest applied version instead of waiting for the
      // decided one to commit here — the permitted non-monotonic read. The
      // write path is untouched (lost updates stay forbidden).
      ++stats_.nmsi_reads_unparked;
      WTRACE(sim_->Now(), TraceKind::kNmsiRead, req.tid, options_.site, park_attempt);
      blocked = false;
    }
    if (blocked) {
      if (auto delay = ReadParkDelay(park_attempt)) {
        ++stats_.watermark_read_waits;
        WTRACE(sim_->Now(), TraceKind::kWaitWatermark, req.tid, options_.site);
        ParkRead(req, vts, std::move(respond), park_attempt, *delay);
      } else {
        // The watermark outlived the whole retry budget: the decision edge
        // that clears it is gone (crashed origin, unhealed partition). Give
        // the client kUnavailable — it restarts on a fresh local snapshot,
        // which cannot cover the decided-but-uncommitted version.
        ++stats_.reads_starved;
        WTRACE(sim_->Now(), TraceKind::kReadStarved, req.tid, options_.site, park_attempt);
        resp.status = StatusCode::kUnavailable;
        respond(std::move(resp));
      }
      return;
    }
  }

  auto own_regular = [&](const ObjectId& oid) -> std::optional<std::string> {
    if (tx == nullptr) {
      return std::nullopt;
    }
    for (auto u = tx->updates.rbegin(); u != tx->updates.rend(); ++u) {
      if (u->oid == oid && u->kind == UpdateKind::kData) {
        return u->data;
      }
    }
    return std::nullopt;
  };
  auto overlay_cset_ops = [&](const ObjectId& oid, CountingSet* set) {
    if (tx == nullptr) {
      return;
    }
    for (const auto& u : tx->updates) {
      if (u.oid == oid && u.kind != UpdateKind::kData) {
        set->ApplyOp(u);
      }
    }
  };

  bool replicated = directory_->ReplicatedAt(req.oid, options_.site);

  switch (req.op) {
    case ClientOpKind::kRead: {
      if (auto own = own_regular(req.oid)) {
        resp.found = true;
        resp.data = *own;
        respond(std::move(resp));
        return;
      }
      store_.TouchCache(req.oid, ObjectType::kRegular, 128);
      if (replicated) {
        if (auto v = store_.ReadRegular(req.oid, vts)) {
          resp.found = true;
          resp.data = std::move(*v);
        }
        respond(std::move(resp));
        return;
      }
      // Not replicated locally: fetch from the preferred site and merge with
      // any of our own recent (unreplicated) writes (Figure 10).
      ++stats_.remote_reads;
      auto local = store_.LatestLocalVisible(req.oid, vts, options_.site);
      RemoteReadRequest rr;
      rr.oid = req.oid;
      rr.vts = vts;
      rr.is_cset = false;
      rr.caller = options_.site;
      rr.mode = req.mode;
      SiteId preferred = directory_->PreferredSite(req.oid);
      endpoint_.Call(
          Address{preferred, kWalterPort}, kRemoteRead, rr.Serialize(),
          [this, resp = std::move(resp), local, respond = std::move(respond)](
              Status status, const Message& m) mutable {
            if (!status.ok()) {
              resp.status = StatusCode::kUnavailable;
              respond(std::move(resp));
              return;
            }
            RemoteReadResponse remote = RemoteReadResponse::Deserialize(m.payload);
            // Merge: a local write to a remote-preferred object slow-committed
            // through the preferred site, so if we hold one it is the causally
            // newest visible version unless the remote value is a later write
            // of our own (compare seqnos when both originate here).
            if (local && remote.found && remote.version.site == options_.site) {
              if (remote.version.seqno > local->second.seqno) {
                resp.found = true;
                resp.data = std::move(remote.data);
              } else {
                resp.found = true;
                resp.data = local->first;
              }
            } else if (local) {
              resp.found = true;
              resp.data = local->first;
            } else if (remote.found) {
              resp.found = true;
              resp.data = std::move(remote.data);
            }
            respond(std::move(resp));
          },
          options_.resend_timeout);
      return;
    }
    case ClientOpKind::kSetRead:
    case ClientOpKind::kSetReadId: {
      store_.TouchCache(req.oid, ObjectType::kCset, 256);
      if (replicated) {
        CountingSet set = store_.ReadCset(req.oid, vts);
        overlay_cset_ops(req.oid, &set);
        if (req.op == ClientOpKind::kSetReadId) {
          resp.count = set.Count(req.elem);
        } else {
          ByteWriter w;
          set.Serialize(&w);
          resp.cset_bytes = w.Take();
        }
        respond(std::move(resp));
        return;
      }
      ++stats_.remote_reads;
      uint64_t min_seq = store_.MinLocalSeqno(req.oid, options_.site);
      CountingSet local = store_.FoldLocalCsetOps(req.oid, vts, options_.site);
      RemoteReadRequest rr;
      rr.oid = req.oid;
      rr.vts = vts;
      rr.is_cset = true;
      rr.caller = options_.site;
      rr.local_min_seqno = min_seq;
      rr.mode = req.mode;
      SiteId preferred = directory_->PreferredSite(req.oid);
      ObjectId elem = req.elem;
      bool want_count = req.op == ClientOpKind::kSetReadId;
      ObjectId oid = req.oid;
      endpoint_.Call(
          Address{preferred, kWalterPort}, kRemoteRead, rr.Serialize(),
          [this, resp = std::move(resp), local, elem, want_count, oid, tx_tid = req.tid,
           respond = std::move(respond)](Status status, const Message& m) mutable {
            if (!status.ok()) {
              resp.status = StatusCode::kUnavailable;
              respond(std::move(resp));
              return;
            }
            RemoteReadResponse remote = RemoteReadResponse::Deserialize(m.payload);
            if (!remote.found) {
              // The preferred site refused the snapshot (below its GC frontier
              // in frontier-gossip mode, where sites fold independently).
              resp.status = StatusCode::kUnavailable;
              respond(std::move(resp));
              return;
            }
            ByteReader r(remote.cset_bytes);
            CountingSet set = CountingSet::Deserialize(&r);
            set.MergeAdd(local);
            // Re-apply the transaction's own buffered ops (it may still exist).
            auto it = active_.find(tx_tid);
            if (it != active_.end()) {
              for (const auto& u : it->second.updates) {
                if (u.oid == oid && u.kind != UpdateKind::kData) {
                  set.ApplyOp(u);
                }
              }
            }
            if (want_count) {
              resp.count = set.Count(elem);
            } else {
              ByteWriter w;
              set.Serialize(&w);
              resp.cset_bytes = w.Take();
            }
            respond(std::move(resp));
          },
          options_.resend_timeout);
      return;
    }
    case ClientOpKind::kMultiRead: {
      // Batched read of many regular objects in one RPC (Section 6). Objects
      // not replicated locally read as their locally known state.
      for (const auto& oid : req.oids) {
        if (auto own = own_regular(oid)) {
          resp.values.push_back(std::move(own));
          continue;
        }
        store_.TouchCache(oid, ObjectType::kRegular, 128);
        resp.values.push_back(store_.ReadRegular(oid, vts));
      }
      respond(std::move(resp));
      return;
    }
    default:
      resp.status = StatusCode::kInvalidArgument;
      respond(std::move(resp));
      return;
  }
}

// ---------------------------------------------------------------------------
// Commit (Figures 11 and 12)
// ---------------------------------------------------------------------------

bool WalterServer::DedupRetransmittedCommit(const ClientOpRequest& req,
                                            std::function<void(ClientOpResponse)>& respond) {
  auto sc = slow_commits_.find(req.tid);
  if (sc != slow_commits_.end()) {
    // 2PC still deciding: attach this reply to whatever the outcome is.
    ++stats_.commit_dedups;
    auto prev = std::move(sc->second->reply);
    sc->second->reply = [prev = std::move(prev),
                         r = std::move(respond)](ClientOpResponse resp) {
      if (prev) {
        prev(resp);
      }
      r(std::move(resp));
    };
    return true;
  }
  auto pk = parked_commits_.find(req.tid);
  if (pk != parked_commits_.end()) {
    // Parked on a held lock (early lock release): chain onto the eventual
    // outcome like an in-flight 2PC.
    ++stats_.commit_dedups;
    auto prev = std::move(pk->second.respond);
    pk->second.respond = [prev = std::move(prev),
                          r = std::move(respond)](ClientOpResponse resp) {
      if (prev) {
        prev(resp);
      }
      r(std::move(resp));
    };
    return true;
  }
  auto gp = gap_commit_waiters_.find(req.tid);
  if (gp != gap_commit_waiters_.end()) {
    // Parked on a sibling-shard snapshot gap: same chaining. Before this
    // registry existed the parked transaction was findable nowhere (it rides
    // the retry timer by value), so a retransmission fell through to the
    // lost-state guard below and was refused while the original could still
    // commit — and a retransmission piggybacking an update would re-buffer
    // and commit the transaction a second time.
    ++stats_.commit_dedups;
    auto prev = std::move(gp->second);
    gp->second = [prev = std::move(prev), r = std::move(respond)](ClientOpResponse resp) {
      if (prev) {
        prev(resp);
      }
      r(std::move(resp));
    };
    return true;
  }
  auto cv = committed_versions_.find(req.tid);
  if (cv != committed_versions_.end()) {
    ++stats_.commit_dedups;
    auto ct = committed_tids_.find(req.tid);
    if (ct != committed_tids_.end()) {
      auto lc = local_commits_.find(ct->second);
      if (lc != local_commits_.end() && !lc->second.committed) {
        // The original commit is still group-commit flushing: reply when the
        // original reply fires.
        auto prev = std::move(lc->second.respond);
        lc->second.respond = [prev = std::move(prev),
                              r = std::move(respond)](ClientOpResponse resp) {
          if (prev) {
            prev(resp);
          }
          r(std::move(resp));
        };
        return true;
      }
    }
    ClientOpResponse resp;
    resp.commit_version = cv->second;
    respond(std::move(resp));
    return true;
  }
  if (aborted_tids_.contains(req.tid)) {
    ++stats_.commit_dedups;
    ClientOpResponse resp;
    resp.status = StatusCode::kAborted;
    respond(std::move(resp));
    return true;
  }
  if (req.op == ClientOpKind::kNone && req.vts.num_sites() > 0 &&
      !active_.contains(req.tid)) {
    // A bare commit for a transaction that issued prior operations (it carries
    // a snapshot) but for which we hold no buffer and no recorded outcome: the
    // state was lost (server crash). Refuse rather than commit an empty
    // transaction and silently drop the client's updates.
    ClientOpResponse resp;
    resp.status = StatusCode::kUnavailable;
    respond(std::move(resp));
    return true;
  }
  return false;
}

void WalterServer::DoCommit(TxId tid, ActiveTx tx, bool want_durable, bool want_visible,
                            uint32_t reply_port, SiteId reply_site,
                            std::function<void(ClientOpResponse)> respond, uint32_t park_attempt) {
  if (park_attempt == 0) {
    WTRACE(sim_->Now(), TraceKind::kCommitStart, tid, options_.site);
  }
  std::vector<ObjectId> writeset = WriteSetOf(tx.updates);

  if (tx.updates.empty()) {
    // Read-only transaction: nothing to commit.
    ClientOpResponse resp;
    resp.assigned_vts = tx.start_vts;
    respond(std::move(resp));
    return;
  }

  if (options_.sharded && !committed_vts_.Covers(tx.start_vts)) {
    // Sharded mode only: the snapshot came from a sibling shard that had
    // committed transactions we have not yet applied. Committing here now
    // would make this transaction visible (our snapshots would include it)
    // before its causal dependencies — a snapshot assigned at this shard
    // right after the commit could see the new version but not versions its
    // start snapshot saw, breaking PSI commit causality. Park the commit
    // until intra-site propagation closes the gap (same bounded policy as
    // parked reads), so the commit log at every server — origin included —
    // orders every transaction after everything its snapshot saw.
    if (auto delay = ReadParkDelay(park_attempt)) {
      ++stats_.commit_gap_parks;
      WTRACE(sim_->Now(), TraceKind::kCommitGapWait, tid, options_.site, park_attempt);
      // The buffered transaction rides the timer; the reply closure goes into
      // the waiter registry so a retransmitted commit (the park outlived the
      // client's RPC timeout) chains onto this park via
      // DedupRetransmittedCommit instead of being refused as lost state — or
      // worse, re-buffered and committed a second time.
      gap_commit_waiters_[tid] = std::move(respond);
      sim_->After(*delay, Guard([this, tid, tx = std::move(tx), want_durable, want_visible,
                                 reply_port, reply_site, park_attempt]() mutable {
        auto it = gap_commit_waiters_.find(tid);
        if (it == gap_commit_waiters_.end()) {
          return;  // already resolved out from under the timer
        }
        auto respond = std::move(it->second);
        gap_commit_waiters_.erase(it);
        DoCommit(tid, std::move(tx), want_durable, want_visible, reply_port, reply_site,
                 std::move(respond), park_attempt + 1);
      }));
    } else {
      ++stats_.commits_starved;
      ++stats_.aborts;
      WTRACE(sim_->Now(), TraceKind::kTxAbort, tid, options_.site,
             static_cast<uint64_t>(StatusCode::kUnavailable));
      // Distinct terminal mark (after kTxAbort so it stamps the watchdog
      // stage): a starved commit must not read as a starved read — they point
      // at different blockers (sibling-shard propagation vs a dead decision
      // edge) — and must never read as silently "stuck".
      WTRACE(sim_->Now(), TraceKind::kCommitStarved, tid, options_.site, park_attempt);
      ClientOpResponse resp;
      resp.status = StatusCode::kUnavailable;
      respond(std::move(resp));
    }
    return;
  }

  if (tx.mode == ConsistencyMode::kSerializable && !tx.read_oids.empty()) {
    // Backward OCC: the read set joins the write set in the conflict check
    // (Unmodified-since-snapshot + lock acquisition), turning PSI's
    // write-write check into read-write validation — which is exactly what
    // forbids write skew. Objects also written need no separate entry.
    std::sort(writeset.begin(), writeset.end());
    std::vector<ObjectId> reads;
    for (const auto& oid : tx.read_oids) {
      if (!std::binary_search(writeset.begin(), writeset.end(), oid) &&
          (reads.empty() || reads.back() != oid)) {
        reads.push_back(oid);
      }
    }
    tx.read_oids = std::move(reads);  // sorted, deduped, disjoint from writes
  } else {
    tx.read_oids.clear();
  }

  std::vector<SiteId> sites;
  for (const auto& oid : writeset) {
    SiteId s = directory_->PreferredSite(oid);
    if (std::find(sites.begin(), sites.end(), s) == sites.end()) {
      sites.push_back(s);
    }
  }
  // Serializable reads must be validated (and locked through the decision) at
  // their preferred sites too, so they widen the fast/slow split the same way
  // writes do.
  for (const auto& oid : tx.read_oids) {
    SiteId s = directory_->PreferredSite(oid);
    if (std::find(sites.begin(), sites.end(), s) == sites.end()) {
      sites.push_back(s);
    }
  }

  bool all_local = sites.empty() || (sites.size() == 1 && sites[0] == options_.site);
  if (all_local) {
    WTRACE(sim_->Now(), TraceKind::kFastPath, tid, options_.site);
    FastCommit(tid, std::move(tx), want_durable, want_visible, reply_port, reply_site,
               std::move(respond));
  } else {
    WTRACE(sim_->Now(), TraceKind::kSlowPath, tid, options_.site, 0,
           static_cast<uint32_t>(sites.size()));
    SlowCommit(tid, std::move(tx), std::move(sites), want_durable, want_visible, reply_port,
               reply_site, std::move(respond));
  }
}

void WalterServer::FastCommit(TxId tid, ActiveTx tx, bool want_durable, bool want_visible,
                              uint32_t reply_port, SiteId reply_site,
                              std::function<void(ClientOpResponse)> respond, SimTime deadline) {
  // Conflict checks of Figure 11: every written object unmodified since the
  // snapshot and unlocked. This whole function is one event — atomic. With
  // early lock release on, a held lock is a wait (the holder may abort), while
  // a modified object or a watermark is a permanent conflict — the conflicting
  // version is committed/decided, so this snapshot can never pass.
  std::vector<ObjectId> ws = WriteSetOf(tx.updates);
  if (!tx.read_oids.empty()) {
    // Serializable: the read set is validated (and parked on) exactly like
    // the write set — DoCommit already made it sorted and write-disjoint.
    ++stats_.ser_validations;
    WTRACE(sim_->Now(), TraceKind::kSerValidate, tid, options_.site,
           static_cast<uint64_t>(tx.read_oids.size()));
    ws.insert(ws.end(), tx.read_oids.begin(), tx.read_oids.end());
  }
  TxId blocker = 0;
  for (const auto& oid : ws) {
    if (lease_checker_ && !lease_checker_(oid.container)) {
      ++stats_.aborts;
      WTRACE(sim_->Now(), TraceKind::kTxAbort, tid, options_.site,
             static_cast<uint64_t>(StatusCode::kUnavailable));
      ClientOpResponse resp;
      resp.status = StatusCode::kUnavailable;
      respond(std::move(resp));
      return;
    }
    bool wm_blocks = options_.early_lock_release && store_.WatermarkBlocksWrite(oid);
    if (wm_blocks && options_.clock_commit &&
        !store_.WatermarkBlocksWrite(oid, tx.start_vts)) {
      // Clock-commit relaxation: every watermark version on oid is already in
      // this snapshot, so the decided write is not a conflict — it is history
      // we have seen. Safe locally: a snapshot assigned here Sees only
      // locally committed versions, and remote apply is causality-gated.
      ++stats_.clock_conflict_bypasses;
      wm_blocks = false;
    }
    bool conflict = !store_.Unmodified(oid, tx.start_vts) || wm_blocks;
    auto lock = locks_.find(oid);
    if (lock != locks_.end() && !conflict && options_.early_lock_release) {
      blocker = lock->second;
      continue;
    }
    if (lock != locks_.end() || conflict) {
      ++stats_.aborts;
      ++stats_.aborts_conflict;
      if (std::binary_search(tx.read_oids.begin(), tx.read_oids.end(), oid)) {
        ++stats_.aborts_ser_validation;
      }
      aborted_tids_.insert(tid);
      RecordOutcome(tid);
      WTRACE(sim_->Now(), TraceKind::kTxAbort, tid, options_.site,
             static_cast<uint64_t>(StatusCode::kAborted),
             static_cast<uint32_t>(AbortReason::kConflict));
      ClientOpResponse resp;
      resp.status = StatusCode::kAborted;
      respond(std::move(resp));
      return;
    }
  }
  if (blocker != 0) {
    // Blocked only by live locks: park until the holders resolve. A fast
    // commit is always younger than any current holder (its age starts now),
    // so wound-wait never favors it — it just waits its turn.
    if (deadline == 0) {
      deadline = sim_->Now() + options_.lock_wait_timeout;
    }
    ++stats_.lock_waits;
    WTRACE(sim_->Now(), TraceKind::kLockWait, tid, options_.site, blocker);
    ParkedCommit pc;
    pc.tx = std::move(tx);
    pc.want_durable = want_durable;
    pc.want_visible = want_visible;
    pc.reply_port = reply_port;
    pc.reply_site = reply_site;
    pc.respond = std::move(respond);
    parked_commits_[tid] = std::move(pc);
    uint64_t priority = static_cast<uint64_t>(deadline - options_.lock_wait_timeout) + 1;
    ParkLockWaiter(tid, priority, std::move(ws), deadline, [this, tid, deadline](bool timed_out) {
      auto node = parked_commits_.extract(tid);
      if (node.empty()) {
        return;
      }
      ParkedCommit pc = std::move(node.mapped());
      if (timed_out) {
        ++stats_.lock_wait_timeouts;
        ++stats_.aborts;
        ++stats_.aborts_timeout;
        aborted_tids_.insert(tid);
        RecordOutcome(tid);
        WTRACE(sim_->Now(), TraceKind::kTxAbort, tid, options_.site,
               static_cast<uint64_t>(StatusCode::kAborted),
               static_cast<uint32_t>(AbortReason::kTimeout));
        ClientOpResponse resp;
        resp.status = StatusCode::kAborted;
        pc.respond(std::move(resp));
        return;
      }
      FastCommit(tid, std::move(pc.tx), pc.want_durable, pc.want_visible, pc.reply_port,
                 pc.reply_site, std::move(pc.respond), deadline);
    });
    return;
  }
  ++stats_.fast_commits;
  CommitLocally(tid, tx, want_durable, want_visible, reply_port, reply_site, std::move(respond));
}

void WalterServer::CommitLocally(TxId tid, const ActiveTx& tx, bool want_durable,
                                 bool want_visible, uint32_t reply_port, SiteId reply_site,
                                 std::function<void(ClientOpResponse)> respond) {
  uint64_t seqno = ++curr_seqno_;
  TxRecord rec;
  rec.tid = tid;
  rec.origin = options_.site;
  rec.version = Version{options_.site, seqno};
  rec.start_vts = tx.start_vts;
  rec.updates = tx.updates;
  store_.Apply(rec);
  committed_versions_[tid] = rec.version;
  RecordOutcome(tid);
  WTRACE(sim_->Now(), TraceKind::kCommitApply, tid, options_.site, seqno);
  if (storage_hook_) {
    storage_hook_(StorageEvent::kWalAppend, store_.wal().base() + store_.wal().size());
    if (crashed_) {
      // The fuzzer killed us at this append boundary: the record is framed but
      // never flushed, so the client is never acked and the durable image does
      // not contain it.
      return;
    }
  }

  LocalCommit lc;
  lc.record = std::move(rec);
  lc.want_durable = want_durable;
  lc.want_visible = want_visible;
  lc.reply_port = reply_port;
  lc.reply_site = reply_site == kNoSite ? options_.site : reply_site;
  lc.respond = std::move(respond);
  local_commits_.emplace(seqno, std::move(lc));
  committed_tids_[tid] = seqno;

  size_t wal_frontier = store_.wal().base() + store_.wal().size();
  disk_.Flush([this, seqno, wal_frontier]() {
    if (crashed_) {
      return;  // the machine died with the flush in flight: bytes not durable
    }
    store_.wal().Sync();  // fsync on a file-backed WAL; no-op otherwise
    durable_wal_bytes_ = std::max(durable_wal_bytes_, wal_frontier);
    OnLocalFlushed(seqno);
  });
}

void WalterServer::OnLocalFlushed(uint64_t seqno) {
  auto it = local_commits_.find(seqno);
  if (it == local_commits_.end()) {
    return;
  }
  it->second.flushed = true;
  AdvanceLocalCommits();
}

void WalterServer::AdvanceLocalCommits() {
  bool advanced = false;
  while (true) {
    uint64_t next = committed_vts_.at(options_.site) + 1;
    auto it = local_commits_.find(next);
    if (it == local_commits_.end() || !it->second.flushed || it->second.committed) {
      break;
    }
    LocalCommit& lc = it->second;
    lc.committed = true;
    committed_vts_.Advance(options_.site);
    got_vts_.set(options_.site, committed_vts_.at(options_.site));
    // Own commits advance past the group-commit flush, so they are durable.
    durable_applied_.set(options_.site, committed_vts_.at(options_.site));
    ReleaseLocks(lc.record.tid);
    WTRACE(sim_->Now(), TraceKind::kCommitLocal, lc.record.tid, options_.site, next);
    if (lc.respond) {
      ClientOpResponse resp;
      resp.assigned_vts = lc.record.start_vts;
      resp.commit_version = lc.record.version;
      WTRACE(sim_->Now(), TraceKind::kCommitAck, lc.record.tid, options_.site,
             lc.record.version.seqno);
      lc.respond(std::move(resp));
      lc.respond = nullptr;
    }
    if (observer_) {
      observer_(options_.site, lc.record);
    }
    advanced = true;
  }
  if (advanced) {
    TryCommitRemotes();  // our commits may unblock remote-commit causality guards
    UpdateDsDurable();
    MaybeSendAllBatches();
  }
}

void WalterServer::SlowCommit(TxId tid, ActiveTx tx, std::vector<SiteId> sites,
                              bool want_durable, bool want_visible, uint32_t reply_port,
                              SiteId reply_site, std::function<void(ClientOpResponse)> respond) {
  ++stats_.slow_commits;
  auto state = std::make_shared<SlowCommitState>();
  state->tid = tid;
  state->tx = std::move(tx);
  state->sites = std::move(sites);
  state->reply = std::move(respond);
  state->want_durable = want_durable;
  state->want_visible = want_visible;
  state->reply_port = reply_port;
  state->reply_site = reply_site;
  slow_commits_[tid] = state;

  // Partition the write-set by preferred site. WriteSetOf is globally sorted,
  // so each site's bucket is sorted and its front() is the site's minimum oid.
  std::map<SiteId, std::vector<ObjectId>> by_site;
  for (const auto& oid : WriteSetOf(state->tx.updates)) {
    by_site[directory_->PreferredSite(oid)].push_back(oid);
  }
  if (!state->tx.read_oids.empty()) {
    // Serializable read set joins the per-site prepare buckets: reads are
    // validated and locked through 2PC exactly like writes (they just skip
    // the watermark install at decision time). Re-sort touched buckets so the
    // minimum-oid ordering invariants below still hold.
    std::set<SiteId> touched;
    for (const auto& oid : state->tx.read_oids) {
      SiteId s = directory_->PreferredSite(oid);
      by_site[s].push_back(oid);
      touched.insert(s);
    }
    for (SiteId s : touched) {
      std::sort(by_site[s].begin(), by_site[s].end());
    }
  }

  if (options_.early_lock_release) {
    // Wound-wait age: commit entry time (+1 so a priority of 0 stays the
    // "pre-watermark holder" sentinel even at simulated time zero).
    state->priority = static_cast<uint64_t>(sim_->Now()) + 1;
    state->by_site = std::move(by_site);
    // All participants co-sited with us (intra-site sharding)? Then prepare
    // RPCs are cheap and deadlock is the real tax: acquire the sites one at a
    // time in global minimum-oid order, so concurrent cross-shard commits
    // never hold-and-wait in opposite orders. Across WAN sites the old
    // parallel fan-out stays — serializing 100ms RTTs would be far worse than
    // the conflicts it avoids.
    bool co_sited = !options_.geo_site_of.empty();
    if (co_sited) {
      for (const auto& [s, oids] : state->by_site) {
        if (options_.geo_site_of[s] != options_.geo_site_of[options_.site]) {
          co_sited = false;
          break;
        }
      }
    }
    state->sequential = co_sited;
    if (state->sequential) {
      for (const auto& [s, oids] : state->by_site) {
        state->site_order.push_back(s);
      }
      std::sort(state->site_order.begin(), state->site_order.end(),
                [&](SiteId a, SiteId b) {
                  return state->by_site[a].front() < state->by_site[b].front();
                });
      AdvancePrepares(state);
      return;
    }
    state->votes_pending = state->by_site.size();
    if (state->votes_pending == 0) {
      FinishSlowCommit(state);
      return;
    }
    if (options_.clock_commit) {
      // Clock-ordered commit: pick a commit timestamp far enough in the
      // future that it is still ahead of every participant's local clock when
      // the prepare arrives (one-way delay bound + twice the skew bound to
      // translate coordinator clock → true time → participant clock, plus
      // slack so holds are non-degenerate). Participants hold their vote
      // until their clock passes it and release holds in (commit_ts,
      // coordinator, tid) order, which serializes conflicting WAN commits
      // without abort/retry cycles.
      state->commit_ts = clock_.LocalNow(sim_->Now()) + options_.clock_max_owd +
                         2 * clock_.skew_bound() + options_.clock_slack;
      ++stats_.clock_commits;
    }
    for (const auto& [s, oids] : state->by_site) {
      if (state->finished) {
        break;  // a synchronous single-participant local vote already decided
      }
      if (s == options_.site) {
        // The coordinator's own vote is never held: holding it would only
        // delay the fan-out it is part of, and the clock ordering it would
        // buy is already enforced at the remote participants.
        StartLocalVote(state, oids);
        continue;
      }
      PrepareRequest prep;
      prep.tid = tid;
      prep.oids = oids;
      prep.start_vts = state->tx.start_vts;
      prep.priority = state->priority;
      prep.commit_ts = state->commit_ts;
      prep.mode = state->tx.mode;
      prep.read_oids = state->tx.read_oids;
      SendPrepare(s, std::move(prep), state, 1);
    }
    return;
  }

  // Local vote first (synchronous).
  auto local_it = by_site.find(options_.site);
  if (local_it != by_site.end()) {
    if (!PrepareLocal(tid, local_it->second, state->tx.start_vts, options_.site,
                      state->tx.read_oids)) {
      state->any_no = true;
    }
    by_site.erase(local_it);
  }

  state->votes_pending = by_site.size();
  if (state->votes_pending == 0) {
    FinishSlowCommit(state);
    return;
  }

  for (auto& [s, oids] : by_site) {
    PrepareRequest prep;
    prep.tid = tid;
    prep.oids = std::move(oids);
    prep.start_vts = state->tx.start_vts;
    prep.mode = state->tx.mode;
    prep.read_oids = state->tx.read_oids;
    SendPrepare(s, std::move(prep), state, 1);
  }
}

void WalterServer::SendPrepare(SiteId dest, PrepareRequest prep,
                               std::shared_ptr<SlowCommitState> state, size_t attempt) {
  WTRACE(sim_->Now(), TraceKind::kPrepareSend, prep.tid, options_.site, attempt, dest);
  std::string payload = prep.Serialize();
  endpoint_.Call(
      Address{dest, kWalterPort}, kPrepare, std::move(payload),
      [this, state, dest, prep = std::move(prep), attempt](Status status,
                                                          const Message& m) mutable {
        if (state->finished) {
          return;
        }
        if (!status.ok() && attempt < options_.prepare_attempts) {
          // Transport failure with retry budget left: retransmit. Duplicate
          // prepares are harmless (participants re-affirm a held vote), and a
          // participant whose yes vote we never see is cleaned up by the lock
          // termination protocol.
          ++stats_.prepare_retries;
          SendPrepare(dest, std::move(prep), state, attempt + 1);
          return;
        }
        bool yes = false;
        AbortReason reason = AbortReason::kTimeout;  // transport-dead participant
        if (status.ok()) {
          PrepareResponse resp = PrepareResponse::Deserialize(m.payload);
          yes = resp.vote_yes;
          reason = resp.reason;
        }
        OnPrepareVote(state, dest, yes, reason);
      },
      options_.resend_timeout);
}

void WalterServer::OnPrepareVote(const std::shared_ptr<SlowCommitState>& state, SiteId voter,
                                 bool yes, AbortReason reason) {
  if (state->finished) {
    return;
  }
  if (yes) {
    if (voter != options_.site) {
      state->yes_votes.push_back(voter);
    }
  } else if (!state->any_no) {
    state->any_no = true;
    state->abort_reason = reason == AbortReason::kNone ? AbortReason::kConflict : reason;
  }
  if (state->sequential) {
    ++state->next_site;
    AdvancePrepares(state);  // finishes on a no vote or on exhaustion
    return;
  }
  if (--state->votes_pending == 0) {
    FinishSlowCommit(state);
  }
}

void WalterServer::AdvancePrepares(const std::shared_ptr<SlowCommitState>& state) {
  if (state->finished) {
    return;
  }
  if (state->any_no || state->next_site >= state->site_order.size()) {
    FinishSlowCommit(state);
    return;
  }
  SiteId s = state->site_order[state->next_site];
  const std::vector<ObjectId>& oids = state->by_site[s];
  if (s == options_.site) {
    StartLocalVote(state, oids);
    return;
  }
  PrepareRequest prep;
  prep.tid = state->tid;
  prep.oids = oids;
  prep.start_vts = state->tx.start_vts;
  prep.priority = state->priority;
  // Co-sited sequential acquisition: no commit_ts — ordered acquisition
  // already prevents the deadlocks clock holds exist to serialize, and a hold
  // would stall the chain.
  prep.mode = state->tx.mode;
  prep.read_oids = state->tx.read_oids;
  SendPrepare(s, std::move(prep), state, 1);
}

void WalterServer::StartLocalVote(const std::shared_ptr<SlowCommitState>& state,
                                  const std::vector<ObjectId>& oids, SimTime deadline) {
  if (state->finished) {
    return;
  }
  if (state->any_no) {
    // Wounded (or a parallel-mode peer voted no) while we were parked: don't
    // bother acquiring — cast a no so the vote accounting completes.
    OnPrepareVote(state, options_.site, false, AbortReason::kConflict);
    return;
  }
  TxId blocker = 0;
  PrepareCheck c = CheckPrepare(state->tid, oids, state->tx.start_vts, state->priority, &blocker);
  if (c == PrepareCheck::kWait) {
    if (deadline == 0) {
      deadline = sim_->Now() + options_.lock_wait_timeout;
    }
    ++stats_.lock_waits;
    WTRACE(sim_->Now(), TraceKind::kLockWait, state->tid, options_.site, blocker);
    ParkLockWaiter(state->tid, state->priority, oids, deadline,
                   [this, state, oids, deadline](bool timed_out) {
                     if (state->finished) {
                       return;
                     }
                     if (timed_out) {
                       ++stats_.lock_wait_timeouts;
                       OnPrepareVote(state, options_.site, false, AbortReason::kTimeout);
                       return;
                     }
                     StartLocalVote(state, oids, deadline);
                   });
    return;
  }
  if (c == PrepareCheck::kYes) {
    if (!lock_owners_.contains(state->tid)) {
      LockAll(state->tid, oids, options_.site, state->priority, state->tx.read_oids);
    }
    OnPrepareVote(state, options_.site, true, AbortReason::kNone);
    return;
  }
  OnPrepareVote(state, options_.site, false, AbortReason::kConflict);
}

void WalterServer::FinishSlowCommit(std::shared_ptr<SlowCommitState> state) {
  state->finished = true;
  slow_commits_.erase(state->tid);
  if (state->any_no) {
    // Release remote locks we acquired, and our own.
    for (SiteId s : state->yes_votes) {
      AbortMessage abort{state->tid};
      endpoint_.Send(Address{s, kWalterPort}, kAbort2pc, abort.Serialize());
    }
    ReleaseLocks(state->tid);
    ++stats_.aborts;
    switch (state->abort_reason) {
      case AbortReason::kWound:
        ++stats_.aborts_wound;
        break;
      case AbortReason::kTimeout:
        ++stats_.aborts_timeout;
        break;
      default:
        ++stats_.aborts_conflict;
        break;
    }
    aborted_tids_.insert(state->tid);
    RecordOutcome(state->tid);
    WTRACE(sim_->Now(), TraceKind::kTxAbort, state->tid, options_.site,
           static_cast<uint64_t>(StatusCode::kAborted),
           static_cast<uint32_t>(state->abort_reason));
    ClientOpResponse resp;
    resp.status = StatusCode::kAborted;
    state->reply(std::move(resp));
    return;
  }
  // All preferred sites hold locks for us: commit exactly as in fast commit.
  // Local locks (if any) are released when the commit is applied; remote locks
  // when the transaction propagates there (Figure 13).
  CommitLocally(state->tid, state->tx, state->want_durable, state->want_visible,
                state->reply_port, state->reply_site, std::move(state->reply));
  if (options_.early_lock_release && !crashed_) {
    // The decision is made and logged (CommitLocally framed the record): tell
    // the participants so they release their prepare locks NOW and cover the
    // gap with visibility watermarks, instead of holding them for the full
    // propagation round trip. Decision loss is benign — the participant then
    // just releases on the old propagation edge (or the stale sweep).
    if (!state->yes_votes.empty()) {
      auto cv = committed_versions_.find(state->tid);
      Version version = cv != committed_versions_.end() ? cv->second : Version{};
      CommitDecision decision;
      decision.tid = state->tid;
      decision.version = version;
      Payload payload(decision.Serialize());  // one buffer for all participants
      for (SiteId s : state->yes_votes) {
        endpoint_.Send(Address{s, kWalterPort}, kCommitDecision, payload);
      }
      stats_.decisions_sent += state->yes_votes.size();
      WTRACE(sim_->Now(), TraceKind::kDecisionSend, state->tid, options_.site, version.seqno,
             static_cast<uint32_t>(state->yes_votes.size()));
    }
    // Our own prepare locks can go too: the record is applied to the local
    // store, so Unmodified now rejects any conflicting writer — no watermark
    // needed for a local decided version (readers see it when CommittedVTS
    // advances past the flush; until then no snapshot covers it).
    ReleaseLocks(state->tid);
  }
}

bool WalterServer::PrepareLocal(TxId tid, const std::vector<ObjectId>& oids,
                                const VectorTimestamp& vts, SiteId coordinator,
                                const std::vector<ObjectId>& read_oids) {
  if (lock_owners_.contains(tid)) {
    return true;  // duplicate prepare (coordinator retried): re-affirm the vote
  }
  for (const auto& oid : oids) {
    if (lease_checker_ && !lease_checker_(oid.container)) {
      return false;
    }
    if (locks_.contains(oid) || !store_.Unmodified(oid, vts)) {
      return false;
    }
  }
  LockAll(tid, oids, coordinator, 0, read_oids);
  return true;
}

void WalterServer::HandlePrepare(const Message& msg, RpcEndpoint::ReplyFn reply) {
  PrepareRequest req = PrepareRequest::Deserialize(msg.payload);
  SiteId coordinator = msg.from.site;
  cpu_.Execute(Jittered(options_.perf.prepare_op), [this, req = std::move(req), coordinator,
                                                    reply = std::move(reply)]() {
    ++stats_.prepares_handled;
    WTRACE(sim_->Now(), TraceKind::kPrepareRecv, req.tid, options_.site, 0, coordinator);
    if (options_.early_lock_release) {
      // A removed coordinator works from a stale snapshot; refuse its prepares
      // until it is reintegrated.
      if (!site_active_[coordinator]) {
        ReplyPrepareVote(req.tid, coordinator, reply, false, AbortReason::kConflict);
        return;
      }
      if (options_.clock_commit && req.commit_ts != 0) {
        SimTime local = clock_.LocalNow(sim_->Now());
        if (local >= req.commit_ts) {
          // The coordinator's timestamp is already in our past (late arrival
          // or skew beyond the budget): vote immediately as classic 2PC and
          // tell the coordinator its hold budget was blown.
          ++stats_.clock_fallbacks;
          WTRACE(sim_->Now(), TraceKind::kClockFallback, req.tid, options_.site,
                 static_cast<uint64_t>(local - req.commit_ts), coordinator);
          AnswerPrepare(std::move(req), coordinator, std::move(reply), 0, true);
        } else {
          HoldPrepare(std::move(req), coordinator, std::move(reply));
        }
        return;
      }
      AnswerPrepare(std::move(req), coordinator, std::move(reply), 0);
      return;
    }
    PrepareResponse resp;
    // A removed coordinator works from a stale snapshot; refuse its prepares
    // until it is reintegrated.
    resp.vote_yes = site_active_[coordinator] &&
                    PrepareLocal(req.tid, req.oids, req.start_vts, coordinator, req.read_oids);
    WTRACE(sim_->Now(), TraceKind::kPrepareVote, req.tid, options_.site,
           resp.vote_yes ? 1 : 0, coordinator);
    Message m;
    m.payload = resp.Serialize();
    reply(std::move(m));
  });
}

void WalterServer::ReplyPrepareVote(TxId tid, SiteId coordinator,
                                    const RpcEndpoint::ReplyFn& reply, bool yes,
                                    AbortReason reason, bool clock_fallback) {
  PrepareResponse resp;
  resp.vote_yes = yes;
  resp.reason = yes ? AbortReason::kNone : reason;
  resp.clock_fallback = clock_fallback;
  WTRACE(sim_->Now(), TraceKind::kPrepareVote, tid, options_.site, yes ? 1 : 0, coordinator);
  Message m;
  m.payload = resp.Serialize();
  reply(std::move(m));
}

void WalterServer::AnswerPrepare(PrepareRequest req, SiteId coordinator,
                                 RpcEndpoint::ReplyFn reply, SimTime deadline,
                                 bool clock_fallback) {
  if (lock_waiters_.contains(req.tid)) {
    // A duplicate prepare while the first copy is parked (coordinator resend):
    // refuse rather than stack two deferred votes. The parked copy answers the
    // RPC it arrived on when it resolves; this reply reaches a dead call id.
    ReplyPrepareVote(req.tid, coordinator, reply, false, AbortReason::kConflict,
                     clock_fallback);
    return;
  }
  TxId blocker = 0;
  PrepareCheck c = CheckPrepare(req.tid, req.oids, req.start_vts, req.priority, &blocker);
  if (c == PrepareCheck::kWait) {
    if (deadline == 0) {
      deadline = sim_->Now() + options_.lock_wait_timeout;
    }
    ++stats_.lock_waits;
    WTRACE(sim_->Now(), TraceKind::kLockWait, req.tid, options_.site, blocker, coordinator);
    uint64_t priority = req.priority != 0
                            ? req.priority
                            : static_cast<uint64_t>(deadline - options_.lock_wait_timeout) + 1;
    std::vector<ObjectId> oids = req.oids;
    ParkLockWaiter(req.tid, priority, std::move(oids), deadline,
                   [this, req, coordinator, reply, deadline,
                    clock_fallback](bool timed_out) {
                     if (timed_out) {
                       ++stats_.lock_wait_timeouts;
                       ReplyPrepareVote(req.tid, coordinator, reply, false,
                                        AbortReason::kTimeout, clock_fallback);
                       return;
                     }
                     AnswerPrepare(req, coordinator, reply, deadline, clock_fallback);
                   });
    return;
  }
  if (c == PrepareCheck::kYes) {
    if (!lock_owners_.contains(req.tid)) {
      LockAll(req.tid, req.oids, coordinator, req.priority, req.read_oids);
    }
    ReplyPrepareVote(req.tid, coordinator, reply, true, AbortReason::kNone, clock_fallback);
    return;
  }
  ReplyPrepareVote(req.tid, coordinator, reply, false, AbortReason::kConflict, clock_fallback);
}

void WalterServer::HoldPrepare(PrepareRequest req, SiteId coordinator,
                               RpcEndpoint::ReplyFn reply) {
  auto key = std::make_tuple(req.commit_ts, coordinator, req.tid);
  if (held_prepares_.contains(key)) {
    // Coordinator resend while the first copy is held: refuse the duplicate
    // (same policy as a parked duplicate) — the held copy answers its own RPC.
    ReplyPrepareVote(req.tid, coordinator, reply, false, AbortReason::kConflict);
    return;
  }
  ++stats_.clock_holds;
  WTRACE(sim_->Now(), TraceKind::kClockHold, req.tid, options_.site,
         static_cast<uint64_t>(req.commit_ts - clock_.LocalNow(sim_->Now())), coordinator);
  held_prepares_.emplace(key, HeldPrepare{std::move(req), coordinator, std::move(reply)});
  ArmClockRelease();
}

void WalterServer::ArmClockRelease() {
  if (held_prepares_.empty()) {
    clock_timer_at_ = -1;
    return;
  }
  int64_t front_ts = std::get<0>(held_prepares_.begin()->first);
  // BaseTimeFor inverts the local clock: the earliest simulator instant at
  // which LocalNow() reaches front_ts. Never in the past (a step back between
  // arming and firing just re-arms).
  SimTime at = std::max(clock_.BaseTimeFor(front_ts), sim_->Now());
  if (clock_timer_at_ >= 0 && clock_timer_at_ <= at) {
    return;  // an armed timer already fires early enough
  }
  clock_timer_at_ = at;
  uint64_t gen = ++clock_timer_gen_;
  sim_->After(at - sim_->Now(), Guard([this, gen]() {
    if (gen != clock_timer_gen_) {
      return;  // superseded by a later (earlier-firing) arm
    }
    clock_timer_at_ = -1;
    ReleaseDueHeldPrepares();
  }));
}

void WalterServer::ReleaseDueHeldPrepares() {
  if (crashed_) {
    return;
  }
  bool released = false;
  while (!held_prepares_.empty()) {
    auto it = held_prepares_.begin();
    int64_t ts = std::get<0>(it->first);
    if (clock_.LocalNow(sim_->Now()) < ts) {
      break;
    }
    auto node = held_prepares_.extract(it);
    HeldPrepare h = std::move(node.mapped());
    released = true;
    WTRACE(sim_->Now(), TraceKind::kClockVote, h.req.tid, options_.site,
           static_cast<uint64_t>(ts), h.coordinator);
    if (!site_active_[h.coordinator]) {
      ReplyPrepareVote(h.req.tid, h.coordinator, h.reply, false, AbortReason::kConflict);
      continue;
    }
    AnswerPrepare(std::move(h.req), h.coordinator, std::move(h.reply), 0);
  }
  if (!released && !held_prepares_.empty()) {
    // The clock stepped backwards between arming and firing (LocalNow is
    // behind where BaseTimeFor projected): nothing is due yet, re-arm.
    ++stats_.clock_rearms;
  }
  ArmClockRelease();
}

WalterServer::PrepareCheck WalterServer::CheckPrepare(TxId tid,
                                                      const std::vector<ObjectId>& oids,
                                                      const VectorTimestamp& vts,
                                                      uint64_t priority, TxId* blocker) {
  if (lock_owners_.contains(tid)) {
    return PrepareCheck::kYes;  // duplicate prepare: re-affirm the held vote
  }
  bool blocked = false;
  for (const auto& oid : oids) {
    if (lease_checker_ && !lease_checker_(oid.container)) {
      return PrepareCheck::kNo;
    }
    // A watermark or a modified history is a decided/committed version this
    // snapshot does not cover: permanent conflict, waiting cannot help.
    if (!store_.Unmodified(oid, vts)) {
      return PrepareCheck::kNo;
    }
    if (options_.early_lock_release && store_.WatermarkBlocksWrite(oid)) {
      if (options_.clock_commit && !store_.WatermarkBlocksWrite(oid, vts)) {
        // Clock-commit relaxation: every decided-but-unapplied version on oid
        // is already Seen by this snapshot (a dependent back-to-back commit).
        // Not a conflict — and safe, because remote apply is gated on
        // got_vts_.Covers(start_vts), so this record applies only after the
        // watermarked dependency does.
        ++stats_.clock_conflict_bypasses;
      } else {
        return PrepareCheck::kNo;
      }
    }
    auto lock = locks_.find(oid);
    if (lock != locks_.end() && lock->second != tid) {
      blocked = true;
      if (blocker != nullptr) {
        *blocker = lock->second;
      }
    }
  }
  if (!blocked) {
    return PrepareCheck::kYes;
  }
  if (!options_.early_lock_release) {
    return PrepareCheck::kNo;  // legacy protocol: a held lock is a no vote
  }
  if (priority != 0) {
    // Wound-wait: a strictly younger holder whose 2PC this server coordinates
    // (still collecting votes, so its outcome is ours to decide) is wounded.
    // Holders whose coordinator is elsewhere already cast a yes vote we cannot
    // take back — the requester waits for those.
    for (const auto& oid : oids) {
      auto lock = locks_.find(oid);
      if (lock == locks_.end() || lock->second == tid) {
        continue;
      }
      auto sc = slow_commits_.find(lock->second);
      if (sc == slow_commits_.end()) {
        continue;
      }
      uint64_t holder_priority = sc->second->priority;
      bool older = holder_priority != 0 &&
                   (priority < holder_priority ||
                    (priority == holder_priority && tid < lock->second));
      if (older) {
        WoundLocal(sc->second, tid);
      }
    }
    blocked = false;
    for (const auto& oid : oids) {
      auto lock = locks_.find(oid);
      if (lock != locks_.end() && lock->second != tid) {
        blocked = true;
        if (blocker != nullptr) {
          *blocker = lock->second;
        }
        break;
      }
    }
    if (!blocked) {
      return PrepareCheck::kYes;
    }
  }
  return PrepareCheck::kWait;
}

void WalterServer::WoundLocal(const std::shared_ptr<SlowCommitState>& victim, TxId winner) {
  if (victim->finished) {
    return;
  }
  if (!victim->any_no) {
    victim->any_no = true;
    victim->abort_reason = AbortReason::kWound;
  }
  ++stats_.lock_wounds;
  WTRACE(sim_->Now(), TraceKind::kLockWound, victim->tid, options_.site, winner);
  // Free its local locks now; the victim's outstanding vote (an in-flight RPC
  // or its own parked local vote) drives the normal FinishSlowCommit abort,
  // which re-releases (idempotent) and aborts the remote yes-votes.
  ReleaseLocks(victim->tid);
}

void WalterServer::HandleAbort2pc(const Message& msg) {
  AbortMessage abort = AbortMessage::Deserialize(msg.payload);
  ReleaseLocks(abort.tid);
}

void WalterServer::HandleCommitDecision(const Message& msg) {
  CommitDecision decision = CommitDecision::Deserialize(msg.payload);
  SiteId origin = decision.version.site;
  if (!options_.early_lock_release || origin >= options_.num_sites ||
      origin == options_.site || !site_active_[origin]) {
    return;
  }
  ++stats_.decisions_received;
  auto it = lock_owners_.find(decision.tid);
  if (it == lock_owners_.end()) {
    return;  // already released: propagated here first, aborted, or swept
  }
  WTRACE(sim_->Now(), TraceKind::kDecisionRecv, decision.tid, options_.site,
         decision.version.seqno, origin);
  if (committed_vts_.at(origin) < decision.version.seqno) {
    // The decided record has not committed here yet: watermark every object
    // the lock was protecting so the read path takes over the PSI guarantee.
    for (const auto& oid : it->second.oids) {
      if (std::binary_search(it->second.read_oids.begin(), it->second.read_oids.end(), oid)) {
        // Serializable read-set lock: the decided record does not write this
        // object, so there is no invisible version to cover — a watermark
        // here would never clear.
        continue;
      }
      store_.AddVisibilityWatermark(oid, decision.version, decision.tid);
      ++stats_.watermarks_set;
    }
    watermark_installed_.emplace(decision.tid, sim_->Now());
    WTRACE(sim_->Now(), TraceKind::kWatermarkSet, decision.tid, options_.site,
           decision.version.seqno, origin);
  }
  ++stats_.early_releases;
  ReleaseLocks(decision.tid);
}

void WalterServer::LockAll(TxId tid, const std::vector<ObjectId>& oids, SiteId coordinator,
                           uint64_t priority, const std::vector<ObjectId>& read_oids) {
  WTRACE(sim_->Now(), TraceKind::kLockAcquire, tid, options_.site, oids.size(), coordinator);
  LockOwner& owner = lock_owners_[tid];
  owner.coordinator = coordinator;
  owner.acquired = sim_->Now();
  owner.priority = priority;
  owner.read_oids = read_oids;  // sorted; only consulted at decision time
  for (const auto& oid : oids) {
    locks_[oid] = tid;
    owner.oids.push_back(oid);
  }
}

void WalterServer::ReleaseLocks(TxId tid) {
  auto it = lock_owners_.find(tid);
  if (it == lock_owners_.end()) {
    return;
  }
  WTRACE(sim_->Now(), TraceKind::kLockRelease, tid, options_.site, it->second.oids.size());
  for (const auto& oid : it->second.oids) {
    auto lock = locks_.find(oid);
    if (lock != locks_.end() && lock->second == tid) {
      locks_.erase(lock);
    }
    if (!lock_waitlist_.empty()) {
      auto wl = lock_waitlist_.find(oid);
      if (wl != lock_waitlist_.end()) {
        pending_wakes_.insert(pending_wakes_.end(), wl->second.begin(), wl->second.end());
      }
    }
  }
  lock_owners_.erase(it);
  if (!pending_wakes_.empty() && !wake_scheduled_) {
    // Deferred wake: resuming a waiter can re-enter the commit machinery, and
    // ReleaseLocks is called from inside its loops (AdvanceLocalCommits,
    // TryCommitRemotes). Never scheduled with the flag off: the waitlist is
    // empty, so the legacy event sequence is untouched.
    wake_scheduled_ = true;
    sim_->After(0, Guard([this]() { WakeLockWaiters(); }));
  }
}

void WalterServer::ParkLockWaiter(TxId tid, uint64_t priority, std::vector<ObjectId> oids,
                                  SimTime deadline, std::function<void(bool)> resume) {
  auto existing = lock_waiters_.find(tid);
  if (existing != lock_waiters_.end()) {
    // Defensive: never stack two waiters under one tid (the old one's timer
    // would resume the new entry early). Callers guard against this; if it
    // happens anyway, the superseded waiter resolves as timed out.
    ResumeLockWaiter(tid, true);
  }
  LockWaiter& w = lock_waiters_[tid];
  w.tid = tid;
  w.priority = priority;
  w.oids = std::move(oids);
  w.deadline = deadline;
  w.resume = std::move(resume);
  for (const auto& oid : w.oids) {
    auto lock = locks_.find(oid);
    if (lock != locks_.end() && lock->second != tid) {
      lock_waitlist_[oid].push_back(tid);
    }
  }
  SimDuration delay = deadline > sim_->Now() ? deadline - sim_->Now() : 0;
  w.timeout_event = sim_->After(delay, Guard([this, tid]() {
                                  auto it = lock_waiters_.find(tid);
                                  if (it == lock_waiters_.end()) {
                                    return;
                                  }
                                  it->second.timeout_event = 0;
                                  ResumeLockWaiter(tid, true);
                                }));
}

void WalterServer::ResumeLockWaiter(TxId tid, bool timed_out) {
  auto it = lock_waiters_.find(tid);
  if (it == lock_waiters_.end()) {
    return;
  }
  if (it->second.timeout_event != 0) {
    sim_->Cancel(it->second.timeout_event);
  }
  for (const auto& oid : it->second.oids) {
    auto wl = lock_waitlist_.find(oid);
    if (wl != lock_waitlist_.end()) {
      std::erase(wl->second, tid);
      if (wl->second.empty()) {
        lock_waitlist_.erase(wl);
      }
    }
  }
  auto resume = std::move(it->second.resume);
  lock_waiters_.erase(it);
  resume(timed_out);
}

void WalterServer::WakeLockWaiters() {
  wake_scheduled_ = false;
  std::vector<TxId> tids;
  tids.swap(pending_wakes_);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  // Resume oldest-first (priority, tid): the deterministic grant order that
  // matches the wound-wait age ordering.
  std::vector<std::pair<uint64_t, TxId>> order;
  order.reserve(tids.size());
  for (TxId tid : tids) {
    auto it = lock_waiters_.find(tid);
    if (it != lock_waiters_.end()) {
      order.emplace_back(it->second.priority, tid);
    }
  }
  std::sort(order.begin(), order.end());
  for (const auto& [priority, tid] : order) {
    ResumeLockWaiter(tid, false);
  }
}

// ---------------------------------------------------------------------------
// Asynchronous propagation (Figure 13)
// ---------------------------------------------------------------------------

void WalterServer::MaybeSendAllBatches() {
  for (SiteId d = 0; d < options_.num_sites; ++d) {
    if (d != options_.site) {
      MaybeSendBatch(d);
    }
  }
}

void WalterServer::MaybeSendBatch(SiteId dest) {
  if (crashed_ || dest == options_.site) {
    return;
  }
  DestState& ds = dests_[dest];
  if (ds.in_flight || ds.batch_timer != 0) {
    return;
  }
  uint64_t from = ds.acked_through + 1;
  uint64_t to = committed_vts_.at(options_.site);
  // A seqno below the retained-commit floor whose WAL record was also
  // truncated is gone on purpose: retention-aware truncation requires it
  // durably applied at every site, so the destination provably has it even
  // across its own crashes. A replacement server (fresh acked_through) skips
  // that prefix instead of failing to re-serve it.
  uint64_t retained_floor =
      local_commits_.empty() ? to + 1 : local_commits_.begin()->first;
  if (from < retained_floor) {
    uint64_t first_avail = std::min(
        retained_floor, store_.wal().OldestSeqno(options_.site).value_or(retained_floor));
    if (first_avail > from) {
      ds.acked_through = first_avail - 1;
      from = first_avail;
    }
  }
  if (from > to) {
    return;
  }
  SimTime earliest = ds.last_batch_sent + options_.min_batch_interval;
  if (sim_->Now() < earliest) {
    ds.batch_timer = sim_->After(earliest - sim_->Now(), Guard([this, dest]() {
                                   dests_[dest].batch_timer = 0;
                                   MaybeSendBatch(dest);
                                 }));
    return;
  }

  to = std::min(to, from + options_.max_batch_records - 1);
  // Serialize the batch once per (from, to) range and share the buffer: other
  // destinations at the same ack state and resend retransmissions reuse it
  // instead of re-collecting and re-serializing the records. A committed
  // seqno's record is immutable, so the cache only needs invalidation when
  // seqnos are reused (TruncateOwnLog).
  if (batch_cache_.payload.empty() || batch_cache_.from != from || batch_cache_.to != to) {
    PropagateBatch batch;
    batch.origin = options_.site;
    // Seqnos below the retention floor were globally visible once and their
    // records released; a resynced peer that lost them to a crash is served from
    // the WAL (requires the prefix not to have been checkpointed away).
    uint64_t floor = local_commits_.empty() ? to + 1 : local_commits_.begin()->first;
    std::vector<TxRecord> released;
    if (from < floor) {
      released = CollectRecords(options_.site, from, std::min(to, floor - 1));
    }
    size_t ri = 0;
    for (uint64_t s = from; s <= to; ++s) {
      auto it = local_commits_.find(s);
      if (it != local_commits_.end()) {
        batch.records.push_back(it->second.record);
        continue;
      }
      WCHECK(ri < released.size() && released[ri].version.seqno == s,
             "missing commit record seqno=" << s << " (released and checkpointed?)");
      batch.records.push_back(std::move(released[ri++]));
    }
    batch_cache_ = {from, to, Payload(batch.Serialize())};
  }
  ++stats_.batches_sent;
  WTRACE(sim_->Now(), TraceKind::kPropagateSend, 0, options_.site, to, dest);
  endpoint_.Send(Address{dest, kWalterPort}, kPropagate, batch_cache_.payload);
  ds.in_flight = true;
  ds.sent_through = to;
  ds.last_batch_sent = sim_->Now();
  // Resend window: exponential backoff per consecutive unacked resend, with
  // jitter, so a partitioned/crashed peer is not hammered at a fixed period.
  SimDuration window = options_.resend_timeout;
  for (uint32_t i = 0; i < ds.resend_attempts && window < options_.resend_backoff_cap; ++i) {
    window *= 2;
  }
  window = std::min(window, options_.resend_backoff_cap);
  ds.resend_timer = sim_->After(Jittered(window), Guard([this, dest]() {
                                  DestState& d = dests_[dest];
                                  d.resend_timer = 0;
                                  d.in_flight = false;
                                  ++d.resend_attempts;
                                  ++stats_.batch_resends;
                                  MaybeSendBatch(dest);  // resend from the last cumulative ack
                                }));
}

void WalterServer::HandlePropagate(const Message& msg) {
  PropagateBatch batch = PropagateBatch::Deserialize(msg.payload);
  SiteId origin = batch.origin;
  if (origin >= options_.num_sites || origin == options_.site) {
    return;
  }
  if (!site_active_[origin]) {
    // A removed site that has not yet learned its removal may resend its
    // non-surviving (discarded) transactions; drop them unacknowledged. It
    // retransmits after reintegration, when its truncated log is consistent.
    return;
  }
  SimDuration cost = Jittered(options_.perf.remote_apply *
                              static_cast<SimDuration>(batch.records.size()));
  cpu_.Execute(cost, [this, batch = std::move(batch), origin]() {
    for (auto& rec : batch.records) {
      if (rec.version.seqno > got_vts_.at(origin)) {
        pending_in_[origin].emplace(rec.version.seqno, std::move(rec));
      }
    }
    DrainAllPending();
    WTRACE(sim_->Now(), TraceKind::kPropagateRecv, 0, options_.site, got_vts_.at(origin),
           origin);
    PropagateAck ack;
    ack.from = options_.site;
    ack.origin = origin;
    ack.received_through = got_vts_.at(origin);
    if (options_.frontier_gossip) {
      ack.stability_floor = StabilityFloor();
    }
    endpoint_.Send(Address{origin, kWalterPort}, kPropagateAck, ack.Serialize());
  });
}

void WalterServer::ApplyRemoteReady(SiteId origin) {
  if (crashed_) {
    return;
  }
  auto& pending = pending_in_[origin];
  while (!pending.empty()) {
    auto it = pending.begin();
    uint64_t next = got_vts_.at(origin) + 1;
    if (it->first < next) {
      pending.erase(it);  // duplicate
      continue;
    }
    if (it->first != next || !got_vts_.Covers(it->second.start_vts)) {
      break;  // gap or unmet causal dependency (Figure 13's receive guard)
    }
    TxRecord rec = std::move(it->second);
    pending.erase(it);

    // Store only the updates replicated at this site (Section 5.6's
    // optimization is receiver-side filtering here).
    TxRecord filtered = rec;
    std::erase_if(filtered.updates, [this](const ObjectUpdate& u) {
      return !directory_->ReplicatedAt(u.oid, options_.site);
    });
    store_.Apply(filtered);
    if (storage_hook_) {
      storage_hook_(StorageEvent::kWalAppend, store_.wal().base() + store_.wal().size());
      if (crashed_) {
        return;  // killed at this append boundary; the rest of the batch is lost
      }
    }
    size_t wal_frontier = store_.wal().base() + store_.wal().size();
    disk_.Flush([this, wal_frontier, origin, seqno = rec.version.seqno]() {
      if (crashed_) {
        return;  // the machine died with the flush in flight: bytes not durable
      }
      store_.wal().Sync();
      durable_wal_bytes_ = std::max(durable_wal_bytes_, wal_frontier);
      if (seqno > durable_applied_.at(origin)) {
        durable_applied_.set(origin, seqno);
      }
    });
    got_vts_.Advance(origin);
    ++stats_.remote_txns_applied;
    uncommitted_remote_[origin].emplace(rec.version.seqno, PendingRemote{std::move(rec)});
  }
}

void WalterServer::DrainAllPending() {
  // Applying one origin's transactions can satisfy another's causal guard.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (SiteId j = 0; j < options_.num_sites; ++j) {
      if (j == options_.site) {
        continue;
      }
      uint64_t before = got_vts_.at(j);
      ApplyRemoteReady(j);
      if (got_vts_.at(j) != before) {
        progressed = true;
      }
    }
  }
  TryCommitRemotes();
}

void WalterServer::TryCommitRemotes() {
  bool progressed = true;
  std::vector<bool> advanced(options_.num_sites, false);
  while (progressed) {
    progressed = false;
    for (SiteId j = 0; j < options_.num_sites; ++j) {
      if (j == options_.site) {
        continue;
      }
      auto& uncommitted = uncommitted_remote_[j];
      // Co-sited fast visibility (early-release mode): for a shard in the same
      // geo site the durability gate is unnecessary — the origin flushed the
      // record before sending it, and co-located shards share fate (§5.7), so
      // "durable at the origin" is as strong as our own flush. Skipping the
      // round-trip lets watermarked versions commit at LAN latency.
      bool co_sited = options_.early_lock_release && !options_.geo_site_of.empty() &&
                      options_.geo_site_of[j] == options_.geo_site_of[options_.site];
      while (!uncommitted.empty()) {
        auto it = uncommitted.begin();
        uint64_t next = committed_vts_.at(j) + 1;
        if (it->first != next || (!co_sited && next > durable_known_[j]) ||
            !committed_vts_.Covers(it->second.record.start_vts)) {
          break;  // Figure 13's remote-commit guard
        }
        committed_vts_.Advance(j);
        ReleaseLocks(it->second.record.tid);
        WTRACE(sim_->Now(), TraceKind::kRemoteCommit, it->second.record.tid, options_.site,
               it->first, j);
        if (observer_) {
          observer_(options_.site, it->second.record);
        }
        uncommitted.erase(it);
        advanced[j] = true;
        progressed = true;
      }
    }
  }
  for (SiteId j = 0; j < options_.num_sites; ++j) {
    if (j != options_.site && advanced[j]) {
      if (store_.has_watermarks()) {
        // Versions at or below the new committed frontier are in the local
        // store now; their watermarks have done their job.
        size_t cleared = store_.ClearVisibilityWatermarks(j, committed_vts_.at(j));
        if (cleared > 0) {
          stats_.watermarks_cleared += cleared;
          WTRACE(sim_->Now(), TraceKind::kWatermarkClear, 0, options_.site, cleared, j);
        }
      }
      VisibleAck ack;
      ack.from = options_.site;
      ack.origin = j;
      ack.committed_through = committed_vts_.at(j);
      endpoint_.Send(Address{j, kWalterPort}, kVisibleAck, ack.Serialize());
    }
  }
}

void WalterServer::HandlePropagateAck(const Message& msg) {
  PropagateAck ack = PropagateAck::Deserialize(msg.payload);
  if (ack.origin != options_.site || ack.from >= options_.num_sites) {
    return;
  }
  DestState& ds = dests_[ack.from];
  if (ack.stability_floor.num_sites() > 0 && site_active_[ack.from]) {
    // frontier-gossip mode: remember the peer's acked stability floor. Floors
    // are monotone per peer (committed/durable state only advances, and a pin
    // only lowers the floor it was created under), so max-merge is safe even
    // when acks arrive out of order.
    peer_floors_[ack.from].MergeMax(ack.stability_floor);
  }
  uint64_t before_ack = ds.acked_through;
  ds.acked_through = std::max(ds.acked_through, ack.received_through);
  if (ds.acked_through > before_ack) {
    ds.resend_attempts = 0;  // the peer is making progress: reset the backoff
  }
  // Flow control is a one-batch window: only an ack covering everything sent
  // opens it (a stale gossip ack must not spawn a parallel batch stream).
  if (ds.in_flight && ds.acked_through >= ds.sent_through) {
    if (ds.resend_timer != 0) {
      sim_->Cancel(ds.resend_timer);
      ds.resend_timer = 0;
    }
    ds.in_flight = false;
  }
  UpdateDsDurable();
  MaybeSendBatch(ack.from);
}

void WalterServer::SendResync(SiteId peer, bool is_reply) {
  ResyncState m;
  m.from = options_.site;
  m.got_through = got_vts_.at(peer);
  m.committed_through = committed_vts_.at(peer);
  m.durable_through = ds_durable_through_;
  m.is_reply = is_reply;
  endpoint_.Send(Address{peer, kWalterPort}, kResync, m.Serialize());
}

void WalterServer::HandleResync(const Message& msg) {
  ResyncState m = ResyncState::Deserialize(msg.payload);
  if (m.from >= options_.num_sites || m.from == options_.site) {
    return;
  }
  // Unlike cumulative acks (which only ever advance), a resync assigns the
  // peer's watermarks directly: after a crash its GotVTS may have rolled BACK,
  // and max()-merging would leave us believing it holds records it lost,
  // stranding its replication stream forever. Per-link FIFO ordering makes the
  // direct assignment safe (no older ack can overtake the resync).
  // The sender's disaster-safe watermark doubles as durability evidence for
  // its records: without it, a server restored at quiescence could re-apply
  // re-sent remote records but never commit them (kDsDurable only fires on
  // advance, and nothing advances after the cluster settled).
  durable_known_[m.from] = std::max(durable_known_[m.from], m.durable_through);
  DestState& ds = dests_[m.from];
  ds.acked_through = m.got_through;
  ds.sent_through = m.got_through;
  ds.visible_through = m.committed_through;
  ds.resend_attempts = 0;
  if (ds.resend_timer != 0) {
    sim_->Cancel(ds.resend_timer);
    ds.resend_timer = 0;
  }
  if (ds.batch_timer != 0) {
    sim_->Cancel(ds.batch_timer);
    ds.batch_timer = 0;
  }
  ds.in_flight = false;
  if (m.got_through > curr_seqno_) {
    // The peer holds own records the durable log no longer does. A record is
    // propagated only after it committed — hence after its flush — so a clean
    // restore can never trail a peer; only corruption past the fsync contract
    // (bit rot rolling the durable log back) gets here. Reserve the lost
    // seqnos immediately so new commits never reuse them, then fetch the
    // records back from the peer and re-install them in order.
    WTRACE(sim_->Now(), TraceKind::kRecoveryCorrupt, 0, options_.site,
           static_cast<uint64_t>(CorruptKind::kOwnRecordsLost), m.from);
    WLOG(kWarn, "resync@" << options_.site << ": peer " << m.from << " holds our records through "
                          << m.got_through << " but we restored only " << curr_seqno_
                          << "; backfilling");
    curr_seqno_ = m.got_through;
    backfill_target_ = std::max(backfill_target_, m.got_through);
    RequestOwnRecordBackfill(m.from, m.got_through);
  }
  if (!m.is_reply) {
    SendResync(m.from, true);
  }
  TryCommitRemotes();  // the refreshed durability evidence may unblock commits
  UpdateDsDurable();
  UpdateGloballyVisible();
  MaybeSendBatch(m.from);
}

void WalterServer::HandleFetchRecords(const Message& msg, RpcEndpoint::ReplyFn reply) {
  FetchRecordsRequest req = FetchRecordsRequest::Deserialize(msg.payload);
  FetchRecordsResponse resp;
  if (req.origin < options_.num_sites) {
    // Served from the WAL: this site's copies of the origin's records. The
    // copies were receiver-side filtered to this site's replica set, so a
    // backfilled record recovers exactly the updates some site still holds.
    resp.records = CollectRecords(req.origin, req.from_seqno, req.to_seqno);
  }
  Message m;
  m.payload = resp.Serialize();
  reply(std::move(m));
}

void WalterServer::RequestOwnRecordBackfill(SiteId peer, uint64_t through) {
  uint64_t have = committed_vts_.at(options_.site);
  if (have >= through || crashed_) {
    return;
  }
  FetchRecordsRequest req;
  req.from = options_.site;
  req.origin = options_.site;
  req.from_seqno = have + 1;
  req.to_seqno = through;
  endpoint_.Call(
      Address{peer, kWalterPort}, kFetchRecords, req.Serialize(),
      [this, peer, through](Status status, const Message& m) {
        if (status.ok()) {
          InstallOwnRecords(FetchRecordsResponse::Deserialize(m.payload).records, peer);
        }
        if (committed_vts_.at(options_.site) < through && !crashed_) {
          // Transport failure, or the peer's WAL no longer held the full range:
          // retry on the resend cadence until the gap closes (another peer's
          // resync may also restart the chase with fresher evidence).
          sim_->After(options_.resend_timeout, Guard([this, peer, through]() {
                        RequestOwnRecordBackfill(peer, through);
                      }));
        }
      },
      options_.resend_timeout);
}

void WalterServer::InstallOwnRecords(std::vector<TxRecord> records, SiteId peer) {
  uint64_t installed_through = 0;
  for (auto& rec : records) {
    uint64_t next = committed_vts_.at(options_.site) + 1;
    if (rec.origin != options_.site || rec.version.seqno != next) {
      continue;  // duplicate or out of order; only the sequential prefix installs
    }
    store_.Apply(rec);
    if (storage_hook_) {
      storage_hook_(StorageEvent::kWalAppend, store_.wal().base() + store_.wal().size());
      if (crashed_) {
        return;
      }
    }
    committed_vts_.Advance(options_.site);
    got_vts_.set(options_.site, next);
    installed_through = next;
    ++stats_.recovery_backfilled;
    WTRACE(sim_->Now(), TraceKind::kRecoveryBackfill, rec.tid, options_.site, next, peer);

    // Retain like a restored tail record: already acknowledged pre-crash, so
    // it re-enters the replication pipeline without a client reply.
    LocalCommit lc;
    lc.record = std::move(rec);
    lc.flushed = true;
    lc.committed = true;
    committed_tids_[lc.record.tid] = next;
    committed_versions_[lc.record.tid] = lc.record.version;
    RecordOutcome(lc.record.tid);
    if (observer_) {
      observer_(options_.site, lc.record);
    }
    local_commits_.emplace(next, std::move(lc));
  }
  if (installed_through == 0) {
    return;
  }
  batch_cache_ = {};  // ranges crossing the healed gap must re-serialize
  size_t wal_frontier = store_.wal().base() + store_.wal().size();
  disk_.Flush([this, wal_frontier, installed_through]() {
    if (crashed_) {
      return;  // the machine died with the flush in flight: bytes not durable
    }
    store_.wal().Sync();
    durable_wal_bytes_ = std::max(durable_wal_bytes_, wal_frontier);
    if (durable_applied_.at(options_.site) < installed_through) {
      durable_applied_.set(options_.site, installed_through);
    }
  });
  AdvanceLocalCommits();  // queued post-restore commits may now be contiguous
  TryCommitRemotes();
  UpdateDsDurable();
  MaybeSendAllBatches();
}

bool WalterServer::IsDsDurableQuorum(const TxRecord& record) const {
  size_t f = options_.f < 0 ? options_.num_sites - 1 : static_cast<size_t>(options_.f);
  uint64_t seqno = record.version.seqno;
  for (const auto& u : record.updates) {
    ContainerInfo info = directory_->Get(u.oid.container);
    // Replicas at §5.7-removed sites are not part of the configuration: they
    // neither count toward the quorum nor toward its size (with f = all, a
    // removed replica would otherwise block durability — and with it global
    // visibility — until reintegration).
    size_t replica_count = 0;
    size_t have = 0;
    bool preferred_has = false;
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      bool in_config = (s == options_.site) || site_active_[s];
      if (!in_config || !info.ReplicatedAt(s)) {
        continue;
      }
      ++replica_count;
      bool received = (s == options_.site) || dests_[s].acked_through >= seqno;
      if (received) {
        ++have;
        if (s == info.preferred_site) {
          preferred_has = true;
        }
      }
    }
    size_t needed = std::min(f + 1, replica_count);
    if (!info.ReplicatedAt(info.preferred_site) ||
        (info.preferred_site != options_.site && !site_active_[info.preferred_site])) {
      preferred_has = true;  // no in-config preferred replica to wait for
    }
    if (have < needed || !preferred_has) {
      return false;
    }
  }
  return true;
}

void WalterServer::UpdateDsDurable() {
  uint64_t before = ds_durable_through_;
  while (true) {
    uint64_t next = ds_durable_through_ + 1;
    auto it = local_commits_.find(next);
    if (it == local_commits_.end() || !it->second.committed ||
        !IsDsDurableQuorum(it->second.record)) {
      break;
    }
    it->second.ds_durable = true;
    ds_durable_through_ = next;
    WTRACE(sim_->Now(), TraceKind::kDsDurable, it->second.record.tid, options_.site, next);
    if (it->second.want_durable) {
      NotifyClient(it->second.reply_site, it->second.reply_port, kDurableNotify,
                   it->second.record.tid);
    }
  }
  if (ds_durable_through_ != before) {
    DsDurableMessage m;
    m.origin = options_.site;
    m.durable_through = ds_durable_through_;
    Payload announce = m.Serialize();  // one buffer shared by every destination
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      if (s != options_.site) {
        endpoint_.Send(Address{s, kWalterPort}, kDsDurable, announce);
      }
    }
    UpdateGloballyVisible();
  }
}

void WalterServer::HandleDsDurable(const Message& msg) {
  DsDurableMessage m = DsDurableMessage::Deserialize(msg.payload);
  if (m.origin >= options_.num_sites || m.origin == options_.site || !site_active_[m.origin]) {
    return;
  }
  durable_known_[m.origin] = std::max(durable_known_[m.origin], m.durable_through);
  TryCommitRemotes();
}

void WalterServer::HandleVisibleAck(const Message& msg) {
  VisibleAck ack = VisibleAck::Deserialize(msg.payload);
  if (ack.origin != options_.site || ack.from >= options_.num_sites) {
    return;
  }
  DestState& ds = dests_[ack.from];
  ds.visible_through = std::max(ds.visible_through, ack.committed_through);
  UpdateGloballyVisible();
}

void WalterServer::UpdateGloballyVisible() {
  uint64_t v = std::min(committed_vts_.at(options_.site), ds_durable_through_);
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    if (s != options_.site && site_active_[s]) {
      // A §5.7-removed site can never send a visibility ack; counting it would
      // freeze the watermark and retain local_commits_ forever. "Globally
      // visible" means visible at every site of the current configuration. A
      // reintegrated site that misses released records is gap-filled from the
      // WAL, whose retention floors still count removed sites.
      v = std::min(v, dests_[s].visible_through);
    }
  }
  while (visible_through_ < v) {
    ++visible_through_;
    auto it = local_commits_.find(visible_through_);
    if (it != local_commits_.end()) {
      WTRACE(sim_->Now(), TraceKind::kVisible, it->second.record.tid, options_.site,
             visible_through_);
      if (it->second.want_visible) {
        NotifyClient(it->second.reply_site, it->second.reply_port, kVisibleNotify,
                     it->second.record.tid);
      }
      // Globally visible implies received everywhere: safe to stop retaining.
      committed_tids_.erase(it->second.record.tid);
      local_commits_.erase(it);
    }
  }
}

void WalterServer::NotifyClient(SiteId site, uint32_t port, uint32_t type, TxId tid) {
  if (port == 0) {
    return;
  }
  TxNotify n{tid};
  endpoint_.Send(Address{site == kNoSite ? options_.site : site, port}, type, n.Serialize());
}

void WalterServer::StartGossip() {
  sim_->After(options_.gossip_interval, Guard([this]() {
    if (!crashed_) {
      SweepStaleLocks();
      DsDurableMessage m;
      m.origin = options_.site;
      m.durable_through = ds_durable_through_;
      Payload announce = m.Serialize();  // shared across destinations
      for (SiteId s = 0; s < options_.num_sites; ++s) {
        if (s == options_.site) {
          continue;
        }
        endpoint_.Send(Address{s, kWalterPort}, kDsDurable, announce);
        PropagateAck ack;
        ack.from = options_.site;
        ack.origin = s;
        ack.received_through = got_vts_.at(s);
        if (options_.frontier_gossip) {
          // Refresh the floor even when idle, so frontiers keep advancing
          // without new propagation traffic.
          ack.stability_floor = StabilityFloor();
        }
        endpoint_.Send(Address{s, kWalterPort}, kPropagateAck, ack.Serialize());
        VisibleAck vis;
        vis.from = options_.site;
        vis.origin = s;
        vis.committed_through = committed_vts_.at(s);
        endpoint_.Send(Address{s, kWalterPort}, kVisibleAck, vis.Serialize());
      }
      if (options_.frontier_gossip) {
        GossipFrontierGc();
      }
    }
    StartGossip();
  }));
}

void WalterServer::SweepIdleTxs() {
  sim_->After(options_.idle_tx_timeout / 2, Guard([this]() {
    if (!crashed_) {
      for (auto it = active_.begin(); it != active_.end();) {
        // A buffered transaction whose client went silent: drop it. In-flight
        // commits (committing flag) resolve through the commit path instead.
        if (!it->second.committing &&
            sim_->Now() - it->second.last_touch > options_.idle_tx_timeout) {
          aborted_tids_.insert(it->first);
          RecordOutcome(it->first);
          it = active_.erase(it);
        } else {
          ++it;
        }
      }
    }
    SweepIdleTxs();
  }));
}

// ---------------------------------------------------------------------------
// Remote reads (Section 4.3)
// ---------------------------------------------------------------------------

void WalterServer::HandleRemoteRead(const Message& msg, RpcEndpoint::ReplyFn reply) {
  RemoteReadRequest req = RemoteReadRequest::Deserialize(msg.payload);
  cpu_.Execute(Jittered(options_.perf.read_op), [this, req = std::move(req),
                                                 reply = std::move(reply)]() {
    AnswerRemoteRead(req, reply);
  });
}

void WalterServer::AnswerRemoteRead(RemoteReadRequest req, RpcEndpoint::ReplyFn reply,
                                    uint32_t park_attempt) {
  {
    RemoteReadResponse resp;
    bool wm_blocked = options_.early_lock_release && store_.has_watermarks() &&
                      store_.WatermarkBlocksRead(req.oid, req.vts);
    if (wm_blocked && req.mode == ConsistencyMode::kNmsi) {
      // NMSI: answer from the latest applied version instead of waiting for
      // the decided one — the permitted non-monotonic read, remote edition.
      ++stats_.nmsi_reads_unparked;
      WTRACE(sim_->Now(), TraceKind::kNmsiRead, 0, options_.site, park_attempt, req.caller);
      wm_blocked = false;
    }
    if (wm_blocked) {
      // The caller's snapshot covers a decided-but-uncommitted version of this
      // object: park and retry, same as a local read behind a watermark. On a
      // starved-out watermark the reply is withheld (found=false for csets),
      // so the caller's RPC resolves to kUnavailable like the gc-stale path.
      if (auto delay = ReadParkDelay(park_attempt)) {
        ++stats_.watermark_read_waits;
        WTRACE(sim_->Now(), TraceKind::kWaitWatermark, 0, options_.site, 0, req.caller);
        sim_->After(*delay, Guard([this, req, reply, park_attempt]() {
          AnswerRemoteRead(req, reply, park_attempt + 1);
        }));
        return;
      }
      // Counted apart from client-read starvation: a starved remote read has
      // no client RPC of its own (the caller times out into kUnavailable), so
      // folding it into reads_starved would make that metric disagree with
      // the per-client kReadStarved verdicts under surge.
      ++stats_.remote_reads_starved;
      WTRACE(sim_->Now(), TraceKind::kReadStarved, 0, options_.site, park_attempt, req.caller);
      if (req.is_cset) {
        Message m;
        m.payload = resp.Serialize();
        reply(std::move(m));
      }
      return;
    }
    if (!req.vts.Covers(store_.gc_frontier())) {
      // The caller's snapshot is below OUR frontier (possible in
      // frontier-gossip mode, where sites fold independently). Answering from
      // a folded base could double-count ops the caller also holds or leak
      // too-new regular values. Refuse: found=false maps to kUnavailable at a
      // cset caller; for regular reads the reply is withheld so the caller's
      // RPC times out into kUnavailable instead of reading nil.
      ++stats_.gc_stale_reads;
      WTRACE(sim_->Now(), TraceKind::kGcStaleRead, 0, options_.site, 0, req.caller);
      if (req.is_cset) {
        Message m;
        m.payload = resp.Serialize();
        reply(std::move(m));
      }
      return;
    }
    if (req.is_cset) {
      CountingSet set =
          store_.ReadCsetExcluding(req.oid, req.vts, req.caller, req.local_min_seqno);
      ByteWriter w;
      set.Serialize(&w);
      resp.cset_bytes = w.Take();
      resp.found = true;
    } else if (auto v = store_.ReadRegularVersioned(req.oid, req.vts)) {
      resp.found = true;
      resp.data = std::move(v->first);
      resp.version = v->second;
    }
    Message m;
    m.payload = resp.Serialize();
    reply(std::move(m));
  }
}

// ---------------------------------------------------------------------------
// Failure handling and maintenance (Sections 5.7 and 6)
// ---------------------------------------------------------------------------

std::string WalterServer::BuildCheckpointImage() const {
  ByteWriter body;
  body.PutString(store_.SerializeCheckpoint());
  body.PutVts(got_vts_);
  // Local transactions still replicating (not yet globally visible): the
  // replacement server must be able to resume their propagation (Section 6).
  body.PutU32(static_cast<uint32_t>(local_commits_.size()));
  for (const auto& [seqno, lc] : local_commits_) {
    lc.record.Serialize(&body);
  }
  // CRC wrapper: Restore rejects a rotted image instead of installing it.
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU32(Crc32(body.data()));
  std::string out = w.Take();
  out += body.data();
  return out;
}

void WalterServer::Checkpoint() {
  checkpoint_image_ = BuildCheckpointImage();
  checkpoint_wal_base_ = store_.wal().base() + store_.wal().size();
  if (storage_hook_) {
    storage_hook_(StorageEvent::kCheckpoint, checkpoint_wal_base_);
    if (crashed_) {
      return;  // killed between the checkpoint write and the truncation
    }
  }
  store_.wal().TruncatePrefix(checkpoint_wal_base_);
  if (storage_hook_) {
    storage_hook_(StorageEvent::kWalTruncate, checkpoint_wal_base_);
  }
}

void WalterServer::CheckpointRetaining(const VectorTimestamp& wal_floors) {
  checkpoint_image_ = BuildCheckpointImage();
  checkpoint_wal_base_ = store_.wal().base() + store_.wal().size();
  if (storage_hook_) {
    storage_hook_(StorageEvent::kCheckpoint, checkpoint_wal_base_);
    if (crashed_) {
      return;  // killed between the checkpoint write and the truncation
    }
  }
  // Truncate only records every in-config site (and every removed site, via
  // its last-known watermark — reintegration gap-fills from here) has durably
  // applied; the rest stays for resyncs and CollectRecords.
  size_t safe = store_.wal().SafePrefix(wal_floors, checkpoint_wal_base_);
  size_t released = safe > store_.wal().base() ? safe - store_.wal().base() : 0;
  store_.wal().TruncatePrefix(safe);
  stats_.wal_truncated_bytes += released;
  WTRACE(sim_->Now(), TraceKind::kGcCheckpoint, 0, options_.site, released);
  if (storage_hook_) {
    storage_hook_(StorageEvent::kWalTruncate, safe);
  }
}

void WalterServer::Crash() {
  crashed_ = true;
  endpoint_.SetDown(true);
}

WalterServer::DurableImage WalterServer::TakeDurableImage() const {
  DurableImage image;
  image.checkpoint = checkpoint_image_;
  const Wal& wal = store_.wal();
  image.wal_base = wal.base();
  size_t durable_len = durable_wal_bytes_ > wal.base() ? durable_wal_bytes_ - wal.base() : 0;
  durable_len = std::min(durable_len, wal.bytes().size());
  image.wal_bytes = wal.bytes().substr(0, durable_len);
  return image;
}

WalterServer::DurableImage WalterServer::TakeFaultyImage() {
  DurableImage image = TakeDurableImage();
  DiskFaults f = disk_.TakeFaults();
  if (f.torn_tail) {
    // Expose a prefix of the in-flight (unflushed) bytes, possibly ending
    // mid-frame. Flush-acknowledged bytes are never torn, so the durable
    // prefix is untouched and no acked commit can be lost this way.
    const std::string& all = store_.wal().bytes();
    size_t durable_len = image.wal_bytes.size();
    size_t tail_len = all.size() > durable_len ? all.size() - durable_len : 0;
    size_t add = std::min(f.torn_tail_bytes, tail_len);
    image.wal_bytes.append(all, durable_len, add);
  }
  if (f.bit_rot && !image.wal_bytes.empty()) {
    uint8_t mask = f.bit_rot_mask != 0 ? f.bit_rot_mask : uint8_t{1};
    size_t pos = f.bit_rot_offset % image.wal_bytes.size();
    image.wal_bytes[pos] = static_cast<char>(
        static_cast<uint8_t>(image.wal_bytes[pos]) ^ mask);
  }
  if (f.checkpoint_rot && !image.checkpoint.empty()) {
    size_t pos = image.checkpoint.size() / 2;
    image.checkpoint[pos] = static_cast<char>(static_cast<uint8_t>(image.checkpoint[pos]) ^ 1);
  }
  return image;
}

void WalterServer::Restore(const DurableImage& image) {
  ++stats_.recoveries;
  WTRACE(sim_->Now(), TraceKind::kRecoveryStart, 0, options_.site, image.wal_bytes.size());

  // Validate the checkpoint's CRC wrapper: a rotted image is rejected and
  // recovery degrades to replaying the WAL alone (complete iff the log was
  // never truncated past the lost checkpoint's coverage).
  std::string_view checkpoint_body;
  if (!image.checkpoint.empty()) {
    ByteReader hr(image.checkpoint);
    uint32_t magic = hr.GetU32();
    uint32_t crc = hr.GetU32();
    std::string_view body = image.checkpoint.size() > 8
                                ? std::string_view(image.checkpoint).substr(8)
                                : std::string_view();
    if (hr.failed() || magic != kCheckpointMagic || Crc32(body) != crc) {
      ++stats_.recovery_bad_checkpoints;
      WTRACE(sim_->Now(), TraceKind::kRecoveryCorrupt, 0, options_.site,
             static_cast<uint64_t>(CorruptKind::kCheckpointBad));
      WLOG(kWarn, "restore@" << options_.site
                             << ": checkpoint image failed CRC, replaying WAL only");
    } else {
      checkpoint_body = body;
    }
  }

  // Parse the checkpoint wrapper.
  std::string store_checkpoint;
  VectorTimestamp checkpoint_got(options_.num_sites);
  std::vector<TxRecord> pending_local;
  if (!checkpoint_body.empty()) {
    ByteReader r(checkpoint_body);
    store_checkpoint = r.GetString();
    checkpoint_got = r.GetVts();
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n && !r.failed(); ++i) {
      pending_local.push_back(TxRecord::Deserialize(&r));
    }
  }

  store_.RestoreCheckpoint(store_checkpoint);
  // Seed the store's WAL with the durable image so CollectRecords (resyncs and
  // §5.7 gap-filling) and retention-aware truncation keep working after the
  // replacement: without this the replacement's log starts empty and released
  // records become unrecoverable. Seeding keeps the intact frame prefix only —
  // a torn or rotted tail ends the restored log at the last good frame.
  store_.wal().SeedForRecovery(image.wal_bytes, image.wal_base);
  if (store_.wal().size() < image.wal_bytes.size()) {
    ++stats_.recovery_torn_tails;
    WTRACE(sim_->Now(), TraceKind::kRecoveryCorrupt, 0, options_.site,
           static_cast<uint64_t>(CorruptKind::kTornWalTail),
           static_cast<uint32_t>(store_.wal().size()));
  }
  // A rejected checkpoint is not re-adopted: the next Checkpoint() overwrites.
  checkpoint_image_ = checkpoint_body.empty() ? std::string() : image.checkpoint;
  checkpoint_wal_base_ = store_.checkpoint_frontier();
  got_vts_ = checkpoint_got;
  if (got_vts_.num_sites() < options_.num_sites) {
    got_vts_ = VectorTimestamp(options_.num_sites);
  }

  // Replay the WAL tail past the checkpoint frontier.
  size_t frontier = store_.checkpoint_frontier();
  size_t skip = frontier > image.wal_base ? frontier - image.wal_base : 0;
  std::vector<TxRecord> tail;
  if (skip < image.wal_bytes.size()) {
    Wal::ReplayResult replay = Wal::Replay(std::string_view(image.wal_bytes).substr(skip));
    tail = std::move(replay.records);
  }
  // Figure 13's receive guard, applied to recovery: a record only installs if
  // it extends its origin's sequence contiguously AND its causal snapshot is
  // covered. A rejected checkpoint leaves the log tail starting past the lost
  // coverage; advancing the watermarks over that gap would hide the hole from
  // resync evidence forever. Records past a gap (or depending on one) are
  // dropped here and healed like any other loss — own records through peer
  // backfill, remote ones through rewound propagation.
  std::vector<TxRecord> kept;
  kept.reserve(tail.size());
  size_t dropped = 0;
  for (auto& rec : tail) {
    // Own records skip the Covers check: a sharded client's start_vts is a
    // cluster-wide snapshot that was never required to be covered by this
    // server's own watermark at commit time. Remote records passed the
    // receive guard at this exact log position, so the check holds for them
    // whenever the replayed prefix is intact.
    bool causal_ok = rec.origin == options_.site || got_vts_.Covers(rec.start_vts);
    if (rec.version.seqno != got_vts_.at(rec.origin) + 1 || !causal_ok) {
      ++dropped;
      continue;
    }
    store_.ApplyToHistories(rec);
    got_vts_.set(rec.origin, rec.version.seqno);
    kept.push_back(std::move(rec));
  }
  if (dropped > 0) {
    WTRACE(sim_->Now(), TraceKind::kRecoveryCorrupt, 0, options_.site,
           static_cast<uint64_t>(CorruptKind::kLogGap), static_cast<uint32_t>(dropped));
    WLOG(kWarn, "restore@" << options_.site << ": dropped " << dropped
                           << " log records past a recovery gap");
  }
  stats_.recovery_replayed += kept.size();
  WTRACE(sim_->Now(), TraceKind::kRecoveryReplay, 0, options_.site, kept.size());
  // Tail replay can resurrect history entries the GC frontier already folded
  // (records logged after the checkpoint but folded before the crash): fold
  // them again so restored state matches the invariant the frontier promises.
  if (store_.gc_frontier().num_sites() > 0) {
    store_.GarbageCollect(store_.gc_frontier());
  }

  // Everything durably logged is treated as committed here: own records were
  // acknowledged iff flushed; remote records commit at their origin exactly
  // once, so re-committing them locally is safe (Section 5.7).
  committed_vts_ = got_vts_;
  curr_seqno_ = got_vts_.at(options_.site);
  // Everything restored came from the durable WAL, by construction.
  durable_applied_ = got_vts_;

  // Rebuild retained local commits: checkpointed pending ones plus own tail
  // records; mark them flushed+committed so propagation can resume.
  local_commits_.clear();
  auto retain = [this](const TxRecord& rec) {
    LocalCommit lc;
    lc.record = rec;
    lc.flushed = true;
    lc.committed = true;
    local_commits_.emplace(rec.version.seqno, std::move(lc));
  };
  for (const auto& rec : pending_local) {
    retain(rec);
  }
  for (const auto& rec : kept) {
    if (rec.origin == options_.site) {
      retain(rec);
    }
  }
  committed_tids_.clear();
  committed_versions_.clear();
  aborted_tids_.clear();
  outcome_log_.clear();
  for (const auto& [seqno, lc] : local_commits_) {
    committed_tids_[lc.record.tid] = seqno;
    committed_versions_[lc.record.tid] = lc.record.version;
    RecordOutcome(lc.record.tid);  // restamped: the original settle time is gone
  }

  // Conservative watermarks: everything below the smallest retained commit was
  // globally visible (that is the only way records leave local_commits_).
  uint64_t floor =
      local_commits_.empty() ? curr_seqno_ : local_commits_.begin()->first - 1;
  ds_durable_through_ = floor;
  visible_through_ = floor;
  for (auto& ds : dests_) {
    ds = DestState{};
    ds.acked_through = floor;
    ds.visible_through = floor;
  }
  durable_wal_bytes_ = store_.wal().base() + store_.wal().size();
  backfill_target_ = curr_seqno_;

  // Volatile commit-protocol state does not survive a crash: locks, parked
  // waiters and watermark bookkeeping start empty (RestoreCheckpoint already
  // dropped the store-side watermarks). Timers in flight find their waiter
  // gone and no-op.
  locks_.clear();
  lock_owners_.clear();
  for (auto& [tid, waiter] : lock_waiters_) {
    if (waiter.timeout_event != 0) {
      sim_->Cancel(waiter.timeout_event);
    }
  }
  lock_waiters_.clear();
  lock_waitlist_.clear();
  pending_wakes_.clear();
  wake_scheduled_ = false;
  parked_commits_.clear();
  watermark_installed_.clear();
  watermark_query_in_flight_.clear();
  // Held clock votes died with the process: their reply closures point at RPC
  // call ids from before the crash. Coordinators time out and retry/abort.
  held_prepares_.clear();
  clock_timer_at_ = -1;
  ++clock_timer_gen_;  // any pre-crash release timer fires as a stale no-op

  crashed_ = false;
  endpoint_.SetDown(false);
  WTRACE(sim_->Now(), TraceKind::kRecoveryDone, 0, options_.site, curr_seqno_);
  // Our watermarks and every peer's idea of our GotVTS may now disagree in
  // either direction (we rolled back to the durable prefix). Exchange explicit
  // resyncs before resuming propagation; deferred one event so the cluster can
  // finish re-wiring the replacement server first.
  sim_->After(0, Guard([this]() {
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      if (s != options_.site) {
        SendResync(s, false);
      }
    }
    MaybeSendAllBatches();
  }));
}

void WalterServer::TruncateOwnLog(uint64_t survive_through) {
  if (curr_seqno_ <= survive_through) {
    return;
  }
  store_.RemoveVersionsFrom(options_.site, survive_through);
  for (auto it = local_commits_.begin(); it != local_commits_.end();) {
    if (it->first > survive_through) {
      // The commit never took effect cluster-wide; a retransmitted commit must
      // not be told "committed". The tid becomes unknown (not aborted), so a
      // bare retried commit gets kUnavailable.
      committed_tids_.erase(it->second.record.tid);
      committed_versions_.erase(it->second.record.tid);
      it = local_commits_.erase(it);
    } else {
      ++it;
    }
  }
  // Seqnos are reused from the surviving prefix: the survivors discarded our
  // suffix, so the numbers are free again (Section 5.7). A cached batch
  // payload may cover discarded seqnos about to be rewritten — drop it.
  batch_cache_ = {};
  curr_seqno_ = survive_through;
  if (committed_vts_.at(options_.site) > survive_through) {
    committed_vts_.set(options_.site, survive_through);
  }
  if (got_vts_.at(options_.site) > survive_through) {
    got_vts_.set(options_.site, survive_through);
  }
  ds_durable_through_ = std::min(ds_durable_through_, survive_through);
  visible_through_ = std::min(visible_through_, survive_through);
  if (durable_applied_.at(options_.site) > survive_through) {
    durable_applied_.set(options_.site, survive_through);
  }
  // Roll the outbound watermarks down too: peers may have acked the discarded
  // suffix, and those stale acks must not suppress sending the reused seqnos.
  for (auto& ds : dests_) {
    ds.acked_through = std::min(ds.acked_through, survive_through);
    ds.sent_through = std::min(ds.sent_through, survive_through);
    ds.visible_through = std::min(ds.visible_through, survive_through);
    ds.resend_attempts = 0;
  }
}

void WalterServer::DiscardNonSurviving(SiteId s, uint64_t survive_through) {
  if (s == options_.site || s >= options_.num_sites) {
    return;
  }
  store_.RemoveVersionsFrom(s, survive_through);
  // Watermarks for discarded versions point at commits that no longer exist;
  // parked readers must not wait for them forever.
  store_.DropWatermarksFrom(s, survive_through);
  pending_in_[s].clear();
  auto& uncommitted = uncommitted_remote_[s];
  for (auto it = uncommitted.begin(); it != uncommitted.end();) {
    if (it->first > survive_through) {
      it = uncommitted.erase(it);
    } else {
      ++it;
    }
  }
  if (got_vts_.at(s) > survive_through) {
    got_vts_.set(s, survive_through);
  }
  if (committed_vts_.at(s) > survive_through) {
    committed_vts_.set(s, survive_through);
  }
  if (durable_applied_.at(s) > survive_through) {
    durable_applied_.set(s, survive_through);
  }
  durable_known_[s] = std::min(durable_known_[s], survive_through);
}

std::vector<TxRecord> WalterServer::CollectRecords(SiteId origin, uint64_t from,
                                                   uint64_t to) const {
  // Keyed by seqno with later WAL appends winning: after TruncateOwnLog a
  // seqno can be reused, and only the latest record for it is live.
  std::map<uint64_t, TxRecord> by_seqno;
  Wal::ReplayResult replay = store_.wal().ReplaySelf();
  for (auto& rec : replay.records) {
    if (rec.origin == origin && rec.version.seqno >= from && rec.version.seqno <= to) {
      by_seqno[rec.version.seqno] = std::move(rec);
    }
  }
  std::vector<TxRecord> out;
  out.reserve(by_seqno.size());
  for (auto& [seqno, rec] : by_seqno) {
    out.push_back(std::move(rec));
  }
  return out;
}

void WalterServer::InjectRemoteRecords(SiteId origin, std::vector<TxRecord> records) {
  if (origin == options_.site || origin >= options_.num_sites) {
    return;
  }
  for (auto& rec : records) {
    if (rec.version.seqno > got_vts_.at(origin)) {
      pending_in_[origin].emplace(rec.version.seqno, std::move(rec));
    }
  }
  DrainAllPending();
}

void WalterServer::SetDurableKnown(SiteId origin, uint64_t through) {
  if (origin >= options_.num_sites || origin == options_.site) {
    return;
  }
  durable_known_[origin] = std::max(durable_known_[origin], through);
  TryCommitRemotes();
}

void WalterServer::SetSiteActive(SiteId s, bool active) {
  if (s >= options_.num_sites || s == options_.site || site_active_[s] == active) {
    return;
  }
  site_active_[s] = active;
  if (!active) {
    peer_floors_[s] = VectorTimestamp();  // a removed site's floor is void
  }
  // Membership changes re-derive the configuration-gated watermarks: a removed
  // site no longer gates disaster-safe durability or global visibility (it can
  // never ack), and a reintegrated site starts gating them again and must be
  // caught up by propagation.
  UpdateDsDurable();
  UpdateGloballyVisible();
  if (active && !crashed_) {
    MaybeSendBatch(s);
  }
}

void WalterServer::HandleTxStatus(const Message& msg, RpcEndpoint::ReplyFn reply) {
  TxStatusRequest req = TxStatusRequest::Deserialize(msg.payload);
  TxStatusResponse resp;
  if (slow_commits_.contains(req.tid)) {
    resp.outcome = TxStatusOutcome::kTxPending;  // 2PC still deciding
  } else if (committed_tids_.contains(req.tid) || committed_versions_.contains(req.tid)) {
    resp.outcome = TxStatusOutcome::kTxCommitted;
  } else {
    // Unknown: never committed here, or already globally visible (in which
    // case the asker released the lock when the transaction reached it).
    resp.outcome = TxStatusOutcome::kTxAborted;
  }
  Message m;
  m.payload = resp.Serialize();
  reply(std::move(m));
}

void WalterServer::SweepStaleLocks() {
  SimDuration stale_after = 2 * options_.resend_timeout;
  for (auto& [tid, owner] : lock_owners_) {
    if (owner.coordinator == options_.site || owner.query_in_flight ||
        sim_->Now() - owner.acquired < stale_after) {
      continue;
    }
    owner.query_in_flight = true;
    ++stats_.stale_lock_queries;
    TxStatusRequest req{tid};
    endpoint_.Call(
        Address{owner.coordinator, kWalterPort}, kTxStatus, req.Serialize(),
        [this, tid](Status status, const Message& m) {
          auto it = lock_owners_.find(tid);
          if (it == lock_owners_.end()) {
            return;  // released meanwhile (propagation, decision, or abort)
          }
          it->second.query_in_flight = false;
          if (!status.ok()) {
            return;  // coordinator unreachable: keep the lock (conservative)
          }
          TxStatusResponse resp = TxStatusResponse::Deserialize(m.payload);
          if (resp.outcome == TxStatusOutcome::kTxAborted) {
            ReleaseLocks(tid);  // orphaned prepare: the transaction is dead
          }
          // kTxCommitted: keep until the transaction propagates here;
          // kTxPending: 2PC still in progress.
        },
        options_.resend_timeout);
  }
  SweepStaleWatermarks();
}

void WalterServer::SweepStaleWatermarks() {
  if (!store_.has_watermarks()) {
    return;
  }
  // A watermark normally clears when its record propagates and commits here.
  // If the origin lost the record (crash after decision, before flush reached
  // a survivable point) the watermark would park readers forever — ask the
  // origin for the transaction's fate, exactly like the stale-lock sweep.
  SimDuration stale_after = 2 * options_.resend_timeout;
  for (const auto& [tid, version] : store_.WatermarkTxs()) {
    if (version.site == options_.site || version.site >= options_.num_sites) {
      store_.DropWatermarksOfTx(tid);  // cannot happen by construction; self-heal
      continue;
    }
    auto installed = watermark_installed_.try_emplace(tid, sim_->Now()).first;
    if (sim_->Now() - installed->second < stale_after ||
        watermark_query_in_flight_.contains(tid)) {
      continue;
    }
    watermark_query_in_flight_.insert(tid);
    ++stats_.stale_watermark_queries;
    TxStatusRequest req{tid};
    endpoint_.Call(
        Address{version.site, kWalterPort}, kTxStatus, req.Serialize(),
        [this, tid](Status status, const Message& m) {
          watermark_query_in_flight_.erase(tid);
          if (!status.ok()) {
            return;  // origin unreachable: keep the watermark (conservative)
          }
          TxStatusResponse resp = TxStatusResponse::Deserialize(m.payload);
          if (resp.outcome == TxStatusOutcome::kTxAborted) {
            if (store_.DropWatermarksOfTx(tid)) {
              WTRACE(sim_->Now(), TraceKind::kWatermarkClear, tid, options_.site, 0);
            }
            watermark_installed_.erase(tid);
          }
          // kTxCommitted: propagation will clear it; kTxPending: impossible
          // (the decision was made), treated like committed.
        },
        options_.resend_timeout);
  }
  // Drop aging entries whose watermarks are gone (cleared by propagation).
  std::erase_if(watermark_installed_, [this](const auto& kv) {
    return !watermark_query_in_flight_.contains(kv.first) && !WatermarkStillLive(kv.first);
  });
}

bool WalterServer::WatermarkStillLive(TxId tid) const {
  for (const auto& [wtid, version] : store_.WatermarkTxs()) {
    if (wtid == tid) {
      return true;
    }
  }
  return false;
}

size_t WalterServer::GarbageCollect(const VectorTimestamp& stable) {
  return store_.GarbageCollect(stable);
}

VectorTimestamp WalterServer::StabilityFloor(bool include_pins) const {
  // min(committed, durably applied): committed alone could roll back across a
  // crash (the volatile suffix), durable alone may not be applied yet. The min
  // survives a crash-and-restore, so an announced floor never retreats.
  VectorTimestamp floor = committed_vts_;
  floor.MergeMin(durable_applied_);
  if (include_pins && pin_floor_provider_) {
    if (auto pins = pin_floor_provider_()) {
      floor.MergeMin(*pins);
    }
  }
  if (store_.has_watermarks()) {
    // A watermarked version has a parked reader waiting to see it; the GC
    // frontier must not fold histories past it, or the reader would resume
    // onto a folded base.
    for (SiteId s = 0; s < options_.num_sites; ++s) {
      if (auto min = store_.MinWatermarkSeqno(s)) {
        if (floor.at(s) >= *min) {
          floor.set(s, *min - 1);
        }
      }
    }
  }
  return floor;
}

size_t WalterServer::DriveGc(const VectorTimestamp& frontier) {
  size_t folded = store_.GarbageCollect(frontier);
  ++stats_.gc_runs;
  stats_.gc_folded_entries += folded;
  WTRACE(sim_->Now(), TraceKind::kGcRun, 0, options_.site, folded);
  return folded;
}

void WalterServer::GossipFrontierGc() {
  // Decentralized frontier: the min of every in-config peer's acked stability
  // floor and our own. A peer we have not heard from contributes zero (its
  // floor is empty), freezing the frontier until acks flow — the same stall
  // semantics as the coordinator's dead-site rule, computed locally.
  VectorTimestamp frontier = StabilityFloor();
  for (SiteId s = 0; s < options_.num_sites; ++s) {
    if (s == options_.site || !site_active_[s]) {
      continue;
    }
    if (peer_floors_[s].num_sites() == 0) {
      return;  // not heard yet: no safe frontier exists
    }
    frontier.MergeMin(peer_floors_[s]);
  }
  if (!store_.gc_frontier().Covers(frontier)) {
    DriveGc(frontier);
  }
  AgeTxOutcomes();
}

void WalterServer::RecordOutcome(TxId tid) {
  if (options_.tx_outcome_retention > 0) {
    outcome_log_.emplace_back(sim_->Now(), tid);
  }
}

void WalterServer::AgeTxOutcomes() {
  if (options_.tx_outcome_retention <= 0) {
    return;
  }
  SimTime now = sim_->Now();
  if (now < options_.tx_outcome_retention) {
    return;
  }
  SimTime cutoff = now - options_.tx_outcome_retention;
  while (!outcome_log_.empty() && outcome_log_.front().first <= cutoff) {
    TxId tid = outcome_log_.front().second;
    auto cv = committed_versions_.find(tid);
    if (cv != committed_versions_.end()) {
      if (cv->second.seqno > visible_through_) {
        break;  // still replicating: a retransmission must find the outcome
      }
      committed_versions_.erase(cv);
    }
    aborted_tids_.erase(tid);
    outcome_log_.pop_front();
  }
}

void WalterServer::ExportMetrics(MetricsRegistry& metrics) const {
  SiteId s = options_.site;
  metrics.Set("server.fast_commits", s, static_cast<double>(stats_.fast_commits));
  metrics.Set("server.slow_commits", s, static_cast<double>(stats_.slow_commits));
  metrics.Set("server.aborts", s, static_cast<double>(stats_.aborts));
  metrics.Set("server.reads", s, static_cast<double>(stats_.reads));
  metrics.Set("server.remote_reads", s, static_cast<double>(stats_.remote_reads));
  metrics.Set("server.remote_txns_applied", s, static_cast<double>(stats_.remote_txns_applied));
  metrics.Set("server.batches_sent", s, static_cast<double>(stats_.batches_sent));
  metrics.Set("server.prepares_handled", s, static_cast<double>(stats_.prepares_handled));
  metrics.Set("server.batch_resends", s, static_cast<double>(stats_.batch_resends));
  metrics.Set("server.prepare_retries", s, static_cast<double>(stats_.prepare_retries));
  metrics.Set("server.commit_dedups", s, static_cast<double>(stats_.commit_dedups));
  metrics.Set("server.op_dedups", s, static_cast<double>(stats_.op_dedups));
  metrics.Set("server.active_txs", s, static_cast<double>(active_.size()));
  metrics.Set("server.held_locks", s, static_cast<double>(locks_.size()));
  metrics.Set("server.committed_seqno", s, static_cast<double>(committed_vts_.at(s)));
  metrics.Set("server.ds_durable_through", s, static_cast<double>(ds_durable_through_));
  metrics.Set("server.visible_through", s, static_cast<double>(visible_through_));
  // Memory-boundedness gauges: under sustained load with GC active these
  // plateau instead of growing with the run.
  metrics.Set("server.history_entries", s, static_cast<double>(store_.TotalEntryCount()));
  metrics.Set("server.wal_bytes", s, static_cast<double>(store_.wal().size()));
  metrics.Set("server.retained_local_commits", s, static_cast<double>(local_commits_.size()));
  metrics.Set("server.tx_outcomes_retained", s,
              static_cast<double>(committed_versions_.size() + aborted_tids_.size()));
  metrics.Set("server.gc_runs", s, static_cast<double>(stats_.gc_runs));
  metrics.Set("server.gc_folded_entries", s, static_cast<double>(stats_.gc_folded_entries));
  metrics.Set("server.gc_stale_reads", s, static_cast<double>(stats_.gc_stale_reads));
  metrics.Set("server.wal_truncated_bytes", s, static_cast<double>(stats_.wal_truncated_bytes));
  // Recovery-path counters: all zero in a healthy run; nonzero values localize
  // which durability layer a chaos/crash-fuzz schedule exercised.
  metrics.Set("server.recoveries", s, static_cast<double>(stats_.recoveries));
  metrics.Set("server.recovery_replayed", s, static_cast<double>(stats_.recovery_replayed));
  metrics.Set("server.recovery_torn_tails", s, static_cast<double>(stats_.recovery_torn_tails));
  metrics.Set("server.recovery_bad_checkpoints", s,
              static_cast<double>(stats_.recovery_bad_checkpoints));
  metrics.Set("server.recovery_backfilled", s, static_cast<double>(stats_.recovery_backfilled));
  metrics.Set("server.disk_stall_bursts", s, static_cast<double>(disk_.stall_bursts()));
  // Early-lock-release counters: all zero with the flag off.
  metrics.Set("server.early_releases", s, static_cast<double>(stats_.early_releases));
  metrics.Set("server.decisions_sent", s, static_cast<double>(stats_.decisions_sent));
  metrics.Set("server.decisions_received", s, static_cast<double>(stats_.decisions_received));
  metrics.Set("server.watermarks_set", s, static_cast<double>(stats_.watermarks_set));
  metrics.Set("server.watermarks_cleared", s, static_cast<double>(stats_.watermarks_cleared));
  metrics.Set("server.watermark_read_waits", s,
              static_cast<double>(stats_.watermark_read_waits));
  metrics.Set("server.reads_starved", s, static_cast<double>(stats_.reads_starved));
  metrics.Set("server.remote_reads_starved", s,
              static_cast<double>(stats_.remote_reads_starved));
  metrics.Set("server.read_park_dedups", s, static_cast<double>(stats_.read_park_dedups));
  metrics.Set("server.commit_gap_parks", s, static_cast<double>(stats_.commit_gap_parks));
  metrics.Set("server.commits_starved", s, static_cast<double>(stats_.commits_starved));
  metrics.Set("server.admit_rejects", s, static_cast<double>(stats_.admit_rejects));
  metrics.Set("server.admitted_inflight_peak", s,
              static_cast<double>(stats_.admitted_inflight_peak));
  metrics.Set("server.cpu_queue_peak", s, static_cast<double>(stats_.cpu_queue_peak));
  metrics.Set("server.live_watermarks", s, static_cast<double>(store_.watermark_count()));
  metrics.Set("server.lock_waits", s, static_cast<double>(stats_.lock_waits));
  metrics.Set("server.lock_wait_timeouts", s, static_cast<double>(stats_.lock_wait_timeouts));
  metrics.Set("server.lock_wounds", s, static_cast<double>(stats_.lock_wounds));
  metrics.Set("server.stale_lock_queries", s, static_cast<double>(stats_.stale_lock_queries));
  metrics.Set("server.stale_watermark_queries", s,
              static_cast<double>(stats_.stale_watermark_queries));
  metrics.Set("server.aborts_conflict", s, static_cast<double>(stats_.aborts_conflict));
  metrics.Set("server.aborts_wound", s, static_cast<double>(stats_.aborts_wound));
  metrics.Set("server.aborts_timeout", s, static_cast<double>(stats_.aborts_timeout));
  metrics.Set("server.clock_commits", s, static_cast<double>(stats_.clock_commits));
  metrics.Set("server.clock_holds", s, static_cast<double>(stats_.clock_holds));
  metrics.Set("server.clock_fallbacks", s, static_cast<double>(stats_.clock_fallbacks));
  metrics.Set("server.clock_rearms", s, static_cast<double>(stats_.clock_rearms));
  metrics.Set("server.clock_conflict_bypasses", s,
              static_cast<double>(stats_.clock_conflict_bypasses));
  metrics.Set("server.held_prepares", s, static_cast<double>(held_prepares_.size()));
  metrics.Set("server.ser_validations", s, static_cast<double>(stats_.ser_validations));
  metrics.Set("server.aborts_ser_validation", s,
              static_cast<double>(stats_.aborts_ser_validation));
  metrics.Set("server.nmsi_reads_unparked", s,
              static_cast<double>(stats_.nmsi_reads_unparked));
}

}  // namespace walter
