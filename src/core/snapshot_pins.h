// Snapshot-pin registry: the "(b)" input of the GC stability frontier.
//
// Every live transaction pins its snapshot so garbage collection can never
// fold a version the transaction might still read. A pin is taken when the Tx
// handle is created — before the first RPC, at a floor no higher than the
// snapshot the server will assign (the local server's CommittedVTS is
// monotone, so floor <= startVTS always holds) — raised to the exact startVTS
// once the first response reports it, and released exactly once when the
// transaction commits, aborts, or its handle is dropped.
//
// One registry per site, owned by the Cluster (it must survive server
// replacement). Registration is a direct function call, not a message: it is
// atomic with respect to simulator events, so a GC tick either runs before the
// pin exists (and cannot have folded anything the new snapshot sees, because
// the frontier is also bounded by CommittedVTS) or sees the pin.
//
// The registry is shared site-wide: under the threaded runtime, clients on
// different executors pin/unpin concurrently while a server reads MinPin, so
// every method takes the internal mutex. Pin operations are per-transaction
// (not per-message), so the uncontended lock is noise; in sim mode it changes
// nothing observable.
#ifndef SRC_CORE_SNAPSHOT_PINS_H_
#define SRC_CORE_SNAPSHOT_PINS_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/common/types.h"

namespace walter {

class SnapshotPinRegistry {
 public:
  using PinId = uint64_t;

  // Registers a pin at `floor` and returns its id (never 0).
  PinId Pin(VectorTimestamp floor) {
    std::lock_guard<std::mutex> lk(mu_);
    PinId id = next_++;
    pins_.emplace(id, std::move(floor));
    return id;
  }

  // Replaces the floor with the transaction's exact snapshot. The assigned
  // snapshot is always >= the floor, so this only ever relaxes the frontier.
  void Raise(PinId id, const VectorTimestamp& vts) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = pins_.find(id);
    if (it != pins_.end()) {
      it->second = vts;
    }
  }

  // Idempotent: commit/abort chains and the Tx destructor may race to release.
  void Unpin(PinId id) {
    std::lock_guard<std::mutex> lk(mu_);
    pins_.erase(id);
  }

  // Pointwise minimum over all active pins; nullopt when nothing is pinned.
  std::optional<VectorTimestamp> MinPin() const {
    std::lock_guard<std::mutex> lk(mu_);
    if (pins_.empty()) {
      return std::nullopt;
    }
    std::optional<VectorTimestamp> min;
    for (const auto& [id, vts] : pins_) {
      if (!min) {
        min = vts;
      } else {
        min->MergeMin(vts);
      }
    }
    return min;
  }

  size_t active() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pins_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<PinId, VectorTimestamp> pins_;
  PinId next_ = 1;
};

}  // namespace walter

#endif  // SRC_CORE_SNAPSHOT_PINS_H_
