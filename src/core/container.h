// Containers (Section 4.1): logical groups of objects sharing a preferred site
// and a replica set. The preferred site is where writes to the container's
// objects fast-commit; the replica set says which sites store the data.
//
// ContainerDirectory is the per-server cache of container metadata (Section
// 5.1); it is populated from the configuration service and consulted on every
// access. An unknown container defaults to "replicated everywhere, preferred
// site = its container id modulo the site count", which is the layout the
// microbenchmarks use.
#ifndef SRC_CORE_CONTAINER_H_
#define SRC_CORE_CONTAINER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/config/shard_map.h"

namespace walter {

struct ContainerInfo {
  ContainerId id = 0;
  SiteId preferred_site = 0;
  // Sites replicating the container's objects. Empty = replicated at all sites.
  std::vector<SiteId> replicas;

  bool ReplicatedAt(SiteId s) const {
    if (replicas.empty()) {
      return true;
    }
    for (SiteId r : replicas) {
      if (r == s) {
        return true;
      }
    }
    return false;
  }
};

class ContainerDirectory {
 public:
  explicit ContainerDirectory(size_t num_sites) : num_sites_(num_sites) {}

  void Upsert(ContainerInfo info) {
    WCHECK(!frozen_, "container directory mutated while the threaded runtime is running");
    containers_[info.id] = std::move(info);
  }
  void Erase(ContainerId id) {
    WCHECK(!frozen_, "container directory mutated while the threaded runtime is running");
    containers_.erase(id);
  }

  // Threaded runtime contract: the directory is shared by co-located shards
  // and read lock-free from their executors, so it must not change while
  // worker threads run. Cluster freezes it at StartThreads; control-plane
  // mutations (recovery remaps) require quiescing the runtime first.
  void Freeze() { frozen_ = true; }
  void Thaw() { frozen_ = false; }

  // Shard-aware mode: container metadata (and the config service protocol)
  // stays in logical site ids; Get() translates the resolved info into server
  // ids through the map — the preferred site becomes the owning shard there,
  // and the replica set becomes the one owning shard per replica site. With a
  // trivial map (one server per site) translation is the identity.
  void AttachShardMap(const ShardMap* map) { shard_map_ = map; }

  // Metadata for a container; falls back to the default layout when unknown.
  // A site remap (failed-site recovery) rewrites the preferred site.
  ContainerInfo Get(ContainerId id) const {
    ContainerInfo info;
    auto it = containers_.find(id);
    if (it != containers_.end()) {
      info = it->second;
    } else {
      info.id = id;
      info.preferred_site = static_cast<SiteId>(id % num_sites_);
    }
    auto remap = remap_.find(info.preferred_site);
    if (remap != remap_.end()) {
      info.preferred_site = remap->second;
    }
    if (shard_map_ != nullptr && !shard_map_->trivial()) {
      Translate(&info);
    }
    return info;
  }

  // Redirects every container preferred at `from` to `to` — the aggressive
  // site-recovery reassignment of Section 5.7. Cleared on re-integration.
  void RemapSite(SiteId from, SiteId to) {
    WCHECK(!frozen_, "container directory mutated while the threaded runtime is running");
    remap_[from] = to;
  }
  void ClearRemap(SiteId from) {
    WCHECK(!frozen_, "container directory mutated while the threaded runtime is running");
    remap_.erase(from);
  }

  // The preferred site of an object: site(oid) in Figures 11-12.
  SiteId PreferredSite(const ObjectId& oid) const { return Get(oid.container).preferred_site; }

  bool ReplicatedAt(const ObjectId& oid, SiteId s) const {
    return Get(oid.container).ReplicatedAt(s);
  }

  size_t num_sites() const { return num_sites_; }

 private:
  void Translate(ContainerInfo* info) const {
    info->preferred_site = shard_map_->OwnerAt(info->id, info->preferred_site);
    if (info->replicas.empty()) {
      // "All sites" must become an explicit server list: only the owning
      // shard at each site stores the container, not every co-located server.
      info->replicas.reserve(shard_map_->num_sites());
      for (SiteId s = 0; s < static_cast<SiteId>(shard_map_->num_sites()); ++s) {
        info->replicas.push_back(shard_map_->OwnerAt(info->id, s));
      }
    } else {
      for (SiteId& r : info->replicas) {
        r = shard_map_->OwnerAt(info->id, r);
      }
    }
  }

  size_t num_sites_;
  std::unordered_map<ContainerId, ContainerInfo> containers_;
  std::unordered_map<SiteId, SiteId> remap_;
  const ShardMap* shard_map_ = nullptr;
  bool frozen_ = false;
};

}  // namespace walter

#endif  // SRC_CORE_CONTAINER_H_
