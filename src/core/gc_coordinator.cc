#include "src/core/gc_coordinator.h"

#include <algorithm>

#include "src/core/cluster.h"
#include "src/obs/trace.h"

namespace walter {

const char* GcStallReasonName(GcStallReason reason) {
  switch (reason) {
    case GcStallReason::kNone:
      return "none";
    case GcStallReason::kDeadSite:
      return "dead_site";
    case GcStallReason::kSnapshotPin:
      return "snapshot_pin";
    case GcStallReason::kLaggingSite:
      return "lagging_site";
  }
  return "unknown";
}

GcCoordinator::GcCoordinator(Cluster* cluster, GcOptions options, uint64_t seed)
    : cluster_(cluster),
      options_(options),
      rng_(seed ^ 0x6663726f6e746965ULL),  // decorrelate from the workload seed
      // All per-"site" state here is really per server: under intra-site
      // sharding every shard contributes its own floor, durable watermark and
      // frontier coordinate, so the frontier is automatically the min over
      // shards too.
      last_floor_(cluster->num_servers()),
      last_durable_(cluster->num_servers()),
      in_config_(cluster->num_servers(), true),
      frontier_(cluster->num_servers()) {}

void GcCoordinator::Start() {
  if (started_ || !options_.enabled) {
    return;
  }
  started_ = true;
  last_checkpoint_ = cluster_->sim().Now();
  Schedule();
}

void GcCoordinator::Schedule() {
  // Jitter from the coordinator's private Rng: the simulation's event sequence
  // (and therefore every benchmark number) must not depend on GC existing.
  SimDuration jitter = static_cast<SimDuration>(
      static_cast<double>(options_.interval) * 0.1 * rng_.NextDouble());
  cluster_->sim().After(options_.interval + jitter, [this]() {
    Tick();
    Schedule();
  });
}

void GcCoordinator::RefreshCaches() {
  for (SiteId s = 0; s < cluster_->num_servers(); ++s) {
    WalterServer& server = cluster_->server(s);
    if (server.crashed()) {
      continue;  // frozen at the last known state
    }
    // Floors and durable watermarks are monotone per site; max-merge protects
    // against a replacement server that briefly reports a lower committed
    // state mid-resync.
    VectorTimestamp floor = server.StabilityFloor();
    VectorTimestamp durable = server.durable_applied();
    if (!in_config_[s]) {
      // A removed-but-reachable site keeps reporting its non-surviving own
      // commits until it learns of its removal; never cache those.
      floor.set(s, 0);
      durable.set(s, 0);
    }
    last_floor_[s].MergeMax(floor);
    last_durable_[s].MergeMax(durable);
  }
}

void GcCoordinator::Tick() {
  size_t n = cluster_->num_servers();
  // The membership probe speaks logical sites; a shard is in-config iff its
  // site is.
  auto in_config = [this](SiteId s) { return !probe_ || probe_(cluster_->site_of(s)); };
  for (SiteId s = 0; s < n; ++s) {
    bool now = in_config(s);
    if (in_config_[s] && !now) {
      // §5.7 removal rolls the removed site's own seqnos back (TruncateOwnLog
      // reuses them past survive_through): its cached own-index entries are
      // phantom state. Reset them so the frontier and the WAL floors rebuild
      // from what the reintegrated replacement actually reports. The remote-
      // origin entries stay frozen — those records are durable at the site
      // and survive its crash, so they remain true lower bounds.
      last_floor_[s].set(s, 0);
      last_durable_[s].set(s, 0);
    }
    in_config_[s] = now;
  }
  RefreshCaches();

  // Outcome aging is time-based and independent of the frontier (dropping a
  // dedup outcome while a client still retransmits would double-commit; see
  // Options::tx_outcome_retention). It rides the GC cadence, nothing more.
  for (SiteId s = 0; s < n; ++s) {
    if (!cluster_->server(s).crashed()) {
      cluster_->server(s).AgeTxOutcomes();
    }
  }

  // Candidate frontier: pointwise min over in-config sites (crashed ones
  // contribute their frozen cache, freezing the frontier — the safe stall).
  bool have = false;
  VectorTimestamp next;
  for (SiteId s = 0; s < n; ++s) {
    if (!in_config(s)) {
      continue;
    }
    if (!have) {
      next = last_floor_[s];
      have = true;
    } else {
      next.MergeMin(last_floor_[s]);
    }
  }
  if (!have) {
    return;  // degenerate: nobody in the configuration
  }

  // Folding a server is only safe once its own applied+durable state covers
  // the frontier. In-config live sites satisfy this by construction (the
  // frontier is the min of their floors), but the oracle can also see sites
  // the network cannot reach: a §5.7-removed site still catching up, or a
  // replacement mid-resync whose cached floor outruns its actual state.
  // Folding those would push their store frontier past records they have yet
  // to receive, stranding the records below it forever once they arrive.
  auto fold_safe = [this](WalterServer& server) {
    return !server.crashed() &&
           server.StabilityFloor(/*include_pins=*/false).Covers(frontier_);
  };

  if (!frontier_.Covers(next)) {
    // The frontier advanced: fold every eligible server in this same event,
    // so sites share one frontier and remote reads never straddle two.
    frontier_.MergeMax(next);
    ++runs_;
    last_stall_reason_ = GcStallReason::kNone;
    last_stall_site_ = kNoSite;
    for (SiteId s = 0; s < n; ++s) {
      WalterServer& server = cluster_->server(s);
      if (fold_safe(server)) {
        server.DriveGc(frontier_);
      }
    }
  } else {
    // No advance — but a lagging server may still owe a fold: a replacement
    // restores history the cluster folded long ago (its WAL tail replay can
    // resurrect entries below the frontier), and a reintegrated site drains
    // its gap-fill backlog before it is safe to fold. Catch them up.
    for (SiteId s = 0; s < n; ++s) {
      WalterServer& server = cluster_->server(s);
      if (fold_safe(server) && !server.store().gc_frontier().Covers(frontier_)) {
        server.DriveGc(frontier_);
      }
    }
    // Only a real blocker counts as a stall: if even the live
    // sites' pin-free floors are covered by the frontier, there is simply
    // nothing to collect yet (idle).
    bool have_ideal = false;
    VectorTimestamp ideal;  // what the frontier could be with no dead sites/pins
    for (SiteId s = 0; s < n; ++s) {
      if (!in_config(s) || cluster_->server(s).crashed()) {
        continue;
      }
      VectorTimestamp floor = cluster_->server(s).StabilityFloor(/*include_pins=*/false);
      if (!have_ideal) {
        ideal = std::move(floor);
        have_ideal = true;
      } else {
        ideal.MergeMin(floor);
      }
    }
    if (have_ideal && !frontier_.Covers(ideal)) {
      ++stalls_;
      last_stall_reason_ = GcStallReason::kLaggingSite;
      last_stall_site_ = kNoSite;
      for (SiteId s = 0; s < n; ++s) {
        if (!in_config(s)) {
          continue;
        }
        if (cluster_->server(s).crashed() && !last_floor_[s].Covers(ideal)) {
          last_stall_reason_ = GcStallReason::kDeadSite;
          last_stall_site_ = s;
          break;
        }
        if (!cluster_->server(s).crashed() &&
            !cluster_->server(s).StabilityFloor(/*include_pins=*/true).Covers(ideal)) {
          // Pin-free floor reaches `ideal` but the pinned floor does not: a
          // live snapshot is the blocker.
          last_stall_reason_ = GcStallReason::kSnapshotPin;
          last_stall_site_ = s;
          // keep scanning: a dead site outranks a pin in the report
        }
      }
      WTRACE(cluster_->sim().Now(), TraceKind::kGcStall, 0, last_stall_site_,
             static_cast<uint64_t>(last_stall_reason_));
    } else {
      last_stall_reason_ = GcStallReason::kNone;
      last_stall_site_ = kNoSite;
    }
  }

  // Retention-aware checkpoints on their own (coarser) cadence. WAL floors
  // take the min over ALL sites — including crashed and removed ones, via
  // their frozen caches — because reintegration gap-fills from these logs.
  if (cluster_->sim().Now() - last_checkpoint_ >= options_.checkpoint_every) {
    last_checkpoint_ = cluster_->sim().Now();
    VectorTimestamp wal_floors = last_durable_[0];
    for (SiteId s = 1; s < n; ++s) {
      wal_floors.MergeMin(last_durable_[s]);
    }
    for (SiteId s = 0; s < n; ++s) {
      WalterServer& server = cluster_->server(s);
      if (!server.crashed()) {
        server.CheckpointRetaining(wal_floors);
      }
    }
    ++checkpoints_;
  }
}

void GcCoordinator::ExportMetrics(MetricsRegistry& metrics) const {
  metrics.Set("gc.runs", kNoSite, static_cast<double>(runs_));
  metrics.Set("gc.stalls", kNoSite, static_cast<double>(stalls_));
  metrics.Set("gc.checkpoints", kNoSite, static_cast<double>(checkpoints_));
  metrics.Set("gc.stall_reason", kNoSite, static_cast<double>(last_stall_reason_));
  metrics.Set("gc.stall_site", kNoSite,
              last_stall_site_ == kNoSite ? -1.0 : static_cast<double>(last_stall_site_));
  for (SiteId s = 0; s < cluster_->num_servers(); ++s) {
    metrics.Set("gc.frontier", s, static_cast<double>(frontier_.at(s)));
  }
}

}  // namespace walter
