// Walter client library: the application-facing API of Figure 14.
//
// A WalterClient represents one application server at a site; it talks to the
// local Walter server over RPC. Tx is the transaction handle with the paper's
// operations: read, write, setAdd, setDel, setRead, setReadId, commit, abort,
// plus newid and the disaster-safe-durable / globally-visible commit callbacks
// (Section 4.2).
//
// The harness is event-driven, so operations take completion callbacks where
// the paper's API blocks. Operations of one transaction must be issued
// serially (start the next after the previous completes), matching how the
// paper's applications use the API ("each operation issues read/write requests
// to Walter in series", Section 8.6).
//
// RPC piggybacking (Section 8.2): the snapshot is assigned on the first access
// rather than by a separate start RPC, and a transaction whose only access is
// a single update commits in exactly one RPC (the update and the commit travel
// together).
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/messages.h"
#include "src/core/snapshot_pins.h"
#include "src/crdt/cset.h"
#include "src/net/network.h"

namespace walter {

class WalterClient {
 public:
  // RPC robustness knobs: every operation is retried on transport failure with
  // exponential backoff and jitter, and surfaces kUnavailable once the retry
  // budget is spent — an application never hangs on a crashed local server.
  // Retransmitted commits are safe: the server deduplicates them by TxId, and
  // retransmitted buffering ops by op_seq.
  struct Options {
    SimDuration rpc_timeout = Seconds(1);
    size_t max_attempts = 4;                 // 1 = no retries
    SimDuration backoff_base = Millis(250);  // doubles per attempt
    SimDuration backoff_cap = Seconds(4);
    double backoff_jitter = 0.3;             // backoff *= U[1, 1+jitter]
    // Load shedding (admission control's client half; 0 = off, the default —
    // a kOverloaded response surfaces to the caller unchanged). When positive,
    // the client absorbs kOverloaded by retransmitting after the server's
    // retry-after hint, spending one token per retransmission from a bucket
    // of this size that refills at overload_token_refill_per_s. An empty
    // bucket sheds the operation: kUnavailable immediately (with a
    // kRetryBudgetExhausted trace the watchdog sees), never a hang — under a
    // sustained surge the budget bounds retry amplification to the refill
    // rate instead of letting every client double the offered load.
    double overload_retry_tokens = 0;
    double overload_token_refill_per_s = 10.0;
  };

  // port must be unique per client within the site (use kClientPortBase + n).
  // `timer_sim` is where RPC timeout/backoff events are scheduled — the owning
  // executor's simulator under the threaded runtime, the shared simulator
  // (default) in sim mode.
  WalterClient(Network* net, SiteId site, uint32_t port);
  WalterClient(Network* net, SiteId site, uint32_t port, Options options,
               Simulator* timer_sim = nullptr);

  SiteId site() const { return site_; }
  uint32_t port() const { return endpoint_.address().port; }
  Simulator* sim() { return endpoint_.sim(); }

  // Fresh transaction id, unique across all clients.
  TxId NextTid();

  // Fresh object id in a container (Section 6's newid): ids are minted
  // client-locally, so they are unique without coordination.
  ObjectId NewId(ContainerId container);

  // Low-level unified operation RPC (used by Tx). Handles timeouts, retries
  // and the retry budget per Options. The no-target form addresses the local
  // server (this client's own node); the targeted form addresses a sibling
  // shard of the same site under intra-site sharding.
  void Op(ClientOpRequest req, std::function<void(Status, const ClientOpResponse&)> cb);
  void Op(SiteId target, ClientOpRequest req,
          std::function<void(Status, const ClientOpResponse&)> cb);

  // Per-container routing under intra-site sharding: maps a container to the
  // server node owning it at this client's site. Unset (the default) = every
  // container is served by the client's own node, the unsharded behavior.
  using Router = std::function<SiteId(ContainerId)>;
  void SetRouter(Router router) { router_ = std::move(router); }
  SiteId RouteFor(ContainerId c) const { return router_ ? router_(c) : site_; }

  const Options& options() const { return options_; }
  // Total RPC retransmissions performed (excluding first attempts).
  uint64_t retries_sent() const { return retries_sent_; }
  // Overload-shedding counters (stay 0 with overload_retry_tokens = 0).
  uint64_t overload_retries_sent() const { return overload_retries_sent_; }
  uint64_t overload_sheds() const { return overload_sheds_; }

  // Commit-event notification registry (Section 4.2 callbacks).
  void WatchDurable(TxId tid, std::function<void()> cb) { durable_watch_[tid] = std::move(cb); }
  void WatchVisible(TxId tid, std::function<void()> cb) { visible_watch_[tid] = std::move(cb); }

  // Snapshot pinning (the GC frontier's live-transaction input). The cluster
  // attaches the site's registry plus a floor provider that reads the local
  // server's CommittedVTS; without a registry pinning is a no-op (pin id 0).
  void AttachPins(SnapshotPinRegistry* pins, std::function<VectorTimestamp()> floor) {
    pins_ = pins;
    pin_floor_ = std::move(floor);
  }
  uint64_t PinSnapshot() { return pins_ != nullptr ? pins_->Pin(pin_floor_()) : 0; }
  void RaisePin(uint64_t pin, const VectorTimestamp& vts) {
    if (pins_ != nullptr && pin != 0) {
      pins_->Raise(pin, vts);
    }
  }
  void UnpinSnapshot(uint64_t pin) {
    if (pins_ != nullptr && pin != 0) {
      pins_->Unpin(pin);
    }
  }

 private:
  // `tid` is carried alongside the request purely for trace attribution.
  void Attempt(SiteId target, ClientOpRequest req,
               std::function<void(Status, const ClientOpResponse&)> cb, size_t attempt,
               TxId tid);
  // Retransmission path: the serialized request buffer is shared across attempts.
  void Attempt(SiteId target, Payload request,
               std::function<void(Status, const ClientOpResponse&)> cb, size_t attempt,
               TxId tid);
  SimDuration BackoffFor(size_t attempt);
  // Lazily refills the token bucket from elapsed sim time and takes one token
  // if available. Only called with overload_retry_tokens > 0.
  bool TakeOverloadToken();

  RpcEndpoint endpoint_;
  SiteId site_;
  Options options_;
  uint64_t uid_;
  uint64_t next_tx_ = 1;
  uint64_t next_local_id_ = 1;
  uint64_t next_op_seq_ = 1;
  uint64_t retries_sent_ = 0;
  uint64_t overload_retries_sent_ = 0;
  uint64_t overload_sheds_ = 0;
  // Token bucket for overload retries (initialized full on first use so a
  // client constructed before its simulator starts does not read the clock).
  double overload_tokens_ = -1.0;
  SimTime overload_refill_at_ = 0;
  std::unordered_map<TxId, std::function<void()>> durable_watch_;
  std::unordered_map<TxId, std::function<void()>> visible_watch_;
  SnapshotPinRegistry* pins_ = nullptr;
  std::function<VectorTimestamp()> pin_floor_;
  Router router_;
};

// A transaction handle. Create, issue operations (serially), then Commit or
// Abort. The handle must outlive its outstanding callbacks.
class Tx {
 public:
  explicit Tx(WalterClient* client);
  // A handle dropped without Commit/Abort traces the transaction as done so
  // liveness tracking (the watchdog) retires it instead of reporting it stuck.
  ~Tx();

  TxId tid() const { return tid_; }

  // Selects this transaction's consistency level (docs/CONSISTENCY.md). Must
  // be called before the first operation: the mode rides on every RPC so the
  // server applies one policy to the whole transaction. Default is PSI, which
  // keeps the wire format byte-identical to a mode-unaware client.
  void SetMode(ConsistencyMode mode);
  ConsistencyMode mode() const { return mode_; }

  using ReadCallback = std::function<void(Status, std::optional<std::string>)>;
  using SetReadCallback = std::function<void(Status, CountingSet)>;
  using CountCallback = std::function<void(Status, int64_t)>;
  using MultiReadCallback =
      std::function<void(Status, std::vector<std::optional<std::string>>)>;
  using CommitCallback = std::function<void(Status)>;

  void Read(const ObjectId& oid, ReadCallback cb);
  void SetRead(const ObjectId& setid, SetReadCallback cb);
  void SetReadId(const ObjectId& setid, const ObjectId& id, CountCallback cb);
  void MultiRead(std::vector<ObjectId> oids, MultiReadCallback cb);

  // Updates are buffered and flushed lazily (enables the 1-RPC fast path).
  void Write(const ObjectId& oid, std::string data);
  void SetAdd(const ObjectId& setid, const ObjectId& id);
  void SetDel(const ObjectId& setid, const ObjectId& id);
  // Destroying a regular object is writing nil to it (Section 6).
  void Destroy(const ObjectId& oid) { Write(oid, ""); }

  struct CommitOptions {
    std::function<void()> on_durable;  // disaster-safe durable at f+1 sites
    std::function<void()> on_visible;  // committed at all sites
  };
  void Commit(CommitCallback cb, CommitOptions options = {});
  void Abort(std::function<void()> done = nullptr);

  // Number of update RPCs + read RPCs + commit RPCs this transaction issued.
  size_t rpcs_issued() const { return rpcs_issued_; }

 private:
  ClientOpRequest BaseRequest();
  // Serializable mode tracks every object the transaction read; the read set
  // rides the commit request and joins the write set in the 2PC conflict
  // check (backward OCC). A no-op in the other modes.
  void TrackRead(const ObjectId& oid);
  void BufferUpdate(ClientOpKind kind, const ObjectId& oid, const ObjectId& elem,
                    std::string data);
  // Sends the buffered update (if any), then runs `then`.
  void FlushBuffered(std::function<void(Status)> then);
  void AbsorbResponse(const ClientOpResponse& resp);
  // Expires when this Tx is destroyed. Response callbacks of in-flight RPCs
  // (which may outlive an abandoned transaction through the retry/backoff
  // chain) hold a weak copy and drop the late response instead of touching a
  // dead Tx.
  std::weak_ptr<char> AliveToken() const { return alive_; }

  // The server node this transaction's ops are pinned to once it has written:
  // the shard owning the first written container at the client's site. The
  // server-side update buffer lives there, so later updates, reads (which must
  // see the buffer) and the commit all go there too. kNoSite until the first
  // write; read-only transactions route each read by its container instead.
  SiteId CommitServer() const { return commit_server_; }
  SiteId ReadTarget(ContainerId c) const {
    return commit_server_ != kNoSite ? commit_server_ : client_->RouteFor(c);
  }

  WalterClient* client_;
  TxId tid_;
  VectorTimestamp vts_;  // snapshot, once known
  ConsistencyMode mode_ = ConsistencyMode::kPsi;
  std::vector<ObjectId> read_set_;  // serializable mode only
  SiteId commit_server_ = kNoSite;
  std::optional<ClientOpRequest> buffered_;
  size_t update_rpcs_sent_ = 0;
  size_t rpcs_issued_ = 0;
  bool finished_ = false;
  // Snapshot pin held for the lifetime of the transaction (0 = no registry).
  // Released exactly once: by the Commit/Abort chains (which own it by value,
  // independent of the handle) or by the destructor for abandoned handles.
  uint64_t pin_ = 0;
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace walter

#endif  // SRC_CORE_CLIENT_H_
