#include "src/core/messages.h"

namespace walter {

namespace {

void PutOptionalString(ByteWriter* w, const std::optional<std::string>& s) {
  w->PutU8(s.has_value() ? 1 : 0);
  if (s) {
    w->PutString(*s);
  }
}

std::optional<std::string> GetOptionalString(ByteReader* r) {
  if (r->GetU8() == 0) {
    return std::nullopt;
  }
  return r->GetString();
}

}  // namespace

std::string ClientOpRequest::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  uint8_t flags = (start_tx ? 1 : 0) | (commit_after ? 2 : 0) | (abort ? 4 : 0) |
                  (want_durable ? 8 : 0) | (want_visible ? 16 : 0);
  w.PutU8(flags);
  w.PutVts(vts);
  w.PutU8(static_cast<uint8_t>(op));
  w.PutObjectId(oid);
  w.PutObjectId(elem);
  w.PutString(data);
  w.PutU32(static_cast<uint32_t>(oids.size()));
  for (const auto& o : oids) {
    w.PutObjectId(o);
  }
  w.PutU32(reply_port);
  w.PutU64(op_seq);
  // Trailing optional field (wire-compatible like PropagateAck's floor): only
  // cross-node ops carry it, so single-server-per-site runs serialize the
  // exact pre-sharding byte stream. The consistency-mode group rides after it,
  // so a non-default mode forces reply_site onto the wire too (kNoSite is a
  // plain u32 sentinel, so the field order stays decodable).
  bool mode_tail = mode != ConsistencyMode::kPsi || !read_oids.empty();
  if (reply_site != kNoSite || mode_tail) {
    w.PutU32(reply_site);
  }
  if (mode_tail) {
    w.PutU8(static_cast<uint8_t>(mode));
    w.PutU32(static_cast<uint32_t>(read_oids.size()));
    for (const auto& o : read_oids) {
      w.PutObjectId(o);
    }
  }
  return w.Take();
}

ClientOpRequest ClientOpRequest::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  ClientOpRequest req;
  req.tid = r.GetU64();
  uint8_t flags = r.GetU8();
  req.start_tx = flags & 1;
  req.commit_after = flags & 2;
  req.abort = flags & 4;
  req.want_durable = flags & 8;
  req.want_visible = flags & 16;
  req.vts = r.GetVts();
  req.op = static_cast<ClientOpKind>(r.GetU8());
  req.oid = r.GetObjectId();
  req.elem = r.GetObjectId();
  req.data = r.GetString();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    req.oids.push_back(r.GetObjectId());
  }
  req.reply_port = r.GetU32();
  req.op_seq = r.GetU64();
  if (r.remaining() > 0) {
    req.reply_site = r.GetU32();
  }
  if (r.remaining() > 0) {
    req.mode = static_cast<ConsistencyMode>(r.GetU8());
    uint32_t nr = r.GetU32();
    for (uint32_t i = 0; i < nr && !r.failed(); ++i) {
      req.read_oids.push_back(r.GetObjectId());
    }
  }
  return req;
}

std::string ClientOpResponse::Serialize() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(status));
  w.PutVts(assigned_vts);
  w.PutU8(found ? 1 : 0);
  w.PutString(data);
  w.PutString(cset_bytes);
  w.PutI64(count);
  w.PutU32(static_cast<uint32_t>(values.size()));
  for (const auto& v : values) {
    PutOptionalString(&w, v);
  }
  w.PutVersion(commit_version);
  // Trailing optional (like PrepareRequest's priority): omitted when zero.
  if (retry_after_us != 0) {
    w.PutU64(retry_after_us);
  }
  return w.Take();
}

ClientOpResponse ClientOpResponse::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  ClientOpResponse resp;
  resp.status = static_cast<StatusCode>(r.GetU8());
  resp.assigned_vts = r.GetVts();
  resp.found = r.GetU8() != 0;
  resp.data = r.GetString();
  resp.cset_bytes = r.GetString();
  resp.count = r.GetI64();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    resp.values.push_back(GetOptionalString(&r));
  }
  resp.commit_version = r.GetVersion();
  if (r.remaining() > 0) {
    resp.retry_after_us = r.GetU64();
  }
  return resp;
}

std::string PrepareRequest::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  w.PutU32(static_cast<uint32_t>(oids.size()));
  for (const auto& o : oids) {
    w.PutObjectId(o);
  }
  w.PutVts(start_vts);
  // Trailing optional (like PropagateAck's floor): omitted when zero, so the
  // pre-watermark protocol serializes the exact same byte stream. The
  // clock/mode group rides after priority, so any non-default member forces
  // priority onto the wire too (0 decodes back to 0 — still correct).
  bool clock_tail =
      commit_ts != 0 || mode != ConsistencyMode::kPsi || !read_oids.empty();
  if (priority != 0 || clock_tail) {
    w.PutU64(priority);
  }
  if (clock_tail) {
    w.PutU64(static_cast<uint64_t>(commit_ts));
    w.PutU8(static_cast<uint8_t>(mode));
    w.PutU32(static_cast<uint32_t>(read_oids.size()));
    for (const auto& o : read_oids) {
      w.PutObjectId(o);
    }
  }
  return w.Take();
}

PrepareRequest PrepareRequest::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  PrepareRequest req;
  req.tid = r.GetU64();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    req.oids.push_back(r.GetObjectId());
  }
  req.start_vts = r.GetVts();
  if (r.remaining() > 0) {
    req.priority = r.GetU64();
  }
  if (r.remaining() > 0) {
    req.commit_ts = static_cast<int64_t>(r.GetU64());
    req.mode = static_cast<ConsistencyMode>(r.GetU8());
    uint32_t nr = r.GetU32();
    for (uint32_t i = 0; i < nr && !r.failed(); ++i) {
      req.read_oids.push_back(r.GetObjectId());
    }
  }
  return req;
}

std::string PrepareResponse::Serialize() const {
  ByteWriter w;
  w.PutU8(vote_yes ? 1 : 0);
  if (reason != AbortReason::kNone || clock_fallback) {
    w.PutU8(static_cast<uint8_t>(reason));
  }
  if (clock_fallback) {
    w.PutU8(1);
  }
  return w.Take();
}

PrepareResponse PrepareResponse::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  PrepareResponse resp;
  resp.vote_yes = r.GetU8() != 0;
  if (r.remaining() > 0) {
    resp.reason = static_cast<AbortReason>(r.GetU8());
  }
  if (r.remaining() > 0) {
    resp.clock_fallback = r.GetU8() != 0;
  }
  return resp;
}

std::string CommitDecision::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  w.PutVersion(version);
  return w.Take();
}

CommitDecision CommitDecision::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  CommitDecision d;
  d.tid = r.GetU64();
  d.version = r.GetVersion();
  return d;
}

std::string AbortMessage::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  return w.Take();
}

AbortMessage AbortMessage::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  AbortMessage m;
  m.tid = r.GetU64();
  return m;
}

std::string PropagateBatch::Serialize() const {
  ByteWriter w;
  w.PutU32(origin);
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (const auto& rec : records) {
    rec.Serialize(&w);
  }
  return w.Take();
}

PropagateBatch PropagateBatch::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  PropagateBatch b;
  b.origin = r.GetU32();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    b.records.push_back(TxRecord::Deserialize(&r));
  }
  return b;
}

size_t PropagateBatch::ByteSize() const {
  size_t n = 8;
  for (const auto& rec : records) {
    n += rec.ByteSize();
  }
  return n;
}

std::string PropagateAck::Serialize() const {
  ByteWriter w;
  w.PutU32(from);
  w.PutU32(origin);
  w.PutU64(received_through);
  if (stability_floor.num_sites() > 0) {
    w.PutVts(stability_floor);
  }
  return w.Take();
}

PropagateAck PropagateAck::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  PropagateAck a;
  a.from = r.GetU32();
  a.origin = r.GetU32();
  a.received_through = r.GetU64();
  if (r.remaining() > 0) {
    a.stability_floor = r.GetVts();
  }
  return a;
}

std::string DsDurableMessage::Serialize() const {
  ByteWriter w;
  w.PutU32(origin);
  w.PutU64(durable_through);
  return w.Take();
}

DsDurableMessage DsDurableMessage::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  DsDurableMessage m;
  m.origin = r.GetU32();
  m.durable_through = r.GetU64();
  return m;
}

std::string VisibleAck::Serialize() const {
  ByteWriter w;
  w.PutU32(from);
  w.PutU32(origin);
  w.PutU64(committed_through);
  return w.Take();
}

VisibleAck VisibleAck::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  VisibleAck a;
  a.from = r.GetU32();
  a.origin = r.GetU32();
  a.committed_through = r.GetU64();
  return a;
}

std::string RemoteReadRequest::Serialize() const {
  ByteWriter w;
  w.PutObjectId(oid);
  w.PutVts(vts);
  w.PutU8(is_cset ? 1 : 0);
  w.PutU32(caller);
  w.PutU64(local_min_seqno);
  // Trailing optional: omitted at the default level, so PSI traffic keeps the
  // pre-mode byte stream.
  if (mode != ConsistencyMode::kPsi) {
    w.PutU8(static_cast<uint8_t>(mode));
  }
  return w.Take();
}

RemoteReadRequest RemoteReadRequest::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  RemoteReadRequest req;
  req.oid = r.GetObjectId();
  req.vts = r.GetVts();
  req.is_cset = r.GetU8() != 0;
  req.caller = r.GetU32();
  req.local_min_seqno = r.GetU64();
  if (r.remaining() > 0) {
    req.mode = static_cast<ConsistencyMode>(r.GetU8());
  }
  return req;
}

std::string RemoteReadResponse::Serialize() const {
  ByteWriter w;
  w.PutU8(found ? 1 : 0);
  w.PutString(data);
  w.PutVersion(version);
  w.PutString(cset_bytes);
  return w.Take();
}

RemoteReadResponse RemoteReadResponse::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  RemoteReadResponse resp;
  resp.found = r.GetU8() != 0;
  resp.data = r.GetString();
  resp.version = r.GetVersion();
  resp.cset_bytes = r.GetString();
  return resp;
}

std::string TxStatusRequest::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  return w.Take();
}

TxStatusRequest TxStatusRequest::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  TxStatusRequest req;
  req.tid = r.GetU64();
  return req;
}

std::string TxStatusResponse::Serialize() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(outcome));
  return w.Take();
}

TxStatusResponse TxStatusResponse::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  TxStatusResponse resp;
  resp.outcome = static_cast<TxStatusOutcome>(r.GetU8());
  return resp;
}

std::string TxNotify::Serialize() const {
  ByteWriter w;
  w.PutU64(tid);
  return w.Take();
}

TxNotify TxNotify::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  TxNotify n;
  n.tid = r.GetU64();
  return n;
}

std::string ResyncState::Serialize() const {
  ByteWriter w;
  w.PutU32(from);
  w.PutU64(got_through);
  w.PutU64(committed_through);
  w.PutU64(durable_through);
  w.PutU8(is_reply ? 1 : 0);
  return w.Take();
}

ResyncState ResyncState::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  ResyncState m;
  m.from = r.GetU32();
  m.got_through = r.GetU64();
  m.committed_through = r.GetU64();
  m.durable_through = r.GetU64();
  m.is_reply = r.GetU8() != 0;
  return m;
}

std::string FetchRecordsRequest::Serialize() const {
  ByteWriter w;
  w.PutU32(from);
  w.PutU32(origin);
  w.PutU64(from_seqno);
  w.PutU64(to_seqno);
  return w.Take();
}

FetchRecordsRequest FetchRecordsRequest::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  FetchRecordsRequest m;
  m.from = r.GetU32();
  m.origin = r.GetU32();
  m.from_seqno = r.GetU64();
  m.to_seqno = r.GetU64();
  return m;
}

std::string FetchRecordsResponse::Serialize() const {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(records.size()));
  for (const auto& rec : records) {
    rec.Serialize(&w);
  }
  return w.Take();
}

FetchRecordsResponse FetchRecordsResponse::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  FetchRecordsResponse m;
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    m.records.push_back(TxRecord::Deserialize(&r));
  }
  return m;
}

}  // namespace walter
