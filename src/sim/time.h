// Simulated time. One tick is one microsecond of virtual time.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace walter {

using SimTime = int64_t;      // absolute virtual time, microseconds
using SimDuration = int64_t;  // virtual duration, microseconds

constexpr SimDuration Micros(int64_t us) { return us; }
constexpr SimDuration Millis(double ms) { return static_cast<SimDuration>(ms * 1000.0); }
constexpr SimDuration Seconds(double s) { return static_cast<SimDuration>(s * 1'000'000.0); }

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1000.0; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1'000'000.0; }

}  // namespace walter

#endif  // SRC_SIM_TIME_H_
