// FIFO queueing resources used to model server capacity.
//
// A Walter server's throughput in the paper is bound by RPC processing cost
// and, for commits, a contended lock (Section 8.3). We model both as
// `Resource`s: a resource has `capacity` parallel servers; work items queue
// FIFO and each occupies one server for its service time. Queueing delay under
// load is what produces the latency tails of Figures 18, 20 and 22.
#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace walter {

class Resource {
 public:
  // capacity: number of parallel servers (cores/lock holders).
  Resource(Simulator* sim, int capacity, std::string name = "");
  ~Resource();

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  // Enqueues a work item needing `service_time`; `done` runs at completion.
  void Execute(SimDuration service_time, std::function<void()> done);

  size_t queue_length() const { return queue_.size(); }
  int busy() const { return busy_; }
  uint64_t completed() const { return completed_; }
  // Cumulative busy server-time, for utilization reporting.
  SimDuration busy_time() const { return busy_time_; }

 private:
  struct Item {
    SimDuration service;
    std::function<void()> done;
  };

  void StartNext();
  void RunItem(Item item);

  Simulator* sim_;
  int capacity_;
  std::string name_;
  int busy_ = 0;
  uint64_t completed_ = 0;
  SimDuration busy_time_ = 0;
  std::deque<Item> queue_;
  // Completion events capture `this`; the token lets one fire after the owner
  // (a replaced server) destroyed this resource without touching freed state.
  std::shared_ptr<bool> alive_;
};

}  // namespace walter

#endif  // SRC_SIM_RESOURCE_H_
