// Group-commit disk model.
//
// Walter flushes commit records with group commit (Section 6): many records
// share one flush. The model: at most one flush is in flight; records arriving
// while a flush is running join the next batch, which starts when the current
// flush completes. The resulting wait (0..2 flush latencies under load) is the
// disk component of the Figure 18 commit-latency CDFs.
//
// Three presets mirror the paper's three measurement environments (Section 8.3):
// EC2 (write cache effectively on, virtualized), private cluster with write
// caching on, and private cluster with write caching off.
#ifndef SRC_SIM_DISK_H_
#define SRC_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace walter {

struct DiskConfig {
  // Time for one flush (sync write) to become durable.
  SimDuration flush_latency = Millis(1.0);
  // Multiplicative jitter: each flush takes latency * U[1, 1+jitter].
  double jitter = 0.5;
  // Occasional stalls (virtualized/contended devices): with this probability a
  // flush takes an extra stall_latency * U[0.5, 1.5]. These produce the long
  // commit-latency tails of Figure 18.
  double stall_probability = 0;
  SimDuration stall_latency = 0;

  static DiskConfig Ec2();                // virtualized disk, write cache on
  static DiskConfig WriteCacheOn();       // private cluster, cache on
  static DiskConfig WriteCacheOff();      // private cluster, cache off (true sync)
  static DiskConfig Memory();             // commit to memory (ReTwis experiments, §8.7)
};

// Injectable storage faults (crash-point fuzzing and the Nemesis disk action).
// Armed on a server's Disk and consumed by the restore path the next time the
// server is replaced: the replacement sees the durable image as a faulty
// device would present it. All parameters are explicit, so a seeded rig
// replays the exact same corruption.
struct DiskFaults {
  // Torn final write: append the first `torn_tail_bytes` bytes of the
  // *unflushed* WAL tail to the durable image. fsync-acknowledged bytes are
  // never torn — the tear only exposes a prefix of in-flight bytes, possibly
  // ending mid-frame (recovery must stop at the last intact frame).
  bool torn_tail = false;
  size_t torn_tail_bytes = SIZE_MAX;  // clamped to the in-flight tail length
  // Bit rot inside the durable WAL image: XOR `bit_rot_mask` into the byte at
  // `bit_rot_offset` (relative to the image start, wrapped to its length).
  // Violates the fsync contract, so recovery may need peer backfill.
  bool bit_rot = false;
  size_t bit_rot_offset = 0;
  uint8_t bit_rot_mask = 0x01;
  // Corrupt the checkpoint image (detected by its CRC wrapper; recovery falls
  // back to replaying the WAL alone).
  bool checkpoint_rot = false;

  bool any() const { return torn_tail || bit_rot || checkpoint_rot; }
};

class Disk {
 public:
  Disk(Simulator* sim, DiskConfig config);
  ~Disk();

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Makes one record durable; `done` runs when the batch containing the record
  // has been flushed. With DiskConfig::Memory() this completes immediately.
  void Flush(std::function<void()> done);

  // Runtime latency multiplier (fault injection: a degraded device). 1.0 is
  // nominal; an instant (Memory) disk stays instant regardless.
  void SetSlowdown(double factor) { slowdown_ = factor < 0 ? 0 : factor; }
  double slowdown() const { return slowdown_; }

  // Stall burst: flushes run `factor`x slower until `duration` elapses, then
  // the slowdown returns to nominal. Overlapping bursts extend, not stack.
  void StallBurst(double factor, SimDuration duration);
  uint64_t stall_bursts() const { return stall_bursts_; }

  // Arms faults for the next crash/restore cycle; TakeFaults consumes them.
  void ArmFaults(const DiskFaults& faults) { faults_ = faults; }
  DiskFaults TakeFaults() {
    DiskFaults f = faults_;
    faults_ = DiskFaults{};
    return f;
  }
  const DiskFaults& armed_faults() const { return faults_; }

  uint64_t flushes() const { return flushes_; }
  uint64_t records() const { return records_; }

 private:
  void StartFlush();

  Simulator* sim_;
  DiskConfig config_;
  double slowdown_ = 1.0;
  bool flushing_ = false;
  std::deque<std::function<void()>> waiting_;  // records for the next batch
  uint64_t flushes_ = 0;
  uint64_t records_ = 0;
  uint64_t stall_bursts_ = 0;
  SimTime stall_until_ = 0;  // latest pending burst expiry
  DiskFaults faults_;
  // Flush-completion events capture `this`; the token lets a completion fire
  // after the owning server has been replaced without touching freed state.
  std::shared_ptr<bool> alive_;
};

}  // namespace walter

#endif  // SRC_SIM_DISK_H_
