// Deterministic single-threaded discrete-event simulator.
//
// All distributed pieces of this repository (Walter servers, Paxos nodes,
// clients, the network) run as callbacks scheduled on one Simulator. Virtual
// time replaces EC2 wall-clock time, which makes every experiment in
// EXPERIMENTS.md exactly reproducible from a seed.
//
// Events scheduled for the same instant run in scheduling order (stable FIFO),
// so protocol steps never race nondeterministically.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/time.h"

namespace walter {

// Handle for a scheduled event; used to cancel timers (e.g. RPC timeouts).
using EventId = uint64_t;

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at absolute virtual time t (clamped to Now()).
  EventId At(SimTime t, std::function<void()> fn);

  // Schedules fn after a virtual delay (clamped to >= 0).
  EventId After(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Safe to call on already-fired or unknown ids.
  void Cancel(EventId id);

  // Runs until the event queue drains.
  void Run();

  // Runs events with time <= t, then sets Now() to t. Returns the number of
  // events processed. Used by benches to run a fixed virtual duration.
  size_t RunUntil(SimTime t);

  // Runs a single event if one is pending; returns false when the queue is empty.
  bool Step();

  bool empty() const { return pending_count_ == 0; }
  size_t events_processed() const { return events_processed_; }

  Rng& rng() { return rng_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const std::unique_ptr<Event>& a, const std::unique_ptr<Event>& b) const {
      if (a->time != b->time) {
        return a->time > b->time;
      }
      return a->seq > b->seq;
    }
  };

  // Pops the next non-canceled event, or nullptr if none.
  std::unique_ptr<Event> PopNext();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t pending_count_ = 0;  // non-canceled events in the queue
  size_t events_processed_ = 0;
  std::priority_queue<std::unique_ptr<Event>, std::vector<std::unique_ptr<Event>>, EventLater>
      queue_;
  // Canceled ids not yet popped; erased when the event surfaces.
  std::unordered_set<EventId> canceled_;
  Rng rng_;
};

}  // namespace walter

#endif  // SRC_SIM_SIMULATOR_H_
