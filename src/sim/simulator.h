// Deterministic single-threaded discrete-event simulator.
//
// All distributed pieces of this repository (Walter servers, Paxos nodes,
// clients, the network) run as callbacks scheduled on one Simulator. Virtual
// time replaces EC2 wall-clock time, which makes every experiment in
// EXPERIMENTS.md exactly reproducible from a seed.
//
// Events scheduled for the same instant run in scheduling order (stable FIFO),
// so protocol steps never race nondeterministically.
//
// Hot-path design (every protocol message is at least one event, so this layer
// bounds the wall-clock speed of every experiment):
//  - Events live inline in a slot pool ordered by a flat indexed binary heap
//    of slot indices; scheduling an event performs no heap allocation beyond
//    amortized pool growth.
//  - Callbacks are SmallFunction with a 48-byte inline buffer, so typical
//    protocol closures never allocate.
//  - EventIds carry a slot generation, making Cancel O(log n) with immediate
//    removal (no tombstones): the callable and everything it captured are
//    released at cancel time, and a stale id can never cancel a later event
//    that reuses the slot.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/small_function.h"
#include "src/sim/time.h"

namespace walter {

// Handle for a scheduled event; used to cancel timers (e.g. RPC timeouts).
// Encodes (generation << 32) | (slot + 1); 0 is reserved as "no event".
using EventId = uint64_t;

class Simulator {
 public:
  using Callback = SmallFunction<void()>;

  explicit Simulator(uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules fn at absolute virtual time t (clamped to Now()).
  EventId At(SimTime t, Callback fn);

  // Schedules fn after a virtual delay (clamped to >= 0).
  EventId After(SimDuration delay, Callback fn);

  // Cancels a pending event, releasing its callable (and everything the
  // callable captured) immediately. Safe to call on already-fired, canceled or
  // unknown ids: generation checking makes those calls no-ops even if the
  // event's slot has been reused by a later event.
  void Cancel(EventId id);

  // Runs until the event queue drains.
  void Run();

  // Runs events with time <= t, then sets Now() to t. Returns the number of
  // events processed. Used by benches to run a fixed virtual duration.
  size_t RunUntil(SimTime t);

  // Runs a single event if one is pending; returns false when the queue is empty.
  bool Step();

  bool empty() const { return heap_.empty(); }
  size_t events_processed() const { return events_processed_; }

  // Earliest pending event time, or kNoPendingEvent when the queue is empty.
  // The threaded runtime uses this to sleep until the owner's next timer; sim
  // mode never calls it.
  static constexpr SimTime kNoPendingEvent = INT64_MAX;
  SimTime NextEventTime() const {
    return heap_.empty() ? kNoPendingEvent : slots_[heap_[0]].time;
  }

  Rng& rng() { return rng_; }

 private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  // One event, stored inline in the slot pool. `heap_pos`/`gen` are live-event
  // bookkeeping; a free slot threads `next_free` through the pool instead.
  struct Slot {
    SimTime time = 0;
    uint64_t seq = 0;       // tie-break: FIFO among same-time events
    Callback fn;
    uint32_t gen = 1;       // bumped on release; stale EventIds do not match
    uint32_t heap_pos = kNoSlot;
    uint32_t next_free = kNoSlot;
  };

  bool Earlier(uint32_t a, uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.time != sb.time) {
      return sa.time < sb.time;
    }
    return sa.seq < sb.seq;
  }

  void SiftUp(uint32_t pos);
  void SiftDown(uint32_t pos);
  // Detaches heap_[pos] from the heap and restores the heap property.
  void HeapRemove(uint32_t pos);

  uint32_t AllocSlot();
  // Returns a slot to the free list, destroying its callable and bumping its
  // generation so outstanding ids for it become stale.
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> heap_;  // heap of slot indices, min (time, seq) on top
  uint32_t free_head_ = kNoSlot;
  Rng rng_;
};

}  // namespace walter

#endif  // SRC_SIM_SIMULATOR_H_
