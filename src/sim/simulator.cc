#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace walter {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNoSlot) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  ++s.gen;
  s.heap_pos = kNoSlot;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulator::SiftUp(uint32_t pos) {
  uint32_t moving = heap_[pos];
  while (pos > 0) {
    uint32_t parent = (pos - 1) / 2;
    if (!Earlier(moving, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    slots_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void Simulator::SiftDown(uint32_t pos) {
  uint32_t moving = heap_[pos];
  const uint32_t n = static_cast<uint32_t>(heap_.size());
  while (true) {
    uint32_t child = 2 * pos + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Earlier(heap_[child], moving)) {
      break;
    }
    heap_[pos] = heap_[child];
    slots_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = moving;
  slots_[moving].heap_pos = pos;
}

void Simulator::HeapRemove(uint32_t pos) {
  uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
    return;  // removed the tail
  }
  heap_[pos] = last;
  slots_[last].heap_pos = pos;
  // The replacement may need to move either direction.
  SiftUp(pos);
  SiftDown(slots_[last].heap_pos);
}

EventId Simulator::At(SimTime t, Callback fn) {
  uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.time = std::max(t, now_);
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  heap_.push_back(slot);
  SiftUp(static_cast<uint32_t>(heap_.size() - 1));
  return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
}

EventId Simulator::After(SimDuration delay, Callback fn) {
  return At(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id == 0) {
    return;
  }
  uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].gen != gen ||
      slots_[slot].heap_pos == kNoSlot) {
    return;  // already fired/canceled (possibly reused since)
  }
  HeapRemove(slots_[slot].heap_pos);
  ReleaseSlot(slot);
}

void Simulator::Run() {
  while (Step()) {
  }
}

size_t Simulator::RunUntil(SimTime t) {
  size_t processed = 0;
  while (!heap_.empty() && slots_[heap_[0]].time <= t && Step()) {
    ++processed;
  }
  now_ = std::max(now_, t);
  return processed;
}

bool Simulator::Step() {
  if (heap_.empty()) {
    return false;
  }
  uint32_t slot = heap_[0];
  now_ = std::max(now_, slots_[slot].time);
  // Move the callable out and release the slot before invoking it, so the
  // callback can freely schedule new events (possibly reusing this slot) and
  // Cancel with the fired event's id is a stale-generation no-op.
  Callback fn = std::move(slots_[slot].fn);
  HeapRemove(0);
  ReleaseSlot(slot);
  ++events_processed_;
  fn();
  return true;
}

}  // namespace walter
