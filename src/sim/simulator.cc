#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace walter {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::At(SimTime t, std::function<void()> fn) {
  auto ev = std::make_unique<Event>();
  ev->time = std::max(t, now_);
  ev->seq = next_seq_++;
  ev->id = next_id_++;
  ev->fn = std::move(fn);
  EventId id = ev->id;
  queue_.push(std::move(ev));
  ++pending_count_;
  return id;
}

EventId Simulator::After(SimDuration delay, std::function<void()> fn) {
  return At(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

void Simulator::Cancel(EventId id) {
  if (id != 0) {
    canceled_.insert(id);
  }
}

std::unique_ptr<Simulator::Event> Simulator::PopNext() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the const_cast is confined here and safe
    // because we pop immediately after moving.
    auto& top = const_cast<std::unique_ptr<Event>&>(queue_.top());
    std::unique_ptr<Event> ev = std::move(top);
    queue_.pop();
    --pending_count_;
    auto it = canceled_.find(ev->id);
    if (it != canceled_.end()) {
      canceled_.erase(it);
      continue;
    }
    return ev;
  }
  return nullptr;
}

void Simulator::Run() {
  while (Step()) {
  }
}

size_t Simulator::RunUntil(SimTime t) {
  size_t processed = 0;
  while (!queue_.empty()) {
    const auto& top = queue_.top();
    if (auto it = canceled_.find(top->id); it != canceled_.end()) {
      // Discard canceled events here: letting Step() skip them would make it
      // execute the next live event even when that one lies beyond `t`,
      // silently jumping simulated time past the requested horizon.
      canceled_.erase(it);
      auto& topref = const_cast<std::unique_ptr<Event>&>(queue_.top());
      std::unique_ptr<Event> dead = std::move(topref);
      queue_.pop();
      --pending_count_;
      continue;
    }
    if (top->time > t) {
      break;
    }
    if (!Step()) {
      break;
    }
    ++processed;
  }
  now_ = std::max(now_, t);
  return processed;
}

bool Simulator::Step() {
  std::unique_ptr<Event> ev = PopNext();
  if (!ev) {
    return false;
  }
  now_ = std::max(now_, ev->time);
  ++events_processed_;
  ev->fn();
  return true;
}

}  // namespace walter
