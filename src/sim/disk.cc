#include "src/sim/disk.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace walter {

DiskConfig DiskConfig::Ec2() {
  // Virtualized EBS-era disk with write caching: sub-millisecond "flush", but
  // noisy-neighbor stalls in the multi-millisecond range now and then.
  return DiskConfig{.flush_latency = Millis(0.8),
                    .jitter = 1.0,
                    .stall_probability = 0.015,
                    .stall_latency = Millis(14)};
}

DiskConfig DiskConfig::WriteCacheOn() {
  return DiskConfig{.flush_latency = Millis(0.3),
                    .jitter = 0.5,
                    .stall_probability = 0.005,
                    .stall_latency = Millis(6)};
}

DiskConfig DiskConfig::WriteCacheOff() {
  // True synchronous write on a 7200rpm-class disk: ~8ms rotational+seek,
  // with occasional multi-revolution stalls.
  return DiskConfig{.flush_latency = Millis(8.0),
                    .jitter = 0.6,
                    .stall_probability = 0.02,
                    .stall_latency = Millis(35)};
}

DiskConfig DiskConfig::Memory() {
  return DiskConfig{.flush_latency = 0, .jitter = 0};
}

Disk::Disk(Simulator* sim, DiskConfig config)
    : sim_(sim), config_(config), alive_(std::make_shared<bool>(true)) {}

Disk::~Disk() { *alive_ = false; }

void Disk::StallBurst(double factor, SimDuration duration) {
  if (factor < 1.0) {
    factor = 1.0;
  }
  ++stall_bursts_;
  slowdown_ = factor;
  stall_until_ = std::max(stall_until_, sim_->Now() + duration);
  sim_->After(duration, [this, alive = alive_]() {
    if (!*alive) {
      return;
    }
    if (sim_->Now() >= stall_until_) {
      slowdown_ = 1.0;
    }
  });
}

void Disk::Flush(std::function<void()> done) {
  ++records_;
  if (config_.flush_latency == 0 || slowdown_ == 0) {
    done();
    return;
  }
  waiting_.push_back(std::move(done));
  if (!flushing_) {
    StartFlush();
  }
}

void Disk::StartFlush() {
  flushing_ = true;
  ++flushes_;
  // Everything queued so far rides this flush; later arrivals form the next batch.
  auto batch = std::make_shared<std::vector<std::function<void()>>>();
  batch->reserve(waiting_.size());
  while (!waiting_.empty()) {
    batch->push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  SimDuration latency = static_cast<SimDuration>(
      static_cast<double>(config_.flush_latency) * (1.0 + config_.jitter * sim_->rng().NextDouble()));
  if (config_.stall_probability > 0 && sim_->rng().Bernoulli(config_.stall_probability)) {
    latency += static_cast<SimDuration>(static_cast<double>(config_.stall_latency) *
                                        (0.5 + sim_->rng().NextDouble()));
  }
  latency = static_cast<SimDuration>(static_cast<double>(latency) * slowdown_);
  sim_->After(latency, [this, batch, alive = alive_]() {
    if (!*alive) {
      return;
    }
    for (auto& cb : *batch) {
      cb();
    }
    if (!waiting_.empty()) {
      StartFlush();
    } else {
      flushing_ = false;
    }
  });
}

}  // namespace walter
