#include "src/sim/resource.h"

#include <utility>

namespace walter {

Resource::Resource(Simulator* sim, int capacity, std::string name)
    : sim_(sim),
      capacity_(capacity),
      name_(std::move(name)),
      alive_(std::make_shared<bool>(true)) {}

Resource::~Resource() { *alive_ = false; }

void Resource::Execute(SimDuration service_time, std::function<void()> done) {
  if (busy_ < capacity_) {
    RunItem(Item{service_time, std::move(done)});
  } else {
    queue_.push_back(Item{service_time, std::move(done)});
  }
}

void Resource::RunItem(Item item) {
  ++busy_;
  busy_time_ += item.service;
  sim_->After(item.service, [this, alive = alive_, done = std::move(item.done)]() mutable {
    if (!*alive) {
      return;
    }
    --busy_;
    ++completed_;
    // Run the completion before starting queued work so same-time ordering is
    // deterministic: completion, then the next item's start.
    done();
    StartNext();
  });
}

void Resource::StartNext() {
  while (busy_ < capacity_ && !queue_.empty()) {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    RunItem(std::move(item));
  }
}

}  // namespace walter
