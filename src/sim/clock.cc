#include "src/sim/clock.h"

namespace walter {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ClockModel::ClockModel(SiteId site, const Options& options) : options_(options) {
  if (options_.skew_bound <= 0) {
    return;  // perfectly synchronized clocks
  }
  // Derive a stable per-site offset in (-bound, +bound) and a signed drift
  // rate in [-drift_ppm, +drift_ppm]. Site 0 gets a nonzero offset too: no
  // site is privileged as "the true clock".
  uint64_t h = SplitMix64(options_.seed * 0x100000001b3ULL + site + 1);
  // Start the fixed offset inside half the bound so drift has room to move
  // before the clamp engages.
  SimDuration half = options_.skew_bound / 2;
  offset_ = half > 0 ? static_cast<SimDuration>(h % (2 * half + 1)) - half : 0;
  uint64_t h2 = SplitMix64(h);
  double unit = static_cast<double>(h2 % 2001) / 1000.0 - 1.0;  // [-1, 1]
  drift_ = unit * options_.drift_ppm * 1e-6;
}

SimTime ClockModel::LocalNow(SimTime base) const {
  SimDuration skew = offset_ + static_cast<SimDuration>(drift_ * static_cast<double>(base));
  if (skew > options_.skew_bound) {
    skew = options_.skew_bound;
  } else if (skew < -options_.skew_bound) {
    skew = -options_.skew_bound;
  }
  return base + skew + step_;
}

SimTime ClockModel::BaseTimeFor(SimTime local) const {
  // The skew at any instant is within [-bound, +bound] (plus the injected
  // step), so local = base + skew(base) is monotone in base (|drift| << 1).
  // Start from the naive inverse and walk forward until LocalNow passes —
  // at most a few iterations since skew changes by < 1us per 10s of base
  // time at realistic drift rates.
  SimTime base = local - offset_ - step_;
  while (LocalNow(base) < local) {
    SimTime deficit = local - LocalNow(base);
    base += deficit > 0 ? deficit : 1;
  }
  while (base > 0 && LocalNow(base - 1) >= local) {
    --base;
  }
  return base;
}

}  // namespace walter
