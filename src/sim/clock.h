// ClockModel: per-site loosely synchronized clocks with bounded skew + drift.
//
// Walter's base protocols never read a wall clock — all ordering flows from
// seqnos and vector timestamps. The clock-ordered slow-commit path (Tiga-style
// future commit timestamps, see docs/CONSISTENCY.md) does: the coordinator
// assigns a commit timestamp in the near future and every participant holds
// the transaction until its *local* clock passes it. For that to be meaningful
// the model needs per-site clocks that disagree, but by a bounded amount.
//
// The model is a pure function of a base "true time" instant:
//
//   local_now(site, base) = base + offset(site) + drift_ppm(site) * base
//
// clamped so |local_now - base| <= skew_bound at every instant the simulation
// can reach. Purity is what makes the model runtime-seam-agnostic:
//  - under the simulator, base is Simulator::Now() — deterministic, so every
//    run of a seed sees byte-identical clock readings;
//  - under the threaded runtime, base is the executor's WallClock virtual now
//    (steady_clock compressed by time_scale), so local clocks advance with
//    real time but keep the same per-site skew structure.
//
// Offsets and drift rates derive from a seed via splitmix64, so two sites
// always disagree (unless the bound is zero) and the disagreement is stable
// across runs. A test hook can shift a site's offset mid-run — including
// backwards — to model clock steps; see ClockCommitTest.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

#include "src/common/types.h"
#include "src/sim/time.h"

namespace walter {

class ClockModel {
 public:
  struct Options {
    // Hard bound on |local - true| at any instant, in microseconds. The
    // clock-ordered commit path budgets this bound into every assigned
    // timestamp; a site whose clock violates it (e.g. an injected step) falls
    // back to classic 2PC behavior for the affected prepare.
    SimDuration skew_bound = Millis(5);
    // Per-site drift magnitude, parts-per-million of elapsed base time. Drift
    // accumulates until it saturates the skew bound, then clamps (modeling a
    // clock-discipline daemon that steers the clock back inside the bound).
    double drift_ppm = 50.0;
    // Seeds the per-site offset/drift derivation.
    uint64_t seed = 1;
  };

  ClockModel() = default;
  ClockModel(SiteId site, const Options& options);

  // The site's local clock reading at base ("true") time `base`.
  SimTime LocalNow(SimTime base) const;

  // The base time at which this site's local clock first reads `local` (the
  // inverse of LocalNow, rounded up). Used to schedule "when my clock passes
  // T" on a base-time timer.
  SimTime BaseTimeFor(SimTime local) const;

  SimDuration skew_bound() const { return options_.skew_bound; }

  // Test hook: steps the site's clock by `delta` (negative = backwards). A
  // step can push the clock outside the skew bound, which is exactly what the
  // fallback-path tests need.
  void InjectStep(SimDuration delta) { step_ += delta; }

 private:
  Options options_;
  SimDuration offset_ = 0;   // fixed component, in (-skew_bound, +skew_bound)
  double drift_ = 0.0;       // signed, fraction of elapsed base time
  SimDuration step_ = 0;     // injected (test-only) clock step
};

}  // namespace walter

#endif  // SRC_SIM_CLOCK_H_
