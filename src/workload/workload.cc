#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace walter {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashToUnit(uint64_t h) {
  // [0, 1) with 53 bits of the hash.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    a %= b;
    std::swap(a, b);
  }
  return a;
}

// Smallest odd multiplier >= the seeded candidate that is coprime with n
// (so r -> (r*mult + shift) mod n permutes [0, n)).
uint64_t CoprimeMultiplier(uint64_t n, uint64_t seed) {
  if (n <= 2) {
    return 1;
  }
  uint64_t m = (SplitMix64(seed) % (n - 2)) + 2;
  m |= 1;
  while (Gcd(m % n, n) != 1) {
    m += 2;
  }
  return m % n;
}

// Modular inverse of a mod n (gcd(a, n) == 1), by extended Euclid.
uint64_t ModInverse(uint64_t a, uint64_t n) {
  if (n <= 1) {
    return 0;
  }
  int64_t t = 0;
  int64_t new_t = 1;
  int64_t r = static_cast<int64_t>(n);
  int64_t new_r = static_cast<int64_t>(a % n);
  while (new_r != 0) {
    int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  if (t < 0) {
    t += static_cast<int64_t>(n);
  }
  return static_cast<uint64_t>(t);
}

// Pareto(alpha) on [lo, cap] via inverse CDF of a hashed uniform.
uint64_t ParetoCount(uint64_t hash, double alpha, uint64_t lo, uint64_t cap) {
  double u = HashToUnit(hash);
  if (u > 0.999999999) {
    u = 0.999999999;
  }
  double x = static_cast<double>(lo) / std::pow(1.0 - u, 1.0 / alpha);
  if (x >= static_cast<double>(cap)) {
    return cap;
  }
  uint64_t v = static_cast<uint64_t>(x);
  return v < lo ? lo : v;
}

}  // namespace

// --- ZipfKeyPicker -------------------------------------------------------------

ZipfKeyPicker::ZipfKeyPicker(uint64_t keys, double s, uint64_t seed)
    : keys_(keys == 0 ? 1 : keys),
      s_(s),
      mult_(CoprimeMultiplier(keys_, SplitMix64(seed))),
      shift_(SplitMix64(seed ^ 0xda3e39cb94b95bdbULL) % keys_) {}

uint64_t ZipfKeyPicker::KeyOfRank(uint64_t rank) const {
  // 128-bit-safe affine permutation: keys_ can be millions, so rank * mult_
  // overflows 64 bits only past ~2^32 keys; use __int128 to stay exact.
  unsigned __int128 p = static_cast<unsigned __int128>(rank % keys_) * mult_ + shift_;
  return static_cast<uint64_t>(p % keys_);
}

uint64_t ZipfKeyPicker::Pick(Rng& rng) const { return KeyOfRank(rng.Zipf(keys_, s_)); }

// --- RateSchedule ----------------------------------------------------------------

RateSchedule RateSchedule::Constant(double rate) {
  RateSchedule s;
  s.steps_.push_back({0, rate});
  s.peak_ = rate;
  return s;
}

RateSchedule RateSchedule::FlashCrowd(double base, double peak_mult, SimDuration start,
                                      SimDuration ramp, SimDuration hold, SimDuration step) {
  RateSchedule s;
  double peak = base * peak_mult;
  s.steps_.push_back({0, base});
  if (step < Millis(1)) {
    step = Millis(1);
  }
  size_t ramp_steps = ramp > 0 ? static_cast<size_t>((ramp + step - 1) / step) : 0;
  for (size_t i = 1; i <= ramp_steps; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(ramp_steps);
    s.steps_.push_back({start + static_cast<SimDuration>(i - 1) * step,
                        base + (peak - base) * frac});
  }
  if (ramp_steps == 0) {
    s.steps_.push_back({start, peak});
  }
  SimDuration peak_from = start + ramp;
  s.steps_.push_back({peak_from, peak});
  for (size_t i = 1; i <= ramp_steps; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(ramp_steps);
    s.steps_.push_back({peak_from + hold + static_cast<SimDuration>(i - 1) * step,
                        peak - (peak - base) * frac});
  }
  s.steps_.push_back({peak_from + hold + ramp, base});
  s.peak_ = peak;
  return s;
}

RateSchedule RateSchedule::Diurnal(double base, double amplitude, SimDuration period,
                                   double phase, size_t steps) {
  RateSchedule s;
  if (steps == 0) {
    steps = 1;
  }
  constexpr double kTau = 6.283185307179586;
  s.peak_ = 0;
  for (size_t i = 0; i < steps; ++i) {
    double mid = (static_cast<double>(i) + 0.5) / static_cast<double>(steps);
    double rate = base * (1.0 + amplitude * std::sin(kTau * (mid + phase)));
    if (rate < 0) {
      rate = 0;
    }
    s.steps_.push_back(
        {static_cast<SimDuration>(static_cast<double>(period) * static_cast<double>(i) /
                                  static_cast<double>(steps)),
         rate});
    s.peak_ = std::max(s.peak_, rate);
  }
  s.repeat_ = period;
  return s;
}

double RateSchedule::RateAt(SimDuration since_start) const {
  if (steps_.empty()) {
    return 0;
  }
  SimDuration t = since_start;
  if (repeat_ > 0) {
    t = since_start % repeat_;
  }
  double rate = steps_.front().rate;
  for (const Step& s : steps_) {
    if (s.from > t) {
      break;
    }
    rate = s.rate;
  }
  return rate;
}

// --- ScheduledLoad ----------------------------------------------------------------

ScheduledLoad::ScheduledLoad(Simulator* sim, RateSchedule schedule, WorkloadOpFactory factory,
                             uint64_t seed)
    : sim_(sim),
      schedule_(std::move(schedule)),
      factory_(std::move(factory)),
      rng_(std::make_shared<Rng>(SplitMix64(seed ^ 0x5ca1ab1e0ddba11ULL))) {}

void ScheduledLoad::Start(SimTime measure_start, SimTime measure_end) {
  result_ = std::make_shared<ScheduledLoadResult>();
  result_->seconds = ToSeconds(measure_end - measure_start);
  struct Window {
    SimTime start = 0;
    SimTime end = 0;
    bool Contains(SimTime t) const { return t >= start && t < end; }
  };
  auto window = std::make_shared<Window>();
  SimTime origin = sim_->Now();
  window->start = measure_start;
  window->end = measure_end;

  double peak = schedule_.peak();
  if (peak <= 0) {
    return;
  }
  double mean_gap_us = 1e6 / peak;

  // Nonhomogeneous Poisson via thinning: candidate arrivals at the peak rate,
  // each accepted with probability rate(now)/peak. Weak self-capture as in the
  // harness drivers: the pending timer holds the one strong reference, so the
  // chain dies when the last timer past measure_end declines to reschedule.
  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [this, result = result_, window, origin, mean_gap_us, peak,
              weak_arrival = std::weak_ptr<std::function<void()>>(arrival)]() {
    SimTime begin = sim_->Now();
    if (begin >= window->end) {
      return;
    }
    double rate = schedule_.RateAt(begin - origin);
    if (rng_->NextDouble() < rate / peak) {
      if (window->Contains(begin)) {
        ++result->offered;
      }
      factory_([sim = sim_, begin, result, window](bool ok) {
        SimTime end = sim->Now();
        if (ok) {
          // Goodput counts completions landing inside the window — straggler
          // completions during the drain must not inflate a short window past
          // capacity. Latency follows in-window arrivals to wherever they
          // finish, so an overloaded cell's multi-second tail stays visible.
          if (window->Contains(end)) {
            ++result->completed;
          }
          if (window->Contains(begin)) {
            result->latency.Add(static_cast<double>(end - begin));
          }
        } else if (window->Contains(begin)) {
          ++result->failed;
        }
      });
    }
    SimDuration gap = static_cast<SimDuration>(rng_->Exponential(mean_gap_us));
    auto self = weak_arrival.lock();
    sim_->After(std::max<SimDuration>(gap, 1), [self]() {
      if (self) {
        (*self)();
      }
    });
  };
  (*arrival)();
}

ScheduledLoadResult ScheduledLoad::Run(SimDuration warmup, SimDuration measure,
                                       SimDuration drain) {
  SimTime start = sim_->Now() + warmup;
  Start(start, start + measure);
  sim_->RunUntil(start + measure + drain);
  return std::move(*result_);
}

// --- SocialGraph -----------------------------------------------------------------

SocialGraph::SocialGraph(SocialGraphOptions options) : options_(options) {
  if (options_.users == 0) {
    options_.users = 1;
  }
  if (options_.celebrities > options_.users) {
    options_.celebrities = options_.users;
  }
  rank_mult_ = CoprimeMultiplier(options_.users, SplitMix64(options_.seed));
  rank_shift_ = SplitMix64(options_.seed ^ 0xbf58476d1ce4e5b9ULL) % options_.users;
  rank_mult_inv_ = ModInverse(rank_mult_, options_.users);
}

uint64_t SocialGraph::HashOf(uint64_t a, uint64_t b) const {
  return SplitMix64(SplitMix64(options_.seed ^ a) ^ b);
}

uint64_t SocialGraph::UserOfRank(uint64_t rank) const {
  unsigned __int128 p =
      static_cast<unsigned __int128>(rank % options_.users) * rank_mult_ + rank_shift_;
  return static_cast<uint64_t>(p % options_.users);
}

uint64_t SocialGraph::RankOf(uint64_t user) const {
  uint64_t u = user % options_.users;
  uint64_t d = (u + options_.users - rank_shift_) % options_.users;
  unsigned __int128 p = static_cast<unsigned __int128>(d) * rank_mult_inv_;
  return static_cast<uint64_t>(p % options_.users);
}

uint64_t SocialGraph::FollowerCount(uint64_t user) const {
  uint64_t h = HashOf(user, 0x0f011083);
  if (IsCelebrity(user)) {
    uint64_t cap = std::min<uint64_t>(options_.celebrity_cap, options_.users - 1);
    uint64_t lo = std::min<uint64_t>(options_.celebrity_min, cap);
    return ParetoCount(h, options_.follower_alpha, lo, cap);
  }
  uint64_t cap = std::min<uint64_t>(options_.follower_cap, options_.users - 1);
  uint64_t lo = std::min<uint64_t>(options_.min_followers, cap);
  return ParetoCount(h, options_.follower_alpha, lo, cap);
}

uint64_t SocialGraph::Follower(uint64_t user, uint64_t i) const {
  uint64_t f = HashOf(user ^ 0xf0110bebULL, i) % options_.users;
  if (f == user % options_.users) {
    f = (f + 1) % options_.users;
  }
  return f;
}

uint64_t SocialGraph::FolloweeCount(uint64_t user) const {
  // Everyone follows a modest number of accounts; fanout lives on the
  // follower side. Pareto with a tight cap keeps timeline reads bounded.
  uint64_t cap = std::min<uint64_t>(512, options_.users - 1);
  uint64_t lo = std::min<uint64_t>(options_.min_followers, cap);
  return ParetoCount(HashOf(user, 0xf0110e11), options_.follower_alpha, lo, cap);
}

uint64_t SocialGraph::Followee(uint64_t user, uint64_t i) const {
  // Polynomially biased toward low popularity ranks, so most follow edges
  // point at popular accounts (and every celebrity timeline is hot).
  double u = HashToUnit(HashOf(user ^ 0x0f0110eeULL, i));
  uint64_t rank = static_cast<uint64_t>(static_cast<double>(options_.users) * u * u * u);
  if (rank >= options_.users) {
    rank = options_.users - 1;
  }
  uint64_t f = UserOfRank(rank);
  if (f == user % options_.users) {
    f = UserOfRank((rank + 1) % options_.users);
  }
  return f;
}

uint64_t SocialGraph::PickUser(Rng& rng) const {
  return UserOfRank(rng.Zipf(options_.users, options_.zipf_s));
}

}  // namespace walter
