// Workload-generator layer: the million-user scenario suite.
//
// The figure benches drive uniform or paper-shaped load; production traffic is
// skewed (Zipfian hot keys), bursty (flash crowds) and geographically lopsided
// (diurnal per-site imbalance). This library generates those shapes
// deterministically — every generator is a pure function of (seed, inputs) or
// draws from an explicit Rng — so a scenario replays byte-identically under
// the sim and is still usable from the threaded runtime (each driver owns its
// state; nothing here is global).
//
// Pieces:
//  - ZipfKeyPicker: Zipfian key popularity over a keyspace, with the hot ranks
//    scattered across the keyspace by a seeded permutation (rank 0 is the
//    hottest key, but it is not key 0 — co-locating hot ranks would alias hot
//    keys with whatever the bench populated first).
//  - RateSchedule: target-rate-over-time step/ramp functions — constant,
//    flash-crowd (base → peak → base), diurnal (per-site phase-shifted
//    sinusoid sampled into steps).
//  - ScheduledLoad: an open-loop driver following a RateSchedule via Poisson
//    thinning (arrivals at the peak rate, accepted with probability
//    rate(t)/peak — the standard way to draw a nonhomogeneous Poisson
//    process).
//  - SocialGraph: a virtual WaltSocial/ReTwis-scale dataset (millions of
//    users, power-law follower counts, hot-celebrity fanout) computed by
//    hashing — nothing is materialized, so "1M users" costs no memory and no
//    populate phase; only the objects a scenario actually touches exist.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace walter {

// --- Zipfian key popularity ---------------------------------------------------

// Draws keys in [0, keys) with Zipf(s) popularity. Rank r (0 = hottest) maps
// to key (r * A + B) mod keys, an affine permutation seeded per picker, so two
// pickers with different seeds heat different keys.
class ZipfKeyPicker {
 public:
  // s is the Zipf exponent: the paper-standard "theta" (s ∈ {0.9, 1.1, 1.3}
  // in the surge suite; higher = more skewed).
  ZipfKeyPicker(uint64_t keys, double s, uint64_t seed);

  uint64_t Pick(Rng& rng) const;
  // The key holding popularity rank r (rank 0 = hottest); Pick() ∘ rank⁻¹.
  uint64_t KeyOfRank(uint64_t rank) const;
  uint64_t keys() const { return keys_; }
  double s() const { return s_; }

 private:
  uint64_t keys_;
  double s_;
  uint64_t mult_;   // odd, coprime with keys_
  uint64_t shift_;
};

// --- Target-rate schedules ------------------------------------------------------

// Piecewise-constant ops/sec over time (relative to the driver's start).
// Factories build the common shapes; RateAt samples the steps.
class RateSchedule {
 public:
  static RateSchedule Constant(double rate);
  // base until `start`, linear ramp to base*peak_mult over `ramp`, hold for
  // `hold`, symmetric ramp down. The ramps are sampled into steps of
  // `step` (default 100ms) — a flash crowd is a rate step function, not a
  // smooth curve.
  static RateSchedule FlashCrowd(double base, double peak_mult, SimDuration start,
                                 SimDuration ramp, SimDuration hold,
                                 SimDuration step = Millis(100));
  // Sinusoidal day: base * (1 + amplitude * sin(2π(t/period + phase))),
  // sampled into `steps` equal slices of one period and repeated. Per-site
  // imbalance = one schedule per site with phases spread over [0, 1).
  static RateSchedule Diurnal(double base, double amplitude, SimDuration period,
                              double phase, size_t steps = 24);

  double RateAt(SimDuration since_start) const;
  double peak() const { return peak_; }

 private:
  struct Step {
    SimDuration from = 0;
    double rate = 0;
  };
  std::vector<Step> steps_;  // sorted by `from`; last step extends forever
  SimDuration repeat_ = 0;   // 0 = no repetition; else wrap time modulo this
  double peak_ = 0;
};

// --- Variable-rate open-loop driver ---------------------------------------------

// Starts one operation; must invoke done(ok) exactly once when it completes.
// Structurally identical to the bench harness's OpFactory, so bench factories
// plug in directly.
using WorkloadOpFactory = std::function<void(std::function<void(bool ok)> done)>;

struct ScheduledLoadResult {
  uint64_t offered = 0;    // arrivals inside the measure window
  uint64_t completed = 0;  // done(true) landing inside the window (goodput)
  uint64_t failed = 0;     // done(false) for an in-window arrival
  double seconds = 0;
  LatencyRecorder latency;  // per-op latency (µs) of in-window arrivals that ok'd

  double Goodput() const { return seconds > 0 ? static_cast<double>(completed) / seconds : 0; }
  double OfferedRate() const { return seconds > 0 ? static_cast<double>(offered) / seconds : 0; }
};

// Open-loop arrivals following `schedule` (time 0 = Start()/Run() entry). Uses
// its own seeded Rng (not the simulator's) so adding a surge driver to a
// scenario leaves every other random draw in the run untouched.
class ScheduledLoad {
 public:
  ScheduledLoad(Simulator* sim, RateSchedule schedule, WorkloadOpFactory factory,
                uint64_t seed);

  // Schedules arrivals without running the simulator, for scenarios with
  // several concurrent drivers (per-site diurnal imbalance): each driver
  // Start()s, the caller runs the sim past `measure_end` plus a drain, then
  // reads result(). Arrivals stop at measure_end.
  void Start(SimTime measure_start, SimTime measure_end);
  const ScheduledLoadResult& result() const { return *result_; }

  // Single-driver convenience: Start() measuring [warmup, warmup+measure)
  // from now, run the sim until the window closes plus a drain period for
  // stragglers, return the result.
  ScheduledLoadResult Run(SimDuration warmup, SimDuration measure,
                          SimDuration drain = Seconds(5));

 private:
  Simulator* sim_;
  RateSchedule schedule_;
  WorkloadOpFactory factory_;
  std::shared_ptr<Rng> rng_;
  std::shared_ptr<ScheduledLoadResult> result_;
};

// --- Virtual social graph --------------------------------------------------------

struct SocialGraphOptions {
  uint64_t users = 1'000'000;
  // Follower counts ~ Pareto(alpha) on [min_followers, follower_cap].
  double follower_alpha = 1.16;  // the classic 80/20 exponent
  uint64_t min_followers = 8;
  uint64_t follower_cap = 20'000;
  // The `celebrities` hottest users get power-law fanout on a much higher
  // range [celebrity_min, celebrity_cap] — the hot-celebrity tail that makes
  // fanout-on-write melt a shard.
  uint64_t celebrities = 64;
  uint64_t celebrity_min = 100'000;
  uint64_t celebrity_cap = 2'000'000;
  // Popularity skew for PickUser (who acts, who gets read).
  double zipf_s = 1.1;
  uint64_t seed = 1;
};

// Deterministic virtual graph: every query is a hash of (seed, user, index).
// Follower lists are consistent (Follower(u, i) is stable) but not symmetric
// (u following v does not imply v's list contains u) — the benchmarks read
// timelines and fan out writes, neither of which needs symmetry.
class SocialGraph {
 public:
  explicit SocialGraph(SocialGraphOptions options);

  uint64_t users() const { return options_.users; }
  const SocialGraphOptions& options() const { return options_; }

  // Popularity rank of a user (0 = most popular); a seeded permutation of the
  // user id space, so user ids and popularity are uncorrelated.
  uint64_t RankOf(uint64_t user) const;
  uint64_t UserOfRank(uint64_t rank) const;
  bool IsCelebrity(uint64_t user) const { return RankOf(user) < options_.celebrities; }
  uint64_t Celebrity(uint64_t i) const { return UserOfRank(i % options_.celebrities); }

  // Power-law follower count (Pareto via inverse CDF of a per-user hash);
  // celebrities draw from the celebrity range.
  uint64_t FollowerCount(uint64_t user) const;
  // The i-th follower of `user` (i < FollowerCount(user)), never `user` itself.
  uint64_t Follower(uint64_t user, uint64_t i) const;
  // The i-th account `user` follows (for timeline reads); count is
  // FolloweeCount, biased toward popular users so celebrity timelines are hot.
  uint64_t FolloweeCount(uint64_t user) const;
  uint64_t Followee(uint64_t user, uint64_t i) const;

  // Zipf-popular user draw: who posts / whose profile is read.
  uint64_t PickUser(Rng& rng) const;

 private:
  uint64_t HashOf(uint64_t a, uint64_t b) const;

  SocialGraphOptions options_;
  uint64_t rank_mult_;
  uint64_t rank_shift_;
  uint64_t rank_mult_inv_;  // modular inverse for RankOf (users_ rounded: see .cc)
};

}  // namespace walter

#endif  // SRC_WORKLOAD_WORKLOAD_H_
