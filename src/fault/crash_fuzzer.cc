#include "src/fault/crash_fuzzer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

using Ev = WalterServer::StorageEvent;

// One storage event observed on the victim during the census pass. `offset` is
// the logical WAL position after the event, `durable` the flush-confirmed
// prefix at that moment — their gap is the in-flight tail a crash would lose.
struct CensusEntry {
  Ev event;
  size_t offset;
  size_t durable;
};

struct RunPlan {
  long crash_event = -1;            // storage event index to crash at; -1 = none
  bool crash_at_quiescence = false;  // crash after the workload fully settles
  // Bit-rot runs disable the GC coordinator: rot destroys bytes fsync promised
  // were durable, so zero-loss healing needs a surviving copy — peers must not
  // have released the records the stability frontier says everyone holds. The
  // crash/torn sweeps keep GC on (the frontier's durability premise holds
  // there, and the runs double as strand-free truncation checks).
  bool retain_peer_logs = false;
  DiskFaults faults;                 // armed at the crash, consumed by restore
  std::string label;
};

struct AckedWrite {
  ObjectId oid;
  std::string value;
};

const char* EvName(Ev e) {
  switch (e) {
    case Ev::kWalAppend:
      return "append";
    case Ev::kCheckpoint:
      return "checkpoint";
    case Ev::kWalTruncate:
      return "truncate";
  }
  return "?";
}

// Executes one scripted run of the workload under `plan`, appending any assert
// violations to the report. Returns the victim's storage-event census (only
// meaningful for a run that never crashes).
std::vector<CensusEntry> RunOnce(const CrashFuzzerOptions& options, const RunPlan& plan,
                                 CrashFuzzerReport* report) {
  ClusterOptions copt;
  copt.num_sites = options.num_sites;
  if (options.shards_per_site > 1) {
    copt.servers_per_site.assign(options.num_sites, options.shards_per_site);
  }
  copt.seed = options.seed;
  copt.server.perf = PerfModel::Instant();
  copt.server.disk = options.disk;
  copt.server.gossip_interval = 0;  // scripted runs quiesce; no periodic work
  copt.client.max_attempts = 8;
  if (plan.retain_peer_logs) {
    copt.gc.enabled = false;
  }
  Cluster cluster(copt);
  Simulator& sim = cluster.sim();
  const SiteId victim = options.victim;
  // All per-server bookkeeping (logs, convergence, PSI) spans virtual servers:
  // under sharding each shard is a full Walter server with its own log.
  const size_t n = cluster.num_servers();

  auto fail = [&](const std::string& what) {
    report->failures.push_back(plan.label + ": " + what);
  };

  // Harness-side commit logs, chaos-style: apply order per site plus a
  // (origin, seqno) -> record index. A record re-committed after a restore
  // (its first apply rolled back with the unflushed WAL tail) keeps its
  // first-occurrence position — that order was this site's real commit order
  // before the crash, and the re-application preserves per-origin seqno order.
  std::vector<std::vector<TxRecord>> logs(n);
  std::vector<std::set<std::pair<SiteId, uint64_t>>> applied(n);
  std::map<std::pair<SiteId, uint64_t>, TxRecord> by_version;

  // The victim checkpoints once, mid-workload, so the census includes the
  // checkpoint-write and WAL-truncation boundaries.
  bool checkpoint_scheduled = false;
  const uint64_t checkpoint_seqno =
      std::max<uint64_t>(1, static_cast<uint64_t>(options.txns_per_site) / 2);

  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    auto key = std::make_pair(rec.origin, rec.version.seqno);
    by_version[key] = rec;
    if (!checkpoint_scheduled && site == victim && rec.origin == victim &&
        rec.version.seqno == checkpoint_seqno) {
      checkpoint_scheduled = true;
      sim.After(Millis(1), [&cluster, victim]() {
        if (!cluster.server(victim).crashed()) {
          cluster.server(victim).Checkpoint();
        }
      });
    }
    if (!applied[site].insert(key).second) {
      return;  // re-commit after a restore
    }
    logs[site].push_back(rec);
  });

  // Reconciles the harness log after a replacement: records inside the
  // restored frontier that this site never reported committed silently during
  // the restore (the server cannot know what the crashed instance reported).
  auto reconcile = [&]() {
    WalterServer& fresh = cluster.server(victim);
    const VectorTimestamp& frontier = fresh.committed_vts();
    for (SiteId o = 0; o < static_cast<SiteId>(n); ++o) {
      for (uint64_t q = 1; q <= frontier.at(o); ++q) {
        auto key = std::make_pair(o, q);
        if (applied[victim].count(key) > 0) {
          continue;
        }
        auto it = by_version.find(key);
        if (it == by_version.end()) {
          if (o != victim) {
            fail("restored remote record " + std::to_string(o) + ":" + std::to_string(q) +
                 " that no observer ever saw");
            continue;
          }
          // Own record flushed but never acknowledged: only the restored
          // server retains it.
          const TxRecord* rec = fresh.RetainedLocalCommit(q);
          if (rec == nullptr) {
            fail("own restored seqno " + std::to_string(q) + " has no retained record");
            continue;
          }
          it = by_version.emplace(key, *rec).first;
        }
        logs[victim].push_back(it->second);
        applied[victim].insert(key);
      }
    }
  };

  bool replaced = false;
  auto do_replace = [&]() {
    cluster.ReplaceServer(victim);
    reconcile();
    replaced = true;
  };

  // Census + crash trigger. The pre-crash prefix of any two runs with the same
  // seed is identical, so event index k means the same machine state in every
  // sweep run.
  std::vector<CensusEntry> census;
  bool crash_fired = false;
  cluster.server(victim).SetStorageEventHook([&](Ev e, size_t off) {
    census.push_back({e, off, cluster.server(victim).durable_wal_bytes()});
    if (plan.crash_event >= 0 && !crash_fired &&
        static_cast<long>(census.size()) - 1 == plan.crash_event) {
      crash_fired = true;
      cluster.server(victim).disk().ArmFaults(plan.faults);
      cluster.server(victim).Crash();
      sim.After(Millis(50), [&]() { do_replace(); });
    }
  });

  // Scripted workload: one client per site, each committing txns_per_site
  // transactions sequentially, every write to a unique object so the
  // acked-commit check is exact. Commits failing while the victim is down are
  // fine — only acknowledged commits carry the durability promise.
  const size_t sites = options.num_sites;
  int active = static_cast<int>(sites);
  std::vector<AckedWrite> acked;
  std::vector<WalterClient*> clients;
  for (SiteId s = 0; s < static_cast<SiteId>(sites); ++s) {
    clients.push_back(cluster.AddClient(s));
  }
  // Per-site container choices. Unsharded, container s is preferred at site s.
  // Sharded, the first write always targets a shard-0 container (so the site's
  // first shard — the victim at site 0 — coordinates every 2PC and its own
  // seqnos advance predictably for the checkpoint trigger) and the second
  // write targets a shard-1 container, forcing the slow path.
  std::vector<ContainerId> first_container(sites), second_container(sites);
  for (SiteId s = 0; s < static_cast<SiteId>(sites); ++s) {
    first_container[s] = s;
    second_container[s] = s;
    if (options.shards_per_site > 1) {
      const ShardMap& map = cluster.shard_map();
      auto on_shard = [&](size_t shard) {
        for (ContainerId c = s;; c += sites) {
          if (map.ShardOf(c, s) == shard) {
            return c;
          }
        }
      };
      first_container[s] = on_shard(0);
      second_container[s] = on_shard(1);
    }
  }
  std::vector<int> next_txn(sites, 0);
  std::function<void(SiteId)> step = [&](SiteId s) {
    if (next_txn[s] >= options.txns_per_site) {
      --active;
      return;
    }
    int i = next_txn[s]++;
    auto tx = std::make_shared<Tx>(clients[s]);
    tx->SetMode(options.mode);
    ObjectId oid{first_container[s], 1000 + static_cast<uint64_t>(i)};
    std::string value = "s" + std::to_string(s) + "-t" + std::to_string(i);
    tx->Write(oid, value);
    ObjectId oid2{second_container[s], 2000 + static_cast<uint64_t>(i)};
    std::string value2 = value + "-x";
    if (options.shards_per_site > 1) {
      tx->Write(oid2, value2);
    }
    tx->Commit([&, s, tx, oid, value, oid2, value2](Status st) {
      if (st.ok()) {
        acked.push_back({oid, value});
        if (options.shards_per_site > 1) {
          acked.push_back({oid2, value2});
        }
      }
      // Think gap >> flush latency: at any append boundary the prior frames
      // are already flush-confirmed, keeping in-flight tails to ~one frame.
      sim.After(Millis(5), [&step, s]() { step(s); });
    });
  };
  for (SiteId s = 0; s < static_cast<SiteId>(sites); ++s) {
    step(s);
  }

  SimTime deadline = sim.Now() + Seconds(180);
  while (active > 0 && sim.Now() < deadline && sim.Step()) {
  }
  if (active > 0) {
    fail("workload stuck past its deadline");
  }
  cluster.RunFor(Seconds(10));  // settle: propagation, durability, visibility

  if (plan.crash_at_quiescence) {
    cluster.server(victim).disk().ArmFaults(plan.faults);
    cluster.server(victim).Crash();
    cluster.RunFor(Millis(50));
    do_replace();
  }
  bool planned_crash = plan.crash_event >= 0 || plan.crash_at_quiescence;
  if (planned_crash && !replaced) {
    cluster.RunFor(Millis(200));  // a hook crash near the end: replacement pending
  }
  if (planned_crash && !replaced) {
    fail("crash point never fired");
  }
  cluster.RunFor(Seconds(30));  // resync, backfill, re-propagation, convergence

  // Asserts ------------------------------------------------------------------
  WalterServer& v = cluster.server(victim);
  if (v.crashed()) {
    fail("victim still down after restart");
  }
  if (planned_crash && replaced) {
    if (v.stats().recoveries != 1) {
      fail("recovery did not complete (recoveries=" + std::to_string(v.stats().recoveries) + ")");
    }
    report->torn_detected += v.stats().recovery_torn_tails;
    report->backfilled += v.stats().recovery_backfilled;
    report->bad_checkpoints += v.stats().recovery_bad_checkpoints;
  }

  for (SiteId s = 1; s < static_cast<SiteId>(n); ++s) {
    if (!(cluster.server(s).committed_vts() == cluster.server(0).committed_vts())) {
      fail("site " + std::to_string(s) + " did not converge: " +
           cluster.server(s).committed_vts().ToString() + " vs victim " +
           cluster.server(0).committed_vts().ToString());
    }
  }

  // Zero acked-commit loss: every acknowledged write is readable, with its
  // exact value, at every site's full committed snapshot — at the shard that
  // replicates the object's container (every server, unsharded).
  for (const AckedWrite& w : acked) {
    for (SiteId site = 0; site < static_cast<SiteId>(sites); ++site) {
      SiteId s = cluster.shard_map().OwnerAt(w.oid.container, site);
      auto got = cluster.server(s).store().ReadRegular(w.oid, cluster.server(s).committed_vts());
      if (!got.has_value() || *got != w.value) {
        fail("acked commit lost at server " + std::to_string(s) + ": " + w.oid.ToString() +
             " = " + (got.has_value() ? *got : std::string("<missing>")) + ", want " + w.value);
      }
    }
  }
  report->acked_checked += acked.size();

  // Mode-aware consistency check over the reconciled logs (write-only
  // workload: the checker validates apply orders, per-origin seqno order and
  // causal consistency; at the default level this is exactly the PSI checker).
  ConsistencyChecker checker(n, options.mode);
  for (SiteId s = 0; s < static_cast<SiteId>(n); ++s) {
    for (const TxRecord& rec : logs[s]) {
      checker.OnApply(s, rec.tid);
    }
  }
  for (SiteId s = 0; s < static_cast<SiteId>(n); ++s) {
    for (const TxRecord& rec : logs[s]) {
      if (rec.origin != s) {
        continue;
      }
      RecordedTx recorded;
      recorded.record = rec;
      recorded.mode = options.mode;
      checker.OnCommit(std::move(recorded));
    }
  }
  Status psi = checker.Check();
  if (!psi.ok()) {
    fail(std::string(ConsistencyModeName(options.mode)) + " violation: " + psi.ToString());
  }

  ++report->runs;
  return census;
}

}  // namespace

std::string CrashFuzzerReport::Summary() const {
  std::string s = std::to_string(runs) + " runs (" + std::to_string(crash_points) +
                  " crash points, " + std::to_string(torn_cases) + " torn offsets, " +
                  std::to_string(rot_cases) + " rot images); " + std::to_string(acked_checked) +
                  " acked commits checked; torn-tails detected " + std::to_string(torn_detected) +
                  ", backfilled " + std::to_string(backfilled) + ", bad checkpoints " +
                  std::to_string(bad_checkpoints) + "; " + std::to_string(failures.size()) +
                  " failures";
  for (const std::string& f : failures) {
    s += "\n  " + f;
  }
  return s;
}

CrashFuzzerReport CrashPointFuzzer::Run() {
  CrashFuzzerReport report;
  RunPlan census_plan;
  census_plan.label = "census";
  std::vector<CensusEntry> census = RunOnce(options_, census_plan, &report);
  report.crash_points = census.size();
  if (census.empty()) {
    report.failures.push_back("census: no storage events recorded");
    return report;
  }
  WLOG(kInfo, "crash fuzzer: census found " << census.size() << " storage events");

  // Sweep 1: crash exactly at every storage event boundary.
  if (options_.sweep_crash_points) {
    for (size_t k = 0; k < census.size(); ++k) {
      RunPlan plan;
      plan.crash_event = static_cast<long>(k);
      plan.label = "crash@" + std::to_string(k) + "/" + EvName(census[k].event) + ":" +
                   std::to_string(census[k].offset);
      RunOnce(options_, plan, &report);
    }
  }

  // Sweep 2: crash at the last WAL append and tear the unflushed tail at every
  // byte offset of the final frame — from losing the frame entirely (j = 0) to
  // the whole write reaching the medium (j = frame length).
  if (options_.sweep_torn_offsets) {
    long last_append = -1;
    size_t prev_off = 0;
    for (size_t k = 0; k < census.size(); ++k) {
      if (census[k].event == Ev::kWalAppend) {
        if (last_append >= 0) {
          prev_off = census[last_append].offset;
        }
        last_append = static_cast<long>(k);
      }
    }
    if (last_append < 0) {
      report.failures.push_back("torn sweep: census has no WAL append events");
    } else {
      const CensusEntry& e = census[last_append];
      size_t tail = e.offset - e.durable;  // in-flight bytes at the crash
      size_t frame = e.offset - std::max(prev_off, e.durable);
      size_t keep_base = tail - frame;  // in-flight bytes before the final frame
      for (size_t j = 0; j <= frame; ++j) {
        RunPlan plan;
        plan.crash_event = last_append;
        plan.faults.torn_tail = true;
        plan.faults.torn_tail_bytes = keep_base + j;
        plan.label = "torn@" + std::to_string(j) + "/" + std::to_string(frame);
        RunOnce(options_, plan, &report);
        ++report.torn_cases;
      }
    }
  }

  // Sweep 3: corruption past the fsync contract, injected at quiescence (every
  // acked commit has propagated, so peer backfill plus resync must heal the
  // cluster completely): bit rot across the durable WAL image, and a rotted
  // checkpoint (CRC fallback to WAL-only recovery).
  if (options_.sweep_bit_rot) {
    size_t wal_end = census.back().offset;
    for (size_t off = 0; off < wal_end; off += options_.bit_rot_stride) {
      RunPlan plan;
      plan.crash_at_quiescence = true;
      plan.retain_peer_logs = true;
      plan.faults.bit_rot = true;
      plan.faults.bit_rot_offset = off;
      plan.label = "rot@" + std::to_string(off);
      RunOnce(options_, plan, &report);
      ++report.rot_cases;
    }
    RunPlan plan;
    plan.crash_at_quiescence = true;
    plan.retain_peer_logs = true;
    plan.faults.checkpoint_rot = true;
    plan.label = "ckpt-rot";
    RunOnce(options_, plan, &report);
    ++report.rot_cases;
  }
  return report;
}

}  // namespace walter
