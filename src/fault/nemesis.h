// Nemesis: a deterministic chaos (fault-injection) scheduler.
//
// Given a seed, the nemesis composes faults against a self-healing deployment
// (RecoveryRig) on a schedule drawn from the simulator's deterministic RNG:
//
//  - crash + delayed restart of a site's Walter server,
//  - isolation of one site from all others,
//  - pairwise network partitions,
//  - bursts of random message loss,
//  - disk slowdowns,
//  - disk faults: a stall burst followed by a crash with a torn WAL tail
//    surfacing at restore (the unflushed suffix partially reaches the medium).
//
// "Heavy" faults (crash, isolation, partition — anything that can take a site
// or link out) are serialized: at most one is active at a time, and each lasts
// long enough for automatic detection, removal and reintegration to run to
// completion before the next one starts. Loss bursts and disk slowdowns may
// overlap anything. At the end of the schedule every fault is healed, so the
// deployment can converge and be checked.
//
// The same seed always yields the same fault schedule at the same virtual
// times, so a failing chaos run is exactly reproducible.
#ifndef SRC_FAULT_NEMESIS_H_
#define SRC_FAULT_NEMESIS_H_

#include <string>
#include <vector>

#include "src/fault/recovery_rig.h"
#include "src/sim/time.h"

namespace walter {

struct NemesisOptions {
  // Mean gap between fault injections (exponential).
  SimDuration mean_gap = Seconds(5);
  // Heavy-fault duration range; must exceed the failure detector's suspicion
  // window so removals actually trigger.
  SimDuration min_heavy = Seconds(8);
  SimDuration max_heavy = Seconds(16);
  // Extra quiet time after a heavy fault heals before the next heavy fault,
  // so reintegration can complete.
  SimDuration heavy_cooldown = Seconds(20);
  // Light-fault duration range.
  SimDuration min_light = Seconds(2);
  SimDuration max_light = Seconds(6);
  double max_loss = 0.3;           // loss-burst drop probability cap
  double max_disk_slowdown = 8.0;  // disk slowdown factor cap
  bool enable_crash = true;
  bool enable_isolation = true;
  bool enable_partition = true;
  bool enable_loss = true;
  bool enable_disk = true;
  // Heavy fault: disk stall burst, then crash with DiskFaults armed so the
  // restore sees a torn WAL tail. Exercises the corruption-tolerant recovery
  // path under the full chaos schedule.
  bool enable_disk_fault = true;
};

class Nemesis {
 public:
  Nemesis(RecoveryRig* rig, NemesisOptions options);

  // Schedules faults from now until now + horizon; every fault injected is
  // healed no later than shortly after the horizon. Call once.
  void Run(SimDuration horizon);

  // True once every injected fault has been healed (crashed servers
  // restarted, partitions/isolation lifted, loss and slowdowns cleared).
  bool healed() const { return injected_ == healed_count_; }
  uint64_t faults_injected() const { return injected_; }
  // Human-readable fault log, for diagnosing a failing seed.
  const std::vector<std::string>& history() const { return history_; }

 private:
  enum class Fault { kCrash, kIsolation, kPartition, kLoss, kDisk, kDiskFault };

  void ScheduleNext();
  void Inject();
  void Note(const std::string& what);
  SimDuration HeavyDuration();
  SimDuration LightDuration();

  RecoveryRig* rig_;
  NemesisOptions options_;
  Simulator* sim_;
  size_t num_sites_;
  SimTime deadline_ = 0;       // no new faults after this
  SimTime heavy_free_at_ = 0;  // next time a heavy fault may start
  bool heavy_active_ = false;
  uint64_t injected_ = 0;
  uint64_t healed_count_ = 0;
  std::vector<std::string> history_;
};

}  // namespace walter

#endif  // SRC_FAULT_NEMESIS_H_
