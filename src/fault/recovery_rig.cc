#include "src/fault/recovery_rig.h"

#include <utility>

namespace walter {

RecoveryRig::RecoveryRig(Cluster* cluster)
    : RecoveryRig(cluster, FailureDetector::Options{}) {}

RecoveryRig::RecoveryRig(Cluster* cluster, FailureDetector::Options fd_options)
    : cluster_(cluster) {
  size_t n = cluster_->num_sites();
  for (SiteId s = 0; s < n; ++s) {
    configs_.push_back(std::make_unique<ConfigService>(&cluster_->sim(), &cluster_->net(), s, n,
                                                       &cluster_->directory(s),
                                                       &cluster_->server(s)));
  }
  for (SiteId s = 0; s < n; ++s) {
    detectors_.push_back(std::make_unique<FailureDetector>(
        &cluster_->sim(), &cluster_->net(), s, n, configs_[s].get(), fd_options));
    // The detection leader drives the aggressive recovery of Section 5.7 over
    // the current server objects. Server pointers are taken at call time:
    // RestartSite replaces server objects.
    detectors_[s]->SetRecoveryHandler(
        [this, s](SiteId failed, SiteId new_preferred, std::function<void(Status)> done) {
          std::vector<WalterServer*> servers;
          for (SiteId i = 0; i < cluster_->num_sites(); ++i) {
            servers.push_back(&cluster_->server(i));
          }
          SiteRecoveryCoordinator coordinator(&cluster_->sim(), std::move(servers),
                                              configs_[s].get());
          coordinator.RemoveFailedSite(failed, new_preferred, std::move(done));
        });
  }
  // A §5.7-removed site must stop freezing the GC stability frontier (and
  // resume gating it once reintegrated): a site counts as in-config while any
  // live site's configuration still considers it active.
  if (GcCoordinator* gc = cluster_->gc()) {
    gc->SetMembershipProbe([this](SiteId s) {
      for (SiteId i = 0; i < cluster_->num_sites(); ++i) {
        if (!cluster_->server(i).crashed() && configs_[i]->IsActive(s)) {
          return true;
        }
      }
      return false;
    });
  }
}

void RecoveryRig::Start() {
  for (auto& d : detectors_) {
    d->Start();
  }
}

void RecoveryRig::CrashSite(SiteId s) { cluster_->server(s).Crash(); }

void RecoveryRig::RestartSite(SiteId s) {
  WalterServer& replacement = cluster_->ReplaceServer(s);
  configs_[s]->AttachServer(&replacement);
  if (restart_observer_) {
    restart_observer_(s);
  }
}

}  // namespace walter
