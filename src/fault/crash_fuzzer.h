// CrashPointFuzzer: deterministic crash-point enumeration for the recovery
// path.
//
// One seeded, fully scripted workload is run twice over: a census pass counts
// every storage event on the victim server (WAL append boundaries, checkpoint
// writes, WAL truncations), then the same workload is re-run once per crash
// point, killing the victim exactly at that event via the StorageEventHook and
// restarting it through the replacement-server path. On top of the boundary
// enumeration, the final WAL frame is torn at every byte offset (the unflushed
// suffix partially reaching the medium), and bit-rot / checkpoint-rot images
// are fed to a restore at quiescence, when every acked commit has propagated
// and corruption-tolerant recovery (CRC fallback + peer backfill) must heal
// everything.
//
// After every run the fuzzer asserts: recovery completed, the sites converged
// to identical vector timestamps, no client-acknowledged commit was lost, and
// the committed history passes the PSI checker. Failures are collected as
// human-readable strings (with the crash point), never aborts, so one ctest
// invocation reports every bad point at once.
#ifndef SRC_FAULT_CRASH_FUZZER_H_
#define SRC_FAULT_CRASH_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cluster.h"

namespace walter {

struct CrashFuzzerOptions {
  size_t num_sites = 3;
  uint64_t seed = 1;
  // Committed transactions per site in the scripted workload. Keep small: the
  // census size (and so the number of crash runs) grows with it.
  int txns_per_site = 4;
  SiteId victim = 0;
  // Shards per site. With > 1, every workload transaction writes two objects
  // on distinct shards of its site, so each commit runs the intra-site 2PC
  // slow path — the sweep then crashes the victim at every storage boundary
  // with commit decisions and visibility watermarks in flight (the early-lock-
  // release path). 1 = the paper's unsharded model, fast commits only.
  size_t shards_per_site = 1;
  // Disk with a real flush window, so append -> durable is a crash interval.
  // DiskConfig::Memory() would make every append instantly durable and the
  // torn-tail sweep vacuous.
  DiskConfig disk{/*flush_latency=*/Millis(0.3), /*jitter=*/0.0};
  bool sweep_crash_points = true;  // every storage event on the victim
  bool sweep_torn_offsets = true;  // every byte offset of the final WAL frame
  bool sweep_bit_rot = true;       // rotted WAL / checkpoint images at quiescence
  // Bit-rot offsets are sampled at this stride across the durable image (the
  // per-field frame corruption matrix lives in storage_test).
  size_t bit_rot_stride = 64;
  // Consistency level every workload transaction runs at; the post-run history
  // validation uses the matching mode-aware checker (docs/CONSISTENCY.md).
  ConsistencyMode mode = ConsistencyMode::kPsi;
};

struct CrashFuzzerReport {
  size_t crash_points = 0;     // storage events enumerated by the census
  size_t torn_cases = 0;       // torn-tail byte offsets exercised
  size_t rot_cases = 0;        // bit-rot + checkpoint-rot images exercised
  size_t runs = 0;             // total workload executions (census included)
  size_t acked_checked = 0;    // acknowledged commits verified present
  // Aggregate recovery-path counters across all runs (coverage evidence: the
  // sweeps actually drove the torn-tail, backfill and CRC-fallback paths).
  uint64_t torn_detected = 0;
  uint64_t backfilled = 0;
  uint64_t bad_checkpoints = 0;
  std::vector<std::string> failures;  // empty iff every run's asserts held

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

class CrashPointFuzzer {
 public:
  explicit CrashPointFuzzer(CrashFuzzerOptions options) : options_(options) {}

  // Runs census + every enabled sweep. Deterministic in `options.seed`.
  CrashFuzzerReport Run();

 private:
  CrashFuzzerOptions options_;
};

}  // namespace walter

#endif  // SRC_FAULT_CRASH_FUZZER_H_
