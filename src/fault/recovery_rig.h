// RecoveryRig: a fully self-healing Walter deployment.
//
// Wraps a Cluster with one ConfigService and one FailureDetector per site and
// wires them together so that site failure, removal, container re-homing,
// replacement and reintegration all happen automatically — no test or
// administrator intervention beyond physically restarting a crashed machine
// (RestartSite). This is the deployment the chaos harness attacks.
#ifndef SRC_FAULT_RECOVERY_RIG_H_
#define SRC_FAULT_RECOVERY_RIG_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/config/config_service.h"
#include "src/config/failure_detector.h"
#include "src/core/cluster.h"

namespace walter {

class RecoveryRig {
 public:
  explicit RecoveryRig(Cluster* cluster);
  RecoveryRig(Cluster* cluster, FailureDetector::Options fd_options);

  // Starts every site's failure detector (call after containers are set up).
  void Start();

  ConfigService& config(SiteId s) { return *configs_[s]; }
  FailureDetector& detector(SiteId s) { return *detectors_[s]; }
  Cluster& cluster() { return *cluster_; }

  // Crashes the server at s (volatile state lost; endpoint down). Detection,
  // removal and re-homing then happen automatically.
  void CrashSite(SiteId s);

  // Replaces a crashed server with a fresh one restored from its durable
  // image and re-attaches it to the site's config service; the failure
  // detector reintegrates the site automatically once it has caught up.
  void RestartSite(SiteId s);

  // Invoked after RestartSite has restored the replacement server and replayed
  // configuration history into it. Restoration commits every durably-applied
  // record without the per-commit observer firing (the server cannot know
  // which of them the crashed instance already reported), so a harness keeping
  // its own commit logs must reconcile them here.
  void SetRestartObserver(std::function<void(SiteId)> observer) {
    restart_observer_ = std::move(observer);
  }

  bool IsCrashed(SiteId s) const { return cluster_->server(s).crashed(); }

 private:
  Cluster* cluster_;
  std::vector<std::unique_ptr<ConfigService>> configs_;
  std::vector<std::unique_ptr<FailureDetector>> detectors_;
  std::function<void(SiteId)> restart_observer_;
};

}  // namespace walter

#endif  // SRC_FAULT_RECOVERY_RIG_H_
