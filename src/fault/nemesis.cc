#include "src/fault/nemesis.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/sim/disk.h"

namespace walter {

Nemesis::Nemesis(RecoveryRig* rig, NemesisOptions options)
    : rig_(rig),
      options_(options),
      sim_(&rig->cluster().sim()),
      num_sites_(rig->cluster().num_sites()) {}

void Nemesis::Run(SimDuration horizon) {
  deadline_ = sim_->Now() + horizon;
  ScheduleNext();
}

void Nemesis::Note(const std::string& what) {
  history_.push_back("t=" + std::to_string(sim_->Now() / 1000) + "ms " + what);
  WLOG(kInfo, "nemesis: " << history_.back());
}

SimDuration Nemesis::HeavyDuration() {
  return static_cast<SimDuration>(
      sim_->rng().UniformRange(static_cast<uint64_t>(options_.min_heavy),
                               static_cast<uint64_t>(options_.max_heavy)));
}

SimDuration Nemesis::LightDuration() {
  return static_cast<SimDuration>(
      sim_->rng().UniformRange(static_cast<uint64_t>(options_.min_light),
                               static_cast<uint64_t>(options_.max_light)));
}

void Nemesis::ScheduleNext() {
  SimDuration gap = static_cast<SimDuration>(
      sim_->rng().Exponential(static_cast<double>(options_.mean_gap)));
  gap = std::max<SimDuration>(gap, Millis(100));
  if (sim_->Now() + gap > deadline_) {
    return;  // schedule exhausted; outstanding heals are already queued
  }
  sim_->After(gap, [this]() {
    Inject();
    ScheduleNext();
  });
}

void Nemesis::Inject() {
  Rng& rng = sim_->rng();
  std::vector<Fault> menu;
  bool heavy_ok = !heavy_active_ && sim_->Now() >= heavy_free_at_;
  if (heavy_ok && options_.enable_crash) {
    menu.push_back(Fault::kCrash);
  }
  if (heavy_ok && options_.enable_isolation) {
    menu.push_back(Fault::kIsolation);
  }
  if (heavy_ok && options_.enable_partition) {
    menu.push_back(Fault::kPartition);
  }
  if (options_.enable_loss) {
    menu.push_back(Fault::kLoss);
  }
  if (options_.enable_disk) {
    menu.push_back(Fault::kDisk);
  }
  if (heavy_ok && options_.enable_disk_fault) {
    menu.push_back(Fault::kDiskFault);
  }
  if (menu.empty()) {
    return;
  }
  Fault fault = menu[rng.Uniform(menu.size())];
  Network& net = rig_->cluster().net();

  switch (fault) {
    case Fault::kCrash: {
      SiteId s = rng.Uniform(num_sites_);
      if (rig_->IsCrashed(s)) {
        return;
      }
      SimDuration d = HeavyDuration();
      heavy_active_ = true;
      ++injected_;
      Note("crash site " + std::to_string(s) + " for " + std::to_string(d / 1000) + "ms");
      rig_->CrashSite(s);
      sim_->After(d, [this, s]() {
        Note("restart site " + std::to_string(s));
        rig_->RestartSite(s);
        heavy_active_ = false;
        heavy_free_at_ = sim_->Now() + options_.heavy_cooldown;
        ++healed_count_;
      });
      break;
    }
    case Fault::kIsolation: {
      SiteId s = rng.Uniform(num_sites_);
      SimDuration d = HeavyDuration();
      heavy_active_ = true;
      ++injected_;
      Note("isolate site " + std::to_string(s) + " for " + std::to_string(d / 1000) + "ms");
      net.IsolateSite(s, true);
      sim_->After(d, [this, s, &net]() {
        Note("heal isolation of site " + std::to_string(s));
        net.IsolateSite(s, false);
        heavy_active_ = false;
        heavy_free_at_ = sim_->Now() + options_.heavy_cooldown;
        ++healed_count_;
      });
      break;
    }
    case Fault::kPartition: {
      SiteId a = rng.Uniform(num_sites_);
      SiteId b = (a + 1 + rng.Uniform(num_sites_ - 1)) % num_sites_;
      SimDuration d = HeavyDuration();
      heavy_active_ = true;
      ++injected_;
      Note("partition " + std::to_string(a) + "<->" + std::to_string(b) + " for " +
           std::to_string(d / 1000) + "ms");
      net.SetPartitioned(a, b, true);
      sim_->After(d, [this, a, b, &net]() {
        Note("heal partition " + std::to_string(a) + "<->" + std::to_string(b));
        net.SetPartitioned(a, b, false);
        heavy_active_ = false;
        heavy_free_at_ = sim_->Now() + options_.heavy_cooldown;
        ++healed_count_;
      });
      break;
    }
    case Fault::kLoss: {
      double p = 0.05 + rng.NextDouble() * (options_.max_loss - 0.05);
      SimDuration d = LightDuration();
      ++injected_;
      Note("loss burst p=" + std::to_string(p) + " for " + std::to_string(d / 1000) + "ms");
      net.SetLossProbability(p);
      sim_->After(d, [this, &net]() {
        Note("heal loss burst");
        net.SetLossProbability(0);
        ++healed_count_;
      });
      break;
    }
    case Fault::kDisk: {
      SiteId s = rng.Uniform(num_sites_);
      double factor = 2.0 + rng.NextDouble() * (options_.max_disk_slowdown - 2.0);
      SimDuration d = LightDuration();
      ++injected_;
      Note("slow disk at site " + std::to_string(s) + " x" + std::to_string(factor) + " for " +
           std::to_string(d / 1000) + "ms");
      rig_->cluster().server(s).disk().SetSlowdown(factor);
      sim_->After(d, [this, s]() {
        Note("heal disk at site " + std::to_string(s));
        // The server object may have been replaced; the current one's disk is
        // the one that matters.
        rig_->cluster().server(s).disk().SetSlowdown(1.0);
        ++healed_count_;
      });
      break;
    }
    case Fault::kDiskFault: {
      // A dying disk: IO stalls hard, then the machine crashes, and when the
      // replacement reads the medium back the unflushed WAL suffix is torn
      // mid-frame. Recovery must drop the torn tail (never an acked frame) and
      // resync/backfill the rest from peers.
      SiteId s = rng.Uniform(num_sites_);
      if (rig_->IsCrashed(s)) {
        return;
      }
      double factor = 4.0 + rng.NextDouble() * (options_.max_disk_slowdown - 4.0);
      SimDuration stall = std::min(LightDuration(), Seconds(1));
      SimDuration d = HeavyDuration();
      heavy_active_ = true;
      ++injected_;
      Note("disk fault at site " + std::to_string(s) + ": stall x" + std::to_string(factor) +
           ", torn-tail crash for " + std::to_string(d / 1000) + "ms");
      Disk& disk = rig_->cluster().server(s).disk();
      disk.StallBurst(factor, stall);
      WTRACE(sim_->Now(), TraceKind::kDiskStall, 0, s, static_cast<uint64_t>(factor));
      DiskFaults faults;
      faults.torn_tail = true;
      faults.torn_tail_bytes = 1 + rng.Uniform(256);
      disk.ArmFaults(faults);
      sim_->After(stall, [this, s, d]() {
        if (rig_->IsCrashed(s)) {
          // Another fault beat us to it; the armed faults still surface at the
          // next restore.
          heavy_active_ = false;
          heavy_free_at_ = sim_->Now() + options_.heavy_cooldown;
          ++healed_count_;
          return;
        }
        rig_->CrashSite(s);
        sim_->After(d, [this, s]() {
          Note("restart site " + std::to_string(s) + " after disk fault");
          rig_->RestartSite(s);
          heavy_active_ = false;
          heavy_free_at_ = sim_->Now() + options_.heavy_cooldown;
          ++healed_count_;
        });
      });
      break;
    }
  }
}

}  // namespace walter
