#include "src/psi/checker.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace walter {

namespace {

std::string Describe(TxId tid) {
  std::ostringstream os;
  os << "tx" << tid;
  return os.str();
}

}  // namespace

void PsiChecker::BuildPositionIndex() const {
  positions_.assign(num_sites_, {});
  for (SiteId s = 0; s < num_sites_; ++s) {
    const auto& log = site_logs_[s];
    positions_[s].reserve(log.size());
    for (size_t i = 0; i < log.size(); ++i) {
      positions_[s].emplace(log[i], i);
    }
  }
}

std::optional<size_t> PsiChecker::PositionAt(SiteId s, TxId tid) const {
  if (positions_.empty()) {
    BuildPositionIndex();
  }
  auto it = positions_[s].find(tid);
  if (it == positions_[s].end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ObjectId> PsiChecker::RegularWriteSet(const TxRecord& rec) {
  std::vector<ObjectId> ws;
  for (const auto& u : rec.updates) {
    if (u.kind == UpdateKind::kData) {
      ws.push_back(u.oid);
    }
  }
  std::sort(ws.begin(), ws.end());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  return ws;
}

Status PsiChecker::Check() const {
  if (Status s = CheckProperty1SnapshotReads(); !s.ok()) {
    return s;
  }
  if (Status s = CheckProperty2NoWriteConflicts(); !s.ok()) {
    return s;
  }
  return CheckProperty3CommitCausality();
}

Status PsiChecker::CheckProperty1SnapshotReads() const {
  // For each committed transaction with reads, the expected value of a read
  // is obtained by replaying the commit origin's log in apply order, applying
  // exactly the updates VISIBLE to the start snapshot: u applies iff
  // startVTS sees u's commit version. This is the PSI snapshot definition
  // itself, so it stays correct when the snapshot was assigned by a different
  // shard than the commit origin (the sharded first-read / first-write
  // split): a positional prefix of the origin log — what this check used to
  // replay — is only the visible set when assigner == origin, because only
  // there does the log's prefix length equal the startVTS sum.
  //
  // Replaying the ORIGIN's order of the visible set is sound for any site's
  // order: same-object regular writers are never somewhere-concurrent
  // (Property 2, checked separately), so causality totally orders them and
  // every site applies them in that order; cset updates commute. Log entries
  // with no registered record are skipped — they can only be transactions the
  // harness could not confirm (crash-window commits), which by construction
  // no recorded snapshot covers.
  for (const auto& [tid, tx] : txs_) {
    if (tx.reads.empty()) {
      continue;
    }
    const VectorTimestamp& snap = tx.record.start_vts;
    const auto& log = site_logs_[tx.record.origin];

    // Expected state for exactly the objects this transaction read.
    std::map<ObjectId, std::string> regular_state;
    std::map<ObjectId, CountingSet> cset_state;
    std::map<ObjectId, bool> wants;  // oid -> is_cset
    for (const auto& read : tx.reads) {
      wants[read.oid] = read.is_cset;
    }
    for (TxId applied_tid : log) {
      auto it = txs_.find(applied_tid);
      if (it == txs_.end()) {
        continue;
      }
      const TxRecord& rec = it->second.record;
      if (!snap.Sees(rec.version)) {
        continue;
      }
      for (const auto& u : rec.updates) {
        auto want = wants.find(u.oid);
        if (want == wants.end()) {
          continue;
        }
        if (u.kind == UpdateKind::kData) {
          if (!want->second) {
            regular_state[u.oid] = u.data;
          }
        } else if (want->second) {
          cset_state[u.oid].ApplyOp(u);
        }
      }
    }

    for (const auto& read : tx.reads) {
      if (read.is_cset) {
        auto it = cset_state.find(read.oid);
        CountingSet expected = it == cset_state.end() ? CountingSet{} : it->second;
        if (!(expected == read.cset)) {
          return Status::Internal("PSI Property 1 violated: " + Describe(tx.record.tid) +
                                  " cset read of " + read.oid.ToString() +
                                  " does not match its start snapshot");
        }
      } else {
        auto it = regular_state.find(read.oid);
        std::optional<std::string> expected;
        if (it != regular_state.end()) {
          expected = it->second;
        }
        if (expected != read.value) {
          return Status::Internal("PSI Property 1 violated: " + Describe(tx.record.tid) +
                                  " read of " + read.oid.ToString() +
                                  " does not match its start snapshot (read " +
                                  (read.value ? "\"" + *read.value + "\"" : "nil") +
                                  ", snapshot has " +
                                  (expected ? "\"" + *expected + "\"" : "nil") +
                                  "; origin " + std::to_string(tx.record.origin) +
                                  ", version " + std::to_string(tx.record.version.seqno) +
                                  ", startVTS " + tx.record.start_vts.ToString() + ")");
        }
      }
    }
  }
  return Status::Ok();
}

Status PsiChecker::CheckProperty2NoWriteConflicts() const {
  // Index writers per object so we only compare transactions that can conflict.
  std::map<ObjectId, std::vector<TxId>> writers;
  for (const auto& [tid, tx] : txs_) {
    for (const ObjectId& oid : RegularWriteSet(tx.record)) {
      writers[oid].push_back(tid);
    }
  }

  // Somewhere-concurrent iff neither transaction's start snapshot sees the
  // other's commit: a.start_vts.Sees(b.version) is exactly "b committed
  // before a started" in PSI's causal order, independent of any one site's
  // apply interleaving. (A positional [start, commit) window on the origin
  // log — what this check used before — breaks in sharded mode, where the
  // startVTS may have been assigned by a different shard than the commit
  // origin, so its count-sum is not a prefix length of the origin's log.)
  auto ordered = [](const RecordedTx& first, const RecordedTx& second) {
    return second.record.start_vts.Sees(first.record.version);
  };

  for (const auto& [oid, tids] : writers) {
    for (size_t i = 0; i < tids.size(); ++i) {
      for (size_t j = i + 1; j < tids.size(); ++j) {
        const RecordedTx& a = txs_.at(tids[i]);
        const RecordedTx& b = txs_.at(tids[j]);
        if (!ordered(a, b) && !ordered(b, a)) {
          return Status::Internal("PSI Property 2 violated: committed somewhere-concurrent " +
                                  Describe(a.record.tid) + " and " + Describe(b.record.tid) +
                                  " both write " + oid.ToString());
        }
      }
    }
  }
  return Status::Ok();
}

Status ConsistencyChecker::Check() const {
  psi_anomalies_permitted_ = 0;
  switch (mode_) {
    case ConsistencyMode::kPsi:
      return psi_.Check();
    case ConsistencyMode::kNmsi:
      // Relaxed snapshot reads; write-write conflict freedom stays (NMSI
      // forbids lost updates); commit causality (Property 3) is the PSI
      // anomaly NMSI explicitly permits, so it is not checked.
      if (Status s = CheckNmsiReads(); !s.ok()) {
        return s;
      }
      return psi_.CheckProperty2NoWriteConflicts();
    case ConsistencyMode::kSerializable:
      if (Status s = psi_.Check(); !s.ok()) {
        return s;
      }
      return CheckNoWriteSkew();
  }
  return Status::Internal("unknown consistency mode");
}

Status ConsistencyChecker::CheckNmsiReads() const {
  // NMSI snapshot rule: a read may return any PREFIX state of the
  // snapshot-visible updates to the object, in the origin's apply order — the
  // read is allowed to miss visible versions that had not reached the serving
  // site yet, but never to see an invisible or uncommitted one. Same-object
  // regular writers are totally ordered (Property 2), so the prefix-state set
  // is well-defined for any site's apply order.
  for (const auto& [tid, tx] : psi_.recorded()) {
    if (tx.reads.empty()) {
      continue;
    }
    const VectorTimestamp& snap = tx.record.start_vts;
    const auto& log = psi_.site_logs()[tx.record.origin];
    for (const auto& read : tx.reads) {
      bool ok = false;
      bool strict_ok = false;  // matches the LATEST visible state (PSI-exact)
      if (read.is_cset) {
        CountingSet state;
        ok = state == read.cset;  // the empty prefix
        for (TxId applied : log) {
          auto it = psi_.recorded().find(applied);
          if (it == psi_.recorded().end() || !snap.Sees(it->second.record.version)) {
            continue;
          }
          bool touched = false;
          for (const auto& u : it->second.record.updates) {
            if (u.oid == read.oid && u.kind != UpdateKind::kData) {
              state.ApplyOp(u);
              touched = true;
            }
          }
          if (touched && state == read.cset) {
            ok = true;
          }
        }
        strict_ok = state == read.cset;
      } else {
        std::optional<std::string> state;  // nil
        ok = read.value == state;          // the empty prefix
        for (TxId applied : log) {
          auto it = psi_.recorded().find(applied);
          if (it == psi_.recorded().end() || !snap.Sees(it->second.record.version)) {
            continue;
          }
          for (const auto& u : it->second.record.updates) {
            if (u.oid == read.oid && u.kind == UpdateKind::kData) {
              state = u.data;
              if (read.value == state) {
                ok = true;
              }
            }
          }
        }
        strict_ok = read.value == state;
      }
      if (!ok) {
        return Status::Internal("NMSI read rule violated: tx" + std::to_string(tid) +
                                " read of " + read.oid.ToString() +
                                " matches no visible prefix state");
      }
      if (!strict_ok) {
        ++psi_anomalies_permitted_;  // legal under NMSI, a violation under PSI
      }
    }
  }
  return Status::Ok();
}

Status ConsistencyChecker::CheckNoWriteSkew() const {
  // Write skew: somewhere-concurrent T1, T2 where each reads an object the
  // other writes. PSI (Property 2) only forbids write-write overlap, so this
  // is precisely the anomaly the serializable mode adds detection for.
  auto read_set = [](const RecordedTx& tx) {
    std::vector<ObjectId> rs;
    for (const auto& r : tx.reads) {
      if (!r.is_cset) {
        rs.push_back(r.oid);
      }
    }
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    return rs;
  };
  auto intersects = [](const std::vector<ObjectId>& sorted, const std::vector<ObjectId>& other) {
    for (const auto& oid : other) {
      if (std::binary_search(sorted.begin(), sorted.end(), oid)) {
        return true;
      }
    }
    return false;
  };
  std::vector<const RecordedTx*> txs;
  for (const auto& [tid, tx] : psi_.recorded()) {
    txs.push_back(&tx);
  }
  for (size_t i = 0; i < txs.size(); ++i) {
    std::vector<ObjectId> reads_i = read_set(*txs[i]);
    std::vector<ObjectId> writes_i = PsiChecker::RegularWriteSet(txs[i]->record);
    if (reads_i.empty() && writes_i.empty()) {
      continue;
    }
    for (size_t j = i + 1; j < txs.size(); ++j) {
      const RecordedTx& a = *txs[i];
      const RecordedTx& b = *txs[j];
      bool ordered = a.record.start_vts.Sees(b.record.version) ||
                     b.record.start_vts.Sees(a.record.version);
      if (ordered) {
        continue;
      }
      if (intersects(reads_i, PsiChecker::RegularWriteSet(b.record)) &&
          intersects(read_set(b), writes_i)) {
        return Status::Internal("Serializability violated (write skew): concurrent tx" +
                                std::to_string(a.record.tid) + " and tx" +
                                std::to_string(b.record.tid) +
                                " each read an object the other writes");
      }
    }
  }
  return Status::Ok();
}

Status PsiChecker::CheckProperty3CommitCausality() const {
  // For every T2, every T1 that committed before T2 started — i.e. every T1
  // whose commit version T2's start snapshot sees — must precede T2 at every
  // site where both committed. Visibility, not a positional prefix of the
  // origin log, defines "committed before T2 started": in sharded mode the
  // snapshot may come from a different shard than the commit origin, so the
  // origin log's prefix of startVTS-sum length is the wrong set.
  for (const auto& [tid2, t2] : txs_) {
    for (const auto& [tid1, t1] : txs_) {
      if (tid1 == tid2 || !t2.record.start_vts.Sees(t1.record.version)) {
        continue;
      }
      for (SiteId s = 0; s < num_sites_; ++s) {
        auto p1 = PositionAt(s, tid1);
        auto p2 = PositionAt(s, tid2);
        if (p1 && p2 && *p1 > *p2) {
          return Status::Internal("PSI Property 3 violated: " + Describe(tid1) +
                                  " committed before " + Describe(tid2) +
                                  " started but follows it at site " + std::to_string(s));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace walter
