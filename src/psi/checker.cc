#include "src/psi/checker.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

namespace walter {

namespace {

// Number of transactions visible to a start snapshot at the origin site: the
// origin log interleaves transactions from all sites, one entry each, so the
// visible prefix length is the sum of the startVTS entries.
size_t StartPosition(const TxRecord& rec) {
  const auto& counts = rec.start_vts.counts();
  return static_cast<size_t>(std::accumulate(counts.begin(), counts.end(), uint64_t{0}));
}

std::string Describe(TxId tid) {
  std::ostringstream os;
  os << "tx" << tid;
  return os.str();
}

}  // namespace

void PsiChecker::BuildPositionIndex() const {
  positions_.assign(num_sites_, {});
  for (SiteId s = 0; s < num_sites_; ++s) {
    const auto& log = site_logs_[s];
    positions_[s].reserve(log.size());
    for (size_t i = 0; i < log.size(); ++i) {
      positions_[s].emplace(log[i], i);
    }
  }
}

std::optional<size_t> PsiChecker::PositionAt(SiteId s, TxId tid) const {
  if (positions_.empty()) {
    BuildPositionIndex();
  }
  auto it = positions_[s].find(tid);
  if (it == positions_[s].end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ObjectId> PsiChecker::RegularWriteSet(const TxRecord& rec) {
  std::vector<ObjectId> ws;
  for (const auto& u : rec.updates) {
    if (u.kind == UpdateKind::kData) {
      ws.push_back(u.oid);
    }
  }
  std::sort(ws.begin(), ws.end());
  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
  return ws;
}

Status PsiChecker::Check() const {
  if (Status s = CheckProperty1SnapshotReads(); !s.ok()) {
    return s;
  }
  if (Status s = CheckProperty2NoWriteConflicts(); !s.ok()) {
    return s;
  }
  return CheckProperty3CommitCausality();
}

Status PsiChecker::CheckProperty1SnapshotReads() const {
  // Group committed transactions by origin and sort by start position so we
  // can replay each site's log once, checking reads against a rolling state.
  for (SiteId site = 0; site < num_sites_; ++site) {
    std::vector<const RecordedTx*> at_site;
    for (const auto& [tid, tx] : txs_) {
      if (tx.record.origin == site && !tx.reads.empty()) {
        at_site.push_back(&tx);
      }
    }
    std::sort(at_site.begin(), at_site.end(), [](const RecordedTx* a, const RecordedTx* b) {
      return StartPosition(a->record) < StartPosition(b->record);
    });

    std::map<ObjectId, std::string> regular_state;
    std::map<ObjectId, CountingSet> cset_state;
    size_t applied = 0;
    const auto& log = site_logs_[site];

    for (const RecordedTx* tx : at_site) {
      size_t start_pos = StartPosition(tx->record);
      if (start_pos > log.size()) {
        return Status::Internal(Describe(tx->record.tid) +
                                " start snapshot exceeds site log length");
      }
      while (applied < start_pos) {
        TxId applied_tid = log[applied];
        auto it = txs_.find(applied_tid);
        if (it == txs_.end()) {
          return Status::Internal("site log references unregistered " + Describe(applied_tid));
        }
        for (const auto& u : it->second.record.updates) {
          if (u.kind == UpdateKind::kData) {
            regular_state[u.oid] = u.data;
          } else {
            cset_state[u.oid].ApplyOp(u);
          }
        }
        ++applied;
      }
      for (const auto& read : tx->reads) {
        if (read.is_cset) {
          auto it = cset_state.find(read.oid);
          CountingSet expected = it == cset_state.end() ? CountingSet{} : it->second;
          if (!(expected == read.cset)) {
            return Status::Internal("PSI Property 1 violated: " + Describe(tx->record.tid) +
                                    " cset read of " + read.oid.ToString() +
                                    " does not match its start snapshot");
          }
        } else {
          auto it = regular_state.find(read.oid);
          std::optional<std::string> expected;
          if (it != regular_state.end()) {
            expected = it->second;
          }
          if (expected != read.value) {
            return Status::Internal("PSI Property 1 violated: " + Describe(tx->record.tid) +
                                    " read of " + read.oid.ToString() +
                                    " does not match its start snapshot");
          }
        }
      }
    }
  }
  return Status::Ok();
}

Status PsiChecker::CheckProperty2NoWriteConflicts() const {
  // Index writers per object so we only compare transactions that can conflict.
  std::map<ObjectId, std::vector<TxId>> writers;
  for (const auto& [tid, tx] : txs_) {
    for (const ObjectId& oid : RegularWriteSet(tx.record)) {
      writers[oid].push_back(tid);
    }
  }

  // Concurrent at site s: one's commit position at s lies in the other's
  // [start, commit) window at s (only defined when the "window" transaction
  // originated at s). Somewhere-concurrent: concurrent at either origin.
  auto concurrent_at_origin = [&](const RecordedTx& window, const RecordedTx& other) {
    SiteId s = window.record.origin;
    auto window_commit = PositionAt(s, window.record.tid);
    auto other_commit = PositionAt(s, other.record.tid);
    if (!window_commit || !other_commit) {
      return false;
    }
    size_t start = StartPosition(window.record);
    return *other_commit >= start && *other_commit < *window_commit;
  };

  for (const auto& [oid, tids] : writers) {
    for (size_t i = 0; i < tids.size(); ++i) {
      for (size_t j = i + 1; j < tids.size(); ++j) {
        const RecordedTx& a = txs_.at(tids[i]);
        const RecordedTx& b = txs_.at(tids[j]);
        if (concurrent_at_origin(a, b) || concurrent_at_origin(b, a)) {
          return Status::Internal("PSI Property 2 violated: committed somewhere-concurrent " +
                                  Describe(a.record.tid) + " and " + Describe(b.record.tid) +
                                  " both write " + oid.ToString());
        }
      }
    }
  }
  return Status::Ok();
}

Status PsiChecker::CheckProperty3CommitCausality() const {
  // For every T2, every T1 committed at T2's origin before T2 started must
  // precede T2 at every site where both committed.
  for (const auto& [tid2, t2] : txs_) {
    SiteId origin = t2.record.origin;
    size_t start_pos = StartPosition(t2.record);
    const auto& origin_log = site_logs_[origin];
    size_t prefix = std::min(start_pos, origin_log.size());
    for (size_t i = 0; i < prefix; ++i) {
      TxId tid1 = origin_log[i];
      if (tid1 == tid2) {
        continue;
      }
      for (SiteId s = 0; s < num_sites_; ++s) {
        auto p1 = PositionAt(s, tid1);
        auto p2 = PositionAt(s, tid2);
        if (p1 && p2 && *p1 > *p2) {
          return Status::Internal("PSI Property 3 violated: " + Describe(tid1) +
                                  " precedes " + Describe(tid2) + " at site " +
                                  std::to_string(origin) + " but follows it at site " +
                                  std::to_string(s));
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace walter
