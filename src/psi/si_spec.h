// Executable specification of Snapshot Isolation (paper Figures 1 and 2).
//
// This is the paper's abstract, centralized spec — a single log, monotonic
// timestamps, one operation at a time. It exists to (a) document SI precisely,
// (b) serve as a reference oracle in tests, and (c) demonstrate the anomaly
// table of Figure 8 (SI allows short fork but not long fork; PSI allows both).
//
// chooseOutcome's nondeterministic branch ("either ABORTED or COMMITTED") is
// exposed as a policy flag so tests can drive both behaviors.
#ifndef SRC_PSI_SI_SPEC_H_
#define SRC_PSI_SI_SPEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace walter {

enum class TxOutcome : uint8_t {
  kCommitted,
  kAborted,
};

class SiSpec {
 public:
  using TxHandle = uint64_t;

  // operation startTx(x): x.startTs <- new monotonic timestamp.
  TxHandle StartTx();

  // operation write(x, oid, data): append <oid, DATA(data)> to x.updates.
  void Write(TxHandle x, const ObjectId& oid, std::string data);

  // operation read(x, oid): state of oid from x.updates and Log up to x.startTs.
  std::optional<std::string> Read(TxHandle x, const ObjectId& oid) const;

  // operation commitTx(x): new commit timestamp, chooseOutcome, append to Log.
  TxOutcome CommitTx(TxHandle x);

  // Abandons a transaction without committing (models a client abort/crash).
  void AbortTx(TxHandle x);

  // Policy for the nondeterministic branch of chooseOutcome (Figure 2): when a
  // write-conflicting transaction aborted after x started or is still
  // executing, the spec may return either outcome. Default: commit.
  void set_nondeterministic_abort(bool abort) { nondet_abort_ = abort; }

  uint64_t committed_count() const { return committed_count_; }

 private:
  struct LogEntry {
    uint64_t commit_ts;
    ObjectId oid;
    std::string data;
  };
  enum class TxState : uint8_t { kExecuting, kCommitted, kAborted };
  struct Tx {
    uint64_t start_ts = 0;
    uint64_t commit_ts = 0;  // 0 until commit attempted
    TxState state = TxState::kExecuting;
    std::vector<std::pair<ObjectId, std::string>> updates;
  };

  bool WriteConflicts(const Tx& a, const Tx& b) const;

  uint64_t clock_ = 0;  // the monotonic timestamp source
  TxHandle next_handle_ = 1;
  std::map<TxHandle, Tx> txs_;
  std::vector<LogEntry> log_;
  uint64_t committed_count_ = 0;
  bool nondet_abort_ = false;
};

}  // namespace walter

#endif  // SRC_PSI_SI_SPEC_H_
