// PsiChecker: mechanical verification of the three PSI properties (Section 3.2)
// over a recorded multi-site execution.
//
// Integration tests run randomized workloads against the real Walter
// implementation, record (a) each site's apply order of committed transactions
// and (b) each committed transaction's observed reads, then call Check():
//
//  - Property 1 (Site Snapshot Read): every recorded read equals the state
//    obtained by replaying the transaction's origin-site log up to its start
//    snapshot, overlaid with the transaction's own earlier updates.
//  - Property 2 (No Write-Write Conflicts): committed somewhere-concurrent
//    transactions have disjoint (regular-object) write sets. cset operations
//    never conflict.
//  - Property 3 (Commit Causality Across Sites): if T1 committed at site A
//    before T2 started at A, then T1 commits before T2 at every site where
//    both appear.
//
// Positions: within a site's log, a transaction's "commit timestamp at s" is
// its index in s's apply order. A transaction's "start timestamp" at its origin
// is the number of log entries visible to its start snapshot, which equals the
// sum of its startVTS entries.
#ifndef SRC_PSI_CHECKER_H_
#define SRC_PSI_CHECKER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"

namespace walter {

// One read observed by a committed transaction during execution.
struct RecordedRead {
  ObjectId oid;
  bool is_cset = false;
  std::optional<std::string> value;  // regular read result (nullopt = nil)
  CountingSet cset;                  // cset read result
};

// Everything the checker needs to know about one committed transaction.
struct RecordedTx {
  TxRecord record;                  // tid, origin, version, startVTS, updates
  std::vector<RecordedRead> reads;  // observed read results, in issue order
};

class PsiChecker {
 public:
  explicit PsiChecker(size_t num_sites) : num_sites_(num_sites), site_logs_(num_sites) {}

  // Reports that `tid` was applied (committed) at `site`; calls must follow
  // each site's apply order. The full record is registered via OnCommit.
  void OnApply(SiteId site, TxId tid) {
    site_logs_[site].push_back(tid);
    positions_.clear();
  }

  // Registers a committed transaction's details (once, from its origin).
  void OnCommit(RecordedTx tx) { txs_[tx.record.tid] = std::move(tx); }

  // Runs all three property checks; returns OK or the first violation found.
  Status Check() const;

  Status CheckProperty1SnapshotReads() const;
  Status CheckProperty2NoWriteConflicts() const;
  Status CheckProperty3CommitCausality() const;

  size_t committed_count() const { return txs_.size(); }

 private:
  // Index of tid in site s's log, or nullopt. Uses a lazily built index.
  std::optional<size_t> PositionAt(SiteId s, TxId tid) const;
  void BuildPositionIndex() const;

  // Regular-object write set of a transaction.
  static std::vector<ObjectId> RegularWriteSet(const TxRecord& rec);

  size_t num_sites_;
  std::vector<std::vector<TxId>> site_logs_;
  std::unordered_map<TxId, RecordedTx> txs_;
  // Lazily built per-site tid -> log index maps (invalidated on OnApply by
  // clearing; rebuilt on first PositionAt after recording ends).
  mutable std::vector<std::unordered_map<TxId, size_t>> positions_;
};

}  // namespace walter

#endif  // SRC_PSI_CHECKER_H_
