// PsiChecker: mechanical verification of the three PSI properties (Section 3.2)
// over a recorded multi-site execution.
//
// Integration tests run randomized workloads against the real Walter
// implementation, record (a) each site's apply order of committed transactions
// and (b) each committed transaction's observed reads, then call Check():
//
//  - Property 1 (Site Snapshot Read): every recorded read equals the state
//    obtained by replaying, in the origin site's apply order, exactly the
//    committed updates the transaction's start snapshot Sees. Gating on
//    visibility (rather than a positional log prefix) keeps the check correct
//    when the snapshot was assigned by a different shard than the commit
//    origin, as sharded first-read/first-write splits routinely do.
//  - Property 2 (No Write-Write Conflicts): committed somewhere-concurrent
//    transactions have disjoint (regular-object) write sets. cset operations
//    never conflict. Two transactions are ordered (not concurrent) iff one's
//    start snapshot Sees the other's commit version.
//  - Property 3 (Commit Causality Across Sites): if T2's start snapshot Sees
//    T1's commit — T1 committed before T2 started — then T1 precedes T2 at
//    every site where both appear (positions = indices in each apply log).
//
// Concurrency and "committed before started" are defined through startVTS
// visibility, never through positional prefixes of any one site's log: a
// prefix of startVTS-sum length is the visible set only when the snapshot
// assigner is the commit origin, which sharded mode routinely violates.
#ifndef SRC_PSI_CHECKER_H_
#define SRC_PSI_CHECKER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"

namespace walter {

// One read observed by a committed transaction during execution.
struct RecordedRead {
  ObjectId oid;
  bool is_cset = false;
  std::optional<std::string> value;  // regular read result (nullopt = nil)
  CountingSet cset;                  // cset read result
};

// Everything the checker needs to know about one committed transaction.
struct RecordedTx {
  TxRecord record;                  // tid, origin, version, startVTS, updates
  std::vector<RecordedRead> reads;  // observed read results, in issue order
  // The consistency level the transaction ran at (docs/CONSISTENCY.md).
  // Informational for PsiChecker; ConsistencyChecker validates executions
  // against its construction-time mode.
  ConsistencyMode mode = ConsistencyMode::kPsi;
};

class PsiChecker {
 public:
  explicit PsiChecker(size_t num_sites) : num_sites_(num_sites), site_logs_(num_sites) {}

  // Reports that `tid` was applied (committed) at `site`; calls must follow
  // each site's apply order. The full record is registered via OnCommit.
  void OnApply(SiteId site, TxId tid) {
    site_logs_[site].push_back(tid);
    positions_.clear();
  }

  // Registers a committed transaction's details (once, from its origin).
  void OnCommit(RecordedTx tx) { txs_[tx.record.tid] = std::move(tx); }

  // Runs all three property checks; returns OK or the first violation found.
  Status Check() const;

  Status CheckProperty1SnapshotReads() const;
  Status CheckProperty2NoWriteConflicts() const;
  Status CheckProperty3CommitCausality() const;

  size_t committed_count() const { return txs_.size(); }

  // Raw recorded state, for ConsistencyChecker's mode-specific passes.
  const std::unordered_map<TxId, RecordedTx>& recorded() const { return txs_; }
  const std::vector<std::vector<TxId>>& site_logs() const { return site_logs_; }

  // Regular-object write set of a transaction (sorted, deduped).
  static std::vector<ObjectId> RegularWriteSet(const TxRecord& rec);

 private:
  // Index of tid in site s's log, or nullopt. Uses a lazily built index.
  std::optional<size_t> PositionAt(SiteId s, TxId tid) const;
  void BuildPositionIndex() const;

  size_t num_sites_;
  std::vector<std::vector<TxId>> site_logs_;
  std::unordered_map<TxId, RecordedTx> txs_;
  // Lazily built per-site tid -> log index maps (invalidated on OnApply by
  // clearing; rebuilt on first PositionAt after recording ends).
  mutable std::vector<std::unordered_map<TxId, size_t>> positions_;
};

// Mode-aware wrapper (docs/CONSISTENCY.md): validates a recorded execution
// against the consistency level it was run at.
//
//  - kPsi: exactly PsiChecker::Check() — all three PSI properties.
//  - kNmsi: Property 2 (no write-write conflicts — NMSI still forbids lost
//    updates) plus a relaxed Property 1: each read must equal SOME prefix
//    state of the snapshot-visible updates to the object in the origin's apply
//    order, not necessarily the latest (the permitted non-monotonic read).
//    Property 3 is not checked: observing commit order differently at
//    different sites is a PSI anomaly NMSI permits. Reads that violate strict
//    PSI but pass the relaxed rule are counted in psi_anomalies_permitted(),
//    so tests can assert the anomaly actually occurred AND was legal.
//  - kSerializable: all PSI properties plus no write skew — no pair of
//    somewhere-concurrent committed transactions where each reads an object
//    the other writes.
class ConsistencyChecker {
 public:
  ConsistencyChecker(size_t num_sites, ConsistencyMode mode)
      : mode_(mode), psi_(num_sites) {}

  ConsistencyMode mode() const { return mode_; }
  void OnApply(SiteId site, TxId tid) { psi_.OnApply(site, tid); }
  void OnCommit(RecordedTx tx) { psi_.OnCommit(std::move(tx)); }
  size_t committed_count() const { return psi_.committed_count(); }

  // Validates the execution at this checker's mode.
  Status Check() const;

  // NMSI only: reads that a strict PSI check would reject but the NMSI
  // relaxation permits (0 after Check() under the other modes).
  size_t psi_anomalies_permitted() const { return psi_anomalies_permitted_; }

 private:
  Status CheckNmsiReads() const;
  Status CheckNoWriteSkew() const;

  ConsistencyMode mode_;
  PsiChecker psi_;
  mutable size_t psi_anomalies_permitted_ = 0;
};

}  // namespace walter

#endif  // SRC_PSI_CHECKER_H_
