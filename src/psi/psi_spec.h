// Executable specification of Parallel Snapshot Isolation (Figures 4, 5, 7).
//
// Centralized and single-threaded, exactly as in the paper: one log per site,
// a global monotonic timestamp source, per-site commit timestamps, and an
// explicit propagation step standing in for the spec's `upon` statement. A
// transaction commits first at its own site; PropagateStep()/PropagateAll()
// fire the upon-statement for eligible (transaction, site) pairs, respecting
// the causality guard:
//
//   x.status = COMMITTED and x.commitTs[s] = bottom and
//   forall y with y.commitTs[site(x)] < x.startTs : y.commitTs[s] != bottom
//
// Includes the cset extension of Figure 7 (setAdd/setDel/setRead) — cset
// operations commute and never count as write-write conflicts.
#ifndef SRC_PSI_PSI_SPEC_H_
#define SRC_PSI_PSI_SPEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"
#include "src/psi/si_spec.h"  // for TxOutcome

namespace walter {

class PsiSpec {
 public:
  using TxHandle = uint64_t;

  explicit PsiSpec(size_t num_sites);

  size_t num_sites() const { return num_sites_; }

  // operation startTx at a site.
  TxHandle StartTx(SiteId site);

  void Write(TxHandle x, const ObjectId& oid, std::string data);
  void SetAdd(TxHandle x, const ObjectId& setid, const ObjectId& id);
  void SetDel(TxHandle x, const ObjectId& setid, const ObjectId& id);

  // Reads from x.updates and Log[site(x)] up to x.startTs.
  std::optional<std::string> Read(TxHandle x, const ObjectId& oid) const;
  CountingSet SetRead(TxHandle x, const ObjectId& setid) const;
  // setReadId extension (Section 3.3): count of one element.
  int64_t SetReadId(TxHandle x, const ObjectId& setid, const ObjectId& id) const;

  // Commits at site(x); the outcome is decided once (Figure 5).
  TxOutcome CommitTx(TxHandle x);

  void AbortTx(TxHandle x);

  // Fires the upon-statement once for (x, s) if eligible; returns whether it ran.
  bool PropagateTo(TxHandle x, SiteId s);
  // Fires the upon-statement until no pair is eligible (full propagation).
  void PropagateAll();
  // True if x has committed at every site.
  bool GloballyVisible(TxHandle x) const;

  // Nondeterministic-branch policy, as in SiSpec.
  void set_nondeterministic_abort(bool abort) { nondet_abort_ = abort; }

 private:
  struct LogEntry {
    uint64_t commit_ts;  // commit timestamp at this log's site
    ObjectUpdate update;
  };
  enum class TxState : uint8_t { kExecuting, kCommitted, kAborted };
  struct Tx {
    SiteId site = kNoSite;
    uint64_t start_ts = 0;
    std::vector<uint64_t> commit_ts;  // per site; 0 = bottom
    TxState state = TxState::kExecuting;
    std::vector<ObjectUpdate> updates;
  };

  const Tx& GetTx(TxHandle x) const;
  Tx& GetTx(TxHandle x);
  static bool WriteConflicts(const Tx& a, const Tx& b);
  void AppendToLog(SiteId s, const Tx& tx, uint64_t commit_ts);

  size_t num_sites_;
  uint64_t clock_ = 0;
  TxHandle next_handle_ = 1;
  std::map<TxHandle, Tx> txs_;
  std::vector<std::vector<LogEntry>> logs_;  // one log per site
  bool nondet_abort_ = false;
};

}  // namespace walter

#endif  // SRC_PSI_PSI_SPEC_H_
