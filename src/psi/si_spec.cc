#include "src/psi/si_spec.h"

#include "src/common/logging.h"

namespace walter {

SiSpec::TxHandle SiSpec::StartTx() {
  TxHandle h = next_handle_++;
  Tx tx;
  tx.start_ts = ++clock_;
  txs_[h] = std::move(tx);
  return h;
}

void SiSpec::Write(TxHandle x, const ObjectId& oid, std::string data) {
  auto it = txs_.find(x);
  WCHECK(it != txs_.end() && it->second.state == TxState::kExecuting, "write to invalid tx");
  it->second.updates.emplace_back(oid, std::move(data));
}

std::optional<std::string> SiSpec::Read(TxHandle x, const ObjectId& oid) const {
  auto it = txs_.find(x);
  WCHECK(it != txs_.end(), "read from unknown tx");
  const Tx& tx = it->second;
  // Own update buffer wins (latest write of this transaction).
  for (auto u = tx.updates.rbegin(); u != tx.updates.rend(); ++u) {
    if (u->first == oid) {
      return u->second;
    }
  }
  // Otherwise the most recent committed version as of start_ts.
  std::optional<std::string> result;
  for (const auto& e : log_) {
    if (e.commit_ts <= tx.start_ts && e.oid == oid) {
      result = e.data;  // log is in commit-timestamp order; last visible wins
    }
  }
  return result;
}

bool SiSpec::WriteConflicts(const Tx& a, const Tx& b) const {
  for (const auto& [oid_a, _] : a.updates) {
    for (const auto& [oid_b, __] : b.updates) {
      if (oid_a == oid_b) {
        return true;
      }
    }
  }
  return false;
}

TxOutcome SiSpec::CommitTx(TxHandle x) {
  auto it = txs_.find(x);
  WCHECK(it != txs_.end() && it->second.state == TxState::kExecuting, "commit of invalid tx");
  Tx& tx = it->second;
  tx.commit_ts = ++clock_;

  // chooseOutcome (Figure 2).
  bool conflict_committed_after_start = false;
  bool conflict_aborted_or_executing = false;
  for (const auto& [h, other] : txs_) {
    if (h == x || !WriteConflicts(tx, other)) {
      continue;
    }
    if (other.state == TxState::kCommitted && other.commit_ts > tx.start_ts) {
      conflict_committed_after_start = true;
    } else if ((other.state == TxState::kAborted && other.commit_ts > tx.start_ts) ||
               other.state == TxState::kExecuting) {
      conflict_aborted_or_executing = true;
    }
  }

  if (conflict_committed_after_start ||
      (conflict_aborted_or_executing && nondet_abort_)) {
    tx.state = TxState::kAborted;
    return TxOutcome::kAborted;
  }

  tx.state = TxState::kCommitted;
  ++committed_count_;
  for (auto& [oid, data] : tx.updates) {
    log_.push_back(LogEntry{tx.commit_ts, oid, data});
  }
  return TxOutcome::kCommitted;
}

void SiSpec::AbortTx(TxHandle x) {
  auto it = txs_.find(x);
  if (it == txs_.end()) {
    return;
  }
  it->second.commit_ts = ++clock_;
  it->second.state = TxState::kAborted;
}

}  // namespace walter
