#include "src/psi/psi_spec.h"

#include <algorithm>

#include "src/common/logging.h"

namespace walter {

PsiSpec::PsiSpec(size_t num_sites) : num_sites_(num_sites), logs_(num_sites) {}

const PsiSpec::Tx& PsiSpec::GetTx(TxHandle x) const {
  auto it = txs_.find(x);
  WCHECK(it != txs_.end(), "unknown tx handle " << x);
  return it->second;
}

PsiSpec::Tx& PsiSpec::GetTx(TxHandle x) {
  auto it = txs_.find(x);
  WCHECK(it != txs_.end(), "unknown tx handle " << x);
  return it->second;
}

PsiSpec::TxHandle PsiSpec::StartTx(SiteId site) {
  WCHECK(site < num_sites_, "bad site");
  TxHandle h = next_handle_++;
  Tx tx;
  tx.site = site;
  tx.start_ts = ++clock_;
  tx.commit_ts.assign(num_sites_, 0);
  txs_[h] = std::move(tx);
  return h;
}

void PsiSpec::Write(TxHandle x, const ObjectId& oid, std::string data) {
  Tx& tx = GetTx(x);
  WCHECK(tx.state == TxState::kExecuting, "write to finished tx");
  tx.updates.push_back(ObjectUpdate::Data(oid, std::move(data)));
}

void PsiSpec::SetAdd(TxHandle x, const ObjectId& setid, const ObjectId& id) {
  Tx& tx = GetTx(x);
  WCHECK(tx.state == TxState::kExecuting, "setAdd to finished tx");
  tx.updates.push_back(ObjectUpdate::Add(setid, id));
}

void PsiSpec::SetDel(TxHandle x, const ObjectId& setid, const ObjectId& id) {
  Tx& tx = GetTx(x);
  WCHECK(tx.state == TxState::kExecuting, "setDel to finished tx");
  tx.updates.push_back(ObjectUpdate::Del(setid, id));
}

std::optional<std::string> PsiSpec::Read(TxHandle x, const ObjectId& oid) const {
  const Tx& tx = GetTx(x);
  // Own buffer first.
  for (auto u = tx.updates.rbegin(); u != tx.updates.rend(); ++u) {
    if (u->oid == oid && u->kind == UpdateKind::kData) {
      return u->data;
    }
  }
  std::optional<std::string> result;
  for (const auto& e : logs_[tx.site]) {
    if (e.commit_ts <= tx.start_ts && e.update.oid == oid &&
        e.update.kind == UpdateKind::kData) {
      result = e.update.data;
    }
  }
  return result;
}

CountingSet PsiSpec::SetRead(TxHandle x, const ObjectId& setid) const {
  const Tx& tx = GetTx(x);
  CountingSet s;
  for (const auto& e : logs_[tx.site]) {
    if (e.commit_ts <= tx.start_ts && e.update.oid == setid &&
        e.update.kind != UpdateKind::kData) {
      s.ApplyOp(e.update);
    }
  }
  for (const auto& u : tx.updates) {
    if (u.oid == setid && u.kind != UpdateKind::kData) {
      s.ApplyOp(u);
    }
  }
  return s;
}

int64_t PsiSpec::SetReadId(TxHandle x, const ObjectId& setid, const ObjectId& id) const {
  return SetRead(x, setid).Count(id);
}

bool PsiSpec::WriteConflicts(const Tx& a, const Tx& b) {
  // Only DATA writes conflict; cset operations commute (Section 3.3).
  for (const auto& ua : a.updates) {
    if (ua.kind != UpdateKind::kData) {
      continue;
    }
    for (const auto& ub : b.updates) {
      if (ub.kind == UpdateKind::kData && ua.oid == ub.oid) {
        return true;
      }
    }
  }
  return false;
}

void PsiSpec::AppendToLog(SiteId s, const Tx& tx, uint64_t commit_ts) {
  for (const auto& u : tx.updates) {
    logs_[s].push_back(LogEntry{commit_ts, u});
  }
}

TxOutcome PsiSpec::CommitTx(TxHandle x) {
  Tx& tx = GetTx(x);
  WCHECK(tx.state == TxState::kExecuting, "commit of finished tx");
  uint64_t ts = ++clock_;

  // chooseOutcome (Figure 5).
  bool conflict_committed_or_propagating = false;
  bool conflict_aborted_or_executing = false;
  for (const auto& [h, other] : txs_) {
    if (h == x || !WriteConflicts(tx, other)) {
      continue;
    }
    if (other.state == TxState::kCommitted) {
      uint64_t at_my_site = other.commit_ts[tx.site];
      if (at_my_site != 0 && at_my_site > tx.start_ts) {
        // Committed at site(x) after x started.
        conflict_committed_or_propagating = true;
      } else if (at_my_site == 0) {
        // Currently propagating to site(x): committed but not yet there.
        conflict_committed_or_propagating = true;
      }
    } else if (other.state == TxState::kAborted) {
      // "aborted after x started": its outcome was chosen after our start.
      uint64_t decided = 0;
      for (uint64_t t : other.commit_ts) {
        decided = std::max(decided, t);
      }
      if (decided > tx.start_ts) {
        conflict_aborted_or_executing = true;
      }
    } else {
      conflict_aborted_or_executing = true;  // currently executing
    }
  }

  if (conflict_committed_or_propagating ||
      (conflict_aborted_or_executing && nondet_abort_)) {
    tx.state = TxState::kAborted;
    tx.commit_ts[tx.site] = ts;  // records when the outcome was decided
    return TxOutcome::kAborted;
  }

  tx.state = TxState::kCommitted;
  tx.commit_ts[tx.site] = ts;
  AppendToLog(tx.site, tx, ts);
  return TxOutcome::kCommitted;
}

void PsiSpec::AbortTx(TxHandle x) {
  Tx& tx = GetTx(x);
  if (tx.state == TxState::kExecuting) {
    tx.state = TxState::kAborted;
    tx.commit_ts[tx.site] = ++clock_;
  }
}

bool PsiSpec::PropagateTo(TxHandle x, SiteId s) {
  Tx& tx = GetTx(x);
  if (tx.state != TxState::kCommitted || s >= num_sites_ || tx.commit_ts[s] != 0) {
    return false;
  }
  // Causality guard: every y that committed at site(x) before x started must
  // already have committed at s.
  for (const auto& [h, y] : txs_) {
    if (y.state != TxState::kCommitted) {
      continue;
    }
    uint64_t y_at_my_site = y.commit_ts[tx.site];
    if (y_at_my_site != 0 && y_at_my_site < tx.start_ts && y.commit_ts[s] == 0) {
      return false;
    }
  }
  uint64_t ts = ++clock_;
  tx.commit_ts[s] = ts;
  AppendToLog(s, tx, ts);
  return true;
}

void PsiSpec::PropagateAll() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [h, tx] : txs_) {
      if (tx.state != TxState::kCommitted) {
        continue;
      }
      for (SiteId s = 0; s < num_sites_; ++s) {
        if (tx.commit_ts[s] == 0 && PropagateTo(h, s)) {
          progressed = true;
        }
      }
    }
  }
}

bool PsiSpec::GloballyVisible(TxHandle x) const {
  const Tx& tx = GetTx(x);
  if (tx.state != TxState::kCommitted) {
    return false;
  }
  for (uint64_t t : tx.commit_ts) {
    if (t == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace walter
