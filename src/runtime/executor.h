// Thread-parallel runtime seam: executors that run simulator event queues on
// real threads against a wall clock.
//
// The deterministic mode of this codebase runs every server, client and the
// network on ONE Simulator pumped by the calling thread — tests, figure
// benches and chaos seeds depend on that event sequence byte-for-byte. The
// threaded mode introduced here keeps the exact same server code but gives
// each shard its own executor: a dedicated thread owning a private Simulator
// (used purely as that thread's timer queue) plus a mailbox of closures posted
// by other executors. Cross-executor communication is message passing only —
// the Network posts delivery closures into the owning executor's mailbox, and
// payload bytes travel as ref-counted immutable Payload buffers (shared_ptr
// refcounts are atomic, so aliasing a buffer across executors is safe).
//
// Clock seam: all executors of one runtime share a WallClock — an epoch on
// std::chrono::steady_clock plus a time_scale factor mapping real elapsed
// microseconds to virtual SimTime. Each executor advances its private
// Simulator to the shared wall time, so sim_->Now(), After() and every
// protocol timeout keep their virtual-time meaning; time_scale > 1 compresses
// protocol timers (a 2 s resend fires after 2/scale real seconds), which keeps
// threaded chaos tests fast.
//
// Determinism contract: sim mode never constructs an Executor and never takes
// a threaded branch in Network/Cluster, so its event sequence is untouched —
// the figure benches stay byte-identical. Threaded mode trades that
// determinism for real parallelism; tests assert guarantees (PSI, convergence)
// rather than event orders there.
#ifndef SRC_RUNTIME_EXECUTOR_H_
#define SRC_RUNTIME_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace walter {

// Shared wall-clock source for one runtime: virtual time = real elapsed time
// since the epoch, scaled. All executors of a runtime read the same epoch, so
// their virtual clocks agree to within scheduling jitter.
class WallClock {
 public:
  explicit WallClock(double time_scale = 1.0)
      : epoch_(std::chrono::steady_clock::now()), time_scale_(time_scale) {}

  double time_scale() const { return time_scale_; }

  // Virtual microseconds elapsed since the epoch.
  SimTime VirtualNow() const {
    auto real = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
    return static_cast<SimTime>(static_cast<double>(real) * time_scale_);
  }

  // The real instant at which virtual time t is reached (for sleeping).
  std::chrono::steady_clock::time_point RealFor(SimTime t) const {
    auto real_us =
        static_cast<int64_t>(static_cast<double>(t) / time_scale_);
    return epoch_ + std::chrono::microseconds(real_us);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  double time_scale_;
};

// One executor = one event loop that owns a Simulator (timer queue + virtual
// clock) and a mailbox. All state scheduled on the executor's simulator —
// a WalterServer, its endpoint, its disk model — is owned by this executor
// and must only be touched from its loop; other threads communicate by
// Post()ing closures.
//
// An executor either runs on its own thread (Start/Stop, the worker shape) or
// is pumped inline by the caller's thread (PumpFor/PumpUntil, the control
// shape used by the main thread to drive clients and orchestration).
class Executor {
 public:
  using Callback = SmallFunction<void()>;

  // Borrows `sim` (not owned): the ThreadedRuntime owns worker simulators and
  // the Cluster keeps owning its control simulator, so sim-mode accessors
  // (cluster.sim()) stay valid in both modes.
  Executor(Simulator* sim, const WallClock* clock);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  Simulator& sim() { return *sim_; }
  const WallClock& clock() const { return *clock_; }

  // The executor whose loop is running on the calling thread, or nullptr.
  static Executor* Current();

  // Thread-safe: enqueues fn to run on this executor as soon as its loop gets
  // to it. Never blocks (beyond the mailbox mutex).
  void Post(Callback fn);

  // Thread-safe: runs fn on this executor and returns once it has finished.
  // Runs inline when called from this executor's own loop, and also when the
  // executor has no running thread (setup/teardown phases, where the caller
  // guarantees it is the only thread) — that keeps control-plane code
  // (ReplaceServer, metric probes) identical before Start and after Stop.
  void PostSync(const std::function<void()>& fn);

  // Worker shape: spawn the loop thread / request stop and join it.
  void Start();
  void Stop();
  bool running() const { return thread_.joinable(); }

  // Control shape: pump the loop inline on the calling thread for a virtual
  // duration, then return.
  void PumpFor(SimDuration virtual_d);
  // Pumps until pred() holds (checked between batches) or `max_virtual_wait`
  // elapses; returns whether pred() held.
  bool PumpUntil(const std::function<bool()>& pred, SimDuration max_virtual_wait);

 private:
  // Core loop: drains the mailbox and fires due timers until `done` returns
  // true (evaluated with the mailbox lock held).
  void Loop(const std::function<bool()>& done);

  Simulator* sim_;
  const WallClock* clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Callback> inbox_;
  bool stop_ = false;
  std::thread thread_;
};

// A set of executors sharing one WallClock: worker executors (own threads,
// own simulators) plus a control executor borrowing the caller-owned
// simulator and pumped by the main thread. The Cluster builds one of these in
// threaded mode and assigns each server to a worker.
class ThreadedRuntime {
 public:
  struct Options {
    size_t workers = 1;
    double time_scale = 1.0;
    uint64_t seed = 1;  // worker simulator RNG seeds derive from this
  };

  // `control_sim` is borrowed; it becomes the control executor's timer queue.
  ThreadedRuntime(const Options& options, Simulator* control_sim);
  ~ThreadedRuntime();

  size_t workers() const { return workers_.size(); }
  Executor& worker(size_t i) { return *workers_[i]; }
  Executor& control() { return *control_; }
  const WallClock& clock() const { return clock_; }

  void Start();
  void Stop();
  bool started() const { return started_; }

 private:
  WallClock clock_;
  std::vector<std::unique_ptr<Simulator>> worker_sims_;
  std::vector<std::unique_ptr<Executor>> workers_;
  std::unique_ptr<Executor> control_;
  bool started_ = false;
};

}  // namespace walter

#endif  // SRC_RUNTIME_EXECUTOR_H_
