#include "src/runtime/executor.h"

#include <utility>

#include "src/common/logging.h"

namespace walter {

namespace {

thread_local Executor* g_current_executor = nullptr;

// RAII marker for "this thread is running executor e's loop". Nested pumps of
// the same executor are fine; pumping a different executor from inside a loop
// is not (that would interleave two owners' state on one stack).
class ScopedCurrent {
 public:
  explicit ScopedCurrent(Executor* e) : prev_(g_current_executor) {
    WCHECK(prev_ == nullptr || prev_ == e,
           "executor loop entered from another executor's thread");
    g_current_executor = e;
  }
  ~ScopedCurrent() { g_current_executor = prev_; }

 private:
  Executor* prev_;
};

// Bound on any single sleep so a stop request or newly set deadline is
// noticed promptly even when the next timer is far away.
constexpr std::chrono::milliseconds kMaxSleepSlice(20);

}  // namespace

Executor::Executor(Simulator* sim, const WallClock* clock)
    : sim_(sim), clock_(clock) {}

Executor::~Executor() {
  WCHECK(!thread_.joinable(), "executor destroyed while its thread is running");
}

Executor* Executor::Current() { return g_current_executor; }

void Executor::Post(Callback fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    inbox_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void Executor::PostSync(const std::function<void()>& fn) {
  if (Current() == this || !thread_.joinable()) {
    // Own loop, or no loop running: the caller is (or may safely act as) the
    // owner thread.
    ScopedCurrent cur(this);
    fn();
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  Post([&fn, &done_mu, &done_cv, &done]() {
    fn();
    // Notify while holding the mutex: the waiter owns the cv/mutex on its
    // stack and destroys them the moment it observes `done`, so an unlocked
    // notify could touch a dead condition variable.
    std::lock_guard<std::mutex> lk(done_mu);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&done]() { return done; });
}

void Executor::Loop(const std::function<bool()>& done) {
  ScopedCurrent cur(this);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (done()) {
      return;
    }
    // Fire timers due at the current wall instant, then drain the mailbox.
    // RunUntil also advances sim().Now() to wall time when no timers are due,
    // so handlers always read a fresh virtual clock.
    std::deque<Callback> batch;
    batch.swap(inbox_);
    lk.unlock();
    sim_->RunUntil(clock_->VirtualNow());
    for (Callback& fn : batch) {
      fn();
    }
    sim_->RunUntil(clock_->VirtualNow());
    SimTime next = sim_->NextEventTime();
    lk.lock();
    if (!inbox_.empty() || done()) {
      continue;
    }
    auto wake = std::chrono::steady_clock::now() + kMaxSleepSlice;
    if (next != Simulator::kNoPendingEvent) {
      wake = std::min(wake, clock_->RealFor(next));
    }
    cv_.wait_until(lk, wake);
  }
}

void Executor::Start() {
  WCHECK(!thread_.joinable(), "executor started twice");
  stop_ = false;
  thread_ = std::thread([this]() { Loop([this]() { return stop_; }); });
}

void Executor::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

void Executor::PumpFor(SimDuration virtual_d) {
  const SimTime deadline = clock_->VirtualNow() + virtual_d;
  Loop([this, deadline]() { return clock_->VirtualNow() >= deadline; });
}

bool Executor::PumpUntil(const std::function<bool()>& pred,
                         SimDuration max_virtual_wait) {
  const SimTime deadline = clock_->VirtualNow() + max_virtual_wait;
  bool ok = false;
  Loop([this, &pred, &ok, deadline]() {
    if (pred()) {
      ok = true;
      return true;
    }
    return clock_->VirtualNow() >= deadline;
  });
  return ok;
}

ThreadedRuntime::ThreadedRuntime(const Options& options, Simulator* control_sim)
    : clock_(options.time_scale) {
  WCHECK(options.workers > 0, "threaded runtime needs at least one worker");
  for (size_t i = 0; i < options.workers; ++i) {
    // Distinct seeds per worker: loss decisions and jittered timers diverge
    // per thread instead of replaying one stream.
    worker_sims_.push_back(
        std::make_unique<Simulator>(options.seed * 7919 + i + 1));
    workers_.push_back(
        std::make_unique<Executor>(worker_sims_.back().get(), &clock_));
  }
  control_ = std::make_unique<Executor>(control_sim, &clock_);
}

ThreadedRuntime::~ThreadedRuntime() { Stop(); }

void ThreadedRuntime::Start() {
  WCHECK(!started_, "threaded runtime started twice");
  for (auto& w : workers_) {
    w->Start();
  }
  started_ = true;
}

void ThreadedRuntime::Stop() {
  for (auto& w : workers_) {
    w->Stop();
  }
  started_ = false;
}

}  // namespace walter
