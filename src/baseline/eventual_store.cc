#include "src/baseline/eventual_store.h"

#include <utility>

#include "src/common/bytes.h"

namespace walter {

namespace {

enum EventualMessage : uint32_t {
  kEvOp = 1,
  kEvReplicate = 2,
};

enum EvOpKind : uint8_t {
  kEvGet = 1,
  kEvPut = 2,
};

}  // namespace

EventualServer::EventualServer(Simulator* sim, Network* net, Options options)
    : sim_(sim),
      options_(options),
      endpoint_(net, Address{options.site, kEventualPort}),
      cpu_(sim, 1, "eventual") {
  endpoint_.Handle(kEvOp, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandleOp(m, std::move(r));
  });
  endpoint_.Handle(kEvReplicate,
                   [this](const Message& m, RpcEndpoint::ReplyFn) { HandleReplicate(m); });
  if (options_.num_sites > 1) {
    ReplicationLoop();
  }
}

void EventualServer::Merge(const std::string& key, Entry incoming) {
  auto it = data_.find(key);
  if (it == data_.end()) {
    clock_ = std::max(clock_, incoming.timestamp);
    data_[key] = std::move(incoming);
    return;
  }
  Entry& current = it->second;
  clock_ = std::max(clock_, incoming.timestamp);
  // Same logical timestamp from different writers = concurrent conflicting
  // writes; LWW resolves by (timestamp, writer) — and we count it.
  if (incoming.writer != current.writer &&
      (incoming.timestamp == current.timestamp ||
       // Neither causally saw the other (coarse detection: equal timestamps
       // or a remote write older than what this replica already chose).
       incoming.timestamp < current.timestamp)) {
    ++conflicts_detected_;
  }
  if (std::tie(incoming.timestamp, incoming.writer) >
      std::tie(current.timestamp, current.writer)) {
    current = std::move(incoming);
  }
}

void EventualServer::HandleOp(const Message& msg, RpcEndpoint::ReplyFn reply) {
  cpu_.Execute(options_.op_cost, [this, payload = msg.payload, reply = std::move(reply)]() {
    ByteReader r(payload);
    uint8_t op = r.GetU8();
    std::string key = r.GetString();
    Message m;
    ByteWriter w;
    if (op == kEvPut) {
      ++writes_;
      Entry entry;
      entry.value = r.GetString();
      entry.timestamp = ++clock_;
      entry.writer = options_.site;
      unreplicated_.emplace_back(key, entry);
      Merge(key, std::move(entry));
      w.PutU8(0);
    } else {
      auto it = data_.find(key);
      w.PutU8(0);
      w.PutU8(it != data_.end() ? 1 : 0);
      w.PutString(it != data_.end() ? it->second.value : "");
    }
    m.payload = w.Take();
    reply(std::move(m));
  });
}

void EventualServer::ReplicationLoop() {
  sim_->After(options_.replication_interval, [this]() {
    if (!unreplicated_.empty()) {
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(unreplicated_.size()));
      for (const auto& [key, entry] : unreplicated_) {
        w.PutString(key);
        w.PutString(entry.value);
        w.PutU64(entry.timestamp);
        w.PutU32(entry.writer);
      }
      unreplicated_.clear();
      for (SiteId s = 0; s < options_.num_sites; ++s) {
        if (s != options_.site) {
          endpoint_.Send(Address{s, kEventualPort}, kEvReplicate, w.data());
        }
      }
    }
    ReplicationLoop();
  });
}

void EventualServer::HandleReplicate(const Message& msg) {
  ByteReader r(msg.payload);
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string key = r.GetString();
    Entry entry;
    entry.value = r.GetString();
    entry.timestamp = r.GetU64();
    entry.writer = r.GetU32();
    Merge(key, std::move(entry));
  }
}

EventualClient::EventualClient(Network* net, SiteId site, uint32_t port)
    : endpoint_(net, Address{site, port}), site_(site) {}

void EventualClient::Get(const std::string& key, ReadCallback cb) {
  ByteWriter w;
  w.PutU8(kEvGet);
  w.PutString(key);
  endpoint_.Call(Address{site_, kEventualPort}, kEvOp, w.Take(),
                 [cb = std::move(cb)](Status s, const Message& m) {
                   if (!s.ok()) {
                     cb(s, std::nullopt);
                     return;
                   }
                   ByteReader r(m.payload);
                   r.GetU8();
                   bool found = r.GetU8() != 0;
                   std::string value = r.GetString();
                   cb(Status::Ok(),
                      found ? std::optional<std::string>(std::move(value)) : std::nullopt);
                 });
}

void EventualClient::Put(const std::string& key, std::string value, DoneCallback cb) {
  ByteWriter w;
  w.PutU8(kEvPut);
  w.PutString(key);
  w.PutString(value);
  endpoint_.Call(Address{site_, kEventualPort}, kEvOp, w.Take(),
                 [cb = std::move(cb)](Status s, const Message&) { cb(s); });
}

}  // namespace walter
