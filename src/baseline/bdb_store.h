// Berkeley-DB-like baseline for the Figure 16 comparison.
//
// What the paper used: Berkeley DB 11gR2 configured with B-trees, snapshot
// isolation, and two replicas with asynchronous (primary-copy) replication —
// updates allowed only at the primary.
//
// What we built: a single-primary multi-version key-value store with snapshot
// isolation, an ordered (B-tree-like) index, write-ahead group commit through
// the same simulated Disk, and asynchronous log shipping to read-only mirrors.
// Clients talk RPC to the primary; single-operation transactions take one RPC
// (as in the paper's benchmark setup). Service times are calibrated to the
// paper's measured 80 Ktps reads / 32 Ktps writes.
#ifndef SRC_BASELINE_BDB_STORE_H_
#define SRC_BASELINE_BDB_STORE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/disk.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace walter {

inline constexpr uint32_t kBdbPort = 10;

struct BdbPerfModel {
  SimDuration read_op = Micros(11);   // ~80 Ktps (Figure 16)
  SimDuration write_op = Micros(27);  // ~32 Ktps (Figure 16)
  double jitter = 0.3;

  static BdbPerfModel PrivateCluster() { return {}; }
  static BdbPerfModel Instant() { return {0, 0, 0}; }
};

class BdbServer {
 public:
  struct Options {
    SiteId site = 0;
    bool is_primary = true;
    SiteId primary_site = 0;
    std::vector<SiteId> mirrors;  // asynchronous read-only replicas
    BdbPerfModel perf;
    DiskConfig disk = DiskConfig::WriteCacheOn();
    SimDuration ship_interval = Millis(5);  // log-shipping batch period
  };

  BdbServer(Simulator* sim, Network* net, Options options);

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t applied_from_primary() const { return applied_from_primary_; }

 private:
  struct VersionedValue {
    uint64_t version;  // commit counter when written
    std::string value;
  };
  struct ActiveTx {
    uint64_t snapshot = 0;
    std::vector<std::pair<std::string, std::string>> writes;
  };

  void HandleOp(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleShip(const Message& msg);
  void ShipLoop();
  std::optional<std::string> ReadAt(const std::string& key, uint64_t snapshot) const;

  Simulator* sim_;
  Options options_;
  RpcEndpoint endpoint_;
  Resource cpu_;
  Disk disk_;

  // Ordered multi-version index ("B-tree"): key -> versions, newest last.
  std::map<std::string, std::vector<VersionedValue>> tree_;
  uint64_t commit_counter_ = 0;
  uint64_t next_txn_ = 1;
  std::map<uint64_t, ActiveTx> active_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  // Log shipping.
  std::vector<std::pair<std::string, std::string>> unshipped_;
  uint64_t applied_from_primary_ = 0;
};

// Client for BdbServer: begin/read/write/commit with snapshot isolation, or
// the 1-RPC single-op fast paths used by the base-performance benchmark.
class BdbClient {
 public:
  BdbClient(Network* net, SiteId site, uint32_t port, SiteId primary_site);

  using ReadCallback = std::function<void(Status, std::optional<std::string>)>;
  using CommitCallback = std::function<void(Status)>;

  // One-RPC single-op transactions (what the Figure 16 workload issues).
  void Get(const std::string& key, ReadCallback cb);
  void Put(const std::string& key, std::string value, CommitCallback cb);

  // Multi-op snapshot-isolation transactions.
  struct Txn {
    uint64_t id = 0;
  };
  void Begin(std::function<void(Status, Txn)> cb);
  void Read(Txn txn, const std::string& key, ReadCallback cb);
  void Write(Txn txn, const std::string& key, std::string value, CommitCallback cb);
  void Commit(Txn txn, CommitCallback cb);

 private:
  void Call(std::string payload, std::function<void(Status, const Message&)> cb);

  RpcEndpoint endpoint_;
  SiteId primary_site_;
};

}  // namespace walter

#endif  // SRC_BASELINE_BDB_STORE_H_
