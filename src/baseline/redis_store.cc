#include "src/baseline/redis_store.h"

#include <utility>

#include "src/common/bytes.h"

namespace walter {

namespace {

enum RedisOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kIncr = 3,
  kLPush = 4,
  kLRange = 5,
  kSAdd = 6,
  kSRem = 7,
  kSMembers = 8,
  kMGet = 9,
};

enum RedisMessage : uint32_t {
  kRedisCommand = 1,
  kRedisReplicate = 2,
};

struct Command {
  uint8_t op = 0;
  std::string key;
  std::string value;
  uint64_t count = 0;
  std::vector<std::string> keys;  // kMGet
};

std::string EncodeCommand(const Command& c) {
  ByteWriter w;
  w.PutU8(c.op);
  w.PutString(c.key);
  w.PutString(c.value);
  w.PutU64(c.count);
  w.PutU32(static_cast<uint32_t>(c.keys.size()));
  for (const auto& k : c.keys) {
    w.PutString(k);
  }
  return w.Take();
}

Command DecodeCommand(std::string_view b) {
  ByteReader r(b);
  Command c;
  c.op = r.GetU8();
  c.key = r.GetString();
  c.value = r.GetString();
  c.count = r.GetU64();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    c.keys.push_back(r.GetString());
  }
  return c;
}

bool IsWrite(uint8_t op) {
  return op == kSet || op == kIncr || op == kLPush || op == kSAdd || op == kSRem;
}

}  // namespace

RedisServer::RedisServer(Simulator* sim, Network* net, Options options)
    : sim_(sim),
      options_(std::move(options)),
      endpoint_(net, Address{options_.site, kRedisPort}),
      cpu_(sim, 1, "redis") {
  endpoint_.Handle(kRedisCommand, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandleCommand(m, std::move(r));
  });
  endpoint_.Handle(kRedisReplicate,
                   [this](const Message& m, RpcEndpoint::ReplyFn) { HandleReplicate(m); });
  if (options_.is_master && !options_.slaves.empty()) {
    ReplicationLoop();
  }
}

std::string RedisServer::ApplyWrite(std::string_view command_bytes) {
  Command c = DecodeCommand(command_bytes);
  ByteWriter result;
  switch (c.op) {
    case kSet:
      strings_[c.key] = c.value;
      break;
    case kIncr: {
      int64_t v = 0;
      auto it = strings_.find(c.key);
      if (it != strings_.end()) {
        v = std::strtoll(it->second.c_str(), nullptr, 10);
      }
      ++v;
      strings_[c.key] = std::to_string(v);
      result.PutI64(v);
      break;
    }
    case kLPush:
      lists_[c.key].push_front(c.value);
      break;
    case kSAdd:
      sets_[c.key].insert(c.value);
      break;
    case kSRem:
      sets_[c.key].erase(c.value);
      break;
    default:
      break;
  }
  return result.Take();
}

void RedisServer::HandleCommand(const Message& msg, RpcEndpoint::ReplyFn reply) {
  // Multi-key commands cost proportionally to the keys touched.
  size_t key_count = 1;
  {
    ByteReader peek(msg.payload);
    if (peek.GetU8() == kMGet) {
      Command c = DecodeCommand(msg.payload);
      key_count = std::max<size_t>(c.keys.size(), 1);
    }
  }
  SimDuration cost = options_.perf.op * static_cast<SimDuration>(key_count);
  if (options_.perf.jitter > 0) {
    cost = static_cast<SimDuration>(static_cast<double>(cost) *
                                    (1.0 + options_.perf.jitter * sim_->rng().NextDouble()));
  }
  cpu_.Execute(cost, [this, payload = msg.payload, reply = std::move(reply)]() {
    ++commands_;
    Command c = DecodeCommand(payload);
    Message m;
    ByteWriter w;
    if (IsWrite(c.op)) {
      if (!options_.is_master) {
        w.PutU8(static_cast<uint8_t>(StatusCode::kFailedPrecondition));
        m.payload = w.Take();
        reply(std::move(m));
        return;
      }
      std::string result = ApplyWrite(payload);
      unreplicated_.push_back(payload.ToString());
      w.PutU8(0);
      w.PutString(result);
      m.payload = w.Take();
      reply(std::move(m));
      return;
    }
    w.PutU8(0);
    switch (c.op) {
      case kGet: {
        auto it = strings_.find(c.key);
        w.PutU8(it != strings_.end() ? 1 : 0);
        w.PutString(it != strings_.end() ? it->second : "");
        break;
      }
      case kLRange: {
        auto it = lists_.find(c.key);
        size_t n = it == lists_.end() ? 0 : std::min<size_t>(c.count, it->second.size());
        w.PutU32(static_cast<uint32_t>(n));
        for (size_t i = 0; i < n; ++i) {
          w.PutString(it->second[i]);
        }
        break;
      }
      case kMGet: {
        w.PutU32(static_cast<uint32_t>(c.keys.size()));
        for (const auto& key : c.keys) {
          auto it = strings_.find(key);
          w.PutString(it != strings_.end() ? it->second : "");
        }
        break;
      }
      case kSMembers: {
        auto it = sets_.find(c.key);
        size_t n = it == sets_.end() ? 0 : it->second.size();
        w.PutU32(static_cast<uint32_t>(n));
        if (it != sets_.end()) {
          for (const auto& member : it->second) {
            w.PutString(member);
          }
        }
        break;
      }
      default:
        break;
    }
    m.payload = w.Take();
    reply(std::move(m));
  });
}

void RedisServer::ReplicationLoop() {
  sim_->After(options_.replication_interval, [this]() {
    if (!unreplicated_.empty()) {
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(unreplicated_.size()));
      for (const auto& cmd : unreplicated_) {
        w.PutString(cmd);
      }
      unreplicated_.clear();
      for (SiteId slave : options_.slaves) {
        endpoint_.Send(Address{slave, kRedisPort}, kRedisReplicate, w.data());
      }
    }
    ReplicationLoop();
  });
}

void RedisServer::HandleReplicate(const Message& msg) {
  ByteReader r(msg.payload);
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    ApplyWrite(r.GetString());
  }
}

RedisClient::RedisClient(Network* net, SiteId site, uint32_t port, SiteId master_site)
    : endpoint_(net, Address{site, port}), master_site_(master_site), read_site_(master_site) {}

void RedisClient::Call(SiteId dest, std::string payload,
                       std::function<void(Status, const Message&)> cb) {
  endpoint_.Call(Address{dest, kRedisPort}, kRedisCommand, std::move(payload), std::move(cb));
}

void RedisClient::Get(const std::string& key, StringCallback cb) {
  Command c{kGet, key, "", 0, {}};
  Call(read_site_, EncodeCommand(c), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, std::nullopt);
      return;
    }
    ByteReader r(m.payload);
    r.GetU8();
    bool found = r.GetU8() != 0;
    std::string value = r.GetString();
    cb(Status::Ok(), found ? std::optional<std::string>(std::move(value)) : std::nullopt);
  });
}

void RedisClient::MGet(std::vector<std::string> keys, ListCallback cb) {
  Command c;
  c.op = kMGet;
  c.keys = std::move(keys);
  Call(read_site_, EncodeCommand(c), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, {});
      return;
    }
    ByteReader r(m.payload);
    r.GetU8();
    uint32_t n = r.GetU32();
    std::vector<std::string> out;
    for (uint32_t i = 0; i < n && !r.failed(); ++i) {
      out.push_back(r.GetString());
    }
    cb(Status::Ok(), std::move(out));
  });
}

void RedisClient::Set(const std::string& key, std::string value, DoneCallback cb) {
  Command c{kSet, key, std::move(value), 0, {}};
  Call(master_site_, EncodeCommand(c),
       [cb = std::move(cb)](Status s, const Message&) { cb(s); });
}

void RedisClient::Incr(const std::string& key, IntCallback cb) {
  Command c{kIncr, key, "", 0, {}};
  Call(master_site_, EncodeCommand(c), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, 0);
      return;
    }
    ByteReader r(m.payload);
    r.GetU8();
    std::string value = r.GetString();  // named: ByteReader only views its input
    ByteReader inner(value);
    cb(Status::Ok(), inner.GetI64());
  });
}

void RedisClient::LPush(const std::string& key, std::string value, DoneCallback cb) {
  Command c{kLPush, key, std::move(value), 0, {}};
  Call(master_site_, EncodeCommand(c),
       [cb = std::move(cb)](Status s, const Message&) { cb(s); });
}

void RedisClient::LRange(const std::string& key, size_t count, ListCallback cb) {
  Command c{kLRange, key, "", count, {}};
  Call(read_site_, EncodeCommand(c), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, {});
      return;
    }
    ByteReader r(m.payload);
    r.GetU8();
    uint32_t n = r.GetU32();
    std::vector<std::string> out;
    for (uint32_t i = 0; i < n && !r.failed(); ++i) {
      out.push_back(r.GetString());
    }
    cb(Status::Ok(), std::move(out));
  });
}

void RedisClient::SAdd(const std::string& key, std::string member, DoneCallback cb) {
  Command c{kSAdd, key, std::move(member), 0, {}};
  Call(master_site_, EncodeCommand(c),
       [cb = std::move(cb)](Status s, const Message&) { cb(s); });
}

void RedisClient::SRem(const std::string& key, std::string member, DoneCallback cb) {
  Command c{kSRem, key, std::move(member), 0, {}};
  Call(master_site_, EncodeCommand(c),
       [cb = std::move(cb)](Status s, const Message&) { cb(s); });
}

void RedisClient::SMembers(const std::string& key, ListCallback cb) {
  Command c{kSMembers, key, "", 0, {}};
  Call(read_site_, EncodeCommand(c), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, {});
      return;
    }
    ByteReader r(m.payload);
    r.GetU8();
    uint32_t n = r.GetU32();
    std::vector<std::string> out;
    for (uint32_t i = 0; i < n && !r.failed(); ++i) {
      out.push_back(r.GetString());
    }
    cb(Status::Ok(), std::move(out));
  });
}

}  // namespace walter
