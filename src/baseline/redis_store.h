// Redis-like baseline for the ReTwis comparison (Section 8.7 / Figure 23).
//
// What the paper used: Redis, a semi-persistent in-memory key-value store with
// native atomic operations (INCR, list push/range, set add/remove) and
// master-slave replication; updates only at the master.
//
// What we built: an in-memory store with the same operation vocabulary,
// single-master asynchronous replication, and calibrated per-op service time.
// ReTwis (src/apps/retwis) runs unchanged on this or on Walter through its
// storage-backend interface.
#ifndef SRC_BASELINE_REDIS_STORE_H_
#define SRC_BASELINE_REDIS_STORE_H_

#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace walter {

inline constexpr uint32_t kRedisPort = 11;

struct RedisPerfModel {
  SimDuration op = Micros(9);  // any command
  double jitter = 0.3;

  static RedisPerfModel Default() { return {}; }
  static RedisPerfModel Instant() { return {0, 0}; }
};

class RedisServer {
 public:
  struct Options {
    SiteId site = 0;
    bool is_master = true;
    std::vector<SiteId> slaves;
    RedisPerfModel perf;
    SimDuration replication_interval = Millis(5);
  };

  RedisServer(Simulator* sim, Network* net, Options options);

  uint64_t commands() const { return commands_; }

 private:
  void HandleCommand(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleReplicate(const Message& msg);
  void ReplicationLoop();
  std::string ApplyWrite(std::string_view command_bytes);  // returns result

  Simulator* sim_;
  Options options_;
  RpcEndpoint endpoint_;
  Resource cpu_;

  std::unordered_map<std::string, std::string> strings_;
  std::unordered_map<std::string, std::deque<std::string>> lists_;
  std::unordered_map<std::string, std::set<std::string>> sets_;
  std::vector<std::string> unreplicated_;  // raw write commands, in order
  uint64_t commands_ = 0;
};

// Client for RedisServer: the command subset ReTwis uses.
class RedisClient {
 public:
  RedisClient(Network* net, SiteId site, uint32_t port, SiteId master_site);

  using StringCallback = std::function<void(Status, std::optional<std::string>)>;
  using IntCallback = std::function<void(Status, int64_t)>;
  using ListCallback = std::function<void(Status, std::vector<std::string>)>;
  using DoneCallback = std::function<void(Status)>;

  void Get(const std::string& key, StringCallback cb);
  // Multi-get in one RPC (MGET); missing keys come back as empty strings.
  void MGet(std::vector<std::string> keys, ListCallback cb);
  void Set(const std::string& key, std::string value, DoneCallback cb);
  // Atomic increment; returns the new value.
  void Incr(const std::string& key, IntCallback cb);
  // Push to the head of a list.
  void LPush(const std::string& key, std::string value, DoneCallback cb);
  // First `count` elements from the head.
  void LRange(const std::string& key, size_t count, ListCallback cb);
  void SAdd(const std::string& key, std::string member, DoneCallback cb);
  void SRem(const std::string& key, std::string member, DoneCallback cb);
  void SMembers(const std::string& key, ListCallback cb);

  // Reads may go to a local slave; writes always go to the master.
  void set_read_site(SiteId site) { read_site_ = site; }

 private:
  void Call(SiteId dest, std::string payload, std::function<void(Status, const Message&)> cb);

  RpcEndpoint endpoint_;
  SiteId master_site_;
  SiteId read_site_;
};

}  // namespace walter

#endif  // SRC_BASELINE_REDIS_STORE_H_
