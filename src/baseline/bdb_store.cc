#include "src/baseline/bdb_store.h"

#include <utility>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace walter {

namespace {

enum BdbOp : uint8_t {
  kBdbGet = 1,     // single-op read transaction
  kBdbPut = 2,     // single-op write transaction
  kBdbBegin = 3,
  kBdbRead = 4,
  kBdbWrite = 5,
  kBdbCommit = 6,
};

enum BdbMessage : uint32_t {
  kBdbClientOp = 1,
  kBdbShip = 2,
};

struct Request {
  uint8_t op = 0;
  uint64_t txn = 0;
  std::string key;
  std::string value;
};

std::string EncodeRequest(const Request& r) {
  ByteWriter w;
  w.PutU8(r.op);
  w.PutU64(r.txn);
  w.PutString(r.key);
  w.PutString(r.value);
  return w.Take();
}

Request DecodeRequest(std::string_view b) {
  ByteReader r(b);
  Request req;
  req.op = r.GetU8();
  req.txn = r.GetU64();
  req.key = r.GetString();
  req.value = r.GetString();
  return req;
}

struct Response {
  uint8_t status = 0;  // StatusCode
  bool found = false;
  std::string value;
  uint64_t txn = 0;
};

std::string EncodeResponse(const Response& r) {
  ByteWriter w;
  w.PutU8(r.status);
  w.PutU8(r.found ? 1 : 0);
  w.PutString(r.value);
  w.PutU64(r.txn);
  return w.Take();
}

Response DecodeResponse(std::string_view b) {
  ByteReader r(b);
  Response resp;
  resp.status = r.GetU8();
  resp.found = r.GetU8() != 0;
  resp.value = r.GetString();
  resp.txn = r.GetU64();
  return resp;
}

}  // namespace

BdbServer::BdbServer(Simulator* sim, Network* net, Options options)
    : sim_(sim),
      options_(std::move(options)),
      endpoint_(net, Address{options_.site, kBdbPort}),
      cpu_(sim, 1, "bdb"),
      disk_(sim, options_.disk) {
  endpoint_.Handle(kBdbClientOp, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandleOp(m, std::move(r));
  });
  endpoint_.Handle(kBdbShip, [this](const Message& m, RpcEndpoint::ReplyFn) { HandleShip(m); });
  if (options_.is_primary && !options_.mirrors.empty()) {
    ShipLoop();
  }
}

std::optional<std::string> BdbServer::ReadAt(const std::string& key, uint64_t snapshot) const {
  auto it = tree_.find(key);
  if (it == tree_.end()) {
    return std::nullopt;
  }
  // Newest version at or below the snapshot.
  for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
    if (v->version <= snapshot) {
      return v->value;
    }
  }
  return std::nullopt;
}

void BdbServer::HandleOp(const Message& msg, RpcEndpoint::ReplyFn reply) {
  Request req = DecodeRequest(msg.payload);
  SimDuration cost = req.op == kBdbGet || req.op == kBdbRead || req.op == kBdbBegin
                         ? options_.perf.read_op
                         : options_.perf.write_op;
  if (options_.perf.jitter > 0) {
    cost = static_cast<SimDuration>(static_cast<double>(cost) *
                                    (1.0 + options_.perf.jitter * sim_->rng().NextDouble()));
  }
  cpu_.Execute(cost, [this, req = std::move(req), reply = std::move(reply)]() {
    Response resp;
    // By value: the disk-flush continuation may outlive this callback.
    auto respond = [reply](Response r) {
      Message m;
      m.payload = EncodeResponse(r);
      reply(std::move(m));
    };
    switch (req.op) {
      case kBdbGet: {
        auto v = ReadAt(req.key, commit_counter_);
        resp.found = v.has_value();
        if (v) {
          resp.value = std::move(*v);
        }
        respond(std::move(resp));
        return;
      }
      case kBdbPut: {
        if (!options_.is_primary) {
          resp.status = static_cast<uint8_t>(StatusCode::kFailedPrecondition);
          respond(std::move(resp));
          return;
        }
        uint64_t version = ++commit_counter_;
        tree_[req.key].push_back(VersionedValue{version, req.value});
        unshipped_.emplace_back(req.key, req.value);
        disk_.Flush([this, respond = std::move(respond), resp = std::move(resp)]() mutable {
          ++committed_;
          respond(std::move(resp));
        });
        return;
      }
      case kBdbBegin: {
        uint64_t id = next_txn_++;
        active_[id] = ActiveTx{commit_counter_, {}};
        resp.txn = id;
        respond(std::move(resp));
        return;
      }
      case kBdbRead: {
        auto it = active_.find(req.txn);
        if (it == active_.end()) {
          resp.status = static_cast<uint8_t>(StatusCode::kNotFound);
        } else {
          for (auto w = it->second.writes.rbegin(); w != it->second.writes.rend(); ++w) {
            if (w->first == req.key) {
              resp.found = true;
              resp.value = w->second;
              respond(std::move(resp));
              return;
            }
          }
          auto v = ReadAt(req.key, it->second.snapshot);
          resp.found = v.has_value();
          if (v) {
            resp.value = std::move(*v);
          }
        }
        respond(std::move(resp));
        return;
      }
      case kBdbWrite: {
        auto it = active_.find(req.txn);
        if (it == active_.end() || !options_.is_primary) {
          resp.status = static_cast<uint8_t>(StatusCode::kFailedPrecondition);
        } else {
          it->second.writes.emplace_back(req.key, req.value);
        }
        respond(std::move(resp));
        return;
      }
      case kBdbCommit: {
        auto it = active_.find(req.txn);
        if (it == active_.end()) {
          resp.status = static_cast<uint8_t>(StatusCode::kNotFound);
          respond(std::move(resp));
          return;
        }
        ActiveTx txn = std::move(it->second);
        active_.erase(it);
        // Snapshot-isolation first-committer-wins: abort if any written key
        // gained a version after our snapshot.
        for (const auto& [key, value] : txn.writes) {
          auto t = tree_.find(key);
          if (t != tree_.end() && !t->second.empty() &&
              t->second.back().version > txn.snapshot) {
            ++aborted_;
            resp.status = static_cast<uint8_t>(StatusCode::kAborted);
            respond(std::move(resp));
            return;
          }
        }
        uint64_t version = ++commit_counter_;
        for (auto& [key, value] : txn.writes) {
          tree_[key].push_back(VersionedValue{version, value});
          unshipped_.emplace_back(key, value);
        }
        disk_.Flush([this, respond = std::move(respond), resp = std::move(resp)]() mutable {
          ++committed_;
          respond(std::move(resp));
        });
        return;
      }
      default:
        resp.status = static_cast<uint8_t>(StatusCode::kInvalidArgument);
        respond(std::move(resp));
    }
  });
}

void BdbServer::ShipLoop() {
  sim_->After(options_.ship_interval, [this]() {
    if (!unshipped_.empty()) {
      ByteWriter w;
      w.PutU32(static_cast<uint32_t>(unshipped_.size()));
      for (const auto& [key, value] : unshipped_) {
        w.PutString(key);
        w.PutString(value);
      }
      unshipped_.clear();
      for (SiteId mirror : options_.mirrors) {
        endpoint_.Send(Address{mirror, kBdbPort}, kBdbShip, w.data());
      }
    }
    ShipLoop();
  });
}

void BdbServer::HandleShip(const Message& msg) {
  ByteReader r(msg.payload);
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string key = r.GetString();
    std::string value = r.GetString();
    tree_[key].push_back(VersionedValue{++commit_counter_, std::move(value)});
    ++applied_from_primary_;
  }
}

BdbClient::BdbClient(Network* net, SiteId site, uint32_t port, SiteId primary_site)
    : endpoint_(net, Address{site, port}), primary_site_(primary_site) {}

void BdbClient::Call(std::string payload, std::function<void(Status, const Message&)> cb) {
  endpoint_.Call(Address{primary_site_, kBdbPort}, kBdbClientOp, std::move(payload),
                 std::move(cb));
}

void BdbClient::Get(const std::string& key, ReadCallback cb) {
  Request req;
  req.op = kBdbGet;
  req.key = key;
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, std::nullopt);
      return;
    }
    Response resp = DecodeResponse(m.payload);
    cb(Status::Ok(), resp.found ? std::optional<std::string>(resp.value) : std::nullopt);
  });
}

void BdbClient::Put(const std::string& key, std::string value, CommitCallback cb) {
  Request req;
  req.op = kBdbPut;
  req.key = key;
  req.value = std::move(value);
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s);
      return;
    }
    Response resp = DecodeResponse(m.payload);
    cb(Status(static_cast<StatusCode>(resp.status), ""));
  });
}

void BdbClient::Begin(std::function<void(Status, Txn)> cb) {
  Request req;
  req.op = kBdbBegin;
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, Txn{});
      return;
    }
    Response resp = DecodeResponse(m.payload);
    cb(Status::Ok(), Txn{resp.txn});
  });
}

void BdbClient::Read(Txn txn, const std::string& key, ReadCallback cb) {
  Request req;
  req.op = kBdbRead;
  req.txn = txn.id;
  req.key = key;
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s, std::nullopt);
      return;
    }
    Response resp = DecodeResponse(m.payload);
    cb(Status::Ok(), resp.found ? std::optional<std::string>(resp.value) : std::nullopt);
  });
}

void BdbClient::Write(Txn txn, const std::string& key, std::string value, CommitCallback cb) {
  Request req;
  req.op = kBdbWrite;
  req.txn = txn.id;
  req.key = key;
  req.value = std::move(value);
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s);
      return;
    }
    cb(Status(static_cast<StatusCode>(DecodeResponse(m.payload).status), ""));
  });
}

void BdbClient::Commit(Txn txn, CommitCallback cb) {
  Request req;
  req.op = kBdbCommit;
  req.txn = txn.id;
  Call(EncodeRequest(req), [cb = std::move(cb)](Status s, const Message& m) {
    if (!s.ok()) {
      cb(s);
      return;
    }
    cb(Status(static_cast<StatusCode>(DecodeResponse(m.payload).status), ""));
  });
}

}  // namespace walter
