// Eventually consistent baseline (Section 9's "relaxed consistency" systems).
//
// An update-anywhere last-writer-wins key-value store: every site accepts
// writes, replicates them asynchronously, and resolves concurrent writes with
// a (timestamp, site) tiebreak. It exhibits every anomaly in Figure 8 —
// including the conflicting fork that PSI precludes — and counts the conflicts
// it silently resolves, which is what Walter's conflict-freedom is measured
// against in the ablation benchmark.
#ifndef SRC_BASELINE_EVENTUAL_STORE_H_
#define SRC_BASELINE_EVENTUAL_STORE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace walter {

inline constexpr uint32_t kEventualPort = 12;

class EventualServer {
 public:
  struct Options {
    SiteId site = 0;
    size_t num_sites = 1;
    SimDuration replication_interval = Millis(5);
    SimDuration op_cost = Micros(10);
  };

  EventualServer(Simulator* sim, Network* net, Options options);

  // Writes to the same key that were concurrent (neither saw the other) and
  // were silently resolved by last-writer-wins.
  uint64_t conflicts_detected() const { return conflicts_detected_; }
  uint64_t writes() const { return writes_; }

 private:
  struct Entry {
    std::string value;
    uint64_t timestamp = 0;  // Lamport-ish logical timestamp
    SiteId writer = kNoSite;
  };

  void HandleOp(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleReplicate(const Message& msg);
  void ReplicationLoop();
  void Merge(const std::string& key, Entry incoming);

  Simulator* sim_;
  Options options_;
  RpcEndpoint endpoint_;
  Resource cpu_;

  std::unordered_map<std::string, Entry> data_;
  uint64_t clock_ = 0;
  std::vector<std::pair<std::string, Entry>> unreplicated_;
  uint64_t conflicts_detected_ = 0;
  uint64_t writes_ = 0;
};

class EventualClient {
 public:
  EventualClient(Network* net, SiteId site, uint32_t port);

  using ReadCallback = std::function<void(Status, std::optional<std::string>)>;
  using DoneCallback = std::function<void(Status)>;

  // Reads/writes go to the local site's server (update-anywhere).
  void Get(const std::string& key, ReadCallback cb);
  void Put(const std::string& key, std::string value, DoneCallback cb);

 private:
  RpcEndpoint endpoint_;
  SiteId site_;
};

}  // namespace walter

#endif  // SRC_BASELINE_EVENTUAL_STORE_H_
