// ShardMap: the configuration service's assignment of containers to co-located
// servers ("shards") within each site.
//
// The paper models one server per site; real deployments shard each site's
// key-space across several co-located servers so throughput scales within a
// site, not only across sites. The shard map is the authoritative layout: per
// site, how many servers it runs, and — via a stable hash of the container id —
// which of them owns each container there.
//
// Server ids are global and dense: site 0's shards come first, then site 1's,
// and so on. With one server per site (the trivial map, the default
// everywhere) server ids coincide with site ids, which is what keeps every
// pre-sharding benchmark byte-identical: nothing downstream can tell the map
// exists. The hash depends only on the container id, so two sites with the
// same shard count place a container on the same shard index — the property
// the shard-map unit tests pin.
//
// Header-only on purpose: src/core's ContainerDirectory translates container
// metadata through the map, and a compiled shard_map.cc in walter_config would
// make walter_core and walter_config mutually dependent.
#ifndef SRC_CONFIG_SHARD_MAP_H_
#define SRC_CONFIG_SHARD_MAP_H_

#include <cstddef>
#include <vector>

#include "src/common/types.h"

namespace walter {

class ShardMap {
 public:
  // Trivial map over `num_sites` sites: one server per site.
  explicit ShardMap(size_t num_sites = 0)
      : ShardMap(std::vector<size_t>(num_sites, 1)) {}

  // `servers_per_site[s]` = number of co-located servers at site s (>= 1).
  explicit ShardMap(std::vector<size_t> servers_per_site)
      : shards_(std::move(servers_per_site)) {
    base_.reserve(shards_.size());
    SiteId next = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      base_.push_back(next);
      for (size_t k = 0; k < shards_[s]; ++k) {
        site_of_.push_back(static_cast<SiteId>(s));
      }
      next += static_cast<SiteId>(shards_[s]);
    }
  }

  static ShardMap Uniform(size_t num_sites, size_t per_site) {
    return ShardMap(std::vector<size_t>(num_sites, per_site));
  }

  size_t num_sites() const { return shards_.size(); }
  size_t num_servers() const { return site_of_.size(); }
  size_t shards_at(SiteId site) const { return shards_[site]; }
  const std::vector<size_t>& shards() const { return shards_; }

  // One server per site everywhere: server ids == site ids, and every
  // consumer (directory translation, client routing, topology expansion)
  // short-circuits to the pre-sharding behavior.
  bool trivial() const { return num_servers() == num_sites(); }

  // Global server id of shard `shard` at `site`.
  SiteId ServerAt(SiteId site, size_t shard) const {
    return base_[site] + static_cast<SiteId>(shard);
  }
  // The site a server belongs to.
  SiteId SiteOf(SiteId server) const { return site_of_[server]; }
  // This server's shard index within its site.
  size_t ShardIndexOf(SiteId server) const { return server - base_[SiteOf(server)]; }

  // Stable container hash (splitmix64 finalizer, like ObjectIdHash): which of
  // `site`'s shards owns the container there. Depends only on the container id
  // and the site's shard count — never on the site id — so equal-sized sites
  // agree on the placement.
  size_t ShardOf(ContainerId c, SiteId site) const {
    size_t n = shards_[site];
    if (n <= 1) {
      return 0;
    }
    uint64_t h = c + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h % n);
  }

  // The server owning container `c` at `site`.
  SiteId OwnerAt(ContainerId c, SiteId site) const {
    return ServerAt(site, ShardOf(c, site));
  }

 private:
  std::vector<size_t> shards_;   // per site: server count
  std::vector<SiteId> base_;     // per site: first server id (prefix sums)
  std::vector<SiteId> site_of_;  // per server: owning site
};

}  // namespace walter

#endif  // SRC_CONFIG_SHARD_MAP_H_
