#include "src/config/config_service.h"

#include <algorithm>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace walter {

std::string ConfigCommand::Serialize() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU64(container.id);
  w.PutU32(container.preferred_site);
  w.PutU32(static_cast<uint32_t>(container.replicas.size()));
  for (SiteId r : container.replicas) {
    w.PutU32(r);
  }
  w.PutU32(site);
  w.PutU64(survive_through);
  w.PutU32(new_preferred);
  return w.Take();
}

ConfigCommand ConfigCommand::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  ConfigCommand cmd;
  cmd.kind = static_cast<Kind>(r.GetU8());
  cmd.container.id = r.GetU64();
  cmd.container.preferred_site = r.GetU32();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && !r.failed(); ++i) {
    cmd.container.replicas.push_back(r.GetU32());
  }
  cmd.site = r.GetU32();
  cmd.survive_through = r.GetU64();
  cmd.new_preferred = r.GetU32();
  return cmd;
}

ConfigService::ConfigService(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                             ContainerDirectory* directory, WalterServer* server)
    : sim_(sim),
      site_(site),
      num_sites_(num_sites),
      directory_(directory),
      server_(server),
      paxos_(std::make_unique<PaxosNode>(sim, net, site, num_sites)),
      active_(num_sites, true),
      removed_through_(num_sites, 0) {
  paxos_->SetLearnCallback([this](uint64_t, const std::string& value) {
    Apply(ConfigCommand::Deserialize(value));
  });
  if (server_) {
    server_->SetLeaseChecker([this](ContainerId c) { return HoldsLease(c); });
  }
}

void ConfigService::AttachServer(WalterServer* server) {
  server_ = server;
  if (server_ == nullptr) {
    return;
  }
  server_->SetLeaseChecker([this](ContainerId c) { return HoldsLease(c); });
  // Replay the server-side effects of commands learned while the old server
  // object was being replaced: the fresh server restored from its durable
  // image still holds removed sites' non-surviving records.
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (active_[s]) {
      continue;
    }
    if (s == site_) {
      server_->TruncateOwnLog(removed_through_[s]);
    } else {
      server_->DiscardNonSurviving(s, removed_through_[s]);
      server_->SetDurableKnown(s, removed_through_[s]);
      server_->SetSiteActive(s, false);
    }
  }
}

void ConfigService::ProposeUpsertContainer(ContainerInfo info, std::function<void(Status)> cb) {
  ConfigCommand cmd;
  cmd.kind = ConfigCommand::Kind::kUpsertContainer;
  cmd.container = std::move(info);
  paxos_->Propose(cmd.Serialize(),
                  [cb = std::move(cb)](Status s, uint64_t) { cb(std::move(s)); });
}

void ConfigService::ProposeRemoveSite(SiteId failed, uint64_t survive_through,
                                      SiteId new_preferred, std::function<void(Status)> cb) {
  ConfigCommand cmd;
  cmd.kind = ConfigCommand::Kind::kRemoveSite;
  cmd.site = failed;
  cmd.survive_through = survive_through;
  cmd.new_preferred = new_preferred;
  paxos_->Propose(cmd.Serialize(),
                  [cb = std::move(cb)](Status s, uint64_t) { cb(std::move(s)); });
}

void ConfigService::ProposeReintegrateSite(SiteId site, std::function<void(Status)> cb) {
  ConfigCommand cmd;
  cmd.kind = ConfigCommand::Kind::kReintegrateSite;
  cmd.site = site;
  paxos_->Propose(cmd.Serialize(),
                  [cb = std::move(cb)](Status s, uint64_t) { cb(std::move(s)); });
}

bool ConfigService::HoldsLease(ContainerId container) const {
  if (!active_[site_]) {
    return false;
  }
  if (sim_ && sim_->Now() < lease_blackout_until_) {
    return false;
  }
  return directory_->Get(container).preferred_site == site_;
}

void ConfigService::Apply(const ConfigCommand& cmd) {
  switch (cmd.kind) {
    case ConfigCommand::Kind::kUpsertContainer:
      directory_->Upsert(cmd.container);
      ++epoch_;
      break;
    case ConfigCommand::Kind::kRemoveSite:
      // Idempotent: the recovery orchestration may race several proposers; the
      // first learned removal wins and duplicates are no-ops.
      if (cmd.site < num_sites_ && active_[cmd.site]) {
        active_[cmd.site] = false;
        removed_through_[cmd.site] = cmd.survive_through;
        directory_->RemapSite(cmd.site, cmd.new_preferred);
        if (server_ && !server_->crashed()) {
          if (cmd.site == site_) {
            // The survivors removed US (we were isolated, not dead): drop our
            // own non-surviving suffix; its seqnos rewind and are reused.
            server_->TruncateOwnLog(cmd.survive_through);
          } else {
            server_->DiscardNonSurviving(cmd.site, cmd.survive_through);
            server_->SetDurableKnown(cmd.site, cmd.survive_through);
            // Gate the removed site's stale traffic (it may not know yet).
            server_->SetSiteActive(cmd.site, false);
          }
        }
        if (cmd.new_preferred == site_ && sim_) {
          // Gaining site: hold off fast commits until the other sites have
          // had time to learn the remap (no dual preferred site).
          lease_blackout_until_ = sim_->Now() + kLeaseSettle;
        }
        ++epoch_;
      }
      break;
    case ConfigCommand::Kind::kReintegrateSite:
      if (cmd.site < num_sites_ && !active_[cmd.site]) {
        active_[cmd.site] = true;
        directory_->ClearRemap(cmd.site);
        if (server_ && !server_->crashed()) {
          server_->SetSiteActive(cmd.site, true);
        }
        if (cmd.site == site_ && sim_) {
          // Regaining our containers: same settle window, so the interim
          // preferred site stops fast-committing them before we start.
          lease_blackout_until_ = sim_->Now() + kLeaseSettle;
        }
        ++epoch_;
      }
      break;
  }
  if (apply_observer_) {
    apply_observer_(cmd);
  }
}

void SiteRecoveryCoordinator::RemoveFailedSite(SiteId failed, SiteId new_preferred,
                                               std::function<void(Status)> cb) {
  // 1. Query survivors for the failed site's received prefix. Servers are
  //    in-process here (the coordinator stands in for the administrator's
  //    recovery script); a networked deployment would RPC this.
  uint64_t survive_through = 0;
  WalterServer* best = nullptr;
  for (WalterServer* s : servers_) {
    if (s == nullptr || s->site() == failed || s->crashed()) {
      continue;
    }
    uint64_t got = s->got_vts().at(failed);
    if (got >= survive_through) {
      survive_through = got;
      best = s;
    }
  }

  // 2. Complete the propagation of surviving transactions among survivors.
  if (best != nullptr) {
    for (WalterServer* s : servers_) {
      if (s == nullptr || s == best || s->site() == failed || s->crashed()) {
        continue;
      }
      uint64_t got = s->got_vts().at(failed);
      if (got < survive_through) {
        s->InjectRemoteRecords(failed, best->CollectRecords(failed, got + 1, survive_through));
      }
    }
  }

  // 3. Propose the configuration change; each site discards non-surviving
  //    transactions and re-homes the failed site's containers when it learns
  //    the command.
  config_->ProposeRemoveSite(failed, survive_through, new_preferred, std::move(cb));
}

}  // namespace walter
