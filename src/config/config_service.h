// Configuration service (Sections 5.1 and 5.7).
//
// Tracks the currently active sites and the preferred site / replica set of
// each container, replicated across sites with Paxos. Walter servers hold
// preferred-site leases derived from this state: a server may act as the
// preferred site for a container only while the current configuration assigns
// that container to it.
//
// Site-failure recovery (aggressive option of Section 5.7): a surviving site
// queries the survivors for how much of the failed site's transaction sequence
// they received, computes the surviving prefix, and proposes a RemoveSite
// command. When learned, each site discards the failed site's non-surviving
// transactions, treats the surviving prefix as durable, and redirects the
// failed site's containers to the replacement. ReintegrateSite undoes the
// redirection once the failed site is back and synchronized.
#ifndef SRC_CONFIG_CONFIG_SERVICE_H_
#define SRC_CONFIG_CONFIG_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/config/paxos.h"
#include "src/core/container.h"
#include "src/core/server.h"

namespace walter {

struct ConfigCommand {
  enum class Kind : uint8_t {
    kUpsertContainer = 0,
    kRemoveSite = 1,
    kReintegrateSite = 2,
  };
  Kind kind = Kind::kUpsertContainer;
  ContainerInfo container;      // kUpsertContainer
  SiteId site = kNoSite;        // kRemoveSite / kReintegrateSite
  uint64_t survive_through = 0; // kRemoveSite: last surviving seqno of `site`
  SiteId new_preferred = kNoSite;  // kRemoveSite: replacement preferred site

  std::string Serialize() const;
  static ConfigCommand Deserialize(std::string_view bytes);
};

class ConfigService {
 public:
  // Gaining a lease (a container remapped here, or our own reintegration) is
  // honored only after this settle window, so a site that has not yet learned
  // the change cannot fast-commit the same container concurrently.
  static constexpr SimDuration kLeaseSettle = Seconds(2);

  // One instance per site. `server` (optional) is the co-located Walter
  // server; learned RemoveSite commands are applied to it, and its lease
  // checks are wired to this service.
  ConfigService(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                ContainerDirectory* directory, WalterServer* server);

  // Proposals (replicated; callback fires when the command is chosen).
  void ProposeUpsertContainer(ContainerInfo info, std::function<void(Status)> cb);
  void ProposeRemoveSite(SiteId failed, uint64_t survive_through, SiteId new_preferred,
                         std::function<void(Status)> cb);
  void ProposeReintegrateSite(SiteId site, std::function<void(Status)> cb);

  // Lease check: true if this site is currently the preferred site of the
  // container under the learned configuration, this site is active, and no
  // lease-settle blackout is pending.
  bool HoldsLease(ContainerId container) const;

  bool IsActive(SiteId s) const { return active_[s]; }
  uint64_t epoch() const { return epoch_; }
  // Last learned surviving prefix of a removed site (0 if never removed).
  uint64_t removed_through(SiteId s) const { return removed_through_[s]; }

  // Re-wires a replacement server object after Cluster::ReplaceServer: hooks
  // the lease checker and replays the learned configuration's server-side
  // effects (discards/truncation) that the fresh server missed.
  void AttachServer(WalterServer* server);

  // Observer called after every applied (learned) command, in log order.
  // Used by recovery orchestration and test harnesses.
  using ApplyObserver = std::function<void(const ConfigCommand&)>;
  void SetApplyObserver(ApplyObserver observer) { apply_observer_ = std::move(observer); }

  PaxosNode& paxos() { return *paxos_; }
  // Currently attached server (may be null, or crashed).
  WalterServer* server() const { return server_; }

 private:
  void Apply(const ConfigCommand& cmd);

  Simulator* sim_;
  SiteId site_;
  size_t num_sites_;
  ContainerDirectory* directory_;
  WalterServer* server_;
  std::unique_ptr<PaxosNode> paxos_;
  std::vector<bool> active_;
  std::vector<uint64_t> removed_through_;
  uint64_t epoch_ = 0;  // bumped by every membership change
  SimTime lease_blackout_until_ = 0;
  ApplyObserver apply_observer_;
};

// Coordinates the aggressive removal of a failed site (Section 5.7): queries
// survivors for the failed site's received prefix, fills gaps between
// survivors, then proposes RemoveSite through the given ConfigService.
class SiteRecoveryCoordinator {
 public:
  SiteRecoveryCoordinator(Simulator* sim, std::vector<WalterServer*> servers,
                          ConfigService* config)
      : sim_(sim), servers_(std::move(servers)), config_(config) {}

  // Removes `failed`, reassigning its containers to `new_preferred`.
  void RemoveFailedSite(SiteId failed, SiteId new_preferred, std::function<void(Status)> cb);

 private:
  Simulator* sim_;
  std::vector<WalterServer*> servers_;  // survivors (the failed one may be null)
  ConfigService* config_;
};

}  // namespace walter

#endif  // SRC_CONFIG_CONFIG_SERVICE_H_
