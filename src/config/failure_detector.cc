#include "src/config/failure_detector.h"

#include <algorithm>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/core/server.h"

namespace walter {

namespace {

// Heartbeat payload: sender id, heartbeat seqno, config-log applied prefix,
// sender's own committed seqno (load proxy), suspicion bitmap, got-vector.
struct Heartbeat {
  SiteId from = kNoSite;
  uint64_t seqno = 0;
  uint64_t paxos_applied = 0;
  uint64_t committed_seqno = 0;
  uint64_t suspects_mask = 0;
  VectorTimestamp got;

  std::string Serialize() const {
    ByteWriter w;
    w.PutU32(from);
    w.PutU64(seqno);
    w.PutU64(paxos_applied);
    w.PutU64(committed_seqno);
    w.PutU64(suspects_mask);
    w.PutVts(got);
    return w.Take();
  }
  static Heartbeat Deserialize(std::string_view bytes) {
    ByteReader r(bytes);
    Heartbeat hb;
    hb.from = r.GetU32();
    hb.seqno = r.GetU64();
    hb.paxos_applied = r.GetU64();
    hb.committed_seqno = r.GetU64();
    hb.suspects_mask = r.GetU64();
    hb.got = r.GetVts();
    return hb;
  }
};

// Cap on chosen slots shipped per catch-up message; a lagging node converges
// over successive heartbeats.
constexpr uint64_t kMaxCatchupSlots = 64;

}  // namespace

FailureDetector::FailureDetector(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                                 ConfigService* config)
    : FailureDetector(sim, net, site, num_sites, config, Options{}) {}

FailureDetector::FailureDetector(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                                 ConfigService* config, Options options)
    : sim_(sim),
      site_(site),
      num_sites_(num_sites),
      config_(config),
      options_(options),
      endpoint_(net, Address{site, kFdPort}),
      peers_(num_sites) {
  WCHECK(num_sites_ <= 64, "suspicion bitmap is a uint64");
  for (auto& p : peers_) {
    p.last_heard = sim_->Now();
  }
  endpoint_.Handle(kFdHeartbeat, [this](const Message& msg, RpcEndpoint::ReplyFn) {
    HandleHeartbeat(msg);
  });
  endpoint_.Handle(kFdPaxosCatchup, [this](const Message& msg, RpcEndpoint::ReplyFn) {
    HandleCatchup(msg);
  });
}

void FailureDetector::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Give everyone a full window of grace from startup.
  for (auto& p : peers_) {
    p.last_heard = sim_->Now();
  }
  Tick();
}

bool FailureDetector::ServerHealthy() const {
  WalterServer* sv = config_->server();
  return sv != nullptr && !sv->crashed();
}

void FailureDetector::Tick() {
  // A detector whose co-located server is crashed goes silent: the site is
  // effectively down and must be suspected by the others; it also must not
  // orchestrate recoveries based on its stale view.
  if (ServerHealthy()) {
    SendHeartbeats();
    UpdateSuspicions();
    MaybeRecover();
    MaybeReintegrate();
  }
  sim_->After(options_.heartbeat_interval, [this]() { Tick(); });
}

void FailureDetector::SendHeartbeats() {
  WalterServer* sv = config_->server();
  Heartbeat hb;
  hb.from = site_;
  hb.seqno = ++hb_seqno_;
  hb.paxos_applied = config_->paxos().applied_through();
  hb.committed_seqno = sv->committed_vts().at(site_);
  hb.got = sv->got_vts();
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s != site_ && peers_[s].suspect) {
      hb.suspects_mask |= uint64_t{1} << s;
    }
  }
  std::string payload = hb.Serialize();
  // Removed sites are heartbeated too: they need our heartbeats (and catch-up
  // slots) to learn their removal, and we need theirs to reintegrate them.
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s != site_) {
      endpoint_.Send(Address{s, kFdPort}, kFdHeartbeat, payload);
    }
  }
}

void FailureDetector::HandleHeartbeat(const Message& msg) {
  Heartbeat hb = Heartbeat::Deserialize(msg.payload);
  if (hb.from >= num_sites_ || hb.from == site_) {
    return;
  }
  PeerState& peer = peers_[hb.from];
  // Loss estimate from seqno gaps over a rolling window.
  if (peer.last_seqno != 0 && hb.seqno > peer.last_seqno) {
    peer.window_expected += hb.seqno - peer.last_seqno;
    peer.window_received += 1;
    if (peer.window_expected >= 20) {
      peer.loss_est =
          1.0 - static_cast<double>(peer.window_received) / static_cast<double>(peer.window_expected);
      peer.window_expected = 0;
      peer.window_received = 0;
    }
  }
  peer.last_seqno = std::max(peer.last_seqno, hb.seqno);
  peer.last_heard = sim_->Now();
  peer.paxos_applied = hb.paxos_applied;
  peer.committed_seqno = hb.committed_seqno;
  peer.got = hb.got;
  peer.suspects_mask = hb.suspects_mask;
  peer.suspect = false;  // hearing from a peer clears the local suspicion

  // Paxos catch-up: if the sender's applied prefix trails ours, ship it the
  // chosen slots it is missing so a removed/lagging site can learn the
  // configuration commands (including its own removal) without a proposer.
  PaxosNode& paxos = config_->paxos();
  if (hb.paxos_applied < paxos.applied_through()) {
    ByteWriter w;
    w.PutU32(site_);
    uint64_t first = hb.paxos_applied + 1;
    uint64_t last = std::min(paxos.applied_through(), first + kMaxCatchupSlots - 1);
    uint32_t count = 0;
    ByteWriter slots;
    for (uint64_t slot = first; slot <= last; ++slot) {
      if (!paxos.IsChosen(slot)) {
        break;  // contiguous prefix only: the learner applies in order
      }
      slots.PutU64(slot);
      slots.PutString(paxos.ChosenValue(slot));
      ++count;
    }
    if (count > 0) {
      w.PutU32(count);
      w.PutString(slots.Take());
      endpoint_.Send(Address{hb.from, kFdPort}, kFdPaxosCatchup, w.Take());
    }
  }
}

void FailureDetector::HandleCatchup(const Message& msg) {
  ByteReader r(msg.payload);
  (void)r.GetU32();  // sender
  uint32_t count = r.GetU32();
  std::string blob = r.GetString();
  ByteReader sr(blob);
  PaxosNode& paxos = config_->paxos();
  for (uint32_t i = 0; i < count && !sr.failed(); ++i) {
    uint64_t slot = sr.GetU64();
    std::string value = sr.GetString();
    if (!paxos.IsChosen(slot)) {
      paxos.LearnChosen(slot, value);
    }
  }
}

SimDuration FailureDetector::DeadlineFor(const PeerState& peer) const {
  double factor = std::min(options_.max_extension, 1.0 + options_.loss_extension * peer.loss_est);
  return static_cast<SimDuration>(static_cast<double>(options_.suspicion_window) * factor);
}

void FailureDetector::UpdateSuspicions() {
  SimTime now = sim_->Now();
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == site_ || !config_->IsActive(s)) {
      continue;  // removed sites are tracked for reintegration, not suspicion
    }
    PeerState& peer = peers_[s];
    if (!peer.suspect && now - peer.last_heard > DeadlineFor(peer)) {
      peer.suspect = true;
    }
  }
}

bool FailureDetector::IsLeader() const {
  if (!config_->IsActive(site_)) {
    return false;
  }
  for (SiteId s = 0; s < site_; ++s) {
    if (config_->IsActive(s) && !peers_[s].suspect) {
      return false;
    }
  }
  return true;
}

bool FailureDetector::QuorumSuspects(SiteId target) const {
  size_t active = 0;
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (config_->IsActive(s)) {
      ++active;
    }
  }
  size_t majority = active / 2 + 1;
  SimTime now = sim_->Now();
  size_t accusers = peers_[target].suspect ? 1 : 0;  // self
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == site_ || s == target || !config_->IsActive(s) || peers_[s].suspect) {
      continue;
    }
    // Count a live peer's accusation only if its bitmap is fresh.
    if (now - peers_[s].last_heard <= 2 * options_.heartbeat_interval + Millis(100) &&
        (peers_[s].suspects_mask & (uint64_t{1} << target)) != 0) {
      ++accusers;
    }
  }
  return accusers >= majority;
}

SiteId FailureDetector::PickNewPreferred(SiteId failed) const {
  // Least-loaded survivor: fewest transactions committed at its own site
  // (its own committed seqno), ties to the lowest id. Self uses live state.
  SiteId best = site_;
  uint64_t best_load = config_->server()->committed_vts().at(site_);
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == site_ || s == failed || !config_->IsActive(s) || peers_[s].suspect) {
      continue;
    }
    if (peers_[s].committed_seqno < best_load) {
      best_load = peers_[s].committed_seqno;
      best = s;
    }
  }
  return best;
}

void FailureDetector::MaybeRecover() {
  if (!IsLeader() || recovery_in_flight_ || !recovery_) {
    return;
  }
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == site_ || !config_->IsActive(s) || !peers_[s].suspect || !QuorumSuspects(s)) {
      continue;
    }
    recovery_in_flight_ = true;
    ++recoveries_started_;
    WLOG(kInfo, "fd site " << site_ << ": quorum suspects site " << s << ", starting recovery");
    recovery_(s, PickNewPreferred(s), [this](Status) { recovery_in_flight_ = false; });
    return;  // one recovery at a time
  }
}

void FailureDetector::MaybeReintegrate() {
  if (!IsLeader() || reintegrate_in_flight_) {
    return;
  }
  SimTime now = sim_->Now();
  PaxosNode& paxos = config_->paxos();
  for (SiteId s = 0; s < num_sites_; ++s) {
    if (s == site_ || config_->IsActive(s)) {
      continue;
    }
    const PeerState& peer = peers_[s];
    // (a) The site is heartbeating again.
    if (peer.last_heard == 0 || now - peer.last_heard > options_.reintegrate_freshness) {
      continue;
    }
    // (b) It has applied the configuration log at least as far as we have —
    // in particular its own RemoveSite, so its non-surviving suffix is gone.
    if (peer.paxos_applied < paxos.applied_through()) {
      continue;
    }
    // (c) It has caught up on propagation: its got-vector covers everything
    // we have committed, so reads there are no staler than the failure left.
    if (!peer.got.Covers(config_->server()->committed_vts())) {
      continue;
    }
    reintegrate_in_flight_ = true;
    ++reintegrations_started_;
    WLOG(kInfo, "fd site " << site_ << ": reintegrating site " << s);
    config_->ProposeReintegrateSite(s, [this](Status) { reintegrate_in_flight_ = false; });
    return;
  }
}

}  // namespace walter
