// Failure detection and automatic recovery orchestration.
//
// The paper leaves the decision to give up on a failed preferred site to "the
// administrators or some automated system" (Section 5.7). This is that
// automated system: one FailureDetector runs at each site, heartbeating its
// peers over the simulated network. A peer whose heartbeats stop for longer
// than a suspicion window is suspected locally; suspicions are gossiped inside
// the heartbeats, and when a majority of the active sites agrees, the lowest-id
// surviving site (the detection leader) runs the aggressive recovery of
// Section 5.7 automatically: collect the failed site's surviving prefix from
// the survivors, fill gaps, and propose RemoveSite through Paxos, re-homing
// the failed site's containers at the least-loaded survivor.
//
// The suspicion deadline adapts to observed message loss: heartbeats carry
// sequence numbers, so each receiver can estimate the loss rate on the link
// and stretch its deadline before accusing a peer that is merely lossy.
//
// Reintegration is also automatic: the leader keeps heartbeating removed
// sites, ships them the chosen Paxos slots they missed (PaxosNode::
// LearnChosen), and proposes ReintegrateSite once the rejoiner has (a) fresh
// heartbeats, (b) applied the configuration log at least as far as the leader
// (so it has learned — and acted on — its own removal), and (c) caught up on
// propagated transaction state (its got-vector covers the leader's committed
// vector timestamp).
#ifndef SRC_CONFIG_FAILURE_DETECTOR_H_
#define SRC_CONFIG_FAILURE_DETECTOR_H_

#include <functional>
#include <vector>

#include "src/common/types.h"
#include "src/config/config_service.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace walter {

// Message types on kFdPort.
inline constexpr uint32_t kFdHeartbeat = 40;
inline constexpr uint32_t kFdPaxosCatchup = 41;

class FailureDetector {
 public:
  struct Options {
    SimDuration heartbeat_interval = Millis(500);
    // Base deadline without message loss: a peer silent for this long is
    // suspected.
    SimDuration suspicion_window = Seconds(3);
    // Deadline multiplier grows as 1 + loss_extension * observed_loss,
    // capped at max_extension (a 50%-lossy link gets a 2x deadline by
    // default, never more than 3x).
    double loss_extension = 2.0;
    double max_extension = 3.0;
    // How recent a removed site's heartbeat must be to count as "back".
    SimDuration reintegrate_freshness = Seconds(2);
  };

  // Invoked at the detection leader when a quorum of active sites agrees that
  // `failed` is down. The handler runs the recovery (typically
  // SiteRecoveryCoordinator::RemoveFailedSite over the current server
  // objects) and must eventually call done exactly once.
  using RecoveryHandler =
      std::function<void(SiteId failed, SiteId new_preferred, std::function<void(Status)> done)>;

  FailureDetector(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                  ConfigService* config);
  FailureDetector(Simulator* sim, Network* net, SiteId site, size_t num_sites,
                  ConfigService* config, Options options);

  void SetRecoveryHandler(RecoveryHandler handler) { recovery_ = std::move(handler); }

  // Starts the heartbeat/suspicion loop (idempotent).
  void Start();

  // Introspection (tests, EXPERIMENTS.md probes).
  bool IsSuspect(SiteId s) const { return peers_[s].suspect; }
  double ObservedLoss(SiteId s) const { return peers_[s].loss_est; }
  bool IsLeader() const;
  uint64_t recoveries_started() const { return recoveries_started_; }
  uint64_t reintegrations_started() const { return reintegrations_started_; }

 private:
  struct PeerState {
    SimTime last_heard = 0;
    uint64_t last_seqno = 0;          // highest heartbeat seqno received
    uint64_t window_expected = 0;     // loss-estimation window
    uint64_t window_received = 0;
    double loss_est = 0;
    uint64_t paxos_applied = 0;       // peer's applied config-log prefix
    uint64_t committed_seqno = 0;     // peer's own committed sequence number
    VectorTimestamp got;              // peer's got-vector (last reported)
    uint64_t suspects_mask = 0;       // peer's suspicion bitmap (last reported)
    bool suspect = false;
  };

  void Tick();
  void SendHeartbeats();
  void UpdateSuspicions();
  void MaybeRecover();
  void MaybeReintegrate();
  SimDuration DeadlineFor(const PeerState& peer) const;
  bool QuorumSuspects(SiteId s) const;
  SiteId PickNewPreferred(SiteId failed) const;
  bool ServerHealthy() const;
  void HandleHeartbeat(const Message& msg);
  void HandleCatchup(const Message& msg);

  Simulator* sim_;
  SiteId site_;
  size_t num_sites_;
  ConfigService* config_;
  Options options_;
  RecoveryHandler recovery_;
  RpcEndpoint endpoint_;
  std::vector<PeerState> peers_;  // indexed by site; peers_[site_] unused
  uint64_t hb_seqno_ = 0;
  bool started_ = false;
  bool recovery_in_flight_ = false;
  bool reintegrate_in_flight_ = false;
  uint64_t recoveries_started_ = 0;
  uint64_t reintegrations_started_ = 0;
};

}  // namespace walter

#endif  // SRC_CONFIG_FAILURE_DETECTOR_H_
