// Multi-decree Paxos for the configuration service's replicated log.
//
// The paper's configuration service "tolerates failures by running as a
// Paxos-based state machine replicated across multiple sites" (Section 5.1).
// One PaxosNode runs at each site; proposals are appended to a totally ordered
// log, and every node learns chosen values in slot order.
//
// This is textbook single-slot Paxos, one instance per log slot:
//  - A proposer picks the lowest slot it does not know to be chosen, runs
//    phase 1 (prepare/promise) with a node-unique ballot, adopts the
//    highest-ballot accepted value from the promise quorum (or its own value),
//    then runs phase 2 (accept/accepted).
//  - A value accepted by a majority is chosen; chosen values are broadcast so
//    all nodes learn them.
//  - Dueling proposers retry with higher ballots after randomized backoff.
//
// Safety (only one value chosen per slot, despite message loss and competing
// proposers) is exercised by property tests.
#ifndef SRC_CONFIG_PAXOS_H_
#define SRC_CONFIG_PAXOS_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace walter {

class PaxosNode {
 public:
  // Called for each chosen value, in slot order, exactly once per slot.
  using LearnCallback = std::function<void(uint64_t slot, const std::string& value)>;
  // Proposal outcome: the slot where the value was chosen (it is always this
  // proposer's value: the node re-proposes at later slots if it loses a slot).
  using ProposeCallback = std::function<void(Status, uint64_t slot)>;

  PaxosNode(Simulator* sim, Network* net, SiteId site, size_t num_nodes,
            uint32_t port = kConfigPort);

  // Appends `value` to the replicated log (retries across slots/ballots until
  // it is chosen or the node is stopped).
  void Propose(std::string value, ProposeCallback cb);

  void SetLearnCallback(LearnCallback cb) { learn_cb_ = std::move(cb); }

  // Number of contiguous chosen slots applied so far.
  uint64_t applied_through() const { return apply_index_; }
  bool IsChosen(uint64_t slot) const { return chosen_.contains(slot); }
  const std::string& ChosenValue(uint64_t slot) const { return chosen_.at(slot); }

  // Out-of-band catch-up: install a value another node learned as chosen (a
  // chosen value is final, so trusting the peer is safe). Used by the failure
  // detector to bring a lagging/rejoining node's log up to date without a
  // full Paxos round per slot.
  void LearnChosen(uint64_t slot, const std::string& value) { OnChosen(slot, value, false); }

  // Fault injection for tests.
  void SetDown(bool down) { endpoint_.SetDown(down); }

 private:
  struct AcceptorSlot {
    uint64_t promised = 0;
    uint64_t accepted_ballot = 0;
    std::string accepted_value;
  };
  struct Proposal {
    std::string value;
    ProposeCallback cb;
  };

  void StartNextProposal();
  void RunPhase1(uint64_t slot, uint64_t ballot);
  void RunPhase2(uint64_t slot, uint64_t ballot, std::string value);
  void OnChosen(uint64_t slot, const std::string& value, bool broadcast);
  void RetryAfterBackoff();
  uint64_t NextBallot();
  size_t Majority() const { return num_nodes_ / 2 + 1; }

  void HandlePrepare(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleAccept(const Message& msg, RpcEndpoint::ReplyFn reply);
  void HandleChosen(const Message& msg);

  Simulator* sim_;
  SiteId site_;
  size_t num_nodes_;
  RpcEndpoint endpoint_;

  std::map<uint64_t, AcceptorSlot> acceptor_;        // per-slot acceptor state
  std::map<uint64_t, std::string> chosen_;           // learned values
  uint64_t apply_index_ = 0;                         // slots delivered to learn_cb_
  LearnCallback learn_cb_;

  std::deque<Proposal> queue_;   // pending proposals, served one at a time
  bool proposing_ = false;
  uint64_t ballot_round_ = 0;
  uint64_t attempt_epoch_ = 0;   // invalidates stale quorum callbacks
};

}  // namespace walter

#endif  // SRC_CONFIG_PAXOS_H_
