#include "src/config/paxos.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace walter {

namespace {

enum PaxosMessageType : uint32_t {
  kPaxosPrepare = 100,
  kPaxosAccept = 101,
  kPaxosChosen = 102,
};

constexpr SimDuration kQuorumTimeout = Millis(600);
constexpr SimDuration kBackoffBase = Millis(50);

struct PrepareMsg {
  uint64_t slot;
  uint64_t ballot;
};
struct PromiseMsg {
  bool ok;
  uint64_t accepted_ballot;
  std::string accepted_value;
};
struct AcceptMsg {
  uint64_t slot;
  uint64_t ballot;
  std::string value;
};
struct ChosenMsg {
  uint64_t slot;
  std::string value;
};

std::string EncodePrepare(const PrepareMsg& m) {
  ByteWriter w;
  w.PutU64(m.slot);
  w.PutU64(m.ballot);
  return w.Take();
}
PrepareMsg DecodePrepare(std::string_view b) {
  ByteReader r(b);
  return PrepareMsg{r.GetU64(), r.GetU64()};
}

std::string EncodePromise(const PromiseMsg& m) {
  ByteWriter w;
  w.PutU8(m.ok ? 1 : 0);
  w.PutU64(m.accepted_ballot);
  w.PutString(m.accepted_value);
  return w.Take();
}
PromiseMsg DecodePromise(std::string_view b) {
  ByteReader r(b);
  PromiseMsg m;
  m.ok = r.GetU8() != 0;
  m.accepted_ballot = r.GetU64();
  m.accepted_value = r.GetString();
  return m;
}

std::string EncodeAccept(const AcceptMsg& m) {
  ByteWriter w;
  w.PutU64(m.slot);
  w.PutU64(m.ballot);
  w.PutString(m.value);
  return w.Take();
}
AcceptMsg DecodeAccept(std::string_view b) {
  ByteReader r(b);
  AcceptMsg m;
  m.slot = r.GetU64();
  m.ballot = r.GetU64();
  m.value = r.GetString();
  return m;
}

std::string EncodeChosen(const ChosenMsg& m) {
  ByteWriter w;
  w.PutU64(m.slot);
  w.PutString(m.value);
  return w.Take();
}
ChosenMsg DecodeChosen(std::string_view b) {
  ByteReader r(b);
  ChosenMsg m;
  m.slot = r.GetU64();
  m.value = r.GetString();
  return m;
}

}  // namespace

PaxosNode::PaxosNode(Simulator* sim, Network* net, SiteId site, size_t num_nodes, uint32_t port)
    : sim_(sim), site_(site), num_nodes_(num_nodes), endpoint_(net, Address{site, port}) {
  endpoint_.Handle(kPaxosPrepare, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandlePrepare(m, std::move(r));
  });
  endpoint_.Handle(kPaxosAccept, [this](const Message& m, RpcEndpoint::ReplyFn r) {
    HandleAccept(m, std::move(r));
  });
  endpoint_.Handle(kPaxosChosen,
                   [this](const Message& m, RpcEndpoint::ReplyFn) { HandleChosen(m); });
}

uint64_t PaxosNode::NextBallot() {
  ++ballot_round_;
  return ballot_round_ * num_nodes_ + site_ + 1;
}

void PaxosNode::Propose(std::string value, ProposeCallback cb) {
  queue_.push_back(Proposal{std::move(value), std::move(cb)});
  if (!proposing_) {
    StartNextProposal();
  }
}

void PaxosNode::StartNextProposal() {
  if (queue_.empty()) {
    proposing_ = false;
    return;
  }
  proposing_ = true;
  // Lowest slot not known chosen.
  uint64_t slot = apply_index_ + 1;
  while (chosen_.contains(slot)) {
    ++slot;
  }
  RunPhase1(slot, NextBallot());
}

void PaxosNode::RunPhase1(uint64_t slot, uint64_t ballot) {
  uint64_t epoch = ++attempt_epoch_;
  auto promises = std::make_shared<std::vector<PromiseMsg>>();
  auto failed = std::make_shared<bool>(false);
  auto responded = std::make_shared<size_t>(0);

  PrepareMsg prep{slot, ballot};
  for (SiteId n = 0; n < num_nodes_; ++n) {
    endpoint_.Call(
        Address{n, endpoint_.address().port}, kPaxosPrepare, EncodePrepare(prep),
        [this, epoch, slot, ballot, promises, failed, responded](Status status,
                                                                 const Message& m) {
          if (epoch != attempt_epoch_ || *failed) {
            return;
          }
          ++*responded;
          if (status.ok()) {
            PromiseMsg promise = DecodePromise(m.payload);
            if (promise.ok) {
              promises->push_back(std::move(promise));
            }
          }
          if (promises->size() >= Majority()) {
            *failed = true;  // stop counting; move to phase 2
            // Adopt the highest-ballot accepted value, if any.
            std::string value;
            uint64_t best = 0;
            for (const auto& p : *promises) {
              if (p.accepted_ballot > best) {
                best = p.accepted_ballot;
                value = p.accepted_value;
              }
            }
            if (best == 0) {
              value = queue_.front().value;
            }
            RunPhase2(slot, ballot, std::move(value));
          } else if (*responded == num_nodes_) {
            RetryAfterBackoff();
          }
        },
        kQuorumTimeout);
  }
}

void PaxosNode::RunPhase2(uint64_t slot, uint64_t ballot, std::string value) {
  uint64_t epoch = ++attempt_epoch_;
  auto accepts = std::make_shared<size_t>(0);
  auto responded = std::make_shared<size_t>(0);
  auto done = std::make_shared<bool>(false);

  AcceptMsg accept{slot, ballot, value};
  for (SiteId n = 0; n < num_nodes_; ++n) {
    endpoint_.Call(
        Address{n, endpoint_.address().port}, kPaxosAccept, EncodeAccept(accept),
        [this, epoch, slot, value, accepts, responded, done](Status status, const Message& m) {
          if (epoch != attempt_epoch_ || *done) {
            return;
          }
          ++*responded;
          if (status.ok()) {
            ByteReader r(m.payload);
            if (r.GetU8() != 0) {
              ++*accepts;
            }
          }
          if (*accepts >= Majority()) {
            *done = true;
            OnChosen(slot, value, /*broadcast=*/true);
            // If the chosen value was an adopted (older) value, our own
            // proposal is still pending: try again at the next slot.
            if (!queue_.empty() && value == queue_.front().value) {
              Proposal p = std::move(queue_.front());
              queue_.pop_front();
              if (p.cb) {
                p.cb(Status::Ok(), slot);
              }
            }
            StartNextProposal();
          } else if (*responded == num_nodes_) {
            RetryAfterBackoff();
          }
        },
        kQuorumTimeout);
  }
}

void PaxosNode::RetryAfterBackoff() {
  ++attempt_epoch_;  // invalidate stragglers
  SimDuration backoff = kBackoffBase + static_cast<SimDuration>(sim_->rng().Uniform(
                                           static_cast<uint64_t>(kBackoffBase) * 4));
  sim_->After(backoff, [this]() {
    if (proposing_) {
      StartNextProposal();
    }
  });
}

void PaxosNode::OnChosen(uint64_t slot, const std::string& value, bool broadcast) {
  auto [it, inserted] = chosen_.emplace(slot, value);
  if (inserted && broadcast) {
    ChosenMsg msg{slot, value};
    for (SiteId n = 0; n < num_nodes_; ++n) {
      if (n != site_) {
        endpoint_.Send(Address{n, endpoint_.address().port}, kPaxosChosen, EncodeChosen(msg));
      }
    }
  }
  WCHECK(it->second == value, "two values chosen for slot " << slot);
  // Deliver contiguous chosen slots in order.
  while (true) {
    auto next = chosen_.find(apply_index_ + 1);
    if (next == chosen_.end()) {
      break;
    }
    ++apply_index_;
    if (learn_cb_) {
      learn_cb_(apply_index_, next->second);
    }
  }
}

void PaxosNode::HandlePrepare(const Message& msg, RpcEndpoint::ReplyFn reply) {
  PrepareMsg prep = DecodePrepare(msg.payload);
  AcceptorSlot& slot = acceptor_[prep.slot];
  PromiseMsg promise;
  if (prep.ballot > slot.promised) {
    slot.promised = prep.ballot;
    promise.ok = true;
    promise.accepted_ballot = slot.accepted_ballot;
    promise.accepted_value = slot.accepted_value;
  } else {
    promise.ok = false;
  }
  Message m;
  m.payload = EncodePromise(promise);
  reply(std::move(m));
}

void PaxosNode::HandleAccept(const Message& msg, RpcEndpoint::ReplyFn reply) {
  AcceptMsg accept = DecodeAccept(msg.payload);
  AcceptorSlot& slot = acceptor_[accept.slot];
  ByteWriter w;
  if (accept.ballot >= slot.promised) {
    slot.promised = accept.ballot;
    slot.accepted_ballot = accept.ballot;
    slot.accepted_value = accept.value;
    w.PutU8(1);
  } else {
    w.PutU8(0);
  }
  Message m;
  m.payload = w.Take();
  reply(std::move(m));
}

void PaxosNode::HandleChosen(const Message& msg) {
  ChosenMsg chosen = DecodeChosen(msg.payload);
  OnChosen(chosen.slot, chosen.value, /*broadcast=*/false);
}

}  // namespace walter
