// Per-site counter/gauge registry.
//
// The servers, the network, and the bench harness each grew their own ad-hoc
// counters (Server::Stats, Network delivery/drop totals, LoadResult). This
// registry gives them one export surface: components dump their counters into
// a MetricsRegistry under stable dotted names, and benches render the whole
// registry into their --json output. The registry is a plain deterministic
// map behind a mutex: exports happen at bench/test boundaries (not on hot
// paths), and under the threaded runtime listeners on different executors may
// record concurrently.
//
// Naming convention: "<component>.<counter>" (e.g. "server.fast_commits",
// "net.msgs_dropped"). `site` is the owning site, or kNoSite for cluster-wide
// values; JSON keys render as "<name>.s<site>" and "<name>" respectively.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace walter {

struct MetricPoint {
  std::string name;
  SiteId site = kNoSite;
  double value = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Movable (bench cells move whole registries around); moves must not race
  // with concurrent writers — they happen at single-threaded bench boundaries.
  MetricsRegistry(MetricsRegistry&& other) noexcept {
    std::lock_guard<std::mutex> lk(other.mu_);
    values_ = std::move(other.values_);
  }
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lk(mu_, other.mu_);
      values_ = std::move(other.values_);
    }
    return *this;
  }

  void Set(const std::string& name, SiteId site, double value) {
    std::lock_guard<std::mutex> lk(mu_);
    values_[{name, site}] = value;
  }
  void Add(const std::string& name, SiteId site, double delta) {
    std::lock_guard<std::mutex> lk(mu_);
    values_[{name, site}] += delta;
  }

  double Get(const std::string& name, SiteId site = kNoSite) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = values_.find({name, site});
    return it == values_.end() ? 0 : it->second;
  }
  bool Has(const std::string& name, SiteId site = kNoSite) const {
    std::lock_guard<std::mutex> lk(mu_);
    return values_.count({name, site}) > 0;
  }

  // Sums a counter across all sites it was recorded for.
  double Total(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    double total = 0;
    for (auto it = values_.lower_bound({name, 0}); it != values_.end() && it->first.first == name;
         ++it) {
      total += it->second;
    }
    return total;
  }

  // Points in deterministic (name, site) order.
  std::vector<MetricPoint> Snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<MetricPoint> out;
    out.reserve(values_.size());
    for (const auto& [key, value] : values_) {
      out.push_back({key.first, key.second, value});
    }
    return out;
  }

  // The flat JSON key a point renders under in bench --json output.
  static std::string JsonKey(const MetricPoint& p) {
    return p.site == kNoSite ? p.name : p.name + ".s" + std::to_string(p.site);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return values_.size();
  }
  void Clear() {
    std::lock_guard<std::mutex> lk(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  // kNoSite (=0xffffffff) sorts after all real sites, so Total()'s
  // lower_bound({name, 0}) sweep covers per-site and cluster-wide entries.
  std::map<std::pair<std::string, SiteId>, double> values_;
};

}  // namespace walter

#endif  // SRC_OBS_METRICS_H_
