#include "src/obs/watchdog.h"

#include <cstdio>
#include <cstdlib>

namespace walter {

namespace {

bool CountsAsProgress(TraceKind kind) {
  switch (kind) {
    // A retransmission or a dropped late response means the protocol is
    // spinning, not advancing.
    case TraceKind::kClientRetry:
    case TraceKind::kClientDropLate:
      return false;
    // A read re-parking on a visibility watermark — or a commit re-parking on
    // a sibling-shard snapshot gap — is waiting, not advancing: counting it
    // would let a blocker that never clears re-stamp progress every re-park
    // and keep the stuck transaction invisible forever.
    case TraceKind::kWaitWatermark:
    case TraceKind::kCommitGapWait:
      return false;
    // An admission reject or an exhausted retry budget is shed load, not
    // forward motion; queue-depth marks are gauges. Counting any of them
    // would let a server that rejects everything look alive forever.
    case TraceKind::kAdmitReject:
    case TraceKind::kRetryBudgetExhausted:
    case TraceKind::kQueueDepth:
      return false;
    // Traced before the server's dedup check, so a retried commit whose ack
    // keeps getting lost re-records this kind forever. The client-issue edge
    // already stamps progress for genuinely new operations.
    case TraceKind::kServerRecv:
      return false;
    // Background replication trails the commit ack by design; counting it
    // would smear the verdict's anchor stage ("stuck at visible") when the
    // client-observable protocol stalled earlier (e.g. the ack was lost).
    case TraceKind::kPropagateSend:
    case TraceKind::kPropagateRecv:
    case TraceKind::kRemoteCommit:
    case TraceKind::kDsDurable:
    case TraceKind::kVisible:
      return false;
    default:
      return true;
  }
}

// Only a client-issue edge opens tracking. Server-side events alone never do:
// durability/visibility/remote-commit edges trail the client's completion
// (sometimes by seconds of virtual time), and re-admitting a finished
// transaction on those would make the watchdog cry wolf.
bool StartsTracking(TraceKind kind) {
  switch (kind) {
    case TraceKind::kClientOpRpc:
    case TraceKind::kClientCommitRpc:
    case TraceKind::kClientAbortRpc:
      return true;
    default:
      return false;
  }
}

}  // namespace

LivenessWatchdog::LivenessWatchdog(Simulator* sim, WatchdogOptions options)
    : sim_(sim), options_(options) {
#if WALTER_TRACE_MODE == 0
  std::fprintf(stderr,
               "LivenessWatchdog: WALTER_TRACE_MODE=0 compiles out all trace events; "
               "the watchdog cannot observe transactions and will stay silent.\n");
#endif
  Tracer::Get().SetListener(this);
  check_event_ = sim_->After(options_.check_interval, [this] { Check(); });
}

LivenessWatchdog::~LivenessWatchdog() {
  if (Tracer::Get().listener() == this) {
    Tracer::Get().SetListener(nullptr);
  }
  sim_->Cancel(check_event_);
}

void LivenessWatchdog::OnTrace(const TraceEvent& event) {
  if (event.tid == 0) {
    return;  // batch-level / network-level event not tied to one transaction
  }
  if (event.kind == TraceKind::kClientDone) {
    in_flight_.erase(event.tid);
    return;
  }
  auto it = in_flight_.find(event.tid);
  if (it == in_flight_.end()) {
    if (!StartsTracking(event.kind)) {
      return;
    }
    it = in_flight_.emplace(event.tid, TxState{}).first;
  }
  TxState& state = it->second;
  if (state.stage == TraceKind::kNone || CountsAsProgress(event.kind)) {
    state.stage = event.kind;
    state.site = event.site == 0xff ? kNoSite : event.site;
    state.last_progress = event.time;
  }
}

void LivenessWatchdog::Check() {
  SimTime now = sim_->Now();
  // Collect first: ReportStuck erases from in_flight_ and may run user code.
  std::vector<std::pair<TxId, TxState>> stuck;
  for (const auto& [tid, state] : in_flight_) {
    if (now - state.last_progress > options_.budget) {
      stuck.emplace_back(tid, state);
    }
  }
  for (const auto& [tid, state] : stuck) {
    ReportStuck(tid, state);
  }
  check_event_ = sim_->After(options_.check_interval, [this] { Check(); });
}

void LivenessWatchdog::ReportStuck(TxId tid, const TxState& state) {
  in_flight_.erase(tid);

  StuckReport report;
  report.tid = tid;
  report.stage = state.stage;
  report.site = state.site;
  report.last_progress = state.last_progress;
  report.detected = sim_->Now();

  char site_buf[32];
  if (state.site == kNoSite) {
    std::snprintf(site_buf, sizeof(site_buf), "client");
  } else {
    std::snprintf(site_buf, sizeof(site_buf), "site %u", state.site);
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "liveness watchdog: tx %llu stuck at stage %s on %s "
                "(no progress for %.3fs, budget %.3fs, detected at t=%.3fs)",
                static_cast<unsigned long long>(tid), TraceKindName(state.stage), site_buf,
                ToSeconds(report.detected - state.last_progress), ToSeconds(options_.budget),
                ToSeconds(report.detected));
  report.verdict = buf;
  report.trace_jsonl = Tracer::ToJsonl(Tracer::Get().Slice(tid));

  reports_.push_back(report);
  if (on_stuck_) {
    on_stuck_(reports_.back());
  }
  if (options_.abort_on_stuck) {
    std::fprintf(stderr, "%s\ncausal trace slice for tx %llu:\n%s", report.verdict.c_str(),
                 static_cast<unsigned long long>(tid), report.trace_jsonl.c_str());
    std::abort();
  }
}

}  // namespace walter
