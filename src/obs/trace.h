// Deterministic structured event tracing for the simulated cluster.
//
// Every commit-protocol edge (client issue -> RPC enqueue -> server dequeue ->
// lock acquire -> fast/slow decision -> propagation -> ack) records one
// fixed-size TraceEvent. The hot path never allocates: events go into a
// preallocated ring buffer, and recording is a couple of stores plus an index
// increment. Because the simulator is deterministic, the trace of a run is a
// reproducible artifact — the same seed always yields the same event sequence.
//
// Sink selection is compile-time via WALTER_TRACE_MODE:
//   0 (off)   WTRACE() compiles to nothing; zero events, zero cost.
//   1 (ring)  events go to the per-thread ring buffer (the default).
//   2 (jsonl) ring, plus every event is streamed as one JSON line to the file
//             named by $WALTER_TRACE_FILE (stderr when unset).
//
// The tracer is thread-local (like Payload::bytes_wrapped): each
// ParallelRunner cell sees a private tracer, so concurrent simulations never
// contend or interleave their traces.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/time.h"

#ifndef WALTER_TRACE_MODE
#define WALTER_TRACE_MODE 1
#endif

namespace walter {

// One event per commit-protocol edge. Values are stable across runs of the
// same seed; names are returned by TraceKindName().
enum class TraceKind : uint8_t {
  kNone = 0,
  // Client side (src/core/client.cc).
  kClientOpRpc,        // operation RPC issued; aux = ClientOpKind
  kClientCommitRpc,    // commit(-carrying) RPC issued
  kClientAbortRpc,     // abort RPC issued
  kClientRetry,        // RPC retransmission after a transport timeout; arg = attempt
  kClientGiveUp,       // retry budget exhausted, surfacing kUnavailable
  kClientDone,         // commit/abort callback delivered; arg = StatusCode
  kClientDropLate,     // late response dropped: the Tx handle was abandoned
  // Network (src/net/network.cc); tid is unknown here, so tid = 0.
  kNetEnqueue,         // message accepted for delivery; arg = rpc_id, aux = type
  kNetDrop,            // message dropped (filter/partition/loss/down); arg = rpc_id
  kNetRpcTimeout,      // an endpoint's pending call timed out; arg = rpc_id
  // Server side (src/core/server.cc).
  kServerRecv,         // client op entered the server (pre-CPU); aux = ClientOpKind
  kCommitStart,        // DoCommit entered
  kFastPath,           // fast-commit path chosen
  kSlowPath,           // slow-commit (2PC) path chosen; aux = remote participant count
  kLockAcquire,        // 2PC locks taken; arg = lock count
  kLockRelease,        // locks released
  kPrepareSend,        // 2PC prepare sent; aux = destination site
  kPrepareRecv,        // 2PC prepare handled at a participant
  kPrepareVote,        // participant vote; arg = 1 yes / 0 no
  kTxAbort,            // commit aborted (conflict or no-vote); arg = StatusCode, aux = AbortReason
  kCommitApply,        // commit applied to the store; arg = seqno
  kCommitLocal,        // group-commit flush done, CommittedVTS advanced; arg = seqno
  kCommitAck,          // commit response sent to the client; arg = seqno
  // Asynchronous propagation (tid = 0 for batches, real tid for per-tx edges).
  kPropagateSend,      // batch sent; arg = through-seqno, aux = destination
  kPropagateRecv,      // batch received; arg = got-through, aux = origin
  kRemoteCommit,       // remote transaction committed here; arg = seqno, aux = origin
  kDsDurable,          // transaction disaster-safe durable; arg = seqno
  kVisible,            // transaction globally visible; arg = seqno
  // Garbage collection / checkpointing (tid = 0; driven by the GC coordinator).
  kGcRun,              // histories folded at a frontier; arg = entries folded
  kGcStall,            // frontier could not advance; arg = StallReason
  kGcStaleRead,        // snapshot read below the GC frontier rejected
  kGcCheckpoint,       // retention-aware checkpoint; arg = WAL bytes truncated
  // Crash recovery (tid = 0; driven by Restore and the backfill protocol).
  kRecoveryStart,      // Restore entered; arg = durable WAL bytes
  kRecoveryReplay,     // WAL tail replayed; arg = records replayed
  kRecoveryCorrupt,    // corruption detected; arg = CorruptKind (aux = offset)
  kRecoveryBackfill,   // own record re-installed from a peer; arg = seqno, aux = peer
  kRecoveryDone,       // Restore finished; arg = restored own seqno
  kDiskStall,          // injected disk stall burst; arg = slowdown factor
  // Early lock release / visibility watermarks (ClusterOptions::early_lock_release).
  kLockWait,           // prepare/fast-commit parked on a held lock; arg = holder tid
  kLockWound,          // wound-wait victim aborted; tid = victim, arg = winner tid
  kWaitWatermark,      // read parked on a visibility watermark; arg = seqno, aux = origin
  kWatermarkSet,       // watermark installed at early release; arg = seqno, aux = origin
  kWatermarkClear,     // watermarks cleared by visibility; arg = through-seqno, aux = origin
  kDecisionSend,       // coordinator sent commit decisions; arg = seqno, aux = dest count
  kDecisionRecv,       // participant received a commit decision; arg = seqno, aux = origin
  kReadStarved,        // parked read exhausted read_park_budget; arg = attempts
  kCommitGapWait,      // commit parked on a sibling-shard snapshot gap; arg = attempt
  // Overload defenses (admission control + client retry budgets).
  kCommitStarved,        // gap-parked commit exhausted read_park_budget; arg = attempts
  kAdmitReject,          // server shed the request at admission; arg = retry_after_us
  kRetryBudgetExhausted,  // client token bucket empty, surfacing kUnavailable
  kQueueDepth,           // per-shard queue depth high-water mark; arg = depth
  // Clock-ordered commit + per-transaction consistency modes.
  kClockHold,      // participant held a clocked prepare; arg = hold µs, aux = coordinator
  kClockVote,      // held prepare released by the local clock; arg = commit_ts, aux = coordinator
  kClockFallback,  // commit_ts already in the past: classic vote; arg = lateness µs
  kSerValidate,    // serializable read-set validation started; arg = read-set size
  kNmsiRead,       // NMSI read served instead of parking; arg = park attempt
};

// arg of kRecoveryCorrupt.
enum class CorruptKind : uint8_t {
  kTornWalTail = 0,       // replay stopped before the end of the durable image
  kCheckpointBad = 1,     // checkpoint wrapper CRC/magic mismatch
  kOwnRecordsLost = 2,    // a peer holds own records the durable log lost
  kLogGap = 3,            // tail records past a recovery gap dropped (aux = count)
};

const char* TraceKindName(TraceKind kind);

// Fixed-size record; 32 bytes. `arg`/`aux` meaning depends on kind (above).
struct TraceEvent {
  SimTime time = 0;
  TxId tid = 0;
  uint64_t arg = 0;
  uint32_t aux = 0;
  TraceKind kind = TraceKind::kNone;
  uint8_t site = 0xff;  // SiteId truncated; 0xff = no site

  // One JSON object per event, schema documented in DESIGN.md §7.
  std::string ToJson() const;
};

// Receives every recorded event (the liveness watchdog implements this).
class TraceListener {
 public:
  virtual ~TraceListener() = default;
  virtual void OnTrace(const TraceEvent& event) = 0;
};

class Tracer {
 public:
  // 8192 events × 32 B = 256 KB: big enough to hold the recent causal history
  // of any stuck transaction, small enough that cycling through the ring stays
  // cache-resident instead of streaming misses on the hot path.
  static constexpr size_t kDefaultCapacity = 1 << 13;

  // The per-thread tracer instance every WTRACE call records into. Inline so
  // the hot path (TLS load + enabled check + ring store) never leaves the
  // calling translation unit.
  static Tracer& Get() {
    static thread_local Tracer tracer;
    return tracer;
  }

#if WALTER_TRACE_MODE == 0
  void Record(SimTime, TraceKind, TxId, SiteId, uint64_t = 0, uint32_t = 0) {}
#else
  void Record(SimTime time, TraceKind kind, TxId tid, SiteId site, uint64_t arg = 0,
              uint32_t aux = 0) {
    if (!enabled_) {
      return;
    }
    TraceEvent& e = ring_[head_];
    e.time = time;
    e.tid = tid;
    e.arg = arg;
    e.aux = aux;
    e.kind = kind;
    e.site = site <= 0xfe ? static_cast<uint8_t>(site) : 0xff;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
#if WALTER_TRACE_MODE == 2
    StreamJsonl(e);
#endif
    if (listener_ != nullptr) {
      listener_->OnTrace(e);
    }
  }
#endif

  // Runtime switch (the compile-time off mode removes the call entirely; this
  // lets a single binary measure tracing overhead and lets tests silence it).
  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Events recorded since Clear(); events beyond capacity overwrote the oldest.
  uint64_t recorded() const { return recorded_; }
  size_t size() const { return recorded_ < ring_.size() ? static_cast<size_t>(recorded_) : ring_.size(); }
  size_t capacity() const { return ring_.size(); }

  void Clear();
  // Reallocates the ring (not for use mid-hot-path).
  void SetCapacity(size_t capacity);

  // Retained events, oldest first.
  std::vector<TraceEvent> Events() const;
  // The causal slice of one transaction: its retained events, oldest first.
  std::vector<TraceEvent> Slice(TxId tid) const;

  // At most one listener (the watchdog); nullptr detaches.
  void SetListener(TraceListener* listener) { listener_ = listener; }
  TraceListener* listener() const { return listener_; }

  // Renders events as JSONL (one JSON object per line).
  static std::string ToJsonl(const std::vector<TraceEvent>& events);

 private:
  Tracer() : ring_(WALTER_TRACE_MODE == 0 ? 1 : kDefaultCapacity) {}

#if WALTER_TRACE_MODE == 2
  static void StreamJsonl(const TraceEvent& event);
#endif

  std::vector<TraceEvent> ring_;
  size_t head_ = 0;
  uint64_t recorded_ = 0;
  bool enabled_ = true;
  TraceListener* listener_ = nullptr;
};

}  // namespace walter

#if WALTER_TRACE_MODE == 0
#define WTRACE(...) \
  do {              \
  } while (0)
#else
// WTRACE(sim_time, kind, tid, site[, arg[, aux]])
#define WTRACE(...) ::walter::Tracer::Get().Record(__VA_ARGS__)
#endif

#endif  // SRC_OBS_TRACE_H_
