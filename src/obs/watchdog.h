// Simulator-driven liveness watchdog.
//
// The watchdog listens to the tracer's event stream and tracks every in-flight
// transaction (first trace event with a transaction id -> tracked; kClientDone
// -> done). A periodic simulator event checks how long each in-flight
// transaction has gone without forward progress; one that exceeds the sim-time
// budget produces a precise verdict — "stuck at stage X on site Y" — plus the
// transaction's causal trace slice as JSONL, instead of an infinite hang.
//
// "Forward progress" means a new commit-protocol stage was reached. Client
// retransmissions (kClientRetry) and dropped late responses (kClientDropLate)
// deliberately do NOT count: a client retrying forever against a server that
// never answers is exactly the stuck shape the watchdog exists to catch.
//
// The watchdog is itself deterministic: it runs on simulator time, so the same
// seed always detects the same stuck transaction at the same virtual instant.
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/sim/time.h"

namespace walter {

struct WatchdogOptions {
  // A transaction making no forward progress for this long is stuck.
  SimDuration budget = Seconds(30);
  // How often the watchdog wakes up to scan in-flight transactions.
  SimDuration check_interval = Seconds(1);
  // When true (the default), a stuck transaction prints its verdict and trace
  // slice to stderr and aborts the process — turning a hang into a test
  // failure. Set false to receive reports via SetOnStuck instead.
  bool abort_on_stuck = true;
};

// Everything known about one stuck transaction at detection time.
struct StuckReport {
  TxId tid = 0;
  TraceKind stage = TraceKind::kNone;  // last forward-progress stage reached
  SiteId site = kNoSite;               // site of that stage (kNoSite = client/none)
  SimTime last_progress = 0;           // when that stage was reached
  SimTime detected = 0;                // when the watchdog fired
  std::string verdict;                 // one-line human-readable diagnosis
  std::string trace_jsonl;             // the transaction's causal trace slice
};

class LivenessWatchdog : public TraceListener {
 public:
  // Attaches to the calling thread's Tracer and starts the periodic check.
  explicit LivenessWatchdog(Simulator* sim, WatchdogOptions options = {});
  ~LivenessWatchdog() override;

  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  void OnTrace(const TraceEvent& event) override;

  // Called once per stuck transaction (after it is recorded in reports()).
  void SetOnStuck(std::function<void(const StuckReport&)> fn) { on_stuck_ = std::move(fn); }

  size_t in_flight() const { return in_flight_.size(); }
  bool fired() const { return !reports_.empty(); }
  const std::vector<StuckReport>& reports() const { return reports_; }

 private:
  struct TxState {
    TraceKind stage = TraceKind::kNone;
    SiteId site = kNoSite;
    SimTime last_progress = 0;
  };

  void Check();
  void ReportStuck(TxId tid, const TxState& state);

  Simulator* sim_;
  WatchdogOptions options_;
  EventId check_event_ = 0;
  std::unordered_map<TxId, TxState> in_flight_;
  std::vector<StuckReport> reports_;
  std::function<void(const StuckReport&)> on_stuck_;
};

}  // namespace walter

#endif  // SRC_OBS_WATCHDOG_H_
