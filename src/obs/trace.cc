#include "src/obs/trace.h"

#include <cstdio>
#include <cstdlib>

namespace walter {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kNone:
      return "none";
    case TraceKind::kClientOpRpc:
      return "client_op_rpc";
    case TraceKind::kClientCommitRpc:
      return "client_commit_rpc";
    case TraceKind::kClientAbortRpc:
      return "client_abort_rpc";
    case TraceKind::kClientRetry:
      return "client_retry";
    case TraceKind::kClientGiveUp:
      return "client_give_up";
    case TraceKind::kClientDone:
      return "client_done";
    case TraceKind::kClientDropLate:
      return "client_drop_late";
    case TraceKind::kNetEnqueue:
      return "net_enqueue";
    case TraceKind::kNetDrop:
      return "net_drop";
    case TraceKind::kNetRpcTimeout:
      return "net_rpc_timeout";
    case TraceKind::kServerRecv:
      return "server_recv";
    case TraceKind::kCommitStart:
      return "commit_start";
    case TraceKind::kFastPath:
      return "fast_path";
    case TraceKind::kSlowPath:
      return "slow_path";
    case TraceKind::kLockAcquire:
      return "lock_acquire";
    case TraceKind::kLockRelease:
      return "lock_release";
    case TraceKind::kPrepareSend:
      return "prepare_send";
    case TraceKind::kPrepareRecv:
      return "prepare_recv";
    case TraceKind::kPrepareVote:
      return "prepare_vote";
    case TraceKind::kTxAbort:
      return "tx_abort";
    case TraceKind::kCommitApply:
      return "commit_apply";
    case TraceKind::kCommitLocal:
      return "commit_local";
    case TraceKind::kCommitAck:
      return "commit_ack";
    case TraceKind::kPropagateSend:
      return "propagate_send";
    case TraceKind::kPropagateRecv:
      return "propagate_recv";
    case TraceKind::kRemoteCommit:
      return "remote_commit";
    case TraceKind::kDsDurable:
      return "ds_durable";
    case TraceKind::kVisible:
      return "visible";
    case TraceKind::kGcRun:
      return "gc_run";
    case TraceKind::kGcStall:
      return "gc_stall";
    case TraceKind::kGcStaleRead:
      return "gc_stale_read";
    case TraceKind::kGcCheckpoint:
      return "gc_checkpoint";
    case TraceKind::kRecoveryStart:
      return "recovery_start";
    case TraceKind::kRecoveryReplay:
      return "recovery_replay";
    case TraceKind::kRecoveryCorrupt:
      return "recovery_corrupt";
    case TraceKind::kRecoveryBackfill:
      return "recovery_backfill";
    case TraceKind::kRecoveryDone:
      return "recovery_done";
    case TraceKind::kDiskStall:
      return "disk_stall";
    case TraceKind::kLockWait:
      return "lock_wait";
    case TraceKind::kLockWound:
      return "lock_wound";
    case TraceKind::kWaitWatermark:
      return "wait_watermark";
    case TraceKind::kWatermarkSet:
      return "watermark_set";
    case TraceKind::kWatermarkClear:
      return "watermark_clear";
    case TraceKind::kDecisionSend:
      return "decision_send";
    case TraceKind::kDecisionRecv:
      return "decision_recv";
    case TraceKind::kReadStarved:
      return "read_starved";
    case TraceKind::kCommitGapWait:
      return "commit_gap_wait";
    case TraceKind::kCommitStarved:
      return "commit_starved";
    case TraceKind::kAdmitReject:
      return "admit_reject";
    case TraceKind::kRetryBudgetExhausted:
      return "retry_budget_exhausted";
    case TraceKind::kQueueDepth:
      return "queue_depth";
    case TraceKind::kClockHold:
      return "clock_hold";
    case TraceKind::kClockVote:
      return "clock_vote";
    case TraceKind::kClockFallback:
      return "clock_fallback";
    case TraceKind::kSerValidate:
      return "ser_validate";
    case TraceKind::kNmsiRead:
      return "nmsi_read";
  }
  return "unknown";
}

std::string TraceEvent::ToJson() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%lld,\"kind\":\"%s\",\"tid\":%llu,\"site\":%d,\"arg\":%llu,\"aux\":%u}",
                static_cast<long long>(time), TraceKindName(kind),
                static_cast<unsigned long long>(tid), site == 0xff ? -1 : static_cast<int>(site),
                static_cast<unsigned long long>(arg), aux);
  return buf;
}

void Tracer::Clear() {
  head_ = 0;
  recorded_ = 0;
  for (TraceEvent& e : ring_) {
    e = TraceEvent{};
  }
}

void Tracer::SetCapacity(size_t capacity) {
  ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
  head_ = 0;
  recorded_ = 0;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  size_t n = size();
  out.reserve(n);
  // Oldest retained event: head_ when the ring has wrapped, index 0 otherwise.
  size_t start = recorded_ >= ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Slice(TxId tid) const {
  std::vector<TraceEvent> out;
  size_t n = size();
  size_t start = recorded_ >= ring_.size() ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = ring_[(start + i) % ring_.size()];
    if (e.tid == tid) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Tracer::ToJsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& e : events) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

#if WALTER_TRACE_MODE == 2
void Tracer::StreamJsonl(const TraceEvent& event) {
  static FILE* sink = [] {
    const char* path = std::getenv("WALTER_TRACE_FILE");
    if (path != nullptr && *path != '\0') {
      FILE* f = std::fopen(path, "w");
      if (f != nullptr) {
        return f;
      }
      std::fprintf(stderr, "WALTER_TRACE_FILE: cannot open %s, streaming to stderr\n", path);
    }
    return stderr;
  }();
  std::string line = event.ToJson();
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), sink);
}
#endif

}  // namespace walter
