#include "src/apps/retwis/retwis.h"

#include <algorithm>
#include <utility>

namespace walter {

// --- Walter backend ----------------------------------------------------------

void RetwisOnWalter::Post(UserId user, std::string text, DoneCallback done) {
  // One transaction: read the follower cset, write the message under a fresh
  // post id, and add the id to the author's and every follower's timeline.
  auto tx = std::make_shared<Tx>(client_);
  tx->SetRead(FollowersOid(user), [this, tx, user, text = std::move(text),
                                   done = std::move(done)](walter::Status s,
                                                           CountingSet followers) mutable {
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    ObjectId post = client_->NewId(UserContainer(user));
    tx->Write(post, std::move(text));
    tx->SetAdd(TimelineOid(user), post);
    for (const ObjectId& follower_profile : followers.PresentElements()) {
      // Follower csets store the follower's user id in the `local` field.
      tx->SetAdd(TimelineOid(follower_profile.local), post);
    }
    tx->Commit([tx, done = std::move(done)](walter::Status s) { done(std::move(s)); });
  });
}

void RetwisOnWalter::Follow(UserId follower, UserId followee, DoneCallback done) {
  auto tx = std::make_shared<Tx>(client_);
  tx->SetAdd(FollowersOid(followee), ObjectId{0, follower});
  tx->SetAdd(FollowingOid(follower), ObjectId{0, followee});
  tx->Commit([tx, done = std::move(done)](walter::Status s) { done(std::move(s)); });
}

void RetwisOnWalter::Status(UserId user, TimelineCallback done) {
  // Read the timeline cset, pick the 10 most recent post ids (ids are minted
  // monotonically per client, so larger local id ~ more recent), and fetch
  // their bodies in one multi-object RPC (Section 6's batched reads).
  auto tx = std::make_shared<Tx>(client_);
  tx->SetRead(TimelineOid(user), [tx, done = std::move(done)](walter::Status s,
                                                              CountingSet timeline) mutable {
    if (!s.ok()) {
      done(std::move(s), {});
      return;
    }
    std::vector<ObjectId> posts = timeline.PresentElements();
    std::sort(posts.begin(), posts.end(),
              [](const ObjectId& a, const ObjectId& b) { return a.local > b.local; });
    if (posts.size() > 10) {
      posts.resize(10);
    }
    if (posts.empty()) {
      done(walter::Status::Ok(), {});
      return;
    }
    tx->MultiRead(posts, [tx, done = std::move(done)](
                             walter::Status s, std::vector<std::optional<std::string>> values) {
      if (!s.ok()) {
        done(std::move(s), {});
        return;
      }
      std::vector<std::string> out;
      for (auto& v : values) {
        if (v) {
          out.push_back(std::move(*v));
        }
      }
      done(walter::Status::Ok(), std::move(out));
    });
  });
}

// --- Redis backend -----------------------------------------------------------

namespace {
std::string PostKey(int64_t id) { return "post:" + std::to_string(id); }
std::string TimelineKey(RetwisBackend::UserId u) { return "timeline:" + std::to_string(u); }
std::string FollowersKey(RetwisBackend::UserId u) { return "followers:" + std::to_string(u); }
std::string FollowingKey(RetwisBackend::UserId u) { return "following:" + std::to_string(u); }
}  // namespace

void RetwisOnRedis::Post(UserId user, std::string text, DoneCallback done) {
  // Original ReTwis flow: INCR the global post counter, SET the post body,
  // then LPUSH the id onto the author's and each follower's timeline.
  client_->Incr("next_post_id", [this, user, text = std::move(text),
                                 done = std::move(done)](walter::Status s, int64_t id) mutable {
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    client_->Set(PostKey(id), std::move(text), [this, user, id, done = std::move(done)](
                                                   walter::Status s) mutable {
      if (!s.ok()) {
        done(std::move(s));
        return;
      }
      client_->SMembers(
          FollowersKey(user),
          [this, user, id, done = std::move(done)](walter::Status s,
                                                   std::vector<std::string> followers) mutable {
            if (!s.ok()) {
              done(std::move(s));
              return;
            }
            auto remaining = std::make_shared<size_t>(followers.size() + 1);
            auto finish = std::make_shared<DoneCallback>(std::move(done));
            auto on_push = [remaining, finish](walter::Status s) {
              if (--*remaining == 0) {
                (*finish)(walter::Status::Ok());
              }
            };
            client_->LPush(TimelineKey(user), std::to_string(id), on_push);
            for (const auto& follower : followers) {
              client_->LPush("timeline:" + follower, std::to_string(id), on_push);
            }
          });
    });
  });
}

void RetwisOnRedis::Follow(UserId follower, UserId followee, DoneCallback done) {
  client_->SAdd(FollowersKey(followee), std::to_string(follower),
                [this, follower, followee, done = std::move(done)](walter::Status s) mutable {
                  if (!s.ok()) {
                    done(std::move(s));
                    return;
                  }
                  client_->SAdd(FollowingKey(follower), std::to_string(followee),
                                [done = std::move(done)](walter::Status s) { done(std::move(s)); });
                });
}

void RetwisOnRedis::Status(UserId user, TimelineCallback done) {
  client_->LRange(TimelineKey(user), 10, [this, done = std::move(done)](
                                             walter::Status s, std::vector<std::string> ids) mutable {
    if (!s.ok()) {
      done(std::move(s), {});
      return;
    }
    if (ids.empty()) {
      done(walter::Status::Ok(), {});
      return;
    }
    // One MGET for all post bodies (the original ReTwis pipelines this too).
    std::vector<std::string> keys;
    keys.reserve(ids.size());
    for (const auto& id : ids) {
      keys.push_back("post:" + id);
    }
    client_->MGet(std::move(keys),
                  [done = std::move(done)](walter::Status s,
                                           std::vector<std::string> values) mutable {
                    if (!s.ok()) {
                      done(std::move(s), {});
                      return;
                    }
                    std::vector<std::string> out;
                    for (auto& v : values) {
                      if (!v.empty()) {
                        out.push_back(std::move(v));
                      }
                    }
                    done(walter::Status::Ok(), std::move(out));
                  });
  });
}

}  // namespace walter
