// ReTwis: the Twitter clone of Section 7, ported from Redis to Walter.
//
// The original ReTwis stores each user's timeline in a Redis list, generates
// post ids with an atomic INCR, and appends the post id to every follower's
// timeline. The Walter port (Section 7) replaces the Redis list with a cset so
// different sites can add posts to a timeline without conflicts, and uses a
// transaction to write the message and fan it out atomically.
//
// RetwisBackend abstracts the storage layer so the same application code runs
// on Walter or on the Redis-like baseline — exactly the comparison of
// Section 8.7 / Figure 23.
#ifndef SRC_APPS_RETWIS_RETWIS_H_
#define SRC_APPS_RETWIS_RETWIS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/redis_store.h"
#include "src/core/client.h"

namespace walter {

class RetwisBackend {
 public:
  using UserId = uint64_t;
  using DoneCallback = std::function<void(Status)>;
  using TimelineCallback = std::function<void(Status, std::vector<std::string>)>;

  virtual ~RetwisBackend() = default;

  // Posts a message: stores it under a fresh post id and pushes the id onto
  // the timeline of the author and every follower.
  virtual void Post(UserId user, std::string text, DoneCallback done) = 0;

  // follower starts following followee.
  virtual void Follow(UserId follower, UserId followee, DoneCallback done) = 0;

  // The 10 most recent messages of the user's timeline.
  virtual void Status(UserId user, TimelineCallback done) = 0;
};

// Walter backend: timelines and follower lists are csets; posts are regular
// objects in the author's container.
class RetwisOnWalter : public RetwisBackend {
 public:
  explicit RetwisOnWalter(WalterClient* client) : client_(client) {}

  static ContainerId UserContainer(UserId user) { return user; }
  static ObjectId TimelineOid(UserId user) { return {UserContainer(user), 10}; }
  static ObjectId FollowersOid(UserId user) { return {UserContainer(user), 11}; }
  static ObjectId FollowingOid(UserId user) { return {UserContainer(user), 12}; }

  void Post(UserId user, std::string text, DoneCallback done) override;
  void Follow(UserId follower, UserId followee, DoneCallback done) override;
  void Status(UserId user, TimelineCallback done) override;

 private:
  WalterClient* client_;
};

// Redis backend: the original ReTwis data layout (lists, sets, INCR counter).
class RetwisOnRedis : public RetwisBackend {
 public:
  explicit RetwisOnRedis(RedisClient* client) : client_(client) {}

  void Post(UserId user, std::string text, DoneCallback done) override;
  void Follow(UserId follower, UserId followee, DoneCallback done) override;
  void Status(UserId user, TimelineCallback done) override;

 private:
  RedisClient* client_;
};

}  // namespace walter

#endif  // SRC_APPS_RETWIS_RETWIS_H_
