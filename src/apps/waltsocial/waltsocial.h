// WaltSocial: the Facebook-like social networking application of Section 7.
//
// Data model (one container per user; the user's home site is its preferred
// site, so her actions fast-commit):
//   profile       regular object with personal information
//   friend-list   cset of friends' profile oids
//   message-list  cset of received message oids (the user's wall)
//   event-list    cset of oids in the user's activity history
//   album-list    cset of album oids; each album is itself a cset of photo oids
//
// Operations follow Section 7 and the transaction footprints of Figure 21:
//   read-info      reads 3 objects/csets, writes nothing
//   befriend       reads 2 profiles, adds to 2 csets (Figure 15's transaction)
//   status-update  reads 1, writes 2 objects, adds to 2 csets
//   post-message   reads 2, writes 2 objects, adds to 2 csets
//
// All csets: concurrent befriends/posts from different sites never conflict.
#ifndef SRC_APPS_WALTSOCIAL_WALTSOCIAL_H_
#define SRC_APPS_WALTSOCIAL_WALTSOCIAL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/client.h"

namespace walter {

using UserId = uint64_t;

class WaltSocial {
 public:
  explicit WaltSocial(WalterClient* client) : client_(client) {}

  // Object layout -------------------------------------------------------------
  // A user's container id is her user id; with the default directory layout the
  // preferred site is user % num_sites, i.e. users are homed round-robin.
  static ContainerId UserContainer(UserId user) { return user; }
  static ObjectId ProfileOid(UserId user) { return {UserContainer(user), 1}; }
  static ObjectId FriendListOid(UserId user) { return {UserContainer(user), 2}; }
  static ObjectId MessageListOid(UserId user) { return {UserContainer(user), 3}; }
  static ObjectId EventListOid(UserId user) { return {UserContainer(user), 4}; }
  static ObjectId AlbumListOid(UserId user) { return {UserContainer(user), 5}; }

  using DoneCallback = std::function<void(Status)>;

  // Creates the user's profile object.
  void CreateUser(UserId user, std::string profile, DoneCallback done);

  // Figure 15: symmetric friend-list update in one transaction.
  void Befriend(UserId a, UserId b, DoneCallback done);
  void Unfriend(UserId a, UserId b, DoneCallback done);

  // Posts a status update: new status object + profile refresh + wall/event
  // cset additions.
  void StatusUpdate(UserId user, std::string text, DoneCallback done);

  // Posts a message from one user to another's wall.
  void PostMessage(UserId from, UserId to, std::string text, DoneCallback done);

  struct UserInfo {
    std::optional<std::string> profile;
    CountingSet friends;
    CountingSet messages;
  };
  using InfoCallback = std::function<void(Status, UserInfo)>;

  // Reads a user's profile, friend list and wall in one snapshot.
  void ReadInfo(UserId user, InfoCallback done);

  // Album operations (Section 7's album-list of csets of photo oids).
  using OidCallback = std::function<void(Status, ObjectId)>;
  void AddAlbum(UserId user, std::string album_name, OidCallback done);
  void AddPhoto(UserId user, ObjectId album, std::string photo_bytes, OidCallback done);
  using AlbumCallback = std::function<void(Status, std::vector<ObjectId>)>;
  void ListAlbumPhotos(UserId user, ObjectId album, AlbumCallback done);

 private:
  WalterClient* client_;
};

}  // namespace walter

#endif  // SRC_APPS_WALTSOCIAL_WALTSOCIAL_H_
