#include "src/apps/waltsocial/waltsocial.h"

#include <memory>
#include <utility>

namespace walter {

void WaltSocial::CreateUser(UserId user, std::string profile, DoneCallback done) {
  auto tx = std::make_shared<Tx>(client_);
  tx->Write(ProfileOid(user), std::move(profile));
  tx->Commit([tx, done = std::move(done)](Status s) { done(std::move(s)); });
}

void WaltSocial::Befriend(UserId a, UserId b, DoneCallback done) {
  // Figure 15: read both profiles, then add each profile oid to the other's
  // friend list — atomically, so there is never a one-sided friendship.
  auto tx = std::make_shared<Tx>(client_);
  tx->Read(ProfileOid(a), [this, tx, a, b, done = std::move(done)](
                              Status s, std::optional<std::string>) mutable {
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    tx->Read(ProfileOid(b), [tx, a, b, done = std::move(done)](
                                Status s, std::optional<std::string>) mutable {
      if (!s.ok()) {
        done(std::move(s));
        return;
      }
      tx->SetAdd(FriendListOid(a), ProfileOid(b));
      tx->SetAdd(FriendListOid(b), ProfileOid(a));
      tx->Commit([tx, done = std::move(done)](Status s) { done(std::move(s)); });
    });
  });
}

void WaltSocial::Unfriend(UserId a, UserId b, DoneCallback done) {
  auto tx = std::make_shared<Tx>(client_);
  tx->SetDel(FriendListOid(a), ProfileOid(b));
  tx->SetDel(FriendListOid(b), ProfileOid(a));
  tx->Commit([tx, done = std::move(done)](Status s) { done(std::move(s)); });
}

void WaltSocial::StatusUpdate(UserId user, std::string text, DoneCallback done) {
  // Reads 1 object, writes 2, updates 2 csets (Figure 21's footprint).
  auto tx = std::make_shared<Tx>(client_);
  tx->Read(ProfileOid(user), [this, tx, user, text = std::move(text),
                              done = std::move(done)](Status s,
                                                      std::optional<std::string> profile) mutable {
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    ObjectId status_oid = client_->NewId(UserContainer(user));
    tx->Write(status_oid, std::move(text));
    tx->Write(ProfileOid(user), profile.value_or(""));  // refresh (e.g. last-status)
    tx->SetAdd(MessageListOid(user), status_oid);       // appears on the user's wall
    tx->SetAdd(EventListOid(user), status_oid);         // and in her activity history
    tx->Commit([tx, done = std::move(done)](Status s) { done(std::move(s)); });
  });
}

void WaltSocial::PostMessage(UserId from, UserId to, std::string text, DoneCallback done) {
  // Reads both profiles, writes the message and a notification object, adds
  // the message to the recipient's wall and the sender's activity history.
  auto tx = std::make_shared<Tx>(client_);
  tx->Read(ProfileOid(from), [this, tx, from, to, text = std::move(text),
                              done = std::move(done)](Status s,
                                                      std::optional<std::string>) mutable {
    if (!s.ok()) {
      done(std::move(s));
      return;
    }
    tx->Read(ProfileOid(to), [this, tx, from, to, text = std::move(text),
                              done = std::move(done)](Status s,
                                                      std::optional<std::string>) mutable {
      if (!s.ok()) {
        done(std::move(s));
        return;
      }
      // Both written objects live in the SENDER's container so the transaction
      // fast-commits; only csets of the recipient are touched. This is how the
      // paper's applications avoid slow commit entirely (Section 6).
      ObjectId message_oid = client_->NewId(UserContainer(from));
      ObjectId notify_oid = client_->NewId(UserContainer(from));
      tx->Write(message_oid, std::move(text));
      tx->Write(notify_oid, "sent");
      tx->SetAdd(MessageListOid(to), message_oid);
      tx->SetAdd(EventListOid(from), message_oid);
      tx->Commit([tx, done = std::move(done)](Status s) { done(std::move(s)); });
    });
  });
}

void WaltSocial::ReadInfo(UserId user, InfoCallback done) {
  // One snapshot across profile, friend list and wall (3 reads, Figure 21).
  auto tx = std::make_shared<Tx>(client_);
  auto info = std::make_shared<UserInfo>();
  tx->Read(ProfileOid(user), [tx, info, user, done = std::move(done)](
                                 Status s, std::optional<std::string> profile) mutable {
    if (!s.ok()) {
      done(std::move(s), UserInfo{});
      return;
    }
    info->profile = std::move(profile);
    tx->SetRead(FriendListOid(user), [tx, info, user, done = std::move(done)](
                                         Status s, CountingSet friends) mutable {
      if (!s.ok()) {
        done(std::move(s), UserInfo{});
        return;
      }
      info->friends = std::move(friends);
      tx->SetRead(MessageListOid(user), [tx, info, done = std::move(done)](
                                            Status s, CountingSet messages) mutable {
        if (!s.ok()) {
          done(std::move(s), UserInfo{});
          return;
        }
        info->messages = std::move(messages);
        done(Status::Ok(), std::move(*info));
      });
    });
  });
}

void WaltSocial::AddAlbum(UserId user, std::string album_name, OidCallback done) {
  // Creates the album object, links it from the album list, and posts the
  // news to the user's wall — atomically, so nobody sees a wall post about an
  // album that does not exist (the Section 2 motivating example).
  auto tx = std::make_shared<Tx>(client_);
  ObjectId album_meta = client_->NewId(UserContainer(user));
  ObjectId album_cset = client_->NewId(UserContainer(user));
  tx->Write(album_meta, std::move(album_name));
  tx->SetAdd(AlbumListOid(user), album_cset);
  tx->SetAdd(MessageListOid(user), album_meta);  // wall post about the album
  tx->Commit([tx, album_cset, done = std::move(done)](Status s) {
    done(std::move(s), album_cset);
  });
}

void WaltSocial::AddPhoto(UserId user, ObjectId album, std::string photo_bytes,
                          OidCallback done) {
  auto tx = std::make_shared<Tx>(client_);
  ObjectId photo = client_->NewId(UserContainer(user));
  tx->Write(photo, std::move(photo_bytes));
  tx->SetAdd(album, photo);
  tx->SetAdd(EventListOid(user), photo);
  tx->Commit([tx, photo, done = std::move(done)](Status s) { done(std::move(s), photo); });
}

void WaltSocial::ListAlbumPhotos(UserId user, ObjectId album, AlbumCallback done) {
  auto tx = std::make_shared<Tx>(client_);
  tx->SetRead(album, [tx, done = std::move(done)](Status s, CountingSet photos) {
    if (!s.ok()) {
      done(std::move(s), {});
      return;
    }
    done(Status::Ok(), photos.PresentElements());
  });
}

}  // namespace walter
