#include "src/storage/object_history.h"

#include "src/common/logging.h"

namespace walter {

void ObjectHistory::Append(const Version& version, const ObjectUpdate& update) {
  VersionedUpdate vu;
  vu.version = version;
  vu.kind = update.kind;
  vu.data = update.data;
  vu.elem = update.elem;
  entries_.push_back(std::move(vu));
}

std::optional<std::string> ObjectHistory::ReadRegular(const VectorTimestamp& vts) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (vts.Sees(it->version)) {
      WCHECK(it->kind == UpdateKind::kData, "cset op in regular read");
      return it->data;
    }
  }
  if (has_base_ && !base_is_cset_) {
    return base_data_;
  }
  return std::nullopt;
}

std::optional<std::pair<std::string, Version>> ObjectHistory::ReadRegularVersioned(
    const VectorTimestamp& vts) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (vts.Sees(it->version)) {
      WCHECK(it->kind == UpdateKind::kData, "cset op in regular read");
      return std::make_pair(it->data, it->version);
    }
  }
  if (has_base_ && !base_is_cset_) {
    return std::make_pair(base_data_, base_version_);
  }
  return std::nullopt;
}

std::optional<std::pair<std::string, Version>> ObjectHistory::LatestLocalVisible(
    const VectorTimestamp& vts, SiteId self) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->version.site == self && vts.Sees(it->version)) {
      return std::make_pair(it->data, it->version);
    }
  }
  return std::nullopt;
}

CountingSet ObjectHistory::ReadCsetExcluding(const VectorTimestamp& vts, SiteId site,
                                             uint64_t min_seqno) const {
  CountingSet s;
  if (has_base_ && base_is_cset_) {
    WCHECK(vts.Sees(base_version_), "cset remote read below GC-folded base");
    s.MergeAdd(base_cset_);
  }
  for (const auto& e : entries_) {
    if (!vts.Sees(e.version) || e.kind == UpdateKind::kData) {
      continue;
    }
    if (min_seqno != 0 && e.version.site == site && e.version.seqno >= min_seqno) {
      continue;  // the caller holds this op locally
    }
    s.Add(e.elem, e.kind == UpdateKind::kAdd ? 1 : -1);
  }
  return s;
}

CountingSet ObjectHistory::FoldLocalCsetOps(const VectorTimestamp& vts, SiteId self) const {
  CountingSet s;
  for (const auto& e : entries_) {
    if (e.version.site != self || !vts.Sees(e.version) || e.kind == UpdateKind::kData) {
      continue;
    }
    s.Add(e.elem, e.kind == UpdateKind::kAdd ? 1 : -1);
  }
  return s;
}

uint64_t ObjectHistory::MinLocalSeqno(SiteId self) const {
  uint64_t min_seqno = 0;
  for (const auto& e : entries_) {
    if (e.version.site == self && (min_seqno == 0 || e.version.seqno < min_seqno)) {
      min_seqno = e.version.seqno;
    }
  }
  return min_seqno;
}

CountingSet ObjectHistory::ReadCset(const VectorTimestamp& vts) const {
  CountingSet s;
  if (has_base_ && base_is_cset_) {
    // Fail-stop on a snapshot below the folded base: the base already merged
    // ops the snapshot cannot see, so any answer here would be wrong. The
    // snapshot-pin registry keeps live transactions above the GC frontier, and
    // the server rejects sub-frontier reads with kUnavailable before reaching
    // this point, so tripping this check means a pin was lost.
    WCHECK(vts.Sees(base_version_), "cset read below GC-folded base");
    s.MergeAdd(base_cset_);
  }
  for (const auto& e : entries_) {
    if (!vts.Sees(e.version)) {
      continue;
    }
    if (e.kind == UpdateKind::kAdd) {
      s.Add(e.elem, 1);
    } else if (e.kind == UpdateKind::kDel) {
      s.Remove(e.elem, 1);
    }
  }
  return s;
}

bool ObjectHistory::UnmodifiedSince(const VectorTimestamp& vts) const {
  // The folded base is a real write: a snapshot that predates it has been
  // modified since, even when GC left entries_ empty.
  if (has_base_ && !vts.Sees(base_version_)) {
    return false;
  }
  for (const auto& e : entries_) {
    if (!vts.Sees(e.version)) {
      return false;
    }
  }
  return true;
}

size_t ObjectHistory::GarbageCollect(const VectorTimestamp& stable) {
  size_t folded = 0;
  std::vector<VersionedUpdate> keep;
  for (auto& e : entries_) {
    if (!stable.Sees(e.version)) {
      keep.push_back(std::move(e));
      continue;
    }
    ++folded;
    has_base_ = true;
    base_version_ = e.version;
    if (e.kind == UpdateKind::kData) {
      base_is_cset_ = false;
      base_data_ = std::move(e.data);
    } else {
      base_is_cset_ = true;
      if (e.kind == UpdateKind::kAdd) {
        base_cset_.Add(e.elem, 1);
      } else {
        base_cset_.Remove(e.elem, 1);
      }
    }
  }
  entries_ = std::move(keep);
  return folded;
}

size_t ObjectHistory::RemoveVersionsFrom(SiteId site, uint64_t after_seqno) {
  size_t before = entries_.size();
  std::erase_if(entries_, [&](const VersionedUpdate& e) {
    return e.version.site == site && e.version.seqno > after_seqno;
  });
  return before - entries_.size();
}

std::optional<Version> ObjectHistory::LatestVersion() const {
  if (!entries_.empty()) {
    return entries_.back().version;
  }
  if (has_base_) {
    return base_version_;
  }
  return std::nullopt;
}

void ObjectHistory::Serialize(ByteWriter* w) const {
  w->PutU8(has_base_ ? 1 : 0);
  if (has_base_) {
    w->PutVersion(base_version_);
    w->PutU8(base_is_cset_ ? 1 : 0);
    if (base_is_cset_) {
      base_cset_.Serialize(w);
    } else {
      w->PutString(base_data_);
    }
  }
  w->PutU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w->PutVersion(e.version);
    w->PutU8(static_cast<uint8_t>(e.kind));
    if (e.kind == UpdateKind::kData) {
      w->PutString(e.data);
    } else {
      w->PutObjectId(e.elem);
    }
  }
}

ObjectHistory ObjectHistory::Deserialize(ByteReader* r) {
  ObjectHistory h;
  h.has_base_ = r->GetU8() != 0;
  if (h.has_base_) {
    h.base_version_ = r->GetVersion();
    h.base_is_cset_ = r->GetU8() != 0;
    if (h.base_is_cset_) {
      h.base_cset_ = CountingSet::Deserialize(r);
    } else {
      h.base_data_ = r->GetString();
    }
  }
  uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && !r->failed(); ++i) {
    VersionedUpdate e;
    e.version = r->GetVersion();
    e.kind = static_cast<UpdateKind>(r->GetU8());
    if (e.kind == UpdateKind::kData) {
      e.data = r->GetString();
    } else {
      e.elem = r->GetObjectId();
    }
    h.entries_.push_back(std::move(e));
  }
  return h;
}

}  // namespace walter
