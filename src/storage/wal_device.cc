#include "src/storage/wal_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/bytes.h"
#include "src/common/logging.h"
#include "src/storage/wal.h"

namespace walter {

namespace {

namespace fs = std::filesystem;

// Segment header: [magic][version][start offset][crc of the preceding fields].
constexpr uint32_t kSegmentMagic = 0x57534547;  // "WSEG"
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderSize = 4 + 4 + 8 + 4;

std::string SegmentName(uint64_t start) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.seg",
                static_cast<unsigned long long>(start));
  return buf;
}

std::string EncodeHeader(uint64_t start) {
  ByteWriter w;
  w.PutU32(kSegmentMagic);
  w.PutU32(kSegmentVersion);
  w.PutU64(start);
  w.PutU32(Crc32(w.data()));
  return w.Take();
}

// Returns the start offset on a valid header, -1 otherwise.
int64_t DecodeHeader(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderSize) {
    return -1;
  }
  ByteReader r(bytes.substr(0, kSegmentHeaderSize));
  uint32_t magic = r.GetU32();
  uint32_t version = r.GetU32();
  uint64_t start = r.GetU64();
  uint32_t crc = r.GetU32();
  if (magic != kSegmentMagic || version != kSegmentVersion ||
      Crc32(bytes.substr(0, kSegmentHeaderSize - 4)) != crc) {
    return -1;
  }
  return static_cast<int64_t>(start);
}

std::string ReadWholeFile(const std::string& path) {
  std::string out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return out;
  }
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

FileWalDevice::FileWalDevice(std::string dir, FileWalDeviceOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  WCHECK(!ec, "cannot create WAL directory " << dir_ << ": " << ec.message());
  OpenExisting();
}

FileWalDevice::~FileWalDevice() { CloseCurrent(); }

void FileWalDevice::OpenExisting() {
  // Collect wal-*.seg files sorted by their (name-encoded) start offset.
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".seg")) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());

  // Validate headers and contiguity; the first bad segment and everything
  // after it is dropped (a torn segment roll, or stray files).
  bool have_prev = false;
  uint64_t expect_start = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    std::string path = dir_ + "/" + names[i];
    std::string contents = ReadWholeFile(path);
    int64_t start = DecodeHeader(contents);
    bool ok = start >= 0 && (!have_prev || static_cast<uint64_t>(start) == expect_start);
    if (ok) {
      Segment seg;
      seg.start = static_cast<uint64_t>(start);
      seg.length = contents.size() - kSegmentHeaderSize;
      seg.path = std::move(path);
      expect_start = seg.start + seg.length;
      have_prev = true;
      segments_.push_back(std::move(seg));
      continue;
    }
    // Drop this and all later segments: bytes past a corrupt point are
    // unusable (replay could not reach them).
    tail_was_torn_ = true;
    WLOG(kWarn, "wal: dropping corrupt/discontiguous segment " << names[i]
                                                               << " and later segments");
    for (size_t j = i; j < names.size(); ++j) {
      fs::remove(dir_ + "/" + names[j], ec);
    }
    break;
  }
  end_ = segments_.empty() ? 0 : segments_.back().start + segments_.back().length;
  synced_through_ = end_;
  if (!segments_.empty()) {
    fd_ = ::open(segments_.back().path.c_str(), O_WRONLY);
    WCHECK(fd_ >= 0, "cannot reopen WAL segment " << segments_.back().path);
    ::lseek(fd_, 0, SEEK_END);
  }
}

void FileWalDevice::RollSegment(uint64_t start_offset) {
  CloseCurrent();
  Segment seg;
  seg.start = start_offset;
  seg.length = 0;
  seg.path = dir_ + "/" + SegmentName(start_offset);
  fd_ = ::open(seg.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  WCHECK(fd_ >= 0, "cannot create WAL segment " << seg.path << ": " << std::strerror(errno));
  std::string header = EncodeHeader(start_offset);
  ssize_t n = ::write(fd_, header.data(), header.size());
  WCHECK(n == static_cast<ssize_t>(header.size()), "short write of WAL segment header");
  FsyncDir(dir_);
  segments_.push_back(std::move(seg));
}

void FileWalDevice::CloseCurrent() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void FileWalDevice::Append(std::string_view frame) {
  if (frame.empty()) {
    return;
  }
  if (segments_.empty() || Current()->length >= options_.segment_bytes) {
    RollSegment(end_);
  }
  ssize_t n = ::write(fd_, frame.data(), frame.size());
  WCHECK(n == static_cast<ssize_t>(frame.size()), "short WAL append");
  Current()->length += frame.size();
  end_ += frame.size();
}

void FileWalDevice::Sync() {
  if (fd_ >= 0 && synced_through_ < end_) {
    ::fsync(fd_);
  }
  synced_through_ = end_;
}

void FileWalDevice::TruncatePrefix(uint64_t offset) {
  // Segment-granular: unlink only segments wholly below `offset`. The first
  // retained segment may still hold bytes below the offset — the device keeps
  // them (never lies about what it retains; ReadImage reports the real base).
  std::error_code ec;
  size_t drop = 0;
  while (drop < segments_.size() && segments_[drop].start + segments_[drop].length <= offset) {
    ++drop;
  }
  if (drop == 0) {
    return;
  }
  if (drop == segments_.size()) {
    CloseCurrent();
  }
  for (size_t i = 0; i < drop; ++i) {
    fs::remove(segments_[i].path, ec);
  }
  segments_.erase(segments_.begin(), segments_.begin() + drop);
  FsyncDir(dir_);
}

void FileWalDevice::TruncateTail(uint64_t offset) {
  if (offset >= end_) {
    return;
  }
  tail_was_torn_ = true;
  std::error_code ec;
  while (!segments_.empty() && segments_.back().start >= offset) {
    CloseCurrent();
    fs::remove(segments_.back().path, ec);
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    Segment& last = segments_.back();
    uint64_t keep = offset - last.start;
    if (keep < last.length) {
      if (fd_ < 0) {
        fd_ = ::open(last.path.c_str(), O_WRONLY);
        WCHECK(fd_ >= 0, "cannot reopen WAL segment for tail truncation");
      }
      int rc = ::ftruncate(fd_, static_cast<off_t>(kSegmentHeaderSize + keep));
      WCHECK(rc == 0, "ftruncate failed on " << last.path);
      ::fsync(fd_);
      ::lseek(fd_, 0, SEEK_END);
      last.length = keep;
    }
  }
  end_ = segments_.empty() ? offset : segments_.back().start + segments_.back().length;
  synced_through_ = std::min(synced_through_, end_);
  FsyncDir(dir_);
  // Reopen the new last segment for appends.
  if (fd_ < 0 && !segments_.empty()) {
    fd_ = ::open(segments_.back().path.c_str(), O_WRONLY);
    WCHECK(fd_ >= 0, "cannot reopen WAL segment after tail truncation");
    ::lseek(fd_, 0, SEEK_END);
  }
}

void FileWalDevice::Reset(const Image& image) {
  CloseCurrent();
  std::error_code ec;
  for (const Segment& seg : segments_) {
    fs::remove(seg.path, ec);
  }
  segments_.clear();
  end_ = image.base;
  if (!image.bytes.empty()) {
    // Re-segment the image so post-reset truncation behaves like a normally
    // grown log.
    size_t pos = 0;
    while (pos < image.bytes.size()) {
      size_t chunk = std::min<size_t>(options_.segment_bytes, image.bytes.size() - pos);
      RollSegment(image.base + pos);
      std::string_view piece(image.bytes.data() + pos, chunk);
      ssize_t n = ::write(fd_, piece.data(), piece.size());
      WCHECK(n == static_cast<ssize_t>(piece.size()), "short WAL reset write");
      Current()->length = chunk;
      pos += chunk;
    }
    end_ = image.base + image.bytes.size();
  }
  Sync();
  FsyncDir(dir_);
}

WalDevice::Image FileWalDevice::ReadImage() {
  CloseCurrent();
  Image image;
  image.base = segments_.empty() ? end_ : segments_.front().start;
  for (const Segment& seg : segments_) {
    std::string contents = ReadWholeFile(seg.path);
    WCHECK(contents.size() >= kSegmentHeaderSize, "WAL segment shrank under us: " << seg.path);
    image.bytes.append(contents, kSegmentHeaderSize, contents.size() - kSegmentHeaderSize);
  }
  // Reopen the active segment for further appends.
  if (!segments_.empty()) {
    fd_ = ::open(segments_.back().path.c_str(), O_WRONLY);
    WCHECK(fd_ >= 0, "cannot reopen WAL segment after ReadImage");
    ::lseek(fd_, 0, SEEK_END);
  }
  return image;
}

}  // namespace walter
