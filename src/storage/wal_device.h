// WalDevice: the persistence backend under the Wal.
//
// The Wal owns the log's *contents* — framing, checksums, the retention index —
// and always keeps an in-memory image of the retained suffix (reads, replay and
// CollectRecords are served from it). The device decides where those bytes
// *live*:
//
//  - MemWalDevice (default): the in-memory image is the device. Appends,
//    truncation and Sync are no-ops beyond the image the Wal already keeps, so
//    the simulated-disk configuration behaves exactly as before this seam
//    existed (every figure bench is byte-identical).
//  - FileWalDevice: a segmented on-disk log in the style of walb's block-level
//    driver. Frames are appended to segment files with checksummed headers,
//    Sync() is a real fsync (called on group-commit flush), TruncatePrefix is
//    segment-granular (whole files are unlinked; the device may retain more
//    than asked, never less), and opening an existing directory recovers the
//    intact frame prefix — a torn tail (partial frame, bad CRC, short header)
//    is detected and truncated to the last good frame boundary.
//
// Offsets are logical log positions: they keep growing across truncation, so
// positions returned by Wal::Append stay valid forever. A segment file named
// wal-<start>.seg holds the frame bytes for logical offsets [start, start+len).
#ifndef SRC_STORAGE_WAL_DEVICE_H_
#define SRC_STORAGE_WAL_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace walter {

class WalDevice {
 public:
  virtual ~WalDevice() = default;

  // The durable image read back at open/recovery time: frame bytes starting at
  // logical offset `base`. May include a torn tail; the Wal validates frames.
  struct Image {
    uint64_t base = 0;
    std::string bytes;
  };

  // Appends frame bytes at the device's current logical end.
  virtual void Append(std::string_view frame) = 0;
  // Makes everything appended so far durable (fsync for real files).
  virtual void Sync() = 0;
  // Releases bytes before logical `offset`. A device may retain more (e.g.
  // whole segments) but must never drop bytes at or past `offset`.
  virtual void TruncatePrefix(uint64_t offset) = 0;
  // Drops everything past logical `offset` (recovery truncates a torn tail).
  virtual void TruncateTail(uint64_t offset) = 0;
  // Replaces the device contents with `image` (seeding a replacement server).
  virtual void Reset(const Image& image) = 0;
  // Reads back what the device holds.
  virtual Image ReadImage() = 0;
};

// The in-memory image. The Wal's own buffer is authoritative, so this device
// only mirrors the logical base/end bookkeeping and stores nothing.
class MemWalDevice : public WalDevice {
 public:
  void Append(std::string_view frame) override { end_ += frame.size(); }
  void Sync() override {}
  void TruncatePrefix(uint64_t offset) override {
    if (offset > base_) {
      base_ = offset < end_ ? offset : end_;
    }
  }
  void TruncateTail(uint64_t offset) override {
    if (offset < end_) {
      end_ = offset > base_ ? offset : base_;
    }
  }
  void Reset(const Image& image) override {
    base_ = image.base;
    end_ = image.base + image.bytes.size();
  }
  Image ReadImage() override { return Image{base_, std::string()}; }

 private:
  uint64_t base_ = 0;
  uint64_t end_ = 0;
};

struct FileWalDeviceOptions {
  // Segment roll threshold: a new segment starts once the current one reaches
  // this many frame bytes. Small enough that truncation reclaims space at the
  // checkpoint cadence, large enough that a segment holds many group commits.
  uint64_t segment_bytes = 64 * 1024;
};

// Segmented real-file backend. Not used by the simulated benchmarks (which
// keep the in-memory device); exercised by the wal_device tests, the crash
// fuzzer's replay-equivalence checks and the CI real-file smoke test.
class FileWalDevice : public WalDevice {
 public:
  // Opens (creating if needed) the segment directory. Existing segments are
  // scanned in offset order; a torn or corrupt tail is truncated on open so
  // the device always reopens to an intact frame sequence.
  explicit FileWalDevice(std::string dir, FileWalDeviceOptions options = {});
  ~FileWalDevice() override;

  FileWalDevice(const FileWalDevice&) = delete;
  FileWalDevice& operator=(const FileWalDevice&) = delete;

  void Append(std::string_view frame) override;
  void Sync() override;
  void TruncatePrefix(uint64_t offset) override;
  void TruncateTail(uint64_t offset) override;
  void Reset(const Image& image) override;
  Image ReadImage() override;

  // Observability for tests/metrics.
  size_t segment_count() const { return segments_.size(); }
  uint64_t synced_bytes() const { return synced_through_; }
  bool tail_was_torn() const { return tail_was_torn_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t start = 0;   // logical offset of the first frame byte
    uint64_t length = 0;  // frame bytes in the file (excluding the header)
    std::string path;
  };

  void OpenExisting();
  void RollSegment(uint64_t start_offset);
  void CloseCurrent();
  Segment* Current() { return segments_.empty() ? nullptr : &segments_.back(); }

  std::string dir_;
  FileWalDeviceOptions options_;
  std::vector<Segment> segments_;
  int fd_ = -1;  // open fd of the last (active) segment
  uint64_t end_ = 0;
  uint64_t synced_through_ = 0;
  bool tail_was_torn_ = false;
};

}  // namespace walter

#endif  // SRC_STORAGE_WAL_DEVICE_H_
