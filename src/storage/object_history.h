// Per-object multi-version update history (the History_i[oid] of Figure 9).
//
// Entries are appended in the order transactions commit at this site (local
// fast/slow commits and remote propagations interleave). A read at snapshot
// startVTS returns, for a regular object, the most recently applied update
// whose version is visible to startVTS; for a cset object, the fold of all
// visible ADD/DEL operations. Because PSI orders write-write-conflicting
// transactions identically at every site (Property 3), "latest visible in
// apply order" is well-defined.
//
// Garbage collection folds entries below a stability frontier (a vector
// timestamp no active or future snapshot can be below) into a compact base:
// the latest data value for regular objects, a base CountingSet for csets.
#ifndef SRC_STORAGE_OBJECT_HISTORY_H_
#define SRC_STORAGE_OBJECT_HISTORY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"

namespace walter {

struct VersionedUpdate {
  Version version;
  UpdateKind kind = UpdateKind::kData;
  std::string data;  // kData
  ObjectId elem;     // kAdd / kDel
};

class ObjectHistory {
 public:
  // Appends an update committed with `version`.
  void Append(const Version& version, const ObjectUpdate& update);

  // Regular object read: latest applied update visible to vts, or nullopt if
  // the object has no visible version (reads as nil).
  std::optional<std::string> ReadRegular(const VectorTimestamp& vts) const;

  // Like ReadRegular but also returns the version of the value, for merging a
  // remote read with the caller's local history (Section 4.3 / Figure 10).
  std::optional<std::pair<std::string, Version>> ReadRegularVersioned(
      const VectorTimestamp& vts) const;

  // Cset read: fold of the base plus all visible ops. Callers must ensure
  // vts covers the GC stability frontier this history was collected to.
  CountingSet ReadCset(const VectorTimestamp& vts) const;

  // Remote-read merge support for objects not replicated at the caller. The
  // caller (site `self`) holds its own recent unreplicated updates; the callee
  // excludes its copies of those; the caller folds only its own.
  //
  // Latest visible update among entries originated by `self` (entries only —
  // the compacted base never holds unreplicated local writes).
  std::optional<std::pair<std::string, Version>> LatestLocalVisible(const VectorTimestamp& vts,
                                                                    SiteId self) const;
  // Visible cset ops folded, excluding ops with version <site, seqno>=min..>.
  CountingSet ReadCsetExcluding(const VectorTimestamp& vts, SiteId site,
                                uint64_t min_seqno) const;
  // Visible cset ops originated by `self`, entries only.
  CountingSet FoldLocalCsetOps(const VectorTimestamp& vts, SiteId self) const;
  // Smallest seqno among entries originated by `self`; 0 if none.
  uint64_t MinLocalSeqno(SiteId self) const;

  // True if every version of this object in the history is visible to vts —
  // the unmodified(oid, VTS) conflict check of Figures 11-12.
  bool UnmodifiedSince(const VectorTimestamp& vts) const;

  // Folds entries visible to `stable` into the base. Returns entries freed.
  size_t GarbageCollect(const VectorTimestamp& stable);

  // Removes entries with version <site, seqno> where seqno > after_seqno —
  // aggressive site-failure recovery discards non-surviving transactions of a
  // failed site (Section 5.7). Returns entries removed.
  size_t RemoveVersionsFrom(SiteId site, uint64_t after_seqno);

  // Latest version applied, regardless of snapshot (for diagnostics/recovery).
  std::optional<Version> LatestVersion() const;

  size_t entry_count() const { return entries_.size(); }
  const std::vector<VersionedUpdate>& entries() const { return entries_; }

  // Entries visible to `vts` that GC has not folded yet (drain diagnostics).
  size_t CountCoveredBy(const VectorTimestamp& vts) const {
    size_t n = 0;
    for (const auto& e : entries_) {
      if (vts.Sees(e.version)) {
        ++n;
      }
    }
    return n;
  }

  // Checkpoint support.
  void Serialize(ByteWriter* w) const;
  static ObjectHistory Deserialize(ByteReader* r);

 private:
  // Compacted prefix.
  bool has_base_ = false;
  Version base_version_;          // version of the latest folded update
  std::string base_data_;         // regular objects
  CountingSet base_cset_;         // cset objects
  bool base_is_cset_ = false;

  std::vector<VersionedUpdate> entries_;  // live suffix, in apply order
};

}  // namespace walter

#endif  // SRC_STORAGE_OBJECT_HISTORY_H_
