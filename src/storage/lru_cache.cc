#include "src/storage/lru_cache.h"

namespace walter {

void LruCache::Insert(const ObjectId& oid, ObjectType type, size_t bytes) {
  Erase(oid);
  if (bytes > capacity_) {
    return;  // cannot fit even an empty cache
  }
  EvictUntilFits(bytes);
  List& list = ListFor(type);
  list.push_front(Entry{oid, type, bytes});
  index_[oid] = list.begin();
  used_ += bytes;
}

bool LruCache::Lookup(const ObjectId& oid) {
  auto it = index_.find(oid);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  List& list = ListFor(it->second->type);
  list.splice(list.begin(), list, it->second);
  index_[oid] = list.begin();
  return true;
}

void LruCache::Erase(const ObjectId& oid) {
  auto it = index_.find(oid);
  if (it == index_.end()) {
    return;
  }
  used_ -= it->second->bytes;
  ListFor(it->second->type).erase(it->second);
  index_.erase(it);
}

void LruCache::EvictUntilFits(size_t incoming) {
  // Prefer evicting regular objects; only touch csets when regulars are gone.
  while (used_ + incoming > capacity_) {
    List& victims = !regular_lru_.empty() ? regular_lru_ : cset_lru_;
    if (victims.empty()) {
      return;
    }
    const Entry& victim = victims.back();
    used_ -= victim.bytes;
    index_.erase(victim.oid);
    victims.pop_back();
    ++evictions_;
  }
}

}  // namespace walter
