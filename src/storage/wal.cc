#include "src/storage/wal.h"

#include <array>
#include <cstring>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace walter {

namespace {

constexpr uint32_t kFrameMagic = 0x57414c52;  // "WALR"

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t ReadU32At(std::string_view s, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, s.data() + pos, sizeof(v));
  return v;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const auto& table = Crc32Table();
  uint32_t c = 0xffffffffu;
  for (unsigned char ch : data) {
    c = table[(c ^ ch) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void Wal::IndexRemove(SiteId origin, uint64_t seqno) {
  auto it = oldest_index_.find(origin);
  if (it == oldest_index_.end()) {
    return;
  }
  auto sit = it->second.find(seqno);
  if (sit == it->second.end()) {
    return;
  }
  if (--sit->second == 0) {
    it->second.erase(sit);
  }
  if (it->second.empty()) {
    oldest_index_.erase(it);
  }
}

size_t Wal::Append(const TxRecord& record) {
  ByteWriter payload;
  record.Serialize(&payload);

  ByteWriter frame;
  frame.PutU32(kFrameMagic);
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload.data()));

  size_t offset = base_ + buf_.size();
  buf_ += frame.data();
  buf_ += payload.data();
  ++record_count_;
  metas_.push_back({base_ + buf_.size(), record.origin, record.version.seqno});
  IndexAdd(record.origin, record.version.seqno);
  if (device_) {
    device_->Append(frame.data());
    device_->Append(payload.data());
  }
  return offset;
}

void Wal::TruncatePrefix(size_t offset) {
  if (offset <= base_) {
    return;
  }
  size_t drop = offset - base_;
  if (drop >= buf_.size()) {
    base_ += buf_.size();
    buf_.clear();
  } else {
    buf_.erase(0, drop);
    base_ = offset;
  }
  while (!metas_.empty() && metas_.front().end_offset <= base_) {
    IndexRemove(metas_.front().origin, metas_.front().seqno);
    metas_.pop_front();
  }
  if (device_) {
    device_->TruncatePrefix(base_);
  }
}

size_t Wal::SafePrefix(const VectorTimestamp& floors, size_t limit) const {
  size_t safe = base_;
  for (const auto& m : metas_) {
    if (m.end_offset > limit || m.seqno > floors.at(m.origin)) {
      break;
    }
    safe = m.end_offset;
  }
  return safe;
}

size_t Wal::SeedInternal(std::string_view bytes, size_t base) {
  buf_.clear();
  metas_.clear();
  oldest_index_.clear();
  base_ = base;
  record_count_ = 0;
  size_t pos = 0;
  constexpr size_t kHeader = 12;
  while (pos + kHeader <= bytes.size()) {
    if (ReadU32At(bytes, pos) != kFrameMagic) {
      break;
    }
    uint32_t length = ReadU32At(bytes, pos + 4);
    uint32_t crc = ReadU32At(bytes, pos + 8);
    if (pos + kHeader + length > bytes.size()) {
      break;
    }
    std::string_view payload = bytes.substr(pos + kHeader, length);
    if (Crc32(payload) != crc) {
      break;
    }
    ByteReader reader(payload);
    TxRecord rec = TxRecord::Deserialize(&reader);
    if (reader.failed()) {
      break;
    }
    pos += kHeader + length;
    metas_.push_back({base_ + pos, rec.origin, rec.version.seqno});
    IndexAdd(rec.origin, rec.version.seqno);
    ++record_count_;
  }
  buf_.assign(bytes.substr(0, pos));
  return pos;
}

void Wal::SeedForRecovery(std::string_view bytes, size_t base) {
  SeedInternal(bytes, base);
  if (device_) {
    device_->Reset(WalDevice::Image{base_, buf_});
  }
}

Wal::ReplayResult Wal::RecoverFromDevice() {
  WCHECK(device_ != nullptr, "RecoverFromDevice needs an attached WalDevice");
  WalDevice::Image image = device_->ReadImage();
  ReplayResult result = Replay(image.bytes);
  SeedInternal(image.bytes, image.base);
  if (result.valid_bytes < image.bytes.size()) {
    // Torn or corrupt tail: drop it from the files so the device reopens to an
    // intact frame sequence.
    device_->TruncateTail(image.base + result.valid_bytes);
  }
  return result;
}

Wal::ReplayResult Wal::Replay(std::string_view log_bytes) {
  ReplayResult result;
  size_t pos = 0;
  constexpr size_t kHeader = 12;
  while (pos + kHeader <= log_bytes.size()) {
    uint32_t magic = ReadU32At(log_bytes, pos);
    if (magic != kFrameMagic) {
      result.torn_tail = true;
      break;
    }
    uint32_t length = ReadU32At(log_bytes, pos + 4);
    uint32_t crc = ReadU32At(log_bytes, pos + 8);
    if (pos + kHeader + length > log_bytes.size()) {
      result.torn_tail = true;  // incomplete tail frame
      break;
    }
    std::string_view payload = log_bytes.substr(pos + kHeader, length);
    if (Crc32(payload) != crc) {
      result.torn_tail = true;
      break;
    }
    ByteReader reader(payload);
    TxRecord rec = TxRecord::Deserialize(&reader);
    if (reader.failed()) {
      result.torn_tail = true;
      break;
    }
    result.records.push_back(std::move(rec));
    pos += kHeader + length;
    result.valid_bytes = pos;
  }
  if (pos < log_bytes.size() && !result.torn_tail) {
    result.torn_tail = true;  // trailing garbage shorter than a header
  }
  return result;
}

}  // namespace walter
