// In-memory object cache with cset-preferring eviction (Section 6).
//
// The Walter server keeps recently-used objects in memory and evicts on an LRU
// basis; because csets are expensive to reconstruct from the log, the eviction
// policy prefers to evict regular objects. We implement that as two LRU lists:
// eviction drains the regular list first and only then touches csets.
//
// The cache tracks residency and charges byte sizes; the authoritative state
// stays in the Store. The server uses Lookup() misses to charge a simulated
// log-read penalty.
#ifndef SRC_STORAGE_LRU_CACHE_H_
#define SRC_STORAGE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/types.h"

namespace walter {

class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Inserts or refreshes an entry, evicting as needed. An entry larger than
  // the whole cache is not admitted.
  void Insert(const ObjectId& oid, ObjectType type, size_t bytes);

  // True (and refreshes recency) if oid is resident.
  bool Lookup(const ObjectId& oid);

  void Erase(const ObjectId& oid);

  size_t used_bytes() const { return used_; }
  size_t capacity_bytes() const { return capacity_; }
  size_t entry_count() const { return index_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    ObjectId oid;
    ObjectType type;
    size_t bytes;
  };
  using List = std::list<Entry>;

  List& ListFor(ObjectType type) {
    return type == ObjectType::kCset ? cset_lru_ : regular_lru_;
  }
  void EvictUntilFits(size_t incoming);

  size_t capacity_;
  size_t used_ = 0;
  // Front = most recently used.
  List regular_lru_;
  List cset_lru_;
  std::unordered_map<ObjectId, List::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace walter

#endif  // SRC_STORAGE_LRU_CACHE_H_
