// Write-ahead log of commit records (Section 6).
//
// Each committed transaction is framed as [magic][length][crc32][payload] and
// appended to a byte buffer that stands in for the persistent device (the
// simulated Disk decides *when* the bytes are durable; the Wal decides *what*
// the bytes are, and is exercised against real serialization in recovery
// tests). Replay stops cleanly at a torn tail: a frame with a bad magic, a
// length overrunning the buffer, or a CRC mismatch ends recovery at the last
// good record.
//
// A Wal can optionally sit on a WalDevice (see wal_device.h): the in-memory
// buffer stays authoritative for reads, and the device mirrors every append,
// truncation and sync so the same frame bytes land in real segment files. With
// no device attached, behavior is bit-for-bit what it was before the seam.
#ifndef SRC_STORAGE_WAL_H_
#define SRC_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/update.h"
#include "src/storage/wal_device.h"

namespace walter {

// CRC-32 (IEEE polynomial), table-driven.
uint32_t Crc32(std::string_view data);

class Wal {
 public:
  Wal() = default;
  explicit Wal(std::unique_ptr<WalDevice> device) : device_(std::move(device)) {}

  // Appends a framed commit record; returns the byte offset of the frame.
  size_t Append(const TxRecord& record);

  // Pushes appended bytes to stable storage (fsync on a file device). Called
  // by the group-commit flush path; a no-op without a device.
  void Sync() {
    if (device_) {
      device_->Sync();
    }
  }

  // Raw log contents (what would sit on the device).
  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  uint64_t record_count() const { return record_count_; }

  // Drops the prefix before `offset` (checkpoint truncation). Offsets returned
  // by Append remain valid logical positions: reads are relative to base().
  // A file device truncates at segment granularity underneath — it may retain
  // more bytes than the in-memory image, never fewer.
  void TruncatePrefix(size_t offset);
  size_t base() const { return base_; }

  // Largest offset the prefix can be truncated to given per-origin retention
  // floors: every record below the returned offset has seqno <= floors[origin]
  // (each site durably applied it, so no resync or gap-fill can ask for it
  // again), and the offset never exceeds `limit` — the latest checkpoint's WAL
  // frontier, past which records are still needed for self-recovery replay.
  size_t SafePrefix(const VectorTimestamp& floors, size_t limit) const;

  // Smallest seqno still logged for `origin` (nullopt when none): the sender
  // uses it to tell a truncated record (durably applied everywhere, skippable)
  // from one it must still be able to serve. Served from a maintained
  // per-origin index — GC truncation decisions call this per origin per tick,
  // and the old linear scan over every logged record dominated large logs.
  std::optional<uint64_t> OldestSeqno(SiteId origin) const {
    auto it = oldest_index_.find(origin);
    if (it == oldest_index_.end() || it->second.empty()) {
      return std::nullopt;
    }
    return it->second.begin()->first;
  }

  // Seeds the log from a recovered durable image (replacement server): keeps
  // the intact frame prefix and rebuilds the per-record retention index, so
  // CollectRecords and safe truncation keep working across a restore. If a
  // device is attached its contents are replaced with the seeded image.
  void SeedForRecovery(std::string_view bytes, size_t base);

  struct ReplayResult {
    std::vector<TxRecord> records;
    bool torn_tail = false;   // replay stopped at a corrupt/incomplete frame
    size_t valid_bytes = 0;   // bytes of intact frames
  };

  // Recovers from the attached device's own durable contents: reads the image
  // back from the files, seeds this Wal with the intact frame prefix, and
  // truncates the device at the first torn/corrupt frame so the on-disk log
  // reopens clean. Requires a device.
  ReplayResult RecoverFromDevice();

  // Decodes all intact frames from a raw log image.
  static ReplayResult Replay(std::string_view log_bytes);

  // Replays this log's own buffer.
  ReplayResult ReplaySelf() const { return Replay(buf_); }

  WalDevice* device() const { return device_.get(); }

 private:
  // Retention index: one entry per logged record, in log order. end_offset is
  // the logical offset just past the record's frame, so truncating to it drops
  // the record and everything before it.
  struct RecordMeta {
    size_t end_offset = 0;
    SiteId origin = kNoSite;
    uint64_t seqno = 0;
  };

  void IndexAdd(SiteId origin, uint64_t seqno) { ++oldest_index_[origin][seqno]; }
  void IndexRemove(SiteId origin, uint64_t seqno);
  // Parses `bytes` (logical base `base`) into buf_/metas_/oldest_index_,
  // keeping the intact frame prefix. Returns the number of valid bytes kept.
  size_t SeedInternal(std::string_view bytes, size_t base);

  std::string buf_;
  size_t base_ = 0;  // logical offset of buf_[0]
  uint64_t record_count_ = 0;
  std::deque<RecordMeta> metas_;
  // origin -> (seqno -> number of logged records with that seqno). Mirrors
  // metas_ so OldestSeqno is a lookup instead of a full-log scan.
  std::unordered_map<SiteId, std::map<uint64_t, uint32_t>> oldest_index_;
  std::unique_ptr<WalDevice> device_;
};

}  // namespace walter

#endif  // SRC_STORAGE_WAL_H_
