// Write-ahead log of commit records (Section 6).
//
// Each committed transaction is framed as [magic][length][crc32][payload] and
// appended to a byte buffer that stands in for the persistent device (the
// simulated Disk decides *when* the bytes are durable; the Wal decides *what*
// the bytes are, and is exercised against real serialization in recovery
// tests). Replay stops cleanly at a torn tail: a frame with a bad magic, a
// length overrunning the buffer, or a CRC mismatch ends recovery at the last
// good record.
#ifndef SRC_STORAGE_WAL_H_
#define SRC_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/update.h"

namespace walter {

// CRC-32 (IEEE polynomial), table-driven.
uint32_t Crc32(std::string_view data);

class Wal {
 public:
  // Appends a framed commit record; returns the byte offset of the frame.
  size_t Append(const TxRecord& record);

  // Raw log contents (what would sit on the device).
  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  uint64_t record_count() const { return record_count_; }

  // Drops the prefix before `offset` (checkpoint truncation). Offsets returned
  // by Append remain valid logical positions: reads are relative to base().
  void TruncatePrefix(size_t offset);
  size_t base() const { return base_; }

  struct ReplayResult {
    std::vector<TxRecord> records;
    bool torn_tail = false;   // replay stopped at a corrupt/incomplete frame
    size_t valid_bytes = 0;   // bytes of intact frames
  };

  // Decodes all intact frames from a raw log image.
  static ReplayResult Replay(std::string_view log_bytes);

  // Replays this log's own buffer.
  ReplayResult ReplaySelf() const { return Replay(buf_); }

 private:
  std::string buf_;
  size_t base_ = 0;  // logical offset of buf_[0]
  uint64_t record_count_ = 0;
};

}  // namespace walter

#endif  // SRC_STORAGE_WAL_H_
