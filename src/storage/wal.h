// Write-ahead log of commit records (Section 6).
//
// Each committed transaction is framed as [magic][length][crc32][payload] and
// appended to a byte buffer that stands in for the persistent device (the
// simulated Disk decides *when* the bytes are durable; the Wal decides *what*
// the bytes are, and is exercised against real serialization in recovery
// tests). Replay stops cleanly at a torn tail: a frame with a bad magic, a
// length overrunning the buffer, or a CRC mismatch ends recovery at the last
// good record.
#ifndef SRC_STORAGE_WAL_H_
#define SRC_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/update.h"

namespace walter {

// CRC-32 (IEEE polynomial), table-driven.
uint32_t Crc32(std::string_view data);

class Wal {
 public:
  // Appends a framed commit record; returns the byte offset of the frame.
  size_t Append(const TxRecord& record);

  // Raw log contents (what would sit on the device).
  const std::string& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  uint64_t record_count() const { return record_count_; }

  // Drops the prefix before `offset` (checkpoint truncation). Offsets returned
  // by Append remain valid logical positions: reads are relative to base().
  void TruncatePrefix(size_t offset);
  size_t base() const { return base_; }

  // Largest offset the prefix can be truncated to given per-origin retention
  // floors: every record below the returned offset has seqno <= floors[origin]
  // (each site durably applied it, so no resync or gap-fill can ask for it
  // again), and the offset never exceeds `limit` — the latest checkpoint's WAL
  // frontier, past which records are still needed for self-recovery replay.
  size_t SafePrefix(const VectorTimestamp& floors, size_t limit) const;

  // Smallest seqno still logged for `origin` (nullopt when none): the sender
  // uses it to tell a truncated record (durably applied everywhere, skippable)
  // from one it must still be able to serve.
  std::optional<uint64_t> OldestSeqno(SiteId origin) const {
    std::optional<uint64_t> oldest;
    for (const RecordMeta& m : metas_) {
      if (m.origin == origin && (!oldest || m.seqno < *oldest)) {
        oldest = m.seqno;
      }
    }
    return oldest;
  }

  // Seeds the log from a recovered durable image (replacement server): keeps
  // the intact frame prefix and rebuilds the per-record retention index, so
  // CollectRecords and safe truncation keep working across a restore.
  void SeedForRecovery(std::string_view bytes, size_t base);

  struct ReplayResult {
    std::vector<TxRecord> records;
    bool torn_tail = false;   // replay stopped at a corrupt/incomplete frame
    size_t valid_bytes = 0;   // bytes of intact frames
  };

  // Decodes all intact frames from a raw log image.
  static ReplayResult Replay(std::string_view log_bytes);

  // Replays this log's own buffer.
  ReplayResult ReplaySelf() const { return Replay(buf_); }

 private:
  // Retention index: one entry per logged record, in log order. end_offset is
  // the logical offset just past the record's frame, so truncating to it drops
  // the record and everything before it.
  struct RecordMeta {
    size_t end_offset = 0;
    SiteId origin = kNoSite;
    uint64_t seqno = 0;
  };

  std::string buf_;
  size_t base_ = 0;  // logical offset of buf_[0]
  uint64_t record_count_ = 0;
  std::deque<RecordMeta> metas_;
};

}  // namespace walter

#endif  // SRC_STORAGE_WAL_H_
