#include "src/storage/store.h"

#include <algorithm>
#include <vector>

#include "src/common/bytes.h"

namespace walter {

Store::Store(size_t cache_capacity_bytes) : cache_(cache_capacity_bytes) {}

Store::Store(size_t cache_capacity_bytes, std::unique_ptr<WalDevice> wal_device)
    : wal_(std::move(wal_device)), cache_(cache_capacity_bytes) {}

void Store::Apply(const TxRecord& record) {
  wal_.Append(record);
  ApplyToHistories(record);
}

void Store::ApplyToHistories(const TxRecord& record) {
  for (const auto& u : record.updates) {
    histories_[u.oid].Append(record.version, u);
  }
}

std::optional<std::string> Store::ReadRegular(const ObjectId& oid,
                                              const VectorTimestamp& vts) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return std::nullopt;
  }
  return it->second.ReadRegular(vts);
}

CountingSet Store::ReadCset(const ObjectId& oid, const VectorTimestamp& vts) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return CountingSet{};
  }
  return it->second.ReadCset(vts);
}

std::optional<std::pair<std::string, Version>> Store::ReadRegularVersioned(
    const ObjectId& oid, const VectorTimestamp& vts) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return std::nullopt;
  }
  return it->second.ReadRegularVersioned(vts);
}

std::optional<std::pair<std::string, Version>> Store::LatestLocalVisible(
    const ObjectId& oid, const VectorTimestamp& vts, SiteId self) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return std::nullopt;
  }
  return it->second.LatestLocalVisible(vts, self);
}

CountingSet Store::ReadCsetExcluding(const ObjectId& oid, const VectorTimestamp& vts,
                                     SiteId site, uint64_t min_seqno) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return CountingSet{};
  }
  return it->second.ReadCsetExcluding(vts, site, min_seqno);
}

CountingSet Store::FoldLocalCsetOps(const ObjectId& oid, const VectorTimestamp& vts,
                                    SiteId self) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return CountingSet{};
  }
  return it->second.FoldLocalCsetOps(vts, self);
}

uint64_t Store::MinLocalSeqno(const ObjectId& oid, SiteId self) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return 0;
  }
  return it->second.MinLocalSeqno(self);
}

bool Store::Unmodified(const ObjectId& oid, const VectorTimestamp& vts) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return true;
  }
  return it->second.UnmodifiedSince(vts);
}

std::optional<Version> Store::LatestVersion(const ObjectId& oid) const {
  auto it = histories_.find(oid);
  if (it == histories_.end()) {
    return std::nullopt;
  }
  return it->second.LatestVersion();
}

bool Store::TouchCache(const ObjectId& oid, ObjectType type, size_t approx_bytes) {
  if (cache_.Lookup(oid)) {
    return true;
  }
  cache_.Insert(oid, type, approx_bytes);
  return false;
}

size_t Store::GarbageCollect(const VectorTimestamp& stable) {
  size_t folded = 0;
  for (auto& [oid, history] : histories_) {
    folded += history.GarbageCollect(stable);
  }
  gc_frontier_.MergeMax(stable);
  return folded;
}

size_t Store::TotalEntryCount() const {
  size_t n = 0;
  for (const auto& [oid, history] : histories_) {
    n += history.entry_count();
  }
  return n;
}

size_t Store::CountEntriesCoveredBy(const VectorTimestamp& vts) const {
  size_t n = 0;
  for (const auto& [oid, history] : histories_) {
    n += history.CountCoveredBy(vts);
  }
  return n;
}

size_t Store::RemoveVersionsFrom(SiteId site, uint64_t after_seqno) {
  size_t removed = 0;
  for (auto& [oid, history] : histories_) {
    removed += history.RemoveVersionsFrom(site, after_seqno);
  }
  return removed;
}

void Store::AddVisibilityWatermark(const ObjectId& oid, Version version, TxId tid) {
  watermarks_[oid].emplace_back(version, tid);
  WatermarkTx& wtx = watermark_txs_[tid];
  wtx.version = version;
  wtx.oids.push_back(oid);
}

void Store::EraseWatermarkTx(std::unordered_map<TxId, WatermarkTx>::iterator it) {
  for (const ObjectId& oid : it->second.oids) {
    auto per_oid = watermarks_.find(oid);
    if (per_oid == watermarks_.end()) {
      continue;
    }
    std::erase_if(per_oid->second,
                  [tid = it->first](const auto& wm) { return wm.second == tid; });
    if (per_oid->second.empty()) {
      watermarks_.erase(per_oid);
    }
  }
  watermark_txs_.erase(it);
}

size_t Store::ClearVisibilityWatermarks(SiteId origin, uint64_t through) {
  size_t cleared = 0;
  for (auto it = watermark_txs_.begin(); it != watermark_txs_.end();) {
    auto cur = it++;
    if (cur->second.version.site == origin && cur->second.version.seqno <= through) {
      cleared += cur->second.oids.size();
      EraseWatermarkTx(cur);
    }
  }
  return cleared;
}

bool Store::DropWatermarksOfTx(TxId tid) {
  auto it = watermark_txs_.find(tid);
  if (it == watermark_txs_.end()) {
    return false;
  }
  EraseWatermarkTx(it);
  return true;
}

size_t Store::DropWatermarksFrom(SiteId origin, uint64_t after_seqno) {
  size_t dropped = 0;
  for (auto it = watermark_txs_.begin(); it != watermark_txs_.end();) {
    auto cur = it++;
    if (cur->second.version.site == origin && cur->second.version.seqno > after_seqno) {
      dropped += cur->second.oids.size();
      EraseWatermarkTx(cur);
    }
  }
  return dropped;
}

bool Store::WatermarkBlocksWrite(const ObjectId& oid) const {
  return !watermarks_.empty() && watermarks_.contains(oid);
}

bool Store::WatermarkBlocksWrite(const ObjectId& oid, const VectorTimestamp& vts) const {
  if (watermarks_.empty()) {
    return false;
  }
  auto it = watermarks_.find(oid);
  if (it == watermarks_.end()) {
    return false;
  }
  for (const auto& [version, tid] : it->second) {
    if (version.site >= vts.num_sites() || vts.at(version.site) < version.seqno) {
      return true;  // a decided version the snapshot has NOT seen: real conflict
    }
  }
  return false;
}

bool Store::WatermarkBlocksRead(const ObjectId& oid, const VectorTimestamp& vts) const {
  if (watermarks_.empty()) {
    return false;
  }
  auto it = watermarks_.find(oid);
  if (it == watermarks_.end()) {
    return false;
  }
  for (const auto& [version, tid] : it->second) {
    if (version.site < vts.num_sites() && vts.at(version.site) >= version.seqno) {
      return true;  // the snapshot includes the decided version; it is not here yet
    }
  }
  return false;
}

std::optional<uint64_t> Store::MinWatermarkSeqno(SiteId origin) const {
  std::optional<uint64_t> min;
  for (const auto& [tid, wtx] : watermark_txs_) {
    if (wtx.version.site == origin && (!min || wtx.version.seqno < *min)) {
      min = wtx.version.seqno;
    }
  }
  return min;
}

std::vector<std::pair<TxId, Version>> Store::WatermarkTxs() const {
  std::vector<std::pair<TxId, Version>> out;
  out.reserve(watermark_txs_.size());
  for (const auto& [tid, wtx] : watermark_txs_) {
    out.emplace_back(tid, wtx.version);
  }
  return out;
}

size_t Store::watermark_count() const {
  size_t n = 0;
  for (const auto& [oid, wms] : watermarks_) {
    n += wms.size();
  }
  return n;
}

std::string Store::SerializeCheckpoint() const {
  ByteWriter w;
  w.PutU64(wal_.base() + wal_.size());  // WAL frontier covered by this checkpoint
  w.PutVts(gc_frontier_);  // histories below this are folded; restores need it
  // Sort oids for deterministic checkpoint bytes.
  std::vector<const std::pair<const ObjectId, ObjectHistory>*> items;
  items.reserve(histories_.size());
  for (const auto& kv : histories_) {
    items.push_back(&kv);
  }
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w.PutU64(items.size());
  for (const auto* kv : items) {
    w.PutObjectId(kv->first);
    kv->second.Serialize(&w);
  }
  return w.Take();
}

void Store::RestoreCheckpoint(std::string_view bytes) {
  histories_.clear();
  // Watermarks are volatile like the lock table: a restored server starts
  // clean and the propagation backstop re-protects the decided versions.
  watermarks_.clear();
  watermark_txs_.clear();
  if (bytes.empty()) {
    checkpoint_frontier_ = 0;
    gc_frontier_ = VectorTimestamp();
    return;
  }
  ByteReader r(bytes);
  checkpoint_frontier_ = r.GetU64();
  gc_frontier_ = r.GetVts();
  uint64_t n = r.GetU64();
  for (uint64_t i = 0; i < n && !r.failed(); ++i) {
    ObjectId oid = r.GetObjectId();
    histories_[oid] = ObjectHistory::Deserialize(&r);
  }
}

Store::RecoveryResult Store::Recover(std::string_view checkpoint_bytes,
                                     std::string_view wal_bytes, size_t wal_base_offset) {
  RecoveryResult result;
  RestoreCheckpoint(checkpoint_bytes);
  // Replay only the WAL suffix past the checkpoint frontier.
  size_t skip = 0;
  if (checkpoint_frontier_ > wal_base_offset) {
    skip = checkpoint_frontier_ - wal_base_offset;
  }
  if (skip >= wal_bytes.size()) {
    return result;
  }
  Wal::ReplayResult replay = Wal::Replay(wal_bytes.substr(skip));
  result.torn_tail = replay.torn_tail;
  for (const auto& rec : replay.records) {
    ApplyToHistories(rec);
    ++result.records_replayed;
  }
  return result;
}

}  // namespace walter
