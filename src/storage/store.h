// Store: the per-site storage engine tying together object histories, the
// write-ahead log, the object cache and checkpointing (Section 6).
//
// The Walter server drives it with committed TxRecords (its own commits and
// remote propagations); reads are snapshot reads against a vector timestamp.
// Recovery follows Section 6: restore the latest checkpoint, then replay the
// WAL tail after the checkpoint frontier.
#ifndef SRC_STORAGE_STORE_H_
#define SRC_STORAGE_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"
#include "src/storage/lru_cache.h"
#include "src/storage/object_history.h"
#include "src/storage/wal.h"

namespace walter {

class Store {
 public:
  explicit Store(size_t cache_capacity_bytes = size_t{1} << 30);
  // Puts the WAL on a persistence device (real segment files). The simulated
  // default keeps the in-memory image only.
  Store(size_t cache_capacity_bytes, std::unique_ptr<WalDevice> wal_device);

  // Applies a committed transaction: logs it to the WAL and appends each of
  // its updates to the touched objects' histories. Caller guarantees each
  // transaction is applied at most once (the server's GotVTS gating).
  void Apply(const TxRecord& record);

  // Applies without logging — used when replaying the WAL itself.
  void ApplyToHistories(const TxRecord& record);

  // Snapshot reads --------------------------------------------------------
  std::optional<std::string> ReadRegular(const ObjectId& oid, const VectorTimestamp& vts) const;
  CountingSet ReadCset(const ObjectId& oid, const VectorTimestamp& vts) const;

  // Remote-read support (see ObjectHistory for semantics).
  std::optional<std::pair<std::string, Version>> ReadRegularVersioned(
      const ObjectId& oid, const VectorTimestamp& vts) const;
  std::optional<std::pair<std::string, Version>> LatestLocalVisible(
      const ObjectId& oid, const VectorTimestamp& vts, SiteId self) const;
  CountingSet ReadCsetExcluding(const ObjectId& oid, const VectorTimestamp& vts, SiteId site,
                                uint64_t min_seqno) const;
  CountingSet FoldLocalCsetOps(const ObjectId& oid, const VectorTimestamp& vts,
                               SiteId self) const;
  uint64_t MinLocalSeqno(const ObjectId& oid, SiteId self) const;

  // unmodified(oid, VTS) of Figures 11-12: no version of oid beyond vts.
  bool Unmodified(const ObjectId& oid, const VectorTimestamp& vts) const;

  std::optional<Version> LatestVersion(const ObjectId& oid) const;
  bool Has(const ObjectId& oid) const { return histories_.contains(oid); }
  size_t object_count() const { return histories_.size(); }

  // Cache ------------------------------------------------------------------
  // Records an access; returns true on a cache hit. Misses admit the entry.
  bool TouchCache(const ObjectId& oid, ObjectType type, size_t approx_bytes);
  const LruCache& cache() const { return cache_; }

  // Maintenance --------------------------------------------------------------
  // Folds history entries below `stable` (see ObjectHistory::GarbageCollect)
  // and advances the recorded GC frontier. Callers (the GC coordinator)
  // guarantee `stable` is a stability frontier: every site has durably
  // committed everything it covers and no live snapshot starts below it.
  size_t GarbageCollect(const VectorTimestamp& stable);

  // Highest frontier GC has folded at (entry-wise; persisted in checkpoints).
  // Snapshot reads below it are unanswerable and fail-stop.
  const VectorTimestamp& gc_frontier() const { return gc_frontier_; }

  // Memory gauges ------------------------------------------------------------
  // Unfolded history entries across all objects (the memory GC bounds).
  size_t TotalEntryCount() const;
  // Entries `vts` covers that GC has not folded yet: zero once histories have
  // drained to the frontier (the chaos suite's post-heal assert).
  size_t CountEntriesCoveredBy(const VectorTimestamp& vts) const;

  // Discards updates of site `site` with seqno > after_seqno from every
  // history (aggressive site-failure recovery, Section 5.7).
  size_t RemoveVersionsFrom(SiteId site, uint64_t after_seqno);

  // Visibility watermarks (early lock release) ------------------------------
  // When a 2PC participant releases its prepare locks at the commit decision
  // (before the committed record propagates back), each previously locked
  // object carries a watermark: "version `v` of this object is decided but not
  // yet committed here". Writers treat a watermarked object exactly like a
  // locked one (any live watermark is a conflict: the decided version is
  // committed, so the writer's snapshot can never cover it). Readers whose
  // snapshot covers the decided version park until it commits here and the
  // watermark clears — the read path takes over the PSI guarantee the lock
  // used to provide. Volatile, like the lock table: a fresh/restored server
  // starts with none and the propagation backstop re-protects the objects.
  void AddVisibilityWatermark(const ObjectId& oid, Version version, TxId tid);
  // Drops every watermark of `origin` with seqno <= through (those versions
  // are committed here now). Returns watermarks dropped.
  size_t ClearVisibilityWatermarks(SiteId origin, uint64_t through);
  // Drops all watermarks of one transaction (stale-watermark sweep: the
  // decision's origin reports the tid aborted/unknown). Returns true if any.
  bool DropWatermarksOfTx(TxId tid);
  // Drops watermarks of `origin` with seqno > after_seqno (§5.7 discard: the
  // decided versions no longer exist). Returns watermarks dropped.
  size_t DropWatermarksFrom(SiteId origin, uint64_t after_seqno);
  // Any live watermark on oid blocks a writer (coverage-independent, see above).
  bool WatermarkBlocksWrite(const ObjectId& oid) const;
  // Snapshot-aware variant (clock-ordered commit path): a watermark blocks the
  // writer only if some decided version on oid is NOT in `vts` — a version the
  // snapshot already Sees is history, not a conflict.
  bool WatermarkBlocksWrite(const ObjectId& oid, const VectorTimestamp& vts) const;
  // A watermark whose decided version `vts` covers blocks a reader: the
  // snapshot includes the version but the local history does not hold it yet.
  bool WatermarkBlocksRead(const ObjectId& oid, const VectorTimestamp& vts) const;
  // Smallest watermarked seqno of `origin` (GC belt: the frontier must not
  // fold past a version a parked reader is still waiting to see).
  std::optional<uint64_t> MinWatermarkSeqno(SiteId origin) const;
  // Distinct transactions with live watermarks (for the stale sweep).
  std::vector<std::pair<TxId, Version>> WatermarkTxs() const;
  bool has_watermarks() const { return !watermark_txs_.empty(); }
  // Total live per-object watermarks (leak canary, like lock_count()).
  size_t watermark_count() const;

  // Serializes all object state (the "index" of Section 6) plus the WAL
  // frontier it covers.
  std::string SerializeCheckpoint() const;
  void RestoreCheckpoint(std::string_view bytes);
  // WAL offset covered by the last checkpoint taken/restored.
  size_t checkpoint_frontier() const { return checkpoint_frontier_; }

  struct RecoveryResult {
    size_t records_replayed = 0;
    bool torn_tail = false;
  };
  // Rebuilds state from a checkpoint image (may be empty) plus a raw WAL
  // image: restores the checkpoint, then replays frames past its frontier.
  RecoveryResult Recover(std::string_view checkpoint_bytes, std::string_view wal_bytes,
                         size_t wal_base_offset = 0);

  Wal& wal() { return wal_; }
  const Wal& wal() const { return wal_; }

 private:
  struct WatermarkTx {
    Version version;
    std::vector<ObjectId> oids;
  };
  // Removes one transaction's watermarks from both indexes.
  void EraseWatermarkTx(std::unordered_map<TxId, WatermarkTx>::iterator it);

  std::unordered_map<ObjectId, ObjectHistory> histories_;
  Wal wal_;
  LruCache cache_;
  size_t checkpoint_frontier_ = 0;
  VectorTimestamp gc_frontier_;
  // Visibility watermarks, indexed both ways: per object (write/read checks)
  // and per transaction (clear/drop). Empty in every pre-watermark code path.
  std::unordered_map<ObjectId, std::vector<std::pair<Version, TxId>>> watermarks_;
  std::unordered_map<TxId, WatermarkTx> watermark_txs_;
};

}  // namespace walter

#endif  // SRC_STORAGE_STORE_H_
