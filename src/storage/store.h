// Store: the per-site storage engine tying together object histories, the
// write-ahead log, the object cache and checkpointing (Section 6).
//
// The Walter server drives it with committed TxRecords (its own commits and
// remote propagations); reads are snapshot reads against a vector timestamp.
// Recovery follows Section 6: restore the latest checkpoint, then replay the
// WAL tail after the checkpoint frontier.
#ifndef SRC_STORAGE_STORE_H_
#define SRC_STORAGE_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/types.h"
#include "src/common/update.h"
#include "src/crdt/cset.h"
#include "src/storage/lru_cache.h"
#include "src/storage/object_history.h"
#include "src/storage/wal.h"

namespace walter {

class Store {
 public:
  explicit Store(size_t cache_capacity_bytes = size_t{1} << 30);
  // Puts the WAL on a persistence device (real segment files). The simulated
  // default keeps the in-memory image only.
  Store(size_t cache_capacity_bytes, std::unique_ptr<WalDevice> wal_device);

  // Applies a committed transaction: logs it to the WAL and appends each of
  // its updates to the touched objects' histories. Caller guarantees each
  // transaction is applied at most once (the server's GotVTS gating).
  void Apply(const TxRecord& record);

  // Applies without logging — used when replaying the WAL itself.
  void ApplyToHistories(const TxRecord& record);

  // Snapshot reads --------------------------------------------------------
  std::optional<std::string> ReadRegular(const ObjectId& oid, const VectorTimestamp& vts) const;
  CountingSet ReadCset(const ObjectId& oid, const VectorTimestamp& vts) const;

  // Remote-read support (see ObjectHistory for semantics).
  std::optional<std::pair<std::string, Version>> ReadRegularVersioned(
      const ObjectId& oid, const VectorTimestamp& vts) const;
  std::optional<std::pair<std::string, Version>> LatestLocalVisible(
      const ObjectId& oid, const VectorTimestamp& vts, SiteId self) const;
  CountingSet ReadCsetExcluding(const ObjectId& oid, const VectorTimestamp& vts, SiteId site,
                                uint64_t min_seqno) const;
  CountingSet FoldLocalCsetOps(const ObjectId& oid, const VectorTimestamp& vts,
                               SiteId self) const;
  uint64_t MinLocalSeqno(const ObjectId& oid, SiteId self) const;

  // unmodified(oid, VTS) of Figures 11-12: no version of oid beyond vts.
  bool Unmodified(const ObjectId& oid, const VectorTimestamp& vts) const;

  std::optional<Version> LatestVersion(const ObjectId& oid) const;
  bool Has(const ObjectId& oid) const { return histories_.contains(oid); }
  size_t object_count() const { return histories_.size(); }

  // Cache ------------------------------------------------------------------
  // Records an access; returns true on a cache hit. Misses admit the entry.
  bool TouchCache(const ObjectId& oid, ObjectType type, size_t approx_bytes);
  const LruCache& cache() const { return cache_; }

  // Maintenance --------------------------------------------------------------
  // Folds history entries below `stable` (see ObjectHistory::GarbageCollect)
  // and advances the recorded GC frontier. Callers (the GC coordinator)
  // guarantee `stable` is a stability frontier: every site has durably
  // committed everything it covers and no live snapshot starts below it.
  size_t GarbageCollect(const VectorTimestamp& stable);

  // Highest frontier GC has folded at (entry-wise; persisted in checkpoints).
  // Snapshot reads below it are unanswerable and fail-stop.
  const VectorTimestamp& gc_frontier() const { return gc_frontier_; }

  // Memory gauges ------------------------------------------------------------
  // Unfolded history entries across all objects (the memory GC bounds).
  size_t TotalEntryCount() const;
  // Entries `vts` covers that GC has not folded yet: zero once histories have
  // drained to the frontier (the chaos suite's post-heal assert).
  size_t CountEntriesCoveredBy(const VectorTimestamp& vts) const;

  // Discards updates of site `site` with seqno > after_seqno from every
  // history (aggressive site-failure recovery, Section 5.7).
  size_t RemoveVersionsFrom(SiteId site, uint64_t after_seqno);

  // Serializes all object state (the "index" of Section 6) plus the WAL
  // frontier it covers.
  std::string SerializeCheckpoint() const;
  void RestoreCheckpoint(std::string_view bytes);
  // WAL offset covered by the last checkpoint taken/restored.
  size_t checkpoint_frontier() const { return checkpoint_frontier_; }

  struct RecoveryResult {
    size_t records_replayed = 0;
    bool torn_tail = false;
  };
  // Rebuilds state from a checkpoint image (may be empty) plus a raw WAL
  // image: restores the checkpoint, then replays frames past its frontier.
  RecoveryResult Recover(std::string_view checkpoint_bytes, std::string_view wal_bytes,
                         size_t wal_base_offset = 0);

  Wal& wal() { return wal_; }
  const Wal& wal() const { return wal_; }

 private:
  std::unordered_map<ObjectId, ObjectHistory> histories_;
  Wal wal_;
  LruCache cache_;
  size_t checkpoint_frontier_ = 0;
  VectorTimestamp gc_frontier_;
};

}  // namespace walter

#endif  // SRC_STORAGE_STORE_H_
