// Threaded-runtime chaos: the chaos seeds the deterministic harness replays
// (101/202/303), driven against real threads and a real clock instead of the
// single simulator — mailbox dispatch, per-shard executors, wall-clock timers
// (compressed by time_scale). Faults are injected from the test's control
// thread through the network's atomic toggles (loss, partition) plus a
// crash+replace routed through the victim's owner executor.
//
// Nondeterministic by nature, so there is no byte-identity to assert; the
// contract is chaos_test's end state: every confirmed transaction's history
// satisfies the three PSI properties, the sites converge after heal, and
// nothing leaks (locks, watermarks).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <tuple>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/cluster.h"
#include "src/psi/checker.h"
#include "src/workload/workload.h"

namespace walter {
namespace {

constexpr size_t kSites = 3;
// Hot container of the surge variant; its preferred (home) site is 0.
constexpr ContainerId kHotContainer = 0;

void SleepMs(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

// With hot_surge, the workload becomes the million-user skew shape: most
// transactions hit Zipfian keys of kHotContainer from every site at surge
// think times, the overload defenses (admission control + client retry
// budgets) are on, and the crash+replace in the fault schedule targets the hot
// shard's home server — real threads, same PSI/convergence contract.
class ThreadedChaos {
 public:
  explicit ThreadedChaos(uint64_t seed, bool hot_surge = false)
      : seed_(seed),
        hot_surge_(hot_surge),
        hot_picker_(/*keys=*/30, /*s=*/1.3, seed) {}

  void Run() {
    ClusterOptions options;
    options.num_sites = kSites;
    options.seed = seed_;
    options.server.perf = PerfModel::Instant();
    // Memory disk: applied == durable, so a crash+replace restores exactly
    // the state every observer already saw — no silent-commit reconciliation.
    options.server.disk = DiskConfig::Memory();
    options.server.gossip_interval = Seconds(1);
    options.server.resend_backoff_cap = Seconds(5);
    options.server.idle_tx_timeout = Seconds(20);
    options.client.max_attempts = 3;
    if (hot_surge_) {
      // Defenses on: sheds surface as failed ops, which the loop tolerates.
      options.server.admission_max_queue = 64;
      options.server.admission_max_inflight = 256;
      options.client.overload_retry_tokens = 4;
      options.client.overload_token_refill_per_s = 20.0;
    }
    options.runtime.workers = 2;
    options.runtime.time_scale = 5.0;  // 1 real second = 5 virtual seconds
    Cluster cluster(options);

    // Harness logs: observers fire concurrently on the owner executors. First
    // occurrence of an (origin, seqno) wins — recovery's §5.7 heal can re-fire
    // for records a replaced server re-installs, and the first position was
    // the site's real apply order. `by_version` feeds the post-replacement
    // reconciliation below.
    std::mutex log_mu;
    std::vector<std::vector<TxRecord>> logs(kSites);
    std::vector<std::set<std::pair<SiteId, uint64_t>>> applied(kSites);
    std::map<std::pair<SiteId, uint64_t>, TxRecord> by_version;
    cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
      std::lock_guard<std::mutex> lk(log_mu);
      auto key = std::make_pair(rec.origin, rec.version.seqno);
      by_version.emplace(key, rec);
      if (!applied[site].insert(key).second) {
        return;
      }
      logs[site].push_back(rec);
    });

    for (SiteId s = 0; s < kSites; ++s) {
      for (int c = 0; c < 2; ++c) {
        auto loop = std::make_unique<ClientLoop>();
        loop->client = cluster.AddClient(s);
        loop->rng = Rng(seed_ * 1000003 + s * 31 + static_cast<uint64_t>(c));
        loops_.push_back(std::move(loop));
      }
    }

    cluster.StartThreads();
    active_.store(static_cast<int>(loops_.size()));
    for (auto& loop : loops_) {
      cluster.client_executor(loop->client)
          ->Post([this, &cluster, lp = loop.get()]() { StartTx(cluster, lp); });
    }

    // Fault schedule, in real time (virtual time runs 5x faster). Each phase
    // leaves the workload running through the fault, exactly like the sim
    // nemesis; everything heals before the convergence wait.
    SleepMs(150);
    cluster.net().SetLossProbability(0.15);
    SleepMs(250);
    cluster.net().SetLossProbability(0.0);
    SiteId a = static_cast<SiteId>(seed_ % kSites);
    SiteId b = static_cast<SiteId>((seed_ + 1) % kSites);
    cluster.net().SetPartitioned(a, b, true);
    SleepMs(250);
    cluster.net().SetPartitioned(a, b, false);
    // The surge variant always crashes the hot shard's home mid-surge; the
    // base variant spreads the victim across seeds.
    SiteId victim = hot_surge_ ? static_cast<SiteId>(kHotContainer)
                               : static_cast<SiteId>((seed_ / 7) % kSites);
    cluster.RunOnServer(victim, [&]() { cluster.server(victim).Crash(); });
    // After the crash the old instance's observer is silent and the
    // replacement is not installed yet, so the victim's log length is stable:
    // everything past this position was observed by the replacement.
    size_t pre_crash_len = 0;
    {
      std::lock_guard<std::mutex> lk(log_mu);
      pre_crash_len = logs[victim].size();
    }
    cluster.ReplaceServer(victim);
    // Reconcile the harness log, like the sim chaos harness does: a restored
    // server treats everything durably applied as committed (Section 5.7)
    // without firing the commit observer — it cannot know which records the
    // crashed instance already reported. Any record inside the restored
    // frontier the victim never reported committed silently during the
    // restore, so it belongs between the pre-crash entries and everything the
    // replacement observes afterwards. Running on the victim's owner executor
    // makes the frontier read atomic with respect to its commit processing.
    cluster.RunOnServer(victim, [&]() {
      std::lock_guard<std::mutex> lk(log_mu);
      const VectorTimestamp& frontier = cluster.server(victim).committed_vts();
      std::vector<TxRecord> missing;
      for (SiteId o = 0; o < kSites; ++o) {
        for (uint64_t q = 1; q <= frontier.at(o); ++q) {
          auto key = std::make_pair(o, q);
          if (applied[victim].count(key) > 0) {
            continue;
          }
          auto it = by_version.find(key);
          if (it == by_version.end()) {
            // Own record flushed but unacknowledged at the crash: no observer
            // anywhere has seen it; only the restored server retains it.
            const TxRecord* rec =
                o == victim ? cluster.server(victim).RetainedLocalCommit(q) : nullptr;
            if (rec == nullptr) {
              continue;
            }
            it = by_version.emplace(key, *rec).first;
          }
          applied[victim].insert(key);
          missing.push_back(it->second);
        }
      }
      // Causal order among the reconciled records themselves: if T1 committed
      // before T2 started, T2's snapshot covers T1's (componentwise, strictly
      // at T1's origin — the receive guard and the sharded commit gate
      // enforce the coverage at T1's commit), so sorting by snapshot size is
      // consistent with causality. Origin-major order is not: it can put an
      // origin-0 record that saw an origin-2 record ahead of it.
      auto snap_sum = [](const TxRecord& rec) {
        uint64_t sum = 0;
        for (SiteId s = 0; s < static_cast<SiteId>(rec.start_vts.num_sites()); ++s) {
          sum += rec.start_vts.at(s);
        }
        return sum;
      };
      std::stable_sort(missing.begin(), missing.end(),
                       [&](const TxRecord& x, const TxRecord& y) {
                         auto kx = std::make_tuple(snap_sum(x), x.origin, x.version.seqno);
                         auto ky = std::make_tuple(snap_sum(y), y.origin, y.version.seqno);
                         return kx < ky;
                       });
      logs[victim].insert(logs[victim].begin() + static_cast<ptrdiff_t>(pre_crash_len),
                          missing.begin(), missing.end());
    });
    SleepMs(300);

    // Stop the workload and drain the in-flight chains.
    stop_.store(true, std::memory_order_relaxed);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (active_.load() > 0 && std::chrono::steady_clock::now() < deadline) {
      SleepMs(5);
    }
    ASSERT_EQ(active_.load(), 0) << "client chains stuck past their retry budgets";

    // Post-heal convergence: identical committed frontiers everywhere, and
    // every prepare lock and visibility watermark drained — stale locks from
    // transactions the crash or the retry budget orphaned clear through the
    // kTxStatus probes and the idle-transaction sweep, which lag the frontier
    // by design. All state is observed through each server's owner executor.
    bool converged = false;
    while (!converged && std::chrono::steady_clock::now() < deadline) {
      SleepMs(20);
      VectorTimestamp v0 = cluster.SnapshotCommittedVts(0);
      converged = true;
      for (SiteId s = 1; s < kSites; ++s) {
        if (!(cluster.SnapshotCommittedVts(s) == v0)) {
          converged = false;
          break;
        }
      }
      for (SiteId s = 0; converged && s < kSites; ++s) {
        size_t locks = 0, watermarks = 0;
        cluster.RunOnServer(s, [&]() {
          locks = cluster.server(s).lock_count();
          watermarks = cluster.server(s).watermark_count();
        });
        converged = locks == 0 && watermarks == 0;
      }
    }
    cluster.StopThreads();
    ASSERT_TRUE(converged) << "sites did not converge (or drain locks) after heal";

    EXPECT_GT(confirmed_.load(), 0) << "chaos starved the workload completely";
    if (hot_surge_) {
      EXPECT_GT(hot_confirmed_.load(), 0)
          << "the hot-key surge never committed against the hot container";
    }
    for (SiteId s = 0; s < kSites; ++s) {
      EXPECT_EQ(cluster.server(s).committed_vts(), cluster.server(0).committed_vts())
          << "site " << s << " did not converge";
      EXPECT_EQ(cluster.server(s).lock_count(), 0u) << "site " << s;
      EXPECT_EQ(cluster.server(s).watermark_count(), 0u) << "site " << s;
    }

    // PSI over the recorded history: apply orders per site (already deduped
    // and reconciled above); transaction details (with confirmed reads)
    // registered from each origin.
    PsiChecker checker(kSites);
    {
      std::lock_guard<std::mutex> lk(log_mu);
      std::lock_guard<std::mutex> rk(reads_mu_);
      for (SiteId s = 0; s < kSites; ++s) {
        for (const TxRecord& rec : logs[s]) {
          checker.OnApply(s, rec.tid);
          if (rec.origin != s) {
            continue;
          }
          RecordedTx recorded;
          recorded.record = rec;
          auto it = reads_by_tid_.find(rec.tid);
          if (it != reads_by_tid_.end()) {
            recorded.reads = it->second;
          }
          checker.OnCommit(std::move(recorded));
        }
      }
    }
    Status result = checker.Check();
    EXPECT_TRUE(result.ok()) << "seed " << seed_ << ": " << result.ToString();
    if (!result.ok()) {
      // Debug dump: every observed log entry touching the object named in the
      // error, in observation order, per site.
      uint64_t c = 0, l = 0;
      size_t p = result.ToString().find("oid(");
      if (p != std::string::npos &&
          std::sscanf(result.ToString().c_str() + p, "oid(%lu:%lu)", &c, &l) == 2) {
        ObjectId target{c, l};
        std::lock_guard<std::mutex> lk(log_mu);
        for (SiteId s = 0; s < kSites; ++s) {
          for (size_t i = 0; i < logs[s].size(); ++i) {
            const TxRecord& rec = logs[s][i];
            for (const auto& u : rec.updates) {
              if (u.oid == target) {
                std::fprintf(stderr,
                             "site%u[%zu]: tid=%lu origin=%u seqno=%lu vts=%s val=%s\n",
                             s, i, static_cast<unsigned long>(rec.tid), rec.origin,
                             static_cast<unsigned long>(rec.version.seqno),
                             rec.start_vts.ToString().c_str(), u.data.c_str());
              }
            }
          }
        }
      }
    }
  }

 private:
  // Per-client workload state: only ever touched from the client's owner
  // executor, so it needs no lock of its own.
  struct ClientLoop {
    WalterClient* client = nullptr;
    Rng rng{1};
    uint64_t next_value = 1;
  };

  ObjectId RandomObject(ClientLoop* lp, ContainerId container) {
    return ObjectId{container, lp->rng.Uniform(30)};
  }

  void StartTx(Cluster& cluster, ClientLoop* lp) {
    if (stop_.load(std::memory_order_relaxed)) {
      active_.fetch_sub(1);
      return;
    }
    auto tx = std::make_shared<Tx>(lp->client);
    double dice = lp->rng.NextDouble();
    if (hot_surge_ && dice < 0.6) {
      // Hot-key transaction: read a Zipfian key of the hot container, then
      // write one — from every site, so the hot home takes skewed local load
      // and skewed slow-commit traffic at once.
      ObjectId read_oid{kHotContainer, hot_picker_.Pick(lp->rng)};
      tx->Read(read_oid, [this, &cluster, lp, tx, read_oid](
                             Status s, std::optional<std::string> v) {
        std::vector<RecordedRead> reads;
        if (s.ok()) {
          reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
        }
        tx->Write(ObjectId{kHotContainer, hot_picker_.Pick(lp->rng)},
                  "h" + std::to_string(lp->next_value++));
        Finish(cluster, lp, tx, std::move(reads), /*hot=*/true);
      });
      return;
    }
    if (dice < 0.15) {
      // Cross-site write: slow commit through a remote preferred site.
      ContainerId remote =
          (lp->client->site() + 1 + lp->rng.Uniform(kSites - 1)) % kSites;
      tx->Write(RandomObject(lp, remote), "x" + std::to_string(lp->next_value++));
      Finish(cluster, lp, tx, {});
    } else {
      ContainerId local = lp->client->site();
      ObjectId read_oid = RandomObject(lp, local);
      tx->Read(read_oid, [this, &cluster, lp, tx, read_oid](
                             Status s, std::optional<std::string> v) {
        std::vector<RecordedRead> reads;
        if (s.ok()) {
          reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
        }
        ContainerId local = lp->client->site();
        tx->Write(RandomObject(lp, local), "w" + std::to_string(lp->next_value++));
        if (lp->rng.Bernoulli(0.3)) {
          tx->Write(RandomObject(lp, local), "w" + std::to_string(lp->next_value++));
        }
        Finish(cluster, lp, tx, std::move(reads));
      });
    }
  }

  void Finish(Cluster& cluster, ClientLoop* lp, std::shared_ptr<Tx> tx,
              std::vector<RecordedRead> reads, bool hot = false) {
    TxId tid = tx->tid();
    {
      std::lock_guard<std::mutex> lk(reads_mu_);
      reads_by_tid_[tid] = std::move(reads);
    }
    tx->Commit([this, &cluster, lp, tx, tid, hot](Status s) {
      if (s.ok()) {
        confirmed_.fetch_add(1);
        if (hot) {
          hot_confirmed_.fetch_add(1);
        }
      } else {
        // May still have committed server-side (lost response): without
        // confirmation its reads are not checkable.
        std::lock_guard<std::mutex> lk(reads_mu_);
        reads_by_tid_.erase(tid);
      }
      // Think on the owner executor's timer queue, then go again. Surge mode
      // thinks briefly — the point is sustained pressure on the hot shard.
      SimDuration think = hot_surge_
                              ? Millis(1 + static_cast<double>(lp->rng.Uniform(4)))
                              : Millis(2 + static_cast<double>(lp->rng.Uniform(10)));
      lp->client->sim()->After(think,
                               [this, &cluster, lp]() { StartTx(cluster, lp); });
    });
  }

  uint64_t seed_;
  bool hot_surge_;
  // Pick() is const and draws from the caller's per-loop rng, so the shared
  // picker is safe to use from every client executor concurrently.
  ZipfKeyPicker hot_picker_;
  std::vector<std::unique_ptr<ClientLoop>> loops_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};
  std::atomic<int> confirmed_{0};
  std::atomic<int> hot_confirmed_{0};
  std::mutex reads_mu_;
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid_;
};

TEST(ThreadedChaosTest, Seed101) { ThreadedChaos(101).Run(); }
TEST(ThreadedChaosTest, Seed202) { ThreadedChaos(202).Run(); }
TEST(ThreadedChaosTest, Seed303) { ThreadedChaos(303).Run(); }

// Zipfian hot-key surge + crash of the hot shard's home, defenses on.
TEST(ThreadedChaosTest, HotKeySurgeSeed404) {
  ThreadedChaos(404, /*hot_surge=*/true).Run();
}
TEST(ThreadedChaosTest, HotKeySurgeSeed505) {
  ThreadedChaos(505, /*hot_surge=*/true).Run();
}

}  // namespace
}  // namespace walter
