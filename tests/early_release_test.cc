// Early lock release (visibility watermarks, wound-wait, ordered prepares):
// PSI over seeded cross-shard workloads at high cross-shard fractions, the
// stale-lock-sweep interplay, coordinator crash after the commit decision,
// and the GC stability-floor belt for watermarked versions.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/config/shard_map.h"
#include "src/core/cluster.h"
#include "src/obs/watchdog.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// Logic-test options (shard_test.cc's ShardedOptions): no modeled CPU/disk
// cost, no gossip, deterministic network. early_lock_release stays at its
// default (on) — these tests exercise the new protocol.
ClusterOptions ShardedOptions(size_t num_sites, size_t shards_per_site) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.servers_per_site.assign(num_sites, shards_per_site);
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

// Finds a container preferred at `site` that its shard map hashes to `shard`.
ContainerId ContainerOnShard(const ShardMap& map, SiteId site, size_t shard) {
  for (ContainerId c = site;; c += map.num_sites()) {
    if (map.ShardOf(c, site) == shard) {
      return c;
    }
  }
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_TRUE(done);
  return value;
}

// Seeded read-then-write workload where `cross_fraction` of the transactions
// add a second write on the sibling shard (intra-site 2PC with early release).
// The PSI checker replays every commit at every server.
void RunSeededCrossShardPsi(double cross_fraction, uint64_t seed) {
  ClusterOptions options = ShardedOptions(2, 2);
  options.seed = seed;
  Cluster cluster(options);
  const ShardMap& map = cluster.shard_map();

  PsiChecker checker(cluster.num_servers());
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid;
  cluster.ObserveCommits([&](SiteId server, const TxRecord& rec) {
    checker.OnApply(server, rec.tid);
    if (server == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      auto it = reads_by_tid.find(rec.tid);
      if (it != reads_by_tid.end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  });

  Rng rng(seed * 13 + 5);
  int committed = 0;
  int active = 0;
  uint64_t next_value = 1;
  std::vector<std::vector<ContainerId>> containers(2);
  for (SiteId s = 0; s < 2; ++s) {
    for (size_t shard = 0; shard < 2; ++shard) {
      containers[s].push_back(ContainerOnShard(map, s, shard));
    }
  }

  std::function<void(WalterClient*, SiteId, int)> start = [&](WalterClient* client,
                                                              SiteId site, int remaining) {
    if (remaining == 0) {
      --active;
      return;
    }
    auto tx = std::make_shared<Tx>(client);
    // The read and the first write pick shards independently: the snapshot
    // assigner and the commit origin routinely differ, which the checker's
    // visibility-gated Property-1 replay handles directly.
    size_t read_shard = rng.Uniform(2);
    size_t first_shard = rng.Uniform(2);
    bool cross = rng.NextDouble() < cross_fraction;
    ContainerId read_c = containers[site][read_shard];
    ContainerId first_c = containers[site][first_shard];
    ObjectId read_oid = Oid(read_c, rng.Uniform(12));
    tx->Read(read_oid, [&, client, site, remaining, tx, read_oid, cross, first_shard,
              first_c](Status s, std::optional<std::string> v) {
      ASSERT_TRUE(s.ok());
      std::vector<RecordedRead> reads;
      reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
      tx->Write(Oid(first_c, rng.Uniform(12)), "w" + std::to_string(next_value++));
      if (cross) {
        tx->Write(Oid(containers[site][1 - first_shard], rng.Uniform(12)),
                  "x" + std::to_string(next_value++));
      }
      TxId tid = tx->tid();
      reads_by_tid[tid] = std::move(reads);
      tx->Commit([&, client, site, remaining, tx, tid](Status s) {
        if (s.ok()) {
          ++committed;
        } else {
          reads_by_tid.erase(tid);
        }
        start(client, site, remaining - 1);
      });
    });
  };

  for (SiteId s = 0; s < 2; ++s) {
    for (int c = 0; c < 3; ++c) {
      ++active;
      start(cluster.AddClient(s), s, 30);
    }
  }
  while (active > 0 && cluster.sim().Step()) {
  }
  ASSERT_EQ(active, 0);
  cluster.RunFor(Seconds(10));  // full propagation

  EXPECT_GT(committed, 50);
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();

  uint64_t slow_commits = 0;
  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    slow_commits += cluster.server(v).stats().slow_commits;
    // Nothing leaked: early release freed every prepare lock and propagation
    // cleared every watermark.
    EXPECT_EQ(cluster.server(v).lock_count(), 0u) << "server " << v;
    EXPECT_EQ(cluster.server(v).watermark_count(), 0u) << "server " << v;
    EXPECT_EQ(cluster.server(v).lock_waiter_count(), 0u) << "server " << v;
    // An early-released lock must never be re-queried as orphaned.
    EXPECT_EQ(cluster.server(v).stats().stale_lock_queries, 0u) << "server " << v;
    // Every committed transaction propagated to every shard of every site.
    for (SiteId origin = 0; origin < static_cast<SiteId>(cluster.num_servers()); ++origin) {
      EXPECT_EQ(cluster.server(v).committed_vts().at(origin),
                cluster.server(origin).committed_vts().at(origin))
          << "server " << v << " missing transactions from " << origin;
    }
  }
  EXPECT_GT(slow_commits, 0u);  // the cross-shard fraction actually ran 2PC
}

TEST(EarlyReleasePsiTest, SeededCrossShardFraction50HasNoAnomalies) {
  RunSeededCrossShardPsi(0.5, 51);
}

TEST(EarlyReleasePsiTest, SeededCrossShardFraction100HasNoAnomalies) {
  RunSeededCrossShardPsi(1.0, 52);
}

// Coordinator crash after the commit decision: the participant released its
// locks and holds visibility watermarks. The replacement coordinator recovers
// the record from its durable log and propagation clears the watermarks (or,
// if the record did not survive, the stale-watermark sweep learns the tid is
// dead and drops them). Either way nothing wedges and nothing leaks.
TEST(EarlyReleaseCrashTest, CoordinatorCrashAfterDecisionHeals) {
  ClusterOptions options = ShardedOptions(2, 2);
  options.seed = 77;
  Cluster cluster(options);
  const ShardMap& map = cluster.shard_map();
  ContainerId c0 = ContainerOnShard(map, 0, 0);
  ContainerId c1 = ContainerOnShard(map, 0, 1);
  SiteId coordinator = map.ServerAt(0, 0);  // c0's owner coordinates the 2PC
  SiteId participant = map.ServerAt(0, 1);

  WalterClient* client = cluster.AddClient(0);
  bool committed = false;
  auto tx = std::make_shared<Tx>(client);
  tx->Write(Oid(c0, 1), "a");
  tx->Write(Oid(c1, 2), "b");
  tx->Commit([&](Status s) { committed = s.ok(); });

  // Step until the participant installs the watermark (decision received,
  // record not propagated yet), then crash the coordinator in that window.
  bool saw_watermark = false;
  for (int i = 0; i < 200000 && !saw_watermark; ++i) {
    if (!cluster.sim().Step()) {
      break;
    }
    saw_watermark = cluster.server(participant).watermark_count() > 0;
  }
  ASSERT_TRUE(saw_watermark) << "decision never produced a watermark";
  EXPECT_EQ(cluster.server(participant).lock_count(), 0u)
      << "participant still holds prepare locks after the decision";

  cluster.server(coordinator).Crash();
  cluster.ReplaceServer(coordinator);
  // Long enough for resync + propagation and for the stale sweeps (2x the 2s
  // resend timeout) to fire if the record had been lost.
  cluster.RunFor(Seconds(12));

  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    EXPECT_EQ(cluster.server(v).lock_count(), 0u) << "server " << v;
    EXPECT_EQ(cluster.server(v).watermark_count(), 0u) << "server " << v;
  }
  ASSERT_TRUE(committed);  // the decision was reached before the crash
  // The commit was durable at the coordinator before the decision went out,
  // so the replacement recovered it and both writes are visible everywhere.
  WalterClient* reader = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, reader, Oid(c0, 1)).value_or(""), "a");
  EXPECT_EQ(ReadOnce(cluster, reader, Oid(c1, 2)).value_or(""), "b");
}

// The GC stability floor must not fold a version some parked reader is still
// waiting to see: a live watermark at seqno k caps the floor at k-1 for the
// decided version's origin.
TEST(EarlyReleaseGcTest, StabilityFloorStopsBelowWatermarkedVersion) {
  ClusterOptions options = ShardedOptions(2, 2);
  options.seed = 9;
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 5; ++i) {
    Tx tx(client);
    tx.Write(Oid(ContainerOnShard(cluster.shard_map(), 0, 0), i), "v");
    bool done = false;
    tx.Commit([&](Status s) {
      EXPECT_TRUE(s.ok());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }
  cluster.RunFor(Seconds(5));

  WalterServer& server = cluster.server(cluster.shard_map().ServerAt(0, 1));
  SiteId origin = cluster.shard_map().ServerAt(0, 0);
  uint64_t committed_at_origin = server.committed_vts().at(origin);
  ASSERT_GE(committed_at_origin, 5u);
  VectorTimestamp before = server.StabilityFloor();
  EXPECT_GE(before.at(origin), committed_at_origin);

  // Normal case: the decided version is ahead of this server's committed
  // frontier, so the floor already sits below it and stays put.
  Version ahead{origin, committed_at_origin + 3};
  server.store().AddVisibilityWatermark(Oid(1, 98), ahead, /*tid=*/111111);
  EXPECT_EQ(server.StabilityFloor().at(origin), before.at(origin));
  EXPECT_LT(server.StabilityFloor().at(origin), ahead.seqno);
  server.store().DropWatermarksOfTx(111111);

  // Defensive case: a watermark at (or below) the floor caps the floor at
  // seqno - 1, so GC can never fold the version a parked reader waits on.
  Version at_floor{origin, before.at(origin)};
  server.store().AddVisibilityWatermark(Oid(1, 99), at_floor, /*tid=*/123456);
  VectorTimestamp with_watermark = server.StabilityFloor();
  EXPECT_EQ(with_watermark.at(origin), at_floor.seqno - 1)
      << "floor must stop below the watermarked version";

  // Clearing the watermark (as remote commit would) releases the belt.
  server.store().DropWatermarksOfTx(123456);
  EXPECT_EQ(server.StabilityFloor().at(origin), before.at(origin));
}

// Watermark write/read blocking semantics at the store level: any live
// watermark blocks writers; readers are blocked only when their snapshot
// covers the decided version.
TEST(EarlyReleaseStoreTest, WatermarkBlockingSemantics) {
  Store store;
  ObjectId oid = Oid(7, 1);
  EXPECT_FALSE(store.WatermarkBlocksWrite(oid));

  store.AddVisibilityWatermark(oid, Version{2, 10}, /*tid=*/42);
  EXPECT_TRUE(store.WatermarkBlocksWrite(oid));
  EXPECT_FALSE(store.WatermarkBlocksWrite(Oid(7, 2)));

  VectorTimestamp covers(4);
  covers.set(2, 10);
  VectorTimestamp below(4);
  below.set(2, 9);
  EXPECT_TRUE(store.WatermarkBlocksRead(oid, covers));
  EXPECT_FALSE(store.WatermarkBlocksRead(oid, below));

  EXPECT_EQ(store.MinWatermarkSeqno(2).value_or(0), 10u);
  EXPECT_FALSE(store.MinWatermarkSeqno(1).has_value());

  // Clearing through seqno 9 keeps it; through 10 drops it.
  EXPECT_EQ(store.ClearVisibilityWatermarks(2, 9), 0u);
  EXPECT_TRUE(store.WatermarkBlocksWrite(oid));
  EXPECT_EQ(store.ClearVisibilityWatermarks(2, 10), 1u);
  EXPECT_FALSE(store.WatermarkBlocksWrite(oid));
  EXPECT_EQ(store.watermark_count(), 0u);
}

// --- bounded re-park / starvation ------------------------------------------

// A watermark that never clears must starve the parked read out with
// kUnavailable once read_park_budget is spent (1ms soft phase, then doubling
// backoff), instead of re-parking at 1ms forever. The give-up is counted in
// Stats::reads_starved and the simulation quiesces.
TEST(EarlyReleaseStarvationTest, StuckWatermarkStarvesReadOut) {
  ClusterOptions options;
  options.num_sites = 1;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = 0;
  options.server.read_park_soft_retries = 16;
  options.server.read_park_backoff_cap = Millis(8);
  options.server.read_park_budget = Millis(60);
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  {
    Tx tx(client);
    tx.Write(Oid(0, 1), "v");
    bool done = false;
    tx.Commit([&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }

  // Plant a watermark on an already-committed version: every fresh snapshot
  // covers it, and nothing in this quiesced cluster will ever clear it.
  WalterServer& server = cluster.server(0);
  uint64_t seqno = server.committed_vts().at(0);
  ASSERT_GE(seqno, 1u);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, seqno}, /*tid=*/999999);

  Tx tx(client);
  std::optional<Status> read_status;
  tx.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { read_status = s; });
  while (!read_status.has_value() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(read_status.has_value()) << "parked read never resolved";
  EXPECT_EQ(read_status->code(), StatusCode::kUnavailable) << read_status->ToString();
  EXPECT_EQ(server.stats().reads_starved, 1u);
  // The soft phase re-parked (and counted) before backoff took over.
  EXPECT_GE(server.stats().watermark_read_waits,
            uint64_t{options.server.read_park_soft_retries});

  server.store().DropWatermarksOfTx(999999);
  cluster.RunUntilIdle();
}

// With wait_watermark no longer counting as watchdog progress, a read stuck
// behind a watermark longer than the liveness budget produces a stuck verdict
// while still parked — the silent-re-park-forever shape is now observable.
TEST(EarlyReleaseStarvationTest, StuckWatermarkSurfacesWatchdogVerdict) {
  ClusterOptions options;
  options.num_sites = 1;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = 0;
  options.server.read_park_budget = Seconds(3);  // parked well past the budget
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  {
    Tx tx(client);
    tx.Write(Oid(0, 1), "v");
    bool done = false;
    tx.Commit([&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }
  WalterServer& server = cluster.server(0);
  server.store().AddVisibilityWatermark(Oid(0, 1), Version{0, server.committed_vts().at(0)},
                                        /*tid=*/888888);

  {
    WatchdogOptions wo;
    wo.budget = Seconds(1);
    wo.check_interval = Millis(200);
    wo.abort_on_stuck = false;
    LivenessWatchdog watchdog(&cluster.sim(), wo);

    Tx tx(client);
    std::optional<Status> read_status;
    tx.Read(Oid(0, 1), [&](Status s, std::optional<std::string>) { read_status = s; });
    cluster.RunFor(Seconds(2));

    ASSERT_TRUE(watchdog.fired()) << "parked read never tripped the watchdog";
    EXPECT_EQ(watchdog.reports()[0].tid, tx.tid());
    EXPECT_FALSE(read_status.has_value()) << "verdict must precede the starve-out";
  }

  server.store().DropWatermarksOfTx(888888);
  cluster.RunUntilIdle();
}

}  // namespace
}  // namespace walter
