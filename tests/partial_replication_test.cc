// Partial replication (Sections 4.3 and 5.8): containers replicated at a
// subset of sites; reads from a non-replica site fetch from the preferred site
// and merge with local unreplicated updates; garbage collection.
#include <gtest/gtest.h>

#include <optional>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

template <typename Pred>
void Drive(Cluster& cluster, Pred done) {
  while (!done() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(done());
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

class PartialReplicationTest : public ::testing::Test {
 protected:
  PartialReplicationTest() : cluster_(LogicOptions(3)) {
    // Container 7: preferred at site 0, replicated ONLY at sites 0 and 1.
    cluster_.UpsertContainerEverywhere(ContainerInfo{7, 0, {0, 1}});
  }
  Cluster cluster_;
};

TEST_F(PartialReplicationTest, NonReplicaSiteReadsViaPreferredSite) {
  WalterClient* writer = cluster_.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster_, writer, Oid(7, 1), "stored-at-0-and-1").ok());
  cluster_.RunFor(Seconds(2));

  // Site 2 does not replicate container 7: the read is served remotely.
  WalterClient* reader = cluster_.AddClient(2);
  EXPECT_EQ(ReadOnce(cluster_, reader, Oid(7, 1)), "stored-at-0-and-1");
  EXPECT_GE(cluster_.server(2).stats().remote_reads, 1u);
  // And the object's updates were never stored at site 2.
  EXPECT_FALSE(cluster_.server(2).store().Has(Oid(7, 1)));
}

TEST_F(PartialReplicationTest, ReplicaSiteReadsLocally) {
  WalterClient* writer = cluster_.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster_, writer, Oid(7, 2), "v").ok());
  cluster_.RunFor(Seconds(2));
  WalterClient* reader = cluster_.AddClient(1);
  uint64_t remote_before = cluster_.server(1).stats().remote_reads;
  EXPECT_EQ(ReadOnce(cluster_, reader, Oid(7, 2)), "v");
  EXPECT_EQ(cluster_.server(1).stats().remote_reads, remote_before);
}

TEST_F(PartialReplicationTest, NonReplicaWriteSlowCommitsAndMergesOnRead) {
  // A write from non-replica site 2 slow-commits through the preferred site;
  // before the update propagates back, a read AT SITE 2 must still see the
  // transaction's own committed write (merge of local history + remote fetch,
  // Figure 10).
  WalterClient* client = cluster_.AddClient(2);
  ASSERT_TRUE(CommitWrite(cluster_, client, Oid(7, 3), "written-from-2").ok());
  EXPECT_EQ(cluster_.server(2).stats().slow_commits, 1u);
  // Immediately (no propagation time): local history holds the fresh write.
  EXPECT_EQ(ReadOnce(cluster_, client, Oid(7, 3)), "written-from-2");
  // After full propagation it is still correct (served by merge or remotely).
  cluster_.RunFor(Seconds(3));
  EXPECT_EQ(ReadOnce(cluster_, client, Oid(7, 3)), "written-from-2");
}

TEST_F(PartialReplicationTest, CsetRemoteReadMergesWithoutDoubleCounting) {
  // Site 2 adds to a cset it does not replicate; reading it back from site 2
  // must count the local unreplicated op exactly once, before and after it
  // propagates to the preferred site (the exclusion logic of Section 4.3).
  WalterClient* client = cluster_.AddClient(2);
  ObjectId cset = Oid(7, 100);
  Tx tx(client);
  tx.SetAdd(cset, Oid(9, 1));
  bool committed = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    committed = true;
  });
  Drive(cluster_, [&] { return committed; });

  auto count_at_2 = [&]() {
    Tx read_tx(client);
    int64_t count = -1;
    bool done = false;
    read_tx.SetReadId(cset, Oid(9, 1), [&](Status s, int64_t c) {
      EXPECT_TRUE(s.ok());
      count = c;
      done = true;
    });
    while (!done && cluster_.sim().Step()) {
    }
    return count;
  };

  EXPECT_EQ(count_at_2(), 1);  // before propagation: local op only
  cluster_.RunFor(Seconds(3));
  EXPECT_EQ(count_at_2(), 1);  // after propagation: not double counted
}

TEST_F(PartialReplicationTest, PropagationSkipsNonReplicaSites) {
  WalterClient* writer = cluster_.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster_, writer, Oid(7, 4), "data").ok());
  cluster_.RunFor(Seconds(3));
  // The transaction committed at all sites (PSI semantics, Section 4.3)...
  EXPECT_EQ(cluster_.server(2).committed_vts().at(0), 1u);
  // ...but site 2 stored nothing for it.
  EXPECT_FALSE(cluster_.server(2).store().Has(Oid(7, 4)));
  EXPECT_TRUE(cluster_.server(1).store().Has(Oid(7, 4)));
}

TEST(GarbageCollectionTest, FoldedHistoriesStillServeNewSnapshots) {
  Cluster cluster(LogicOptions(2));
  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 5), "v" + std::to_string(i)).ok());
  }
  cluster.RunFor(Seconds(2));

  // GC both sites to the globally stable frontier.
  VectorTimestamp stable = cluster.server(0).committed_vts();
  for (SiteId s = 0; s < 2; ++s) {
    VectorTimestamp site_vts = cluster.server(s).committed_vts();
    // The stable frontier is what everyone has committed.
    for (SiteId o = 0; o < 2; ++o) {
      stable.set(o, std::min(stable.at(o), site_vts.at(o)));
    }
  }
  size_t folded0 = cluster.server(0).GarbageCollect(stable);
  size_t folded1 = cluster.server(1).GarbageCollect(stable);
  EXPECT_GT(folded0, 0u);
  EXPECT_GT(folded1, 0u);

  // Reads at fresh snapshots still see the latest value at both sites.
  EXPECT_EQ(ReadOnce(cluster, client, Oid(0, 5)), "v29");
  WalterClient* remote = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, remote, Oid(0, 5)), "v29");
  // And new writes continue fine after GC.
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(0, 5), "after-gc").ok());
  EXPECT_EQ(ReadOnce(cluster, client, Oid(0, 5)), "after-gc");
}

}  // namespace
}  // namespace walter
