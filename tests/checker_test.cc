// Negative tests for PsiChecker: hand-constructed histories that violate each
// PSI property must be rejected (a checker that never fires is worthless), and
// matching correct histories must pass.
#include <gtest/gtest.h>

#include "src/psi/checker.h"

namespace walter {
namespace {

ObjectId A() { return ObjectId{1, 1}; }
ObjectId B() { return ObjectId{1, 2}; }

TxRecord MakeTx(TxId tid, SiteId origin, uint64_t seqno, VectorTimestamp start,
                std::vector<ObjectUpdate> updates) {
  TxRecord rec;
  rec.tid = tid;
  rec.origin = origin;
  rec.version = Version{origin, seqno};
  rec.start_vts = std::move(start);
  rec.updates = std::move(updates);
  return rec;
}

VectorTimestamp Vts(std::vector<uint64_t> v) { return VectorTimestamp(std::move(v)); }

RecordedTx Recorded(TxRecord rec, std::vector<RecordedRead> reads = {}) {
  RecordedTx r;
  r.record = std::move(rec);
  r.reads = std::move(reads);
  return r;
}

TEST(CheckerTest, AcceptsCleanSequentialHistory) {
  PsiChecker checker(2);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "a1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({1, 0}), {ObjectUpdate::Data(A(), "a2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  for (SiteId s = 0; s < 2; ++s) {
    checker.OnApply(s, 1);
    checker.OnApply(s, 2);
  }
  EXPECT_TRUE(checker.Check().ok());
}

TEST(CheckerTest, DetectsSnapshotReadViolation) {
  PsiChecker checker(1);
  TxRecord writer = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "committed")});
  checker.OnCommit(Recorded(writer));
  checker.OnApply(0, 1);

  // Reader whose snapshot includes tx1 but claims to have read a stale value.
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead bad_read;
  bad_read.oid = A();
  bad_read.value = "stale";  // should be "committed"
  checker.OnCommit(Recorded(reader, {bad_read}));
  checker.OnApply(0, 2);

  Status s = checker.CheckProperty1SnapshotReads();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 1"), std::string::npos);
}

TEST(CheckerTest, DetectsStaleNilRead) {
  PsiChecker checker(1);
  TxRecord writer = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "v")});
  checker.OnCommit(Recorded(writer));
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead nil_read;
  nil_read.oid = A();
  nil_read.value = std::nullopt;  // claims A was unwritten
  checker.OnCommit(Recorded(reader, {nil_read}));
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.CheckProperty1SnapshotReads().ok());
}

TEST(CheckerTest, DetectsCsetSnapshotViolation) {
  PsiChecker checker(1);
  TxRecord adder = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Add(A(), B())});
  checker.OnCommit(Recorded(adder));
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Add(A(), ObjectId{9, 9})});
  RecordedRead read;
  read.oid = A();
  read.is_cset = true;
  read.cset = CountingSet{};  // should contain B with count 1
  checker.OnCommit(Recorded(reader, {read}));
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.CheckProperty1SnapshotReads().ok());
}

TEST(CheckerTest, DetectsWriteWriteConflictBetweenConcurrentTxns) {
  PsiChecker checker(2);
  // Both transactions start from the empty snapshot at site 0 and write A:
  // somewhere-concurrent with intersecting write sets.
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({0, 0}), {ObjectUpdate::Data(A(), "2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  Status s = checker.CheckProperty2NoWriteConflicts();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 2"), std::string::npos);
}

TEST(CheckerTest, AllowsConcurrentDisjointWrites) {
  PsiChecker checker(1);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({0}), {ObjectUpdate::Data(B(), "1")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  EXPECT_TRUE(checker.CheckProperty2NoWriteConflicts().ok());
}

TEST(CheckerTest, AllowsConcurrentCsetUpdatesToSameObject) {
  PsiChecker checker(2);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Add(A(), B())});
  TxRecord t2 = MakeTx(2, 1, 1, Vts({0, 0}), {ObjectUpdate::Add(A(), B())});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);
  checker.OnApply(1, 1);
  EXPECT_TRUE(checker.Check().ok());  // cset ops never conflict
}

TEST(CheckerTest, DetectsCausalityViolationAcrossSites) {
  PsiChecker checker(2);
  // T1 commits at site 0; T2 starts at site 0 AFTER T1 (startVTS includes it).
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({1, 0}), {ObjectUpdate::Data(B(), "2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  // Site 1 commits them in the WRONG order: T2 before T1.
  checker.OnApply(1, 2);
  checker.OnApply(1, 1);
  Status s = checker.CheckProperty3CommitCausality();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 3"), std::string::npos);
}

TEST(CheckerTest, AllowsDifferentOrdersForTrulyConcurrentTxns) {
  PsiChecker checker(2);
  // Independent transactions at different sites, neither sees the other: PSI's
  // long fork — sites may commit them in opposite orders.
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 1, 1, Vts({0, 0}), {ObjectUpdate::Data(B(), "1")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);  // opposite order at site 1
  checker.OnApply(1, 1);
  EXPECT_TRUE(checker.Check().ok());
}

TEST(CheckerTest, ReadOwnSnapshotWithRemoteTxnsVisible) {
  PsiChecker checker(2);
  // Remote txn from site 1 propagates to site 0 before the reader starts.
  TxRecord remote = MakeTx(1, 1, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "remote")});
  checker.OnCommit(Recorded(remote));
  checker.OnApply(1, 1);
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 1, Vts({0, 1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead read;
  read.oid = A();
  read.value = "remote";
  checker.OnCommit(Recorded(reader, {read}));
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);
  EXPECT_TRUE(checker.Check().ok());
}

}  // namespace
}  // namespace walter
