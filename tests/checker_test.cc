// Negative tests for PsiChecker: hand-constructed histories that violate each
// PSI property must be rejected (a checker that never fires is worthless), and
// matching correct histories must pass.
#include <gtest/gtest.h>

#include "src/psi/checker.h"

namespace walter {
namespace {

ObjectId A() { return ObjectId{1, 1}; }
ObjectId B() { return ObjectId{1, 2}; }

TxRecord MakeTx(TxId tid, SiteId origin, uint64_t seqno, VectorTimestamp start,
                std::vector<ObjectUpdate> updates) {
  TxRecord rec;
  rec.tid = tid;
  rec.origin = origin;
  rec.version = Version{origin, seqno};
  rec.start_vts = std::move(start);
  rec.updates = std::move(updates);
  return rec;
}

VectorTimestamp Vts(std::vector<uint64_t> v) { return VectorTimestamp(std::move(v)); }

RecordedTx Recorded(TxRecord rec, std::vector<RecordedRead> reads = {}) {
  RecordedTx r;
  r.record = std::move(rec);
  r.reads = std::move(reads);
  return r;
}

TEST(CheckerTest, AcceptsCleanSequentialHistory) {
  PsiChecker checker(2);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "a1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({1, 0}), {ObjectUpdate::Data(A(), "a2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  for (SiteId s = 0; s < 2; ++s) {
    checker.OnApply(s, 1);
    checker.OnApply(s, 2);
  }
  EXPECT_TRUE(checker.Check().ok());
}

TEST(CheckerTest, DetectsSnapshotReadViolation) {
  PsiChecker checker(1);
  TxRecord writer = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "committed")});
  checker.OnCommit(Recorded(writer));
  checker.OnApply(0, 1);

  // Reader whose snapshot includes tx1 but claims to have read a stale value.
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead bad_read;
  bad_read.oid = A();
  bad_read.value = "stale";  // should be "committed"
  checker.OnCommit(Recorded(reader, {bad_read}));
  checker.OnApply(0, 2);

  Status s = checker.CheckProperty1SnapshotReads();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 1"), std::string::npos);
}

TEST(CheckerTest, DetectsStaleNilRead) {
  PsiChecker checker(1);
  TxRecord writer = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "v")});
  checker.OnCommit(Recorded(writer));
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead nil_read;
  nil_read.oid = A();
  nil_read.value = std::nullopt;  // claims A was unwritten
  checker.OnCommit(Recorded(reader, {nil_read}));
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.CheckProperty1SnapshotReads().ok());
}

TEST(CheckerTest, DetectsCsetSnapshotViolation) {
  PsiChecker checker(1);
  TxRecord adder = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Add(A(), B())});
  checker.OnCommit(Recorded(adder));
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Add(A(), ObjectId{9, 9})});
  RecordedRead read;
  read.oid = A();
  read.is_cset = true;
  read.cset = CountingSet{};  // should contain B with count 1
  checker.OnCommit(Recorded(reader, {read}));
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.CheckProperty1SnapshotReads().ok());
}

TEST(CheckerTest, DetectsWriteWriteConflictBetweenConcurrentTxns) {
  PsiChecker checker(2);
  // Both transactions start from the empty snapshot at site 0 and write A:
  // somewhere-concurrent with intersecting write sets.
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({0, 0}), {ObjectUpdate::Data(A(), "2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  Status s = checker.CheckProperty2NoWriteConflicts();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 2"), std::string::npos);
}

TEST(CheckerTest, AllowsConcurrentDisjointWrites) {
  PsiChecker checker(1);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({0}), {ObjectUpdate::Data(B(), "1")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  EXPECT_TRUE(checker.CheckProperty2NoWriteConflicts().ok());
}

TEST(CheckerTest, AllowsConcurrentCsetUpdatesToSameObject) {
  PsiChecker checker(2);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Add(A(), B())});
  TxRecord t2 = MakeTx(2, 1, 1, Vts({0, 0}), {ObjectUpdate::Add(A(), B())});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);
  checker.OnApply(1, 1);
  EXPECT_TRUE(checker.Check().ok());  // cset ops never conflict
}

TEST(CheckerTest, DetectsCausalityViolationAcrossSites) {
  PsiChecker checker(2);
  // T1 commits at site 0; T2 starts at site 0 AFTER T1 (startVTS includes it).
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({1, 0}), {ObjectUpdate::Data(B(), "2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  // Site 1 commits them in the WRONG order: T2 before T1.
  checker.OnApply(1, 2);
  checker.OnApply(1, 1);
  Status s = checker.CheckProperty3CommitCausality();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("Property 3"), std::string::npos);
}

TEST(CheckerTest, AllowsDifferentOrdersForTrulyConcurrentTxns) {
  PsiChecker checker(2);
  // Independent transactions at different sites, neither sees the other: PSI's
  // long fork — sites may commit them in opposite orders.
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 1, 1, Vts({0, 0}), {ObjectUpdate::Data(B(), "1")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);  // opposite order at site 1
  checker.OnApply(1, 1);
  EXPECT_TRUE(checker.Check().ok());
}

TEST(CheckerTest, ReadOwnSnapshotWithRemoteTxnsVisible) {
  PsiChecker checker(2);
  // Remote txn from site 1 propagates to site 0 before the reader starts.
  TxRecord remote = MakeTx(1, 1, 1, Vts({0, 0}), {ObjectUpdate::Data(A(), "remote")});
  checker.OnCommit(Recorded(remote));
  checker.OnApply(1, 1);
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 1, Vts({0, 1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead read;
  read.oid = A();
  read.value = "remote";
  checker.OnCommit(Recorded(reader, {read}));
  checker.OnApply(0, 2);
  checker.OnApply(1, 2);
  EXPECT_TRUE(checker.Check().ok());
}

// --- ConsistencyChecker: mode-aware validation (docs/CONSISTENCY.md) --------

// The canonical write skew: T1 reads B writes A, T2 reads A writes B, neither
// sees the other. Legal under PSI and NMSI (disjoint write sets), rejected by
// the serializable checker.
TEST(ConsistencyCheckerTest, WriteSkewPassesPsiAndNmsiFailsSerializable) {
  for (ConsistencyMode mode :
       {ConsistencyMode::kPsi, ConsistencyMode::kNmsi, ConsistencyMode::kSerializable}) {
    ConsistencyChecker checker(1, mode);
    TxRecord t1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "a1")});
    TxRecord t2 = MakeTx(2, 0, 2, Vts({0}), {ObjectUpdate::Data(B(), "b2")});
    RecordedRead t1_reads_b;
    t1_reads_b.oid = B();
    t1_reads_b.value = std::nullopt;  // started before T2 committed
    RecordedRead t2_reads_a;
    t2_reads_a.oid = A();
    t2_reads_a.value = std::nullopt;
    checker.OnCommit(Recorded(t1, {t1_reads_b}));
    checker.OnCommit(Recorded(t2, {t2_reads_a}));
    checker.OnApply(0, 1);
    checker.OnApply(0, 2);
    Status s = checker.Check();
    if (mode == ConsistencyMode::kSerializable) {
      EXPECT_FALSE(s.ok()) << "serializable must reject write skew";
      EXPECT_NE(s.message().find("write skew"), std::string::npos) << s.message();
    } else {
      EXPECT_TRUE(s.ok()) << ConsistencyModeName(mode) << ": " << s.message();
      EXPECT_EQ(checker.psi_anomalies_permitted(), 0u);
    }
  }
}

// An ordered read-write pair is NOT write skew: T2's snapshot sees T1, so the
// serializable checker must accept it.
TEST(ConsistencyCheckerTest, SerializableAcceptsOrderedReadWritePair) {
  ConsistencyChecker checker(1, ConsistencyMode::kSerializable);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "a1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "b2")});
  RecordedRead t2_reads_a;
  t2_reads_a.oid = A();
  t2_reads_a.value = "a1";
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2, {t2_reads_a}));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  EXPECT_TRUE(checker.Check().ok());
}

// NMSI's relaxed read rule: a read may return any PREFIX state of the
// snapshot-visible updates in the origin's apply order. Strict PSI rejects the
// stale-but-prefix value; NMSI accepts it and counts the permitted anomaly.
TEST(ConsistencyCheckerTest, NmsiAcceptsPrefixReadAndCountsAnomaly) {
  auto build = [](ConsistencyChecker& checker) {
    TxRecord w1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "a1")});
    TxRecord w2 = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(A(), "a2")});
    checker.OnCommit(Recorded(w1));
    checker.OnCommit(Recorded(w2));
    checker.OnApply(0, 1);
    checker.OnApply(0, 2);
    // Reader's snapshot sees BOTH writers but it observed the intermediate
    // state "a1" (read served through a live watermark).
    TxRecord reader = MakeTx(3, 0, 3, Vts({2}), {ObjectUpdate::Data(B(), "x")});
    RecordedRead stale;
    stale.oid = A();
    stale.value = "a1";
    checker.OnCommit(Recorded(reader, {stale}));
    checker.OnApply(0, 3);
  };
  ConsistencyChecker psi(1, ConsistencyMode::kPsi);
  build(psi);
  EXPECT_FALSE(psi.Check().ok()) << "strict PSI must reject the stale read";

  ConsistencyChecker nmsi(1, ConsistencyMode::kNmsi);
  build(nmsi);
  Status s = nmsi.Check();
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(nmsi.psi_anomalies_permitted(), 1u);
}

// NMSI is a relaxation, not anything-goes: a value no prefix state ever held
// is still a violation.
TEST(ConsistencyCheckerTest, NmsiRejectsNeverWrittenValue) {
  ConsistencyChecker checker(1, ConsistencyMode::kNmsi);
  TxRecord w1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "a1")});
  checker.OnCommit(Recorded(w1));
  checker.OnApply(0, 1);
  TxRecord reader = MakeTx(2, 0, 2, Vts({1}), {ObjectUpdate::Data(B(), "x")});
  RecordedRead ghost;
  ghost.oid = A();
  ghost.value = "ghost";
  checker.OnCommit(Recorded(reader, {ghost}));
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.Check().ok());
}

// NMSI still forbids lost updates: write-write conflicts between concurrent
// transactions fail under every mode.
TEST(ConsistencyCheckerTest, NmsiRejectsWriteWriteConflict) {
  ConsistencyChecker checker(1, ConsistencyMode::kNmsi);
  TxRecord t1 = MakeTx(1, 0, 1, Vts({0}), {ObjectUpdate::Data(A(), "1")});
  TxRecord t2 = MakeTx(2, 0, 2, Vts({0}), {ObjectUpdate::Data(A(), "2")});
  checker.OnCommit(Recorded(t1));
  checker.OnCommit(Recorded(t2));
  checker.OnApply(0, 1);
  checker.OnApply(0, 2);
  EXPECT_FALSE(checker.Check().ok());
}

}  // namespace
}  // namespace walter
