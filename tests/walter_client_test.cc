// Client-library behaviour: the RPC-count contract of Section 8.2 across
// transaction shapes (parameterized), id minting, notification plumbing for
// many concurrent transactions, and snapshot reuse across operations.
#include <gtest/gtest.h>

#include <set>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

// A transaction shape: number of reads, then writes, then cset adds; the
// expected RPC count = reads + (updates issued as RPCs) + commit, with the
// single-access piggyback collapsing 1-update transactions to one RPC and
// read-only transactions needing no commit RPC.
struct Shape {
  int reads;
  int writes;
  int cset_adds;
  size_t expected_rpcs;
};

class RpcCountTest : public ::testing::TestWithParam<Shape> {};

TEST_P(RpcCountTest, MatchesPiggybackContract) {
  const Shape& shape = GetParam();
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);

  Tx tx(client);
  int reads_done = 0;
  for (int i = 0; i < shape.reads; ++i) {
    tx.Read(Oid(0, 100 + i), [&](Status s, std::optional<std::string>) {
      ASSERT_TRUE(s.ok());
      ++reads_done;
    });
    while (reads_done <= i && cluster.sim().Step()) {
    }
  }
  for (int i = 0; i < shape.writes; ++i) {
    tx.Write(Oid(0, i), "v");
  }
  for (int i = 0; i < shape.cset_adds; ++i) {
    tx.SetAdd(Oid(0, 1000), Oid(9, i));
  }
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_EQ(tx.rpcs_issued(), shape.expected_rpcs)
      << shape.reads << "r/" << shape.writes << "w/" << shape.cset_adds << "a";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RpcCountTest,
    ::testing::Values(Shape{1, 0, 0, 1},   // single read: 1 RPC, no commit RPC
                      Shape{0, 1, 0, 1},   // single write: combined with commit
                      Shape{0, 0, 1, 1},   // single cset add: combined
                      Shape{0, 2, 0, 3},   // 2 writes + commit
                      Shape{0, 5, 0, 6},   // 5 writes + commit (Figure 17 size 5)
                      Shape{0, 2, 1, 4},   // the Section 8.4 cset transaction
                      Shape{2, 0, 0, 2},   // read-only of size 2
                      Shape{1, 1, 0, 2},   // read, then single update combined with commit
                      Shape{3, 2, 2, 8}),  // mixed
    [](const ::testing::TestParamInfo<Shape>& info) {
      const Shape& s = info.param;
      return std::to_string(s.reads) + "r_" + std::to_string(s.writes) + "w_" +
             std::to_string(s.cset_adds) + "a";
    });

TEST(ClientTest, NewIdsAreUniqueWithinAndAcrossClients) {
  Cluster cluster(LogicOptions(2));
  WalterClient* c1 = cluster.AddClient(0);
  WalterClient* c2 = cluster.AddClient(0);
  WalterClient* c3 = cluster.AddClient(1);
  std::set<ObjectId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.insert(c1->NewId(5));
    ids.insert(c2->NewId(5));
    ids.insert(c3->NewId(5));
  }
  EXPECT_EQ(ids.size(), 600u);
  // Ids stay within the requested container.
  for (const auto& id : ids) {
    EXPECT_EQ(id.container, 5u);
  }
}

TEST(ClientTest, TidsAreUniqueAcrossClients) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c1 = cluster.AddClient(0);
  WalterClient* c2 = cluster.AddClient(0);
  std::set<TxId> tids;
  for (int i = 0; i < 300; ++i) {
    tids.insert(c1->NextTid());
    tids.insert(c2->NextTid());
  }
  EXPECT_EQ(tids.size(), 600u);
}

TEST(ClientTest, NotificationsRouteToTheRightTransaction) {
  Cluster cluster(LogicOptions(2));
  WalterClient* client = cluster.AddClient(0);

  constexpr int kTxns = 10;
  std::vector<int> durable_order;
  std::vector<int> visible_order;
  int committed = 0;
  for (int i = 0; i < kTxns; ++i) {
    auto tx = std::make_shared<Tx>(client);
    tx->Write(Oid(0, 2000 + i), "v");
    Tx::CommitOptions opts;
    opts.on_durable = [&durable_order, i] { durable_order.push_back(i); };
    opts.on_visible = [&visible_order, i] { visible_order.push_back(i); };
    tx->Commit(
        [tx, &committed](Status s) {
          ASSERT_TRUE(s.ok());
          ++committed;
        },
        opts);
  }
  while (committed < kTxns && cluster.sim().Step()) {
  }
  cluster.RunFor(Seconds(3));

  // Every transaction got exactly one of each notification, in commit order
  // (watermarks advance monotonically).
  ASSERT_EQ(durable_order.size(), static_cast<size_t>(kTxns));
  ASSERT_EQ(visible_order.size(), static_cast<size_t>(kTxns));
  for (int i = 0; i < kTxns; ++i) {
    EXPECT_EQ(durable_order[i], i);
    EXPECT_EQ(visible_order[i], i);
  }
}

TEST(ClientTest, SnapshotIsStableAcrossManyOperations) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);

  // Seed.
  {
    Tx tx(client);
    tx.Write(Oid(0, 1), "before");
    bool done = false;
    tx.Commit([&](Status) { done = true; });
    while (!done && cluster.sim().Step()) {
    }
  }

  Tx reader(client);
  std::optional<std::string> first;
  bool r1 = false;
  reader.Read(Oid(0, 1), [&](Status, std::optional<std::string> v) {
    first = std::move(v);
    r1 = true;
  });
  while (!r1 && cluster.sim().Step()) {
  }

  // Ten overwrites by other transactions.
  for (int i = 0; i < 10; ++i) {
    Tx w(client);
    w.Write(Oid(0, 1), "after" + std::to_string(i));
    bool done = false;
    w.Commit([&](Status) { done = true; });
    while (!done && cluster.sim().Step()) {
    }
  }

  // Ten more reads by the same transaction: all return the original snapshot.
  for (int i = 0; i < 10; ++i) {
    std::optional<std::string> again;
    bool done = false;
    reader.Read(Oid(0, 1), [&](Status, std::optional<std::string> v) {
      again = std::move(v);
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
    EXPECT_EQ(again, first);
  }
}

TEST(ClientTest, AbortBeforeAnyRpcIsLocal) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(0, 1), "never-sent");
  bool aborted = false;
  tx.Abort([&] { aborted = true; });
  EXPECT_TRUE(aborted);          // synchronous: nothing had reached the server
  EXPECT_EQ(tx.rpcs_issued(), 0u);
  cluster.RunUntilIdle();
}

// Robustness: a dropped commit *response* forces the client to retransmit the
// commit. The server deduplicates by transaction id: the write is applied
// exactly once and the retry is answered from the retained outcome.
TEST(ClientTest, RetriedCommitIsAppliedExactlyOnce) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);

  int dropped = 0;
  cluster.net().SetDropFilter([&](const Message& m, const Address&, const Address& to) {
    if (m.is_response && m.type == kClientOp && to.port >= kClientPortBase && dropped == 0) {
      ++dropped;
      return true;  // exactly the first commit response
    }
    return false;
  });

  Tx tx(client);
  tx.Write(Oid(0, 1), "once");
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  cluster.net().SetDropFilter(nullptr);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(dropped, 1);
  EXPECT_GE(client->retries_sent(), 1u);
  // Applied exactly once, retry answered from the dedup table.
  EXPECT_EQ(cluster.server(0).committed_vts().at(0), 1u);
  EXPECT_EQ(cluster.server(0).stats().fast_commits, 1u);
  EXPECT_GE(cluster.server(0).stats().commit_dedups, 1u);

  bool read_done = false;
  Tx rd(client);
  rd.Read(Oid(0, 1), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(v, "once");
    read_done = true;
  });
  while (!read_done && cluster.sim().Step()) {
  }
}

// A client whose local server is dead must fail fast with kUnavailable after
// its retry budget — never hang.
TEST(ClientTest, CrashedServerYieldsUnavailableWithinRetryBudget) {
  Cluster cluster(LogicOptions(1));
  cluster.server(0).Crash();
  WalterClient* client = cluster.AddClient(0);

  Tx tx(client);
  tx.Write(Oid(0, 1), "v");
  Status result = Status::Internal("unfinished");
  bool done = false;
  SimTime start = cluster.sim().Now();
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }

  ASSERT_TRUE(done);
  EXPECT_EQ(result.code(), StatusCode::kUnavailable) << result.ToString();
  // Budget: max_attempts timeouts plus the capped backoffs between them.
  const WalterClient::Options defaults{};
  SimDuration budget = 0;
  SimDuration backoff = defaults.backoff_base;
  for (size_t a = 0; a < defaults.max_attempts; ++a) {
    budget += defaults.rpc_timeout + backoff * 2;  // x2: jitter headroom
    backoff = std::min(backoff * 2, defaults.backoff_cap);
  }
  EXPECT_LE(cluster.sim().Now() - start, budget);
}

}  // namespace
}  // namespace walter
