// Propagation-protocol edge cases (Figure 13): causal buffering of
// out-of-order cross-origin arrivals, the durability gate on remote commits,
// batch segmentation, and the Section 5.8 "local sites" scalability scheme.
#include <gtest/gtest.h>

#include <optional>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

// A transaction that causally depends on a remote transaction cannot commit at
// a third site before its dependency, even when the dependency's delivery is
// delayed by a partition (the receive/commit guards of Figure 13).
TEST(PropagationTest, CausalDependencyBuffersUntilSatisfied) {
  ClusterOptions options = LogicOptions(3);
  options.server.gossip_interval = Millis(300);
  options.server.resend_timeout = Millis(500);
  options.server.f = 1;  // disaster safety at 2 sites, reachable despite the cut
  Cluster cluster(options);

  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);

  // Cut site 0 off from site 2 so T1 (site 0) reaches site 1 but not site 2.
  cluster.net().SetPartitioned(0, 2, true);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "t1").ok());
  cluster.RunFor(Seconds(2));
  ASSERT_EQ(cluster.server(1).committed_vts().at(0), 1u);
  ASSERT_EQ(cluster.server(2).committed_vts().at(0), 0u);

  // T2 at site 1 reads T1 (causal dependency), then writes.
  ASSERT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), "t1");
  ASSERT_TRUE(CommitWrite(cluster, c1, Oid(1, 1), "t2").ok());
  cluster.RunFor(Seconds(3));

  // Site 2 has received T2 from site 1 but must NOT commit it: T1 is missing.
  EXPECT_EQ(cluster.server(2).committed_vts().at(1), 0u);
  WalterClient* c2 = cluster.AddClient(2);
  EXPECT_EQ(ReadOnce(cluster, c2, Oid(1, 1)), std::nullopt);

  // Heal: T1 arrives, then T2 commits — in causal order.
  cluster.net().SetPartitioned(0, 2, false);
  cluster.RunFor(Seconds(5));
  EXPECT_EQ(cluster.server(2).committed_vts().at(0), 1u);
  EXPECT_EQ(cluster.server(2).committed_vts().at(1), 1u);
  EXPECT_EQ(ReadOnce(cluster, c2, Oid(1, 1)), "t2");
  EXPECT_EQ(ReadOnce(cluster, c2, Oid(0, 1)), "t1");
}

// Remote commits gate on the origin's disaster-safe announcement: a site that
// received a transaction but no DS-DURABLE for it keeps it invisible.
TEST(PropagationTest, RemoteCommitWaitsForDurabilityAnnouncement) {
  ClusterOptions options = LogicOptions(3);
  options.server.f = 2;  // needs all three sites for disaster safety
  Cluster cluster(options);
  WalterClient* c0 = cluster.AddClient(0);

  // Site 2 can receive data but site 1 is cut off: the quorum (3 sites) is
  // unreachable, so nothing becomes disaster-safe and site 2 must not commit.
  cluster.net().SetPartitioned(0, 1, true);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "gated").ok());
  cluster.RunFor(Seconds(3));
  EXPECT_GE(cluster.server(2).got_vts().at(0), 1u);       // received...
  EXPECT_EQ(cluster.server(2).committed_vts().at(0), 0u);  // ...but not committed
  EXPECT_EQ(cluster.server(0).ds_durable_through(), 0u);

  cluster.net().SetPartitioned(0, 1, false);
  cluster.RunFor(Seconds(5));
  EXPECT_EQ(cluster.server(2).committed_vts().at(0), 1u);
  EXPECT_EQ(cluster.server(0).ds_durable_through(), 1u);
}

// Many commits while a destination is unreachable must be delivered in several
// capped batches after healing, in order.
TEST(PropagationTest, BacklogDrainsInCappedBatches) {
  ClusterOptions options = LogicOptions(2);
  options.server.max_batch_records = 10;
  options.server.gossip_interval = Millis(300);
  options.server.resend_timeout = Millis(500);
  Cluster cluster(options);
  WalterClient* c0 = cluster.AddClient(0);

  cluster.net().SetPartitioned(0, 1, true);
  for (int i = 0; i < 45; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, i), "v" + std::to_string(i)).ok());
  }
  cluster.net().SetPartitioned(0, 1, false);
  cluster.RunFor(Seconds(10));

  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 45u);
  EXPECT_GE(cluster.server(0).stats().batches_sent, 5u);  // 45 records / cap 10
  WalterClient* c1 = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 44)), "v44");
}

// Cross-site bandwidth (22 Mbps, Section 8.1) throttles propagation of large
// values: a megabyte-scale backlog takes visibly longer than the RTT.
TEST(PropagationTest, BandwidthLimitsLargeValuePropagation) {
  ClusterOptions options = LogicOptions(2);
  Cluster cluster(options);
  WalterClient* c0 = cluster.AddClient(0);

  // ~4 MB of committed data: at 22 Mbps the transfer alone needs ~1.5 s.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, i), std::string(256 * 1024, 'x')).ok());
  }
  SimTime start = cluster.sim().Now();
  cluster.RunFor(Seconds(1));
  EXPECT_LT(cluster.server(1).committed_vts().at(0), 16u);  // still transferring
  cluster.RunFor(Seconds(6));
  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 16u);
  (void)start;
}

// Section 5.8: scale one data center by running several "local sites" with a
// low-latency interconnect and partitioning objects across them; transactions
// read non-replicated objects from the co-located site cheaply.
TEST(PropagationTest, LocalSitesScalingScheme) {
  ClusterOptions options = LogicOptions(2);
  options.topology = Topology::Uniform(2, /*cross=*/Millis(1), /*intra=*/Millis(0.3));
  Cluster cluster(options);
  // Partition the data: container 0 lives only at local-site 0, container 1
  // only at local-site 1.
  cluster.UpsertContainerEverywhere(ContainerInfo{0, 0, {0}});
  cluster.UpsertContainerEverywhere(ContainerInfo{1, 1, {1}});

  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "on-site-0").ok());
  ASSERT_TRUE(CommitWrite(cluster, c1, Oid(1, 1), "on-site-1").ok());
  cluster.RunFor(Seconds(1));

  // Each local site reads the other partition through a cheap (1 ms) fetch.
  EXPECT_EQ(ReadOnce(cluster, c0, Oid(1, 1)), "on-site-1");
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), "on-site-0");
  EXPECT_GE(cluster.server(0).stats().remote_reads, 1u);
  // The partitions really are disjoint on disk.
  EXPECT_FALSE(cluster.server(0).store().Has(Oid(1, 1)));
  EXPECT_FALSE(cluster.server(1).store().Has(Oid(0, 1)));
}

// Transactions of one site commit in sequence-number order at every remote
// site, even when issued concurrently (Figure 13's per-origin ordering).
TEST(PropagationTest, PerOriginOrderPreservedRemotely) {
  ClusterOptions options = LogicOptions(2);
  Cluster cluster(options);
  std::vector<std::pair<SiteId, uint64_t>> commit_order;
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    if (site == 1 && rec.origin == 0) {
      commit_order.emplace_back(site, rec.version.seqno);
    }
  });

  WalterClient* c0 = cluster.AddClient(0);
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    auto tx = std::make_shared<Tx>(c0);
    tx->Write(Oid(0, i), "v");
    tx->Commit([tx, &committed](Status s) {
      ASSERT_TRUE(s.ok());
      ++committed;
    });
  }
  while (committed < 20 && cluster.sim().Step()) {
  }
  cluster.RunFor(Seconds(3));

  ASSERT_EQ(commit_order.size(), 20u);
  for (size_t i = 0; i < commit_order.size(); ++i) {
    EXPECT_EQ(commit_order[i].second, i + 1) << "out-of-order remote commit";
  }
}

}  // namespace
}  // namespace walter
