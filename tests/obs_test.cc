// Unit tests for the observability subsystem: the trace ring, the metrics
// registry, and the liveness watchdog (src/obs/).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

// The tracer is a per-thread singleton, so every test starts from a clean
// slate and restores the default configuration on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer& t = Tracer::Get();
    t.SetListener(nullptr);
    t.SetEnabled(true);
    t.SetCapacity(Tracer::kDefaultCapacity);
    t.Clear();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(TraceTest, RecordsEventsInOrder) {
  Tracer& t = Tracer::Get();
  t.Record(10, TraceKind::kCommitStart, 7, 0, 1, 2);
  t.Record(20, TraceKind::kFastPath, 7, 0);
  t.Record(30, TraceKind::kCommitAck, 7, 1, 42);

  ASSERT_EQ(t.recorded(), 3u);
  std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, TraceKind::kCommitStart);
  EXPECT_EQ(events[0].time, 10);
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_EQ(events[0].aux, 2u);
  EXPECT_EQ(events[1].kind, TraceKind::kFastPath);
  EXPECT_EQ(events[2].kind, TraceKind::kCommitAck);
  EXPECT_EQ(events[2].site, 1);
  EXPECT_EQ(events[2].arg, 42u);
}

TEST_F(TraceTest, RingWrapsKeepingNewest) {
  Tracer& t = Tracer::Get();
  t.SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    t.Record(i, TraceKind::kNetEnqueue, 1, 0, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.capacity(), 4u);
  std::vector<TraceEvent> events = t.Events();
  ASSERT_EQ(events.size(), 4u);
  // The four newest survive, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg, 6u + i);
  }
}

TEST_F(TraceTest, SliceExtractsOneTransaction) {
  Tracer& t = Tracer::Get();
  t.Record(1, TraceKind::kCommitStart, 5, 0);
  t.Record(2, TraceKind::kCommitStart, 6, 0);
  t.Record(3, TraceKind::kCommitAck, 5, 0);
  t.Record(4, TraceKind::kNetEnqueue, 0, 0);  // no transaction attribution

  std::vector<TraceEvent> slice = t.Slice(5);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].kind, TraceKind::kCommitStart);
  EXPECT_EQ(slice[1].kind, TraceKind::kCommitAck);
  EXPECT_TRUE(t.Slice(99).empty());
}

TEST_F(TraceTest, JsonRendering) {
  TraceEvent e;
  e.time = 1500;
  e.tid = 9;
  e.kind = TraceKind::kSlowPath;
  e.site = 2;
  e.arg = 3;
  e.aux = 4;
  EXPECT_EQ(e.ToJson(), "{\"t\":1500,\"kind\":\"slow_path\",\"tid\":9,\"site\":2,"
                        "\"arg\":3,\"aux\":4}");

  TraceEvent none;  // site 0xff renders as -1
  none.kind = TraceKind::kClientRetry;
  EXPECT_NE(none.ToJson().find("\"site\":-1"), std::string::npos);

  std::string jsonl = Tracer::ToJsonl({e, none});
  // One line per event, each newline-terminated.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST_F(TraceTest, RuntimeDisableRecordsNothing) {
  Tracer& t = Tracer::Get();
  t.SetEnabled(false);
  t.Record(1, TraceKind::kCommitStart, 1, 0);
  EXPECT_EQ(t.recorded(), 0u);
  t.SetEnabled(true);
  t.Record(2, TraceKind::kCommitStart, 1, 0);
  EXPECT_EQ(t.recorded(), 1u);
}

TEST_F(TraceTest, CompileTimeModeControlsWtrace) {
  Tracer& t = Tracer::Get();
  WTRACE(1, TraceKind::kCommitStart, 1, 0);
#if WALTER_TRACE_MODE == 0
  EXPECT_EQ(t.recorded(), 0u);  // WTRACE compiles to nothing
#else
  EXPECT_EQ(t.recorded(), 1u);
#endif
}

TEST_F(TraceTest, ListenerSeesEveryEvent) {
  struct Counter : TraceListener {
    int events = 0;
    void OnTrace(const TraceEvent&) override { ++events; }
  } counter;
  Tracer& t = Tracer::Get();
  t.SetListener(&counter);
  t.Record(1, TraceKind::kCommitStart, 1, 0);
  t.Record(2, TraceKind::kCommitAck, 1, 0);
  t.SetListener(nullptr);
  t.Record(3, TraceKind::kClientDone, 1, 0);
  EXPECT_EQ(counter.events, 2);
}

TEST(MetricsTest, SetAddGetTotal) {
  MetricsRegistry m;
  m.Set("server.fast_commits", 0, 10);
  m.Set("server.fast_commits", 1, 20);
  m.Add("server.fast_commits", 0, 5);
  m.Set("net.messages_sent", kNoSite, 100);

  EXPECT_EQ(m.Get("server.fast_commits", 0), 15);
  EXPECT_EQ(m.Get("server.fast_commits", 1), 20);
  EXPECT_EQ(m.Total("server.fast_commits"), 35);
  EXPECT_TRUE(m.Has("net.messages_sent", kNoSite));
  EXPECT_FALSE(m.Has("server.fast_commits", 2));
  EXPECT_EQ(m.Get("absent", 0), 0);
}

TEST(MetricsTest, SnapshotIsSortedAndStable) {
  MetricsRegistry m;
  m.Set("zeta", 1, 1);
  m.Set("alpha", kNoSite, 2);
  m.Set("zeta", 0, 3);
  std::vector<MetricPoint> points = m.Snapshot();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].name, "alpha");
  EXPECT_EQ(points[1].name, "zeta");
  EXPECT_EQ(points[1].site, 0u);
  EXPECT_EQ(points[2].site, 1u);
  EXPECT_EQ(MetricsRegistry::JsonKey(points[0]), "alpha");
  EXPECT_EQ(MetricsRegistry::JsonKey(points[1]), "zeta.s0");
}

#if WALTER_TRACE_MODE != 0

class WatchdogTest : public TraceTest {};

// A transaction that records one client-issue edge and then nothing must be
// reported stuck once the budget elapses, naming that stage and site.
TEST_F(WatchdogTest, FiresOnStuckTransaction) {
  Simulator sim(1);
  WatchdogOptions options;
  options.budget = Seconds(5);
  options.abort_on_stuck = false;
  LivenessWatchdog watchdog(&sim, options);

  sim.After(Millis(10), [&] {
    Tracer::Get().Record(sim.Now(), TraceKind::kClientCommitRpc, 42, 0);
  });
  sim.RunUntil(Seconds(10));

  ASSERT_TRUE(watchdog.fired());
  ASSERT_EQ(watchdog.reports().size(), 1u);
  const StuckReport& report = watchdog.reports()[0];
  EXPECT_EQ(report.tid, 42u);
  EXPECT_EQ(report.stage, TraceKind::kClientCommitRpc);
  EXPECT_EQ(report.site, 0u);
  EXPECT_NE(report.verdict.find("stuck at stage client_commit_rpc on site 0"),
            std::string::npos);
  EXPECT_FALSE(report.trace_jsonl.empty());
  EXPECT_EQ(watchdog.in_flight(), 0u);  // reported transactions are detached
}

// A transaction that keeps reaching new stages — however slowly — is alive.
TEST_F(WatchdogTest, SilentOnSlowButProgressingTransaction) {
  Simulator sim(1);
  WatchdogOptions options;
  options.budget = Seconds(5);
  options.abort_on_stuck = false;
  LivenessWatchdog watchdog(&sim, options);

  const TraceKind stages[] = {TraceKind::kClientCommitRpc, TraceKind::kCommitStart,
                              TraceKind::kFastPath, TraceKind::kCommitApply,
                              TraceKind::kCommitLocal, TraceKind::kCommitAck,
                              TraceKind::kClientDone};
  for (size_t i = 0; i < std::size(stages); ++i) {
    sim.At(Seconds(3 * (i + 1)), [&, i] {
      Tracer::Get().Record(sim.Now(), stages[i], 7, 0);
    });
  }
  sim.RunUntil(Seconds(40));

  EXPECT_FALSE(watchdog.fired());
  EXPECT_EQ(watchdog.in_flight(), 0u);  // kClientDone retired it
}

// Retransmissions are spinning, not progress: a client retrying forever must
// still be reported, anchored at the last real stage.
TEST_F(WatchdogTest, RetriesDoNotCountAsProgress) {
  Simulator sim(1);
  WatchdogOptions options;
  options.budget = Seconds(5);
  options.abort_on_stuck = false;
  LivenessWatchdog watchdog(&sim, options);

  sim.After(Millis(10), [&] {
    Tracer::Get().Record(sim.Now(), TraceKind::kClientCommitRpc, 8, 1);
  });
  for (int i = 1; i <= 20; ++i) {
    sim.At(Seconds(i), [&, i] {
      Tracer::Get().Record(sim.Now(), TraceKind::kClientRetry, 8, 1,
                           static_cast<uint64_t>(i));
    });
  }
  sim.RunUntil(Seconds(25));

  ASSERT_TRUE(watchdog.fired());
  EXPECT_EQ(watchdog.reports()[0].stage, TraceKind::kClientCommitRpc);
  EXPECT_EQ(watchdog.reports()[0].site, 1u);
}

// Server-side events for transactions the watchdog never saw a client issue
// for (e.g. visibility edges trailing a completed commit) must not re-admit
// them as in-flight.
TEST_F(WatchdogTest, ServerEventsAloneDoNotStartTracking) {
  Simulator sim(1);
  WatchdogOptions options;
  options.budget = Seconds(5);
  options.abort_on_stuck = false;
  LivenessWatchdog watchdog(&sim, options);

  sim.After(Millis(10), [&] {
    Tracer::Get().Record(sim.Now(), TraceKind::kClientCommitRpc, 3, 0);
    Tracer::Get().Record(sim.Now(), TraceKind::kClientDone, 3, 0);
    // Durability/visibility edges arrive after the client callback.
    Tracer::Get().Record(sim.Now(), TraceKind::kDsDurable, 3, 0);
    Tracer::Get().Record(sim.Now(), TraceKind::kVisible, 3, 0);
  });
  sim.RunUntil(Seconds(10));

  EXPECT_FALSE(watchdog.fired());
  EXPECT_EQ(watchdog.in_flight(), 0u);
}

// Same seed, same verdict at the same virtual instant — the watchdog is part
// of the deterministic simulation, not a wall-clock heuristic.
TEST_F(WatchdogTest, DeterministicAcrossRuns) {
  auto run_tracked = [](uint64_t seed) {
    Tracer::Get().Clear();
    Simulator sim(seed);
    WatchdogOptions options;
    options.budget = Seconds(5);
    options.abort_on_stuck = false;
    LivenessWatchdog watchdog(&sim, options);
    sim.After(Millis(137), [&] {
      Tracer::Get().Record(sim.Now(), TraceKind::kClientCommitRpc, 11, 2);
    });
    sim.RunUntil(Seconds(10));
    StuckReport report;
    if (watchdog.fired()) {
      report = watchdog.reports()[0];
    }
    return report;
  };
  StuckReport a = run_tracked(1);
  StuckReport b = run_tracked(2);
  StuckReport c = run_tracked(1);
  ASSERT_NE(a.tid, 0u);
  EXPECT_EQ(a.detected, c.detected);
  EXPECT_EQ(a.verdict, c.verdict);
  EXPECT_EQ(a.trace_jsonl, c.trace_jsonl);
  // A different seed still detects the same transaction deterministically.
  EXPECT_EQ(a.tid, b.tid);
  EXPECT_EQ(a.stage, b.stage);
}

#endif  // WALTER_TRACE_MODE != 0

}  // namespace
}  // namespace walter
