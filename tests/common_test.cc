// Tests for ids, versions, vector timestamps, serialization, status, stats.
#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/update.h"

namespace walter {
namespace {

TEST(VectorTimestampTest, SeesVersionsUpToCount) {
  VectorTimestamp vts(std::vector<uint64_t>{3, 0});
  EXPECT_TRUE(vts.Sees(Version{0, 1}));
  EXPECT_TRUE(vts.Sees(Version{0, 3}));
  EXPECT_FALSE(vts.Sees(Version{0, 4}));
  EXPECT_FALSE(vts.Sees(Version{1, 1}));
  EXPECT_FALSE(vts.Sees(Version{}));  // kNoSite never visible
}

TEST(VectorTimestampTest, AdvanceAndSet) {
  VectorTimestamp vts(3);
  EXPECT_EQ(vts.Advance(1), 1u);
  EXPECT_EQ(vts.Advance(1), 2u);
  vts.set(2, 10);
  EXPECT_EQ(vts.at(2), 10u);
  EXPECT_EQ(vts.at(0), 0u);
}

TEST(VectorTimestampTest, CoversIsEntrywiseGeq) {
  VectorTimestamp a(std::vector<uint64_t>{2, 3});
  VectorTimestamp b(std::vector<uint64_t>{2, 2});
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
  EXPECT_TRUE(a.Covers(a));
  // Missing entries count as zero.
  VectorTimestamp shorter(std::vector<uint64_t>{2});
  EXPECT_TRUE(a.Covers(shorter));
}

TEST(VectorTimestampTest, MergeMaxIsLub) {
  VectorTimestamp a(std::vector<uint64_t>{5, 1});
  VectorTimestamp b(std::vector<uint64_t>{2, 7});
  a.MergeMax(b);
  EXPECT_EQ(a.at(0), 5u);
  EXPECT_EQ(a.at(1), 7u);
  EXPECT_TRUE(a.Covers(b));
}

TEST(VectorTimestampTest, CoversIsAPartialOrder) {
  // Antisymmetry on equal-size vectors: Covers both ways implies equality.
  VectorTimestamp a(std::vector<uint64_t>{1, 2});
  VectorTimestamp b(std::vector<uint64_t>{1, 2});
  EXPECT_TRUE(a.Covers(b) && b.Covers(a));
  EXPECT_EQ(a, b);
  // Incomparable pair.
  VectorTimestamp c(std::vector<uint64_t>{2, 1});
  EXPECT_FALSE(a.Covers(c));
  EXPECT_FALSE(c.Covers(a));
}

TEST(BytesTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x1122334455667788ULL);
  w.PutI64(-42);
  w.PutString("hello");
  w.PutObjectId(ObjectId{7, 9});
  w.PutVersion(Version{2, 17});
  w.PutVts(VectorTimestamp(std::vector<uint64_t>{1, 2, 3}));

  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetObjectId(), (ObjectId{7, 9}));
  EXPECT_EQ(r.GetVersion(), (Version{2, 17}));
  EXPECT_EQ(r.GetVts().counts(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(r.done());
  EXPECT_FALSE(r.failed());
}

TEST(BytesTest, TruncatedInputLatchesFailure) {
  ByteWriter w;
  w.PutU64(7);
  ByteReader r(std::string_view(w.data()).substr(0, 3));
  EXPECT_EQ(r.GetU64(), 0u);
  EXPECT_TRUE(r.failed());
  // Further reads stay failed and return zero values.
  EXPECT_EQ(r.GetU32(), 0u);
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, MaliciousLengthPrefixRejected) {
  ByteWriter w;
  w.PutU32(0xffffffff);  // claims a 4 GiB string
  ByteReader r(w.data());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_TRUE(r.failed());
}

TEST(TxRecordTest, SerializationRoundTrip) {
  TxRecord rec;
  rec.tid = 42;
  rec.origin = 2;
  rec.version = Version{2, 99};
  rec.start_vts = VectorTimestamp(std::vector<uint64_t>{4, 5, 6});
  rec.updates = {
      ObjectUpdate::Data(ObjectId{1, 1}, "payload"),
      ObjectUpdate::Add(ObjectId{1, 2}, ObjectId{9, 9}),
      ObjectUpdate::Del(ObjectId{1, 2}, ObjectId{9, 10}),
  };
  ByteWriter w;
  rec.Serialize(&w);
  ByteReader r(w.data());
  TxRecord got = TxRecord::Deserialize(&r);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(got.tid, rec.tid);
  EXPECT_EQ(got.origin, rec.origin);
  EXPECT_EQ(got.version, rec.version);
  EXPECT_EQ(got.start_vts, rec.start_vts);
  EXPECT_EQ(got.updates, rec.updates);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::Aborted("conflict on x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.ToString(), "aborted: conflict on x");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(11);
  size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.99) < 10) {
      ++low;
    }
  }
  // With theta=0.99, the top-10 of 1000 keys draw far more than 1% of accesses.
  EXPECT_GT(low, 2000u);
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Exponential(100.0);
  }
  double mean = sum / kN;
  EXPECT_GT(mean, 90.0);
  EXPECT_LT(mean, 110.0);
}

TEST(LatencyRecorderTest, PercentilesOnKnownData) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Add(i);
  }
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 100);
  EXPECT_NEAR(rec.Median(), 50.5, 0.01);
  EXPECT_NEAR(rec.Percentile(99), 99.01, 0.05);
  EXPECT_NEAR(rec.Mean(), 50.5, 0.01);
}

TEST(LatencyRecorderTest, CdfIsMonotone) {
  LatencyRecorder rec;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    rec.Add(rng.Exponential(10.0));
  }
  auto cdf = rec.Cdf(50);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

// Million-sample audit: the surge benches feed ≥10^6 samples per cell into
// one recorder, an order of magnitude past the figure benches. Exact storage
// must stay exact there — no counter truncation, no percentile index falling
// off the end at the p=0/p=100 boundaries, and sort invalidation must survive
// interleaved Add/Stats. Samples are a permutation of 1..N so every expected
// percentile is known in closed form.
TEST(LatencyRecorderTest, ExactAtMillionSamples) {
  constexpr uint64_t kN = 1'500'000;
  // Affine permutation of [0, N): a prime multiplier far above N is coprime
  // with it, and i*mult stays well inside 64 bits.
  constexpr uint64_t kMult = 982'451'653;
  LatencyRecorder rec;
  uint64_t added = 0;
  auto add_up_to = [&](uint64_t limit) {
    for (; added < limit; ++added) {
      rec.Add(static_cast<double>((added * kMult) % kN + 1));
    }
  };

  // First million, then query (forces a sort), then keep adding: later Adds
  // must invalidate the sorted view, not corrupt it.
  add_up_to(1'000'000);
  EXPECT_EQ(rec.count(), 1'000'000u);
  EXPECT_NEAR(rec.Median(), 750'000.0, kN * 0.01)
      << "first-million median drawn from a uniform permutation of 1..N";

  add_up_to(kN);
  ASSERT_EQ(rec.count(), static_cast<size_t>(kN));

  LatencyRecorder::SummaryStats stats = rec.Stats();
  EXPECT_EQ(stats.n, static_cast<size_t>(kN));
  EXPECT_EQ(stats.min, 1.0);
  EXPECT_EQ(stats.max, static_cast<double>(kN));
  EXPECT_NEAR(stats.mean, (static_cast<double>(kN) + 1) / 2, 0.01);
  EXPECT_NEAR(stats.p50, 1 + 0.50 * (kN - 1), 1.0);
  EXPECT_NEAR(stats.p90, 1 + 0.90 * (kN - 1), 1.0);
  EXPECT_NEAR(stats.p99, 1 + 0.99 * (kN - 1), 1.0);
  EXPECT_NEAR(stats.p999, 1 + 0.999 * (kN - 1), 1.0);

  // Boundary percentiles index safely at this size.
  EXPECT_EQ(rec.Percentile(0), 1.0);
  EXPECT_EQ(rec.Percentile(100), static_cast<double>(kN));

  // The CDF stays downsampled and monotone regardless of sample count.
  auto cdf = rec.Cdf(100);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LE(cdf.size(), 101u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.5"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

}  // namespace
}  // namespace walter
