// FileWalDevice: segment rolling, reopen recovery, torn-tail trimming,
// segment-granular prefix truncation, Reset seeding, and the replay-equivalence
// guarantee (a file-backed Wal recovers the identical record sequence an
// in-memory Wal replays). Ends with a cluster smoke test running real segment
// directories under every server.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/storage/wal.h"
#include "src/storage/wal_device.h"

namespace walter {
namespace {

namespace fs = std::filesystem;

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

TxRecord MakeTx(TxId tid, SiteId origin, uint64_t seqno, std::string value) {
  TxRecord rec;
  rec.tid = tid;
  rec.origin = origin;
  rec.version = Version{origin, seqno};
  rec.start_vts = VectorTimestamp(2);
  rec.updates = {ObjectUpdate::Data(Oid(origin, seqno), std::move(value))};
  return rec;
}

// A fresh, empty directory under the test temp root.
std::string TempWalDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("walter_" + name);
  fs::remove_all(dir);
  return dir.string();
}

size_t CountSegFiles(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".seg")) {
      ++n;
    }
  }
  return n;
}

// The last segment file in offset (== name) order.
fs::path LastSegFile(const std::string& dir) {
  std::vector<fs::path> segs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().starts_with("wal-")) {
      segs.push_back(entry.path());
    }
  }
  EXPECT_FALSE(segs.empty());
  std::sort(segs.begin(), segs.end());
  return segs.back();
}

// --- Segment lifecycle -----------------------------------------------------

TEST(FileWalDeviceTest, SegmentsRollAtThreshold) {
  std::string dir = TempWalDir("roll");
  FileWalDeviceOptions opts;
  opts.segment_bytes = 64;  // each record frame is ~50 bytes: frequent rolls
  auto device = std::make_unique<FileWalDevice>(dir, opts);
  FileWalDevice* dev = device.get();
  Wal wal(std::move(device));
  for (uint64_t i = 1; i <= 8; ++i) {
    wal.Append(MakeTx(100 + i, 0, i, "roll-" + std::to_string(i)));
  }
  wal.Sync();
  EXPECT_GT(dev->segment_count(), 2u);
  EXPECT_EQ(dev->segment_count(), CountSegFiles(dir));
  EXPECT_EQ(dev->synced_bytes(), wal.base() + wal.size());
}

TEST(FileWalDeviceTest, ReopenRecoversAllRecords) {
  std::string dir = TempWalDir("reopen");
  FileWalDeviceOptions opts;
  opts.segment_bytes = 128;
  {
    Wal wal(std::make_unique<FileWalDevice>(dir, opts));
    for (uint64_t i = 1; i <= 6; ++i) {
      wal.Append(MakeTx(200 + i, 1, i, "v" + std::to_string(i)));
    }
    wal.Sync();
  }
  auto device = std::make_unique<FileWalDevice>(dir, opts);
  EXPECT_FALSE(device->tail_was_torn());
  Wal wal(std::move(device));
  Wal::ReplayResult result = wal.RecoverFromDevice();
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 6u);
  for (uint64_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(result.records[i - 1].tid, 200 + i);
    EXPECT_EQ(result.records[i - 1].version.seqno, i);
  }
  EXPECT_EQ(wal.record_count(), 6u);
  EXPECT_EQ(wal.OldestSeqno(1), 1u);
}

// --- Torn tails ------------------------------------------------------------

TEST(FileWalDeviceTest, TornTailFrameTrimmedOnRecovery) {
  std::string dir = TempWalDir("torn");
  size_t intact_end = 0;
  {
    Wal wal(std::make_unique<FileWalDevice>(dir));
    for (uint64_t i = 1; i <= 4; ++i) {
      size_t off = wal.Append(MakeTx(300 + i, 0, i, "torn-" + std::to_string(i)));
      if (i == 4) {
        intact_end = off;  // the last frame starts here; chop inside it
      }
    }
    wal.Sync();
  }
  // Simulate a torn write: the last frame only partially reached the medium.
  fs::path last = LastSegFile(dir);
  fs::resize_file(last, fs::file_size(last) - 7);

  {
    Wal wal(std::make_unique<FileWalDevice>(dir));
    Wal::ReplayResult result = wal.RecoverFromDevice();
    EXPECT_TRUE(result.torn_tail);
    ASSERT_EQ(result.records.size(), 3u);
    EXPECT_EQ(result.valid_bytes, intact_end);
    auto* dev = static_cast<FileWalDevice*>(wal.device());
    EXPECT_TRUE(dev->tail_was_torn());
  }
  // The trim is durable: a third open sees an intact 3-record log.
  Wal wal(std::make_unique<FileWalDevice>(dir));
  Wal::ReplayResult result = wal.RecoverFromDevice();
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(FileWalDeviceTest, CorruptSegmentHeaderDropsItAndLaterSegments) {
  std::string dir = TempWalDir("badheader");
  FileWalDeviceOptions opts;
  opts.segment_bytes = 64;
  {
    Wal wal(std::make_unique<FileWalDevice>(dir, opts));
    for (uint64_t i = 1; i <= 8; ++i) {
      wal.Append(MakeTx(400 + i, 0, i, "hdr-" + std::to_string(i)));
    }
    wal.Sync();
  }
  ASSERT_GT(CountSegFiles(dir), 2u);
  // Flip a byte in the last segment's header: that segment (and anything
  // after) is unusable, but the earlier ones must survive.
  fs::path last = LastSegFile(dir);
  {
    std::fstream f(last, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(2);
    f.put('\xff');
  }
  auto device = std::make_unique<FileWalDevice>(dir, opts);
  EXPECT_TRUE(device->tail_was_torn());
  Wal wal(std::move(device));
  Wal::ReplayResult result = wal.RecoverFromDevice();
  EXPECT_FALSE(result.torn_tail);  // remaining segments are frame-intact
  EXPECT_GT(result.records.size(), 0u);
  EXPECT_LT(result.records.size(), 8u);
  // Records that survive are a strict prefix: seqnos 1..k.
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].version.seqno, i + 1);
  }
}

// --- Truncation ------------------------------------------------------------

TEST(FileWalDeviceTest, TruncatePrefixIsSegmentGranular) {
  std::string dir = TempWalDir("truncate");
  FileWalDeviceOptions opts;
  opts.segment_bytes = 64;
  auto device = std::make_unique<FileWalDevice>(dir, opts);
  FileWalDevice* dev = device.get();
  Wal wal(std::move(device));
  std::vector<size_t> offsets;
  for (uint64_t i = 1; i <= 10; ++i) {
    offsets.push_back(wal.Append(MakeTx(500 + i, 0, i, "gc-" + std::to_string(i))));
  }
  wal.Sync();
  size_t before = dev->segment_count();
  ASSERT_GT(before, 3u);

  wal.TruncatePrefix(offsets[6]);  // logical retention starts at record 7
  EXPECT_LT(dev->segment_count(), before);
  EXPECT_EQ(dev->segment_count(), CountSegFiles(dir));
  // The device may retain more than asked (whole segments), never less: a
  // reopen must still recover records 7..10, possibly with earlier ones.
  Wal reopened(std::make_unique<FileWalDevice>(dir, opts));
  Wal::ReplayResult result = reopened.RecoverFromDevice();
  EXPECT_FALSE(result.torn_tail);
  ASSERT_GE(result.records.size(), 4u);
  EXPECT_EQ(result.records.back().version.seqno, 10u);
  uint64_t first = result.records.front().version.seqno;
  EXPECT_LE(first, 7u);
  for (size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].version.seqno, first + i);
  }
}

TEST(FileWalDeviceTest, ResetSeedsReplacementContents) {
  // SeedForRecovery (the replacement-server path) resets the device to the
  // donor's image; stale segments from the previous life must not survive.
  std::string donor_dir = TempWalDir("reset_donor");
  Wal donor(std::make_unique<FileWalDevice>(donor_dir));
  for (uint64_t i = 1; i <= 3; ++i) {
    donor.Append(MakeTx(600 + i, 1, i, "donor-" + std::to_string(i)));
  }
  donor.Sync();

  std::string dir = TempWalDir("reset_target");
  {
    Wal stale(std::make_unique<FileWalDevice>(dir));
    stale.Append(MakeTx(999, 0, 1, "stale"));
    stale.Sync();
  }
  {
    Wal wal(std::make_unique<FileWalDevice>(dir));
    wal.RecoverFromDevice();
    wal.SeedForRecovery(donor.bytes(), donor.base());
    EXPECT_EQ(wal.record_count(), 3u);
  }
  Wal reopened(std::make_unique<FileWalDevice>(dir));
  Wal::ReplayResult result = reopened.RecoverFromDevice();
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].tid, 601u);
  EXPECT_EQ(result.records[0].origin, 1u);
}

// --- Replay equivalence ----------------------------------------------------

// The file backend must recover the exact record sequence the in-memory Wal
// replays from the same appends — same order, same bytes.
TEST(FileWalDeviceTest, FileBackendReplayMatchesInMemory) {
  std::string dir = TempWalDir("equiv");
  FileWalDeviceOptions opts;
  opts.segment_bytes = 96;  // force several rolls mid-stream
  Wal mem;
  std::vector<size_t> mem_offsets;
  std::vector<size_t> file_offsets;
  {
    Wal file(std::make_unique<FileWalDevice>(dir, opts));
    for (uint64_t i = 1; i <= 9; ++i) {
      TxRecord rec = MakeTx(700 + i, i % 3, (i + 2) / 3, "eq-" + std::to_string(i));
      mem_offsets.push_back(mem.Append(rec));
      file_offsets.push_back(file.Append(rec));
    }
    file.Sync();
  }
  EXPECT_EQ(mem_offsets, file_offsets);

  Wal recovered(std::make_unique<FileWalDevice>(dir, opts));
  Wal::ReplayResult from_file = recovered.RecoverFromDevice();
  Wal::ReplayResult from_mem = mem.ReplaySelf();
  EXPECT_FALSE(from_file.torn_tail);
  EXPECT_EQ(from_file.valid_bytes, from_mem.valid_bytes);
  ASSERT_EQ(from_file.records.size(), from_mem.records.size());
  for (size_t i = 0; i < from_mem.records.size(); ++i) {
    EXPECT_EQ(from_file.records[i].tid, from_mem.records[i].tid);
    EXPECT_EQ(from_file.records[i].origin, from_mem.records[i].origin);
    EXPECT_EQ(from_file.records[i].version.seqno, from_mem.records[i].version.seqno);
    ASSERT_EQ(from_file.records[i].updates.size(), from_mem.records[i].updates.size());
    EXPECT_EQ(from_file.records[i].updates[0].data, from_mem.records[i].updates[0].data);
  }
  // The recovered byte image is identical too.
  EXPECT_EQ(recovered.bytes(), mem.bytes());
  EXPECT_EQ(recovered.base(), mem.base());
}

// --- Cluster smoke ---------------------------------------------------------

// A cluster with Options::wal_dir set runs every server against a real
// segment directory (one per server, under the configured root) and commits
// normally; the segment files exist and hold the committed records.
TEST(FileWalDeviceTest, ClusterRunsOnRealFiles) {
  std::string root = TempWalDir("cluster");
  ClusterOptions options;
  options.num_sites = 2;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig{Millis(0.3), 0.0};
  options.server.wal_dir = root;
  Cluster cluster(options);

  WalterClient* client = cluster.AddClient(0);
  for (int i = 1; i <= 3; ++i) {
    Tx tx(client);
    tx.Write(Oid(0, 10 + i), "file-" + std::to_string(i));
    bool done = false;
    tx.Commit([&](Status s) {
      EXPECT_TRUE(s.ok());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
    ASSERT_TRUE(done);
  }
  cluster.RunFor(Seconds(2));

  for (SiteId s = 0; s < 2; ++s) {
    std::string dir = root + "/site-" + std::to_string(s);
    ASSERT_TRUE(fs::exists(dir)) << dir;
    EXPECT_GT(CountSegFiles(dir), 0u);
  }
  // The victim's on-disk log replays to exactly what its in-memory Wal holds.
  Wal::ReplayResult disk = Wal(std::make_unique<FileWalDevice>(root + "/site-0")).RecoverFromDevice();
  Wal::ReplayResult live = cluster.server(0).store().wal().ReplaySelf();
  EXPECT_FALSE(disk.torn_tail);
  ASSERT_EQ(disk.records.size(), live.records.size());
  for (size_t i = 0; i < disk.records.size(); ++i) {
    EXPECT_EQ(disk.records[i].tid, live.records[i].tid);
  }
}

}  // namespace
}  // namespace walter
