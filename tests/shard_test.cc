// Intra-site sharding: shard-map hashing, directory translation, client
// routing, cross-shard 2PC, per-shard recovery, GC over shards, and a PSI
// check over a seeded sharded workload.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/config/shard_map.h"
#include "src/core/cluster.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// Logic-test options: no modeled CPU/disk cost, no gossip (so the simulator
// quiesces), deterministic network.
ClusterOptions ShardedOptions(size_t num_sites, size_t shards_per_site) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.servers_per_site.assign(num_sites, shards_per_site);
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

Status CommitTx(Cluster& cluster, Tx& tx) {
  Status result = Status::Internal("not finished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_TRUE(done) << "simulation drained before commit finished";
  return result;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  return CommitTx(cluster, tx);
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  EXPECT_TRUE(done);
  return value;
}

// Finds a container preferred at `site` that its shard map hashes to `shard`.
ContainerId ContainerOnShard(const ShardMap& map, SiteId site, size_t shard) {
  for (ContainerId c = site;; c += map.num_sites()) {
    if (map.ShardOf(c, site) == shard) {
      return c;
    }
  }
}

// --- ShardMap ----------------------------------------------------------------

TEST(ShardMapTest, TrivialMapIsIdentity) {
  ShardMap map(3);
  EXPECT_TRUE(map.trivial());
  EXPECT_EQ(map.num_sites(), 3u);
  EXPECT_EQ(map.num_servers(), 3u);
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(map.SiteOf(s), s);
    EXPECT_EQ(map.ServerAt(s, 0), s);
    for (ContainerId c = 0; c < 50; ++c) {
      EXPECT_EQ(map.ShardOf(c, s), 0u);
      EXPECT_EQ(map.OwnerAt(c, s), s);
    }
  }
}

TEST(ShardMapTest, ServerIdsAreDenseSiteMajor) {
  ShardMap map({2, 1, 3});
  EXPECT_FALSE(map.trivial());
  EXPECT_EQ(map.num_sites(), 3u);
  EXPECT_EQ(map.num_servers(), 6u);
  EXPECT_EQ(map.ServerAt(0, 0), 0u);
  EXPECT_EQ(map.ServerAt(0, 1), 1u);
  EXPECT_EQ(map.ServerAt(1, 0), 2u);
  EXPECT_EQ(map.ServerAt(2, 0), 3u);
  EXPECT_EQ(map.ServerAt(2, 2), 5u);
  for (SiteId v = 0; v < 6; ++v) {
    SiteId site = map.SiteOf(v);
    EXPECT_EQ(map.ServerAt(site, map.ShardIndexOf(v)), v);
  }
  EXPECT_EQ(map.SiteOf(1), 0u);
  EXPECT_EQ(map.SiteOf(2), 1u);
  EXPECT_EQ(map.SiteOf(5), 2u);
}

TEST(ShardMapTest, HashingIsStableAndInRange) {
  ShardMap map = ShardMap::Uniform(2, 4);
  std::vector<size_t> hits(4, 0);
  for (ContainerId c = 0; c < 4000; ++c) {
    size_t shard = map.ShardOf(c, 0);
    ASSERT_LT(shard, 4u);
    ++hits[shard];
    // Deterministic: the same container always lands on the same shard.
    EXPECT_EQ(map.ShardOf(c, 0), shard);
  }
  // splitmix64 spreads 4000 sequential ids roughly evenly (exact counts are
  // pinned by the hash; the bound just catches gross skew or a hash change).
  for (size_t shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 800u);
    EXPECT_LT(hits[shard], 1200u);
  }
}

TEST(ShardMapTest, ShardIndexIsSiteIndependentForEqualShardCounts) {
  // The hash depends only on the container id and the site's shard count, so
  // a container maps to the same shard INDEX at every site with that count —
  // and keeps it when a site is removed from the configuration.
  ShardMap three = ShardMap::Uniform(3, 4);
  ShardMap two = ShardMap::Uniform(2, 4);
  for (ContainerId c = 0; c < 500; ++c) {
    size_t at0 = three.ShardOf(c, 0);
    EXPECT_EQ(three.ShardOf(c, 1), at0);
    EXPECT_EQ(three.ShardOf(c, 2), at0);
    // Site removal (3 -> 2 sites): surviving sites re-home nothing.
    EXPECT_EQ(two.ShardOf(c, 0), at0);
    EXPECT_EQ(two.OwnerAt(c, 0), three.OwnerAt(c, 0));
  }
}

// --- Directory translation ---------------------------------------------------

TEST(ShardedDirectoryTest, TranslatesPreferredAndReplicasToOwningShards) {
  Cluster cluster(ShardedOptions(2, 2));
  const ShardMap& map = cluster.shard_map();

  // Default container c is preferred at logical site c % num_sites and
  // replicated everywhere; the translated info names one owning shard per
  // site, with the preferred site's owner as the preferred server.
  for (ContainerId c = 0; c < 20; ++c) {
    ContainerInfo info = cluster.directory(0).Get(c);
    SiteId logical = c % 2;
    EXPECT_EQ(info.preferred_site, map.OwnerAt(c, logical));
    ASSERT_EQ(info.replicas.size(), 2u);
    EXPECT_EQ(info.replicas[0], map.OwnerAt(c, 0));
    EXPECT_EQ(info.replicas[1], map.OwnerAt(c, 1));
    // Exactly one owning shard per site, so quorum arithmetic is unchanged.
    std::set<SiteId> sites;
    for (SiteId r : info.replicas) {
      sites.insert(map.SiteOf(r));
    }
    EXPECT_EQ(sites.size(), 2u);
  }
}

// --- End-to-end behavior -----------------------------------------------------

TEST(ShardedClusterTest, RoutedWritesAreReadableEverywhere) {
  Cluster cluster(ShardedOptions(2, 2));
  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);

  // One container per shard of site 0; each write fast-commits at its owner.
  for (size_t shard = 0; shard < 2; ++shard) {
    ContainerId c = ContainerOnShard(cluster.shard_map(), 0, shard);
    ASSERT_TRUE(CommitWrite(cluster, c0, Oid(c, 7), "v" + std::to_string(shard)).ok());
  }
  cluster.RunUntilIdle();  // propagate everywhere

  for (size_t shard = 0; shard < 2; ++shard) {
    ContainerId c = ContainerOnShard(cluster.shard_map(), 0, shard);
    std::string want = "v" + std::to_string(shard);
    EXPECT_EQ(ReadOnce(cluster, c0, Oid(c, 7)), want);
    EXPECT_EQ(ReadOnce(cluster, c1, Oid(c, 7)), want);
    // The write committed at the shard owning the container, as fast path.
    SiteId owner = cluster.shard_map().OwnerAt(c, 0);
    EXPECT_GE(cluster.server(owner).stats().fast_commits, 1u);
  }
}

TEST(ShardedClusterTest, CrossShardTransactionUsesIntraSite2pc) {
  Cluster cluster(ShardedOptions(2, 2));
  WalterClient* client = cluster.AddClient(0);
  ContainerId on0 = ContainerOnShard(cluster.shard_map(), 0, 0);
  ContainerId on1 = ContainerOnShard(cluster.shard_map(), 0, 1);

  Tx tx(client);
  tx.Write(Oid(on0, 1), "a");
  tx.Write(Oid(on1, 2), "b");
  ASSERT_TRUE(CommitTx(cluster, tx).ok());
  cluster.RunUntilIdle();

  // The coordinator is the shard owning the first written container; the
  // commit took the slow (2PC) path there, and the sibling voted.
  SiteId coord = cluster.shard_map().OwnerAt(on0, 0);
  SiteId other = cluster.shard_map().OwnerAt(on1, 0);
  ASSERT_NE(coord, other);
  EXPECT_GE(cluster.server(coord).stats().slow_commits, 1u);
  EXPECT_GE(cluster.server(other).stats().prepares_handled, 1u);

  // Both writes are atomically visible, from every site.
  for (SiteId s = 0; s < 2; ++s) {
    WalterClient* reader = cluster.AddClient(s);
    EXPECT_EQ(ReadOnce(cluster, reader, Oid(on0, 1)), "a");
    EXPECT_EQ(ReadOnce(cluster, reader, Oid(on1, 2)), "b");
  }
}

TEST(ShardedClusterTest, PerShardReplaceServerKeepsData) {
  Cluster cluster(ShardedOptions(2, 2));
  WalterClient* client = cluster.AddClient(0);
  ContainerId on0 = ContainerOnShard(cluster.shard_map(), 0, 0);
  ContainerId on1 = ContainerOnShard(cluster.shard_map(), 0, 1);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(on0, 3), "keep0").ok());
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(on1, 4), "keep1").ok());
  cluster.RunUntilIdle();

  // Re-home only shard 1 of site 0; shard 0 and the other site are untouched.
  cluster.ReplaceServer(cluster.shard_map().ServerAt(0, 1));
  cluster.RunUntilIdle();

  EXPECT_EQ(ReadOnce(cluster, client, Oid(on0, 3)), "keep0");
  EXPECT_EQ(ReadOnce(cluster, client, Oid(on1, 4)), "keep1");
}

TEST(ShardedClusterTest, GcFrontierAdvancesAcrossShards) {
  ClusterOptions o = ShardedOptions(2, 2);
  o.server.gossip_interval = Millis(50);
  o.gc.enabled = true;
  Cluster cluster(o);
  ASSERT_NE(cluster.gc(), nullptr);

  WalterClient* client = cluster.AddClient(0);
  for (int i = 0; i < 8; ++i) {
    ContainerId c = ContainerOnShard(cluster.shard_map(), 0, i % 2);
    ASSERT_TRUE(CommitWrite(cluster, client, Oid(c, i), "g" + std::to_string(i)).ok());
  }
  cluster.RunFor(Seconds(30));

  // The stability frontier folds per server; with commits on both shards of
  // site 0 it must have advanced for both of their origin components.
  MetricsRegistry metrics;
  cluster.gc()->ExportMetrics(metrics);
  EXPECT_GT(metrics.Get("gc.frontier", cluster.shard_map().ServerAt(0, 0)), 0.0);
  EXPECT_GT(metrics.Get("gc.frontier", cluster.shard_map().ServerAt(0, 1)), 0.0);
}

// --- PSI over a sharded workload ---------------------------------------------

// Seeded mixed workload over 2 sites x 2 shards: local writes, cross-shard
// writes (intra-site 2PC), cross-site writes (geo 2PC) and recorded reads.
// The checker treats every shard as a site of the "virtual" deployment and
// must find no snapshot, write-conflict or causality anomalies.
TEST(ShardedPsiTest, SeededCrossShardWorkloadHasNoAnomalies) {
  ClusterOptions options = ShardedOptions(2, 2);
  options.seed = 42;
  Cluster cluster(options);
  const ShardMap& map = cluster.shard_map();

  PsiChecker checker(cluster.num_servers());
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid;
  cluster.ObserveCommits([&](SiteId server, const TxRecord& rec) {
    checker.OnApply(server, rec.tid);
    if (server == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      auto it = reads_by_tid.find(rec.tid);
      if (it != reads_by_tid.end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  });

  Rng rng(7);
  int committed = 0;
  int active = 0;
  uint64_t next_value = 1;
  // Two containers per site, one on each shard.
  std::vector<std::vector<ContainerId>> containers(2);
  for (SiteId s = 0; s < 2; ++s) {
    for (size_t shard = 0; shard < 2; ++shard) {
      containers[s].push_back(ContainerOnShard(map, s, shard));
    }
  }

  std::function<void(WalterClient*, SiteId, int)> start = [&](WalterClient* client,
                                                              SiteId site, int remaining) {
    if (remaining == 0) {
      --active;
      return;
    }
    auto tx = std::make_shared<Tx>(client);
    // The read and the first write pick containers independently, so the
    // shard that assigned the snapshot is routinely NOT the commit origin —
    // the sharded case PsiChecker's visibility-gated replay exists for.
    // Cross-shard and cross-site writes ride along as the second write.
    double dice = rng.NextDouble();
    bool remote_preferred = dice >= 0.4 && dice < 0.6;
    size_t read_shard = rng.Uniform(2);
    ContainerId read_c = containers[remote_preferred ? 1 - site : site][read_shard];
    size_t first_shard = rng.Uniform(2);
    ContainerId first_c = containers[remote_preferred ? 1 - site : site][first_shard];
    ObjectId read_oid = Oid(read_c, rng.Uniform(12));
    tx->Read(read_oid, [&, client, site, remaining, tx, read_oid, dice, first_shard,
              first_c](Status s, std::optional<std::string> v) {
      ASSERT_TRUE(s.ok());
      std::vector<RecordedRead> reads;
      reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
      tx->Write(Oid(first_c, rng.Uniform(12)), "w" + std::to_string(next_value++));
      if (dice < 0.4) {
        // Cross-shard, same site: second write on the sibling shard, so the
        // commit runs the intra-site 2PC slow path.
        tx->Write(Oid(containers[site][1 - first_shard], rng.Uniform(12)),
                  "x" + std::to_string(next_value++));
      }
      TxId tid = tx->tid();
      reads_by_tid[tid] = std::move(reads);
      tx->Commit([&, client, site, remaining, tx, tid](Status s) {
        if (s.ok()) {
          ++committed;
        } else {
          reads_by_tid.erase(tid);
        }
        start(client, site, remaining - 1);
      });
    });
  };

  for (SiteId s = 0; s < 2; ++s) {
    for (int c = 0; c < 3; ++c) {
      ++active;
      start(cluster.AddClient(s), s, 30);
    }
  }
  while (active > 0 && cluster.sim().Step()) {
  }
  ASSERT_EQ(active, 0);
  cluster.RunFor(Seconds(10));  // full propagation

  EXPECT_GT(committed, 50);
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();

  // Every committed transaction propagated to every shard of every site.
  for (SiteId v = 0; v < static_cast<SiteId>(cluster.num_servers()); ++v) {
    for (SiteId origin = 0; origin < static_cast<SiteId>(cluster.num_servers()); ++origin) {
      EXPECT_EQ(cluster.server(v).committed_vts().at(origin),
                cluster.server(origin).committed_vts().at(origin))
          << "server " << v << " missing transactions from " << origin;
    }
  }
}

}  // namespace
}  // namespace walter
