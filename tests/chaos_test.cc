// Deterministic chaos harness: a seeded Nemesis injects crashes, isolation,
// partitions, loss bursts and disk slowdowns into a self-healing deployment
// (RecoveryRig) while a random multi-site workload runs. After the schedule
// ends and every fault heals, the execution must still satisfy all three PSI
// properties (PsiChecker) and the sites must converge to identical state.
//
// The harness keeps its own per-site commit logs, because aggressive site
// removal (Section 5.7) legitimately *discards* committed transactions: when
// a site learns its own removal it truncates its silently-committed tail, and
// the harness prunes exactly those entries (by tid) before building the
// checker. Survivors can never have applied a discarded transaction — the
// surviving prefix is by definition the longest prefix any survivor received,
// and membership gating rejects stale resends — which the harness asserts.
//
// Each seed is a separate ctest case; a failing seed replays exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "src/fault/nemesis.h"
#include "src/fault/recovery_rig.h"
#include "src/psi/checker.h"
#include "src/workload/workload.h"

namespace walter {
namespace {

constexpr size_t kSites = 3;
// The hot container of the surge variant: preferred at site 0 (the "hot
// shard's home"), hammered with Zipfian keys from every site.
constexpr ContainerId kHotContainer = 0;

// Random mixed workload that keeps running through faults: operations may
// fail (crashed local server, exhausted retry budget) and that is fine — the
// driver records reads only for transactions that are confirmed committed.
// With a hot-key picker attached, most transactions instead hit Zipfian keys
// in kHotContainer from every site, at surge think times — the million-user
// skew shape riding on the chaos schedule.
class ChaosDriver {
 public:
  ChaosDriver(Cluster& cluster, uint64_t seed, const ZipfKeyPicker* hot = nullptr,
              ConsistencyMode mode = ConsistencyMode::kPsi)
      : cluster_(cluster),
        rng_(seed ^ 0xc4a05),
        hot_(hot),
        mode_(mode),
        think_mean_us_(hot != nullptr ? 60.0 * 1000 : 250.0 * 1000) {}

  void Run(SimDuration duration, int clients_per_site) {
    stop_at_ = cluster_.sim().Now() + duration;
    for (SiteId s = 0; s < kSites; ++s) {
      for (int c = 0; c < clients_per_site; ++c) {
        WalterClient* client = cluster_.AddClient(s);
        ++active_;
        Loop(client);
      }
    }
    // Hard deadline well past the workload stop, in case of a stuck client.
    SimTime hard_deadline = stop_at_ + Seconds(60);
    while (active_ > 0 && cluster_.sim().Now() < hard_deadline && cluster_.sim().Step()) {
    }
    ASSERT_EQ(active_, 0) << "client transactions stuck past their retry budgets";
  }

  int confirmed() const { return confirmed_; }
  int failed() const { return failed_; }
  int hot_committed() const { return hot_committed_; }
  std::unordered_map<TxId, std::vector<RecordedRead>>& reads_by_tid() { return reads_by_tid_; }

 private:
  ObjectId RandomObject(ContainerId container) { return ObjectId{container, rng_.Uniform(30)}; }

  void Loop(WalterClient* client) {
    if (cluster_.sim().Now() >= stop_at_) {
      --active_;
      return;
    }
    SimDuration think = static_cast<SimDuration>(rng_.Exponential(think_mean_us_));
    cluster_.sim().After(think, [this, client]() { StartTx(client); });
  }

  void StartTx(WalterClient* client) {
    auto tx = std::make_shared<Tx>(client);
    tx->SetMode(mode_);
    double dice = rng_.NextDouble();
    if (hot_ != nullptr && dice < 0.6) {
      // Hot-key transaction: read a Zipfian key of the hot container, then
      // write one — from every site, so the hot home sees skewed local load
      // and skewed slow-commit traffic at once.
      ObjectId read_oid{kHotContainer, hot_->Pick(rng_)};
      tx->Read(read_oid, [this, client, tx, read_oid](Status s,
                                                      std::optional<std::string> v) {
        std::vector<RecordedRead> reads;
        if (s.ok()) {
          reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
        }
        tx->Write(ObjectId{kHotContainer, hot_->Pick(rng_)},
                  "h" + std::to_string(next_value_++));
        Finish(client, tx, std::move(reads), /*hot=*/true);
      });
      return;
    }
    if (dice < 0.15) {
      // Cross-site write: slow commit through a remote preferred site.
      ContainerId remote = (client->site() + 1 + rng_.Uniform(kSites - 1)) % kSites;
      tx->Write(RandomObject(remote), "x" + std::to_string(next_value_++));
      Finish(client, tx, {});
    } else {
      // Read one local object, then write one or two local objects.
      ContainerId local = client->site();
      ObjectId read_oid = RandomObject(local);
      tx->Read(read_oid, [this, client, tx, read_oid](Status s,
                                                      std::optional<std::string> v) {
        std::vector<RecordedRead> reads;
        if (s.ok()) {
          reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
        }
        ContainerId local = client->site();
        ObjectId w1 = RandomObject(local);
        tx->Write(w1, "w" + std::to_string(next_value_++));
        if (rng_.Bernoulli(0.3)) {
          ObjectId w2 = RandomObject(local);
          if (w2 != w1) {
            tx->Write(w2, "w" + std::to_string(next_value_++));
          }
        }
        Finish(client, tx, std::move(reads));
      });
    }
  }

  void Finish(WalterClient* client, std::shared_ptr<Tx> tx,
              std::vector<RecordedRead> reads, bool hot = false) {
    TxId tid = tx->tid();
    reads_by_tid_[tid] = std::move(reads);
    tx->Commit([this, client, tx, tid, hot](Status s) {
      if (s.ok()) {
        ++confirmed_;
        if (hot) {
          ++hot_committed_;
        }
      } else {
        ++failed_;
        // The transaction may still have committed server-side (lost
        // response); without confirmation its reads are not checkable.
        reads_by_tid_.erase(tid);
      }
      Loop(client);
    });
  }

  Cluster& cluster_;
  Rng rng_;
  const ZipfKeyPicker* hot_;  // non-null = hot-key surge mode
  ConsistencyMode mode_;      // consistency level of every driver transaction
  double think_mean_us_;
  SimTime stop_at_ = 0;
  int active_ = 0;
  int confirmed_ = 0;
  int failed_ = 0;
  int hot_committed_ = 0;
  uint64_t next_value_ = 1;
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid_;
};

// hot_surge layers the million-user skew shape onto the chaos schedule: a
// Zipfian hot-key workload against kHotContainer (home site 0) with the
// overload defenses on (admission control + client retry budgets), and a
// deterministic crash of the hot shard's home server mid-surge. Nemesis keeps
// injecting partitions/isolation/loss, but its own crash and disk faults are
// disabled so the scripted crash is the only one — the restart observer's
// reconciliation then attributes every discarded tail to that incident.
void RunChaos(uint64_t seed, bool hot_surge = false,
              ConsistencyMode mode = ConsistencyMode::kPsi) {
  ClusterOptions options;
  options.num_sites = kSites;
  options.seed = seed;
  options.server.perf = PerfModel::Instant();
  // A real (fast) flush window instead of DiskConfig::Memory(): commits are
  // only durable once the group-commit flush lands, so a crash loses the
  // in-flight WAL tail and the nemesis's disk faults can tear it mid-frame.
  options.server.disk = DiskConfig{/*flush_latency=*/Millis(0.3), /*jitter=*/0.0};
  options.server.gossip_interval = Seconds(1);
  options.server.resend_backoff_cap = Seconds(5);
  options.server.idle_tx_timeout = Seconds(20);
  options.client.max_attempts = 3;
  if (hot_surge) {
    // Defenses on: the surge must shed, not wedge. Sheds surface as failed
    // client ops (fine — the driver tolerates failures); PSI and convergence
    // must hold regardless.
    options.server.admission_max_queue = 64;
    options.server.admission_max_inflight = 256;
    options.client.overload_retry_tokens = 4;
    options.client.overload_token_refill_per_s = 20.0;
  }
  Cluster cluster(options);

  FailureDetector::Options fd;
  fd.heartbeat_interval = Millis(250);
  fd.suspicion_window = Seconds(2);
  RecoveryRig rig(&cluster, fd);

  // Harness-side per-site commit logs (prunable, unlike PsiChecker's), plus a
  // (origin, seqno) -> record index for restart reconciliation below.
  std::vector<std::vector<TxRecord>> logs(kSites);
  std::vector<std::set<std::pair<SiteId, uint64_t>>> applied(kSites);
  std::map<std::pair<SiteId, uint64_t>, TxRecord> by_version;
  std::set<TxId> discarded;
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    // First occurrence wins: with a real flush window a commit can fire here,
    // roll back with the unflushed WAL tail at a crash, and fire again on
    // re-application — the first position was this site's real apply order.
    // (Reused seqnos after a removal still land: the removal observer below
    // erases the discarded entries from `applied` first.)
    if (!applied[site].insert({rec.origin, rec.version.seqno}).second) {
      return;
    }
    logs[site].push_back(rec);
    by_version[{rec.origin, rec.version.seqno}] = rec;  // reused seqnos: latest wins
  });

  // A restored server treats everything durably applied as committed
  // (Section 5.7) without firing the commit observer — it cannot know which
  // records the crashed instance already reported. Reconcile the harness log:
  // any record inside the replacement's committed frontier that site never
  // reported commits *now* (at the restore), so it is appended here, between
  // the pre-crash entries and everything the site commits after restart.
  rig.SetRestartObserver([&](SiteId s) {
    const VectorTimestamp& frontier = cluster.server(s).committed_vts();
    for (SiteId o = 0; o < kSites; ++o) {
      for (uint64_t q = 1; q <= frontier.at(o); ++q) {
        if (applied[s].count({o, q})) {
          continue;
        }
        auto it = by_version.find({o, q});
        if (it == by_version.end()) {
          // Own record flushed but unacknowledged at the crash: no observer
          // anywhere has seen it yet; the restored server retains it.
          ASSERT_EQ(o, s);
          const TxRecord* rec = cluster.server(s).RetainedLocalCommit(q);
          ASSERT_NE(rec, nullptr) << "site " << s << " seqno " << q;
          it = by_version.emplace(std::make_pair(o, q), *rec).first;
        }
        logs[s].push_back(it->second);
        applied[s].insert({o, q});
      }
    }
  });
  for (SiteId s = 0; s < kSites; ++s) {
    rig.config(s).SetApplyObserver([&, s](const ConfigCommand& cmd) {
      if (cmd.kind != ConfigCommand::Kind::kRemoveSite) {
        return;
      }
      auto matches = [&](const TxRecord& rec) {
        return rec.origin == cmd.site && rec.version.seqno > cmd.survive_through;
      };
      if (s == cmd.site) {
        // The removed site prunes its silently-committed tail; these tids are
        // the authoritative discarded set for this incident.
        auto& log = logs[s];
        for (auto it = log.begin(); it != log.end();) {
          if (matches(*it)) {
            discarded.insert(it->tid);
            applied[s].erase({it->origin, it->version.seqno});
            it = log.erase(it);
          } else {
            ++it;
          }
        }
      } else {
        // Survivors must never have applied a non-surviving transaction.
        for (const TxRecord& rec : logs[s]) {
          EXPECT_FALSE(matches(rec))
              << "site " << s << " applied discarded tx of site " << cmd.site
              << " seqno " << rec.version.seqno << " > " << cmd.survive_through;
        }
      }
    });
  }
  rig.Start();

  NemesisOptions nopt;
  if (hot_surge) {
    // The scripted mid-surge crash of the hot home below is the only crash;
    // random crashes/disk faults would make the incident attribution in the
    // removal observer ambiguous. Partitions, isolation and loss stay on.
    nopt.enable_crash = false;
    nopt.enable_disk_fault = false;
  }
  Nemesis nemesis(&rig, nopt);
  ZipfKeyPicker hot_picker(/*keys=*/30, /*s=*/1.3, seed);
  ChaosDriver driver(cluster, seed, hot_surge ? &hot_picker : nullptr, mode);

  const SimDuration kHorizon = Seconds(60);
  nemesis.Run(kHorizon);
  if (hot_surge) {
    // Crash the hot shard's home server mid-surge, restart it while the surge
    // is still running: commits against kHotContainer re-home during the
    // outage and flow back after reintegration.
    cluster.sim().After(kHorizon / 2, [&]() {
      if (!rig.IsCrashed(0)) {
        rig.CrashSite(0);
      }
    });
    cluster.sim().After(kHorizon / 2 + Seconds(12), [&]() {
      if (rig.IsCrashed(0)) {
        rig.RestartSite(0);
      }
    });
  }
  driver.Run(kHorizon, /*clients_per_site=*/2);

  // Let outstanding heals fire, then converge: reintegration, propagation
  // backlog, lock termination, idle-tx expiry.
  cluster.RunFor(Seconds(90));

  std::string trace = "seed " + std::to_string(seed);
  for (const std::string& line : nemesis.history()) {
    trace += "\n  " + line;
  }
  SCOPED_TRACE(trace);
  EXPECT_TRUE(nemesis.healed());
  EXPECT_GT(nemesis.faults_injected(), 0u);
  EXPECT_GT(driver.confirmed(), 0);
  if (hot_surge) {
    EXPECT_GT(driver.hot_committed(), 0)
        << "the hot-key surge never committed against the hot container";
  }

  // Post-heal convergence: full membership, identical committed state,
  // no leaked locks or transaction buffers anywhere.
  for (SiteId s = 0; s < kSites; ++s) {
    for (SiteId t = 0; t < kSites; ++t) {
      EXPECT_TRUE(rig.config(s).IsActive(t)) << "site " << s << " still excludes " << t;
    }
    EXPECT_EQ(cluster.server(s).committed_vts(), cluster.server(0).committed_vts())
        << "site " << s << " did not converge";
    EXPECT_EQ(cluster.server(s).lock_count(), 0u) << "site " << s;
    EXPECT_EQ(cluster.server(s).watermark_count(), 0u) << "site " << s;
    EXPECT_EQ(cluster.server(s).lock_waiter_count(), 0u) << "site " << s;
    EXPECT_EQ(cluster.server(s).active_tx_count(), 0u) << "site " << s;
  }

  // With stability-frontier GC on (the default), a healed cluster must drain:
  // the frontier stalls during partitions and removals, but once membership
  // and replication converge, one recomputation folds every history entry at
  // or below the frontier on every site.
  ASSERT_NE(cluster.gc(), nullptr);
  cluster.gc()->Tick();
  const VectorTimestamp& frontier = cluster.gc()->last_frontier();
  for (SiteId s = 0; s < kSites; ++s) {
    EXPECT_GT(frontier.at(s), 0u) << "frontier never advanced for origin " << s;
    EXPECT_EQ(cluster.server(s).store().CountEntriesCoveredBy(frontier), 0u)
        << "site " << s << " retains entries the frontier already covers";
  }
  EXPECT_GT(cluster.gc()->runs(), 0u);

  // Feed the harness logs to the mode-aware checker (exactly the PSI checker
  // when the workload ran at the default level): apply orders per site, and
  // transaction details (with confirmed reads) registered from each origin.
  ConsistencyChecker checker(kSites, mode);
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : logs[s]) {
      checker.OnApply(s, rec.tid);
    }
  }
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : logs[s]) {
      if (rec.origin != s) {
        continue;
      }
      RecordedTx recorded;
      recorded.record = rec;
      recorded.mode = mode;
      auto it = driver.reads_by_tid().find(rec.tid);
      if (it != driver.reads_by_tid().end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  }
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(ChaosTest, Seed101) { RunChaos(101); }
TEST(ChaosTest, Seed202) { RunChaos(202); }
TEST(ChaosTest, Seed303) { RunChaos(303); }

// Zipfian hot-key surge + scripted crash of the hot shard's home, defenses on.
TEST(ChaosTest, HotKeySurgeSeed404) { RunChaos(404, /*hot_surge=*/true); }
TEST(ChaosTest, HotKeySurgeSeed505) { RunChaos(505, /*hot_surge=*/true); }

// The same chaos schedule with every workload transaction at NMSI: reads may
// serve through live watermarks (non-monotonic snapshots), so the execution is
// validated by the mode-aware checker's relaxed read rule instead of strict
// PSI. Write-write conflict freedom must still hold.
TEST(ChaosTest, NmsiSeed101) { RunChaos(101, /*hot_surge=*/false, ConsistencyMode::kNmsi); }

}  // namespace
}  // namespace walter
