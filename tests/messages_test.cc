// Serialization round-trips for every Walter protocol message, plus
// malformed-input behaviour (the bounds-checked readers must fail safely).
#include <gtest/gtest.h>

#include "src/core/messages.h"

namespace walter {
namespace {

TEST(MessagesTest, ClientOpRequestRoundTrip) {
  ClientOpRequest req;
  req.tid = 0x1234567890ULL;
  req.start_tx = true;
  req.vts = VectorTimestamp(std::vector<uint64_t>{3, 1, 4});
  req.op = ClientOpKind::kSetAdd;
  req.oid = ObjectId{7, 8};
  req.elem = ObjectId{9, 10};
  req.data = "payload";
  req.oids = {{1, 1}, {2, 2}};
  req.commit_after = true;
  req.want_durable = true;
  req.want_visible = false;
  req.reply_port = 123;

  ClientOpRequest got = ClientOpRequest::Deserialize(req.Serialize());
  EXPECT_EQ(got.tid, req.tid);
  EXPECT_EQ(got.start_tx, req.start_tx);
  EXPECT_EQ(got.vts, req.vts);
  EXPECT_EQ(got.op, req.op);
  EXPECT_EQ(got.oid, req.oid);
  EXPECT_EQ(got.elem, req.elem);
  EXPECT_EQ(got.data, req.data);
  EXPECT_EQ(got.oids, req.oids);
  EXPECT_EQ(got.commit_after, req.commit_after);
  EXPECT_EQ(got.want_durable, req.want_durable);
  EXPECT_EQ(got.want_visible, req.want_visible);
  EXPECT_EQ(got.reply_port, req.reply_port);
}

TEST(MessagesTest, ClientOpResponseRoundTrip) {
  ClientOpResponse resp;
  resp.status = StatusCode::kAborted;
  resp.assigned_vts = VectorTimestamp(std::vector<uint64_t>{1, 2});
  resp.found = true;
  resp.data = "value";
  resp.cset_bytes = "cset-bytes";
  resp.count = -42;
  resp.values = {std::optional<std::string>("a"), std::nullopt, std::optional<std::string>("")};
  resp.commit_version = Version{2, 99};

  ClientOpResponse got = ClientOpResponse::Deserialize(resp.Serialize());
  EXPECT_EQ(got.status, resp.status);
  EXPECT_EQ(got.assigned_vts, resp.assigned_vts);
  EXPECT_EQ(got.found, resp.found);
  EXPECT_EQ(got.data, resp.data);
  EXPECT_EQ(got.cset_bytes, resp.cset_bytes);
  EXPECT_EQ(got.count, resp.count);
  EXPECT_EQ(got.values, resp.values);
  EXPECT_EQ(got.commit_version, resp.commit_version);
}

TEST(MessagesTest, PrepareRoundTrip) {
  PrepareRequest req;
  req.tid = 55;
  req.oids = {{1, 2}, {3, 4}};
  req.start_vts = VectorTimestamp(std::vector<uint64_t>{9});
  PrepareRequest got = PrepareRequest::Deserialize(req.Serialize());
  EXPECT_EQ(got.tid, req.tid);
  EXPECT_EQ(got.oids, req.oids);
  EXPECT_EQ(got.start_vts, req.start_vts);

  PrepareResponse yes{true};
  EXPECT_TRUE(PrepareResponse::Deserialize(yes.Serialize()).vote_yes);
  PrepareResponse no{false};
  EXPECT_FALSE(PrepareResponse::Deserialize(no.Serialize()).vote_yes);
}

// The clock-commit / consistency-mode tail fields: round-trip when set,
// default when absent (old-format bytes must still deserialize).
TEST(MessagesTest, ClockAndModeTailFieldsRoundTrip) {
  PrepareRequest req;
  req.tid = 77;
  req.oids = {{1, 2}};
  req.start_vts = VectorTimestamp(std::vector<uint64_t>{4});
  req.commit_ts = 123456789;
  req.mode = ConsistencyMode::kSerializable;
  req.read_oids = {{5, 6}, {7, 8}};
  PrepareRequest got = PrepareRequest::Deserialize(req.Serialize());
  EXPECT_EQ(got.commit_ts, req.commit_ts);
  EXPECT_EQ(got.mode, req.mode);
  EXPECT_EQ(got.read_oids, req.read_oids);

  // All-default tail serializes the pre-clock byte layout and reads back as
  // defaults — the wire-compat half of the byte-identity discipline.
  PrepareRequest plain;
  plain.tid = 78;
  plain.oids = {{1, 2}};
  plain.start_vts = VectorTimestamp(std::vector<uint64_t>{4});
  PrepareRequest plain_got = PrepareRequest::Deserialize(plain.Serialize());
  EXPECT_EQ(plain_got.commit_ts, 0);
  EXPECT_EQ(plain_got.mode, ConsistencyMode::kPsi);
  EXPECT_TRUE(plain_got.read_oids.empty());

  PrepareResponse fb;
  fb.vote_yes = true;
  fb.clock_fallback = true;
  EXPECT_TRUE(PrepareResponse::Deserialize(fb.Serialize()).clock_fallback);
  PrepareResponse no_fb{true};
  EXPECT_FALSE(PrepareResponse::Deserialize(no_fb.Serialize()).clock_fallback);

  ClientOpRequest op;
  op.tid = 9;
  op.commit_after = true;
  op.mode = ConsistencyMode::kNmsi;
  op.read_oids = {{2, 3}};
  ClientOpRequest op_got = ClientOpRequest::Deserialize(op.Serialize());
  EXPECT_EQ(op_got.mode, ConsistencyMode::kNmsi);
  EXPECT_EQ(op_got.read_oids, op.read_oids);
  ClientOpRequest op_plain;
  op_plain.tid = 10;
  EXPECT_EQ(ClientOpRequest::Deserialize(op_plain.Serialize()).mode, ConsistencyMode::kPsi);

  RemoteReadRequest rr;
  rr.oid = {3, 4};
  rr.vts = VectorTimestamp(std::vector<uint64_t>{1, 2});
  rr.caller = 1;
  rr.mode = ConsistencyMode::kNmsi;
  EXPECT_EQ(RemoteReadRequest::Deserialize(rr.Serialize()).mode, ConsistencyMode::kNmsi);
  RemoteReadRequest rr_plain;
  rr_plain.oid = {3, 4};
  rr_plain.vts = VectorTimestamp(std::vector<uint64_t>{1, 2});
  EXPECT_EQ(RemoteReadRequest::Deserialize(rr_plain.Serialize()).mode, ConsistencyMode::kPsi);
}

TEST(MessagesTest, PropagateBatchRoundTrip) {
  PropagateBatch batch;
  batch.origin = 2;
  for (uint64_t i = 1; i <= 3; ++i) {
    TxRecord rec;
    rec.tid = i;
    rec.origin = 2;
    rec.version = Version{2, i};
    rec.start_vts = VectorTimestamp(std::vector<uint64_t>{0, 0, i - 1});
    rec.updates = {ObjectUpdate::Data(ObjectId{1, i}, "d" + std::to_string(i)),
                   ObjectUpdate::Add(ObjectId{2, 1}, ObjectId{3, i})};
    batch.records.push_back(std::move(rec));
  }
  PropagateBatch got = PropagateBatch::Deserialize(batch.Serialize());
  EXPECT_EQ(got.origin, batch.origin);
  ASSERT_EQ(got.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got.records[i].tid, batch.records[i].tid);
    EXPECT_EQ(got.records[i].version, batch.records[i].version);
    EXPECT_EQ(got.records[i].updates, batch.records[i].updates);
  }
  EXPECT_GT(batch.ByteSize(), 0u);
}

TEST(MessagesTest, AckAndWatermarkMessagesRoundTrip) {
  PropagateAck ack{1, 2, 77};
  PropagateAck ack2 = PropagateAck::Deserialize(ack.Serialize());
  EXPECT_EQ(ack2.from, 1u);
  EXPECT_EQ(ack2.origin, 2u);
  EXPECT_EQ(ack2.received_through, 77u);

  DsDurableMessage ds{3, 99};
  DsDurableMessage ds2 = DsDurableMessage::Deserialize(ds.Serialize());
  EXPECT_EQ(ds2.origin, 3u);
  EXPECT_EQ(ds2.durable_through, 99u);

  VisibleAck vis{0, 1, 5};
  VisibleAck vis2 = VisibleAck::Deserialize(vis.Serialize());
  EXPECT_EQ(vis2.from, 0u);
  EXPECT_EQ(vis2.origin, 1u);
  EXPECT_EQ(vis2.committed_through, 5u);

  AbortMessage abort{42};
  EXPECT_EQ(AbortMessage::Deserialize(abort.Serialize()).tid, 42u);

  TxNotify notify{7};
  EXPECT_EQ(TxNotify::Deserialize(notify.Serialize()).tid, 7u);
}

TEST(MessagesTest, RemoteReadRoundTrip) {
  RemoteReadRequest req;
  req.oid = ObjectId{5, 6};
  req.vts = VectorTimestamp(std::vector<uint64_t>{1, 2, 3});
  req.is_cset = true;
  req.caller = 2;
  req.local_min_seqno = 11;
  RemoteReadRequest got = RemoteReadRequest::Deserialize(req.Serialize());
  EXPECT_EQ(got.oid, req.oid);
  EXPECT_EQ(got.vts, req.vts);
  EXPECT_EQ(got.is_cset, req.is_cset);
  EXPECT_EQ(got.caller, req.caller);
  EXPECT_EQ(got.local_min_seqno, req.local_min_seqno);

  RemoteReadResponse resp;
  resp.found = true;
  resp.data = "remote-value";
  resp.version = Version{1, 3};
  resp.cset_bytes = "bytes";
  RemoteReadResponse resp2 = RemoteReadResponse::Deserialize(resp.Serialize());
  EXPECT_EQ(resp2.found, resp.found);
  EXPECT_EQ(resp2.data, resp.data);
  EXPECT_EQ(resp2.version, resp.version);
  EXPECT_EQ(resp2.cset_bytes, resp.cset_bytes);
}

TEST(MessagesTest, TruncatedPayloadsFailSafely) {
  // Every Deserialize must tolerate truncation without UB (bounds-checked
  // readers return zero values). Exercise a few prefixes of a real message.
  ClientOpRequest req;
  req.tid = 9;
  req.op = ClientOpKind::kWrite;
  req.oid = ObjectId{1, 2};
  req.data = "abcdefgh";
  std::string full = req.Serialize();
  for (size_t len = 0; len < full.size(); len += 3) {
    ClientOpRequest got = ClientOpRequest::Deserialize(std::string_view(full).substr(0, len));
    (void)got;  // must not crash; values may be defaulted
  }
  SUCCEED();
}

TEST(MessagesTest, EmptyBatchSerializes) {
  PropagateBatch batch;
  batch.origin = 0;
  PropagateBatch got = PropagateBatch::Deserialize(batch.Serialize());
  EXPECT_TRUE(got.records.empty());
}

}  // namespace
}  // namespace walter
