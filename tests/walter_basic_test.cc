// End-to-end tests of the Walter server/client protocols on a simulated
// cluster: transaction execution, fast commit, slow commit, csets,
// asynchronous propagation, durability/visibility callbacks, and the RPC
// piggybacking contract of Section 8.2.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// Logic-test options: no modeled CPU/disk cost, no gossip (so the simulator
// quiesces), deterministic network.
ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

// Runs simulator steps until `done` or the event queue drains.
template <typename Pred>
void RunUntil(Cluster& cluster, Pred done) {
  while (!done() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(done()) << "simulation drained before the condition held";
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("not finished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

TEST(WalterBasicTest, WriteThenReadSingleSite) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "hello").ok());
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 1)), "hello");
}

TEST(WalterBasicTest, UnwrittenObjectReadsNil) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 99)), std::nullopt);
}

TEST(WalterBasicTest, DestroyWritesNil) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "x").ok());
  Tx tx(client);
  tx.Destroy(Oid(1, 1));
  bool done = false;
  tx.Commit([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  // Destroyed object reads as nil-equivalent (empty value).
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 1)), "");
}

TEST(WalterBasicTest, ReadYourOwnBufferedWrites) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(1, 1), "mine");
  std::optional<std::string> value;
  bool done = false;
  tx.Read(Oid(1, 1), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(value, "mine");
}

TEST(WalterBasicTest, SnapshotDoesNotSeeLaterCommits) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "v1").ok());

  // Start a reader (its snapshot is assigned at the first read).
  Tx reader(client);
  std::optional<std::string> first;
  bool read1_done = false;
  reader.Read(Oid(1, 1), [&](Status, std::optional<std::string> v) {
    first = std::move(v);
    read1_done = true;
  });
  RunUntil(cluster, [&] { return read1_done; });
  EXPECT_EQ(first, "v1");

  // Another transaction overwrites.
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "v2").ok());

  // The reader still sees its snapshot (non-repeatable read prevented).
  std::optional<std::string> second;
  bool read2_done = false;
  reader.Read(Oid(1, 1), [&](Status, std::optional<std::string> v) {
    second = std::move(v);
    read2_done = true;
  });
  RunUntil(cluster, [&] { return read2_done; });
  EXPECT_EQ(second, "v1");

  // A fresh transaction sees the new value.
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 1)), "v2");
}

TEST(WalterBasicTest, WriteWriteConflictAborts) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "base").ok());

  // Two transactions read the same snapshot, then both write the object.
  Tx t1(client);
  Tx t2(client);
  int reads = 0;
  t1.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { ++reads; });
  RunUntil(cluster, [&] { return reads == 1; });
  t2.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { ++reads; });
  RunUntil(cluster, [&] { return reads == 2; });

  t1.Write(Oid(1, 1), "t1");
  t2.Write(Oid(1, 1), "t2");

  Status s1 = Status::Internal("");
  Status s2 = Status::Internal("");
  int commits = 0;
  t1.Commit([&](Status s) {
    s1 = s;
    ++commits;
  });
  RunUntil(cluster, [&] { return commits == 1; });
  t2.Commit([&](Status s) {
    s2 = s;
    ++commits;
  });
  RunUntil(cluster, [&] { return commits == 2; });

  EXPECT_TRUE(s1.ok());
  EXPECT_EQ(s2.code(), StatusCode::kAborted);  // lost update prevented
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 1)), "t1");
  EXPECT_EQ(cluster.server(0).stats().aborts, 1u);
}

TEST(WalterBasicTest, CsetAddRemoveAndRead) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.SetAdd(Oid(1, 1), Oid(9, 1));
  tx.SetAdd(Oid(1, 1), Oid(9, 2));
  tx.SetDel(Oid(1, 1), Oid(9, 2));
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });

  Tx reader(client);
  CountingSet set;
  bool read_done = false;
  reader.SetRead(Oid(1, 1), [&](Status s, CountingSet got) {
    ASSERT_TRUE(s.ok());
    set = std::move(got);
    read_done = true;
  });
  RunUntil(cluster, [&] { return read_done; });
  EXPECT_EQ(set.Count(Oid(9, 1)), 1);
  EXPECT_EQ(set.Count(Oid(9, 2)), 0);

  int64_t count = -1;
  bool count_done = false;
  reader.SetReadId(Oid(1, 1), Oid(9, 1), [&](Status, int64_t c) {
    count = c;
    count_done = true;
  });
  RunUntil(cluster, [&] { return count_done; });
  EXPECT_EQ(count, 1);
}

TEST(WalterBasicTest, PropagationMakesWritesVisibleRemotely) {
  Cluster cluster(LogicOptions(2));
  WalterClient* writer = cluster.AddClient(0);
  WalterClient* reader = cluster.AddClient(1);

  // Container 0 prefers site 0 (default layout: container id % num_sites).
  ASSERT_TRUE(CommitWrite(cluster, writer, Oid(0, 1), "geo").ok());
  // Not yet propagated (no simulated time has passed beyond the commit).
  cluster.RunFor(Seconds(2));
  EXPECT_EQ(ReadOnce(cluster, reader, Oid(0, 1)), "geo");
  EXPECT_EQ(cluster.server(1).committed_vts().at(0), 1u);
}

TEST(WalterBasicTest, SlowCommitForRemotePreferredObject) {
  Cluster cluster(LogicOptions(2));
  WalterClient* client = cluster.AddClient(0);
  // Container 1 prefers site 1; writing it from site 0 needs 2PC.
  Status s = CommitWrite(cluster, client, Oid(1, 1), "cross");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(cluster.server(0).stats().slow_commits, 1u);
  EXPECT_EQ(cluster.server(0).stats().fast_commits, 0u);
  EXPECT_EQ(cluster.server(1).stats().prepares_handled, 1u);
  EXPECT_EQ(ReadOnce(cluster, client, Oid(1, 1)), "cross");
  // After propagation, visible at the preferred site too.
  cluster.RunFor(Seconds(2));
  WalterClient* remote_reader = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, remote_reader, Oid(1, 1)), "cross");
}

TEST(WalterBasicTest, CsetUpdateAtNonPreferredSiteFastCommits) {
  Cluster cluster(LogicOptions(2));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  // Container 1 prefers site 1, but cset operations never need 2PC.
  tx.SetAdd(Oid(1, 5), Oid(9, 1));
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(cluster.server(0).stats().fast_commits, 1u);
  EXPECT_EQ(cluster.server(0).stats().slow_commits, 0u);
}

TEST(WalterBasicTest, ConcurrentCsetAddsFromTwoSitesBothSurvive) {
  Cluster cluster(LogicOptions(2));
  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);

  int committed = 0;
  Tx t0(c0);
  t0.SetAdd(Oid(0, 7), Oid(9, 100));
  t0.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    ++committed;
  });
  Tx t1(c1);
  t1.SetAdd(Oid(0, 7), Oid(9, 200));
  t1.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    ++committed;
  });
  RunUntil(cluster, [&] { return committed == 2; });
  cluster.RunFor(Seconds(2));  // full propagation

  for (SiteId s = 0; s < 2; ++s) {
    WalterClient* reader = cluster.AddClient(s);
    Tx tx(reader);
    CountingSet set;
    bool done = false;
    tx.SetRead(Oid(0, 7), [&](Status, CountingSet got) {
      set = std::move(got);
      done = true;
    });
    RunUntil(cluster, [&] { return done; });
    EXPECT_TRUE(set.Contains(Oid(9, 100))) << "site " << s;
    EXPECT_TRUE(set.Contains(Oid(9, 200))) << "site " << s;
  }
}

TEST(WalterBasicTest, DurableAndVisibleCallbacksFire) {
  Cluster cluster(LogicOptions(3));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(0, 1), "important");
  bool committed = false;
  bool durable = false;
  bool visible = false;
  Tx::CommitOptions options;
  options.on_durable = [&] { durable = true; };
  options.on_visible = [&] { visible = true; };
  tx.Commit(
      [&](Status s) {
        ASSERT_TRUE(s.ok());
        committed = true;
      },
      options);
  RunUntil(cluster, [&] { return committed; });
  EXPECT_FALSE(visible);  // commit is local; visibility needs propagation
  cluster.RunFor(Seconds(3));
  EXPECT_TRUE(durable);
  EXPECT_TRUE(visible);
  EXPECT_EQ(cluster.server(0).globally_visible_through(), 1u);
}

TEST(WalterBasicTest, SingleUpdateTransactionIsOneRpc) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(1, 1), "v");
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(tx.rpcs_issued(), 1u);  // Section 8.2's piggyback optimization
}

TEST(WalterBasicTest, SingleReadTransactionIsOneRpc) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  bool read_done = false;
  tx.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { read_done = true; });
  RunUntil(cluster, [&] { return read_done; });
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(tx.rpcs_issued(), 1u);  // read-only commit is client-local
}

TEST(WalterBasicTest, CsetTransactionOfSection84IsFourRpcs) {
  Cluster cluster(LogicOptions(4));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(0, 1), "a");          // preferred locally
  tx.Write(Oid(0, 2), "b");          // preferred locally
  tx.SetAdd(Oid(1, 1), Oid(9, 1));   // cset with remote preferred site
  bool done = false;
  tx.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(tx.rpcs_issued(), 4u);  // 2 writes + 1 cset op + commit (§8.4)
  EXPECT_EQ(cluster.server(0).stats().fast_commits, 1u);
}

TEST(WalterBasicTest, MultiReadReturnsManyValues) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 1), "a").ok());
  ASSERT_TRUE(CommitWrite(cluster, client, Oid(1, 2), "b").ok());
  Tx tx(client);
  std::vector<std::optional<std::string>> values;
  bool done = false;
  tx.MultiRead({Oid(1, 1), Oid(1, 2), Oid(1, 3)}, [&](Status s, auto v) {
    ASSERT_TRUE(s.ok());
    values = std::move(v);
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "a");
  EXPECT_EQ(values[1], "b");
  EXPECT_EQ(values[2], std::nullopt);
}

TEST(WalterBasicTest, AbortDiscardsUpdates) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  Tx tx(client);
  tx.Write(Oid(1, 1), "ghost");
  std::optional<std::string> observed;
  bool read_done = false;
  // Force the write to reach the server, then abort.
  tx.Read(Oid(1, 2), [&](Status, std::optional<std::string>) { read_done = true; });
  RunUntil(cluster, [&] { return read_done; });
  bool aborted = false;
  tx.Abort([&] { aborted = true; });
  RunUntil(cluster, [&] { return aborted; });
  observed = ReadOnce(cluster, client, Oid(1, 1));
  EXPECT_EQ(observed, std::nullopt);
}

TEST(WalterBasicTest, SlowCommitConflictingWithFastCommitAborts) {
  Cluster cluster(LogicOptions(2));
  WalterClient* remote = cluster.AddClient(0);  // will slow-commit to site 1
  WalterClient* local = cluster.AddClient(1);   // fast-commits at site 1

  // A fast commit at the preferred site modifies the object first.
  ASSERT_TRUE(CommitWrite(cluster, local, Oid(1, 1), "fast").ok());

  // A transaction at site 0 that read an old snapshot tries to slow-commit a
  // write to the same object; the preferred site votes NO (modified).
  Tx tx(remote);
  tx.Write(Oid(1, 1), "slow");
  Status result = Status::Ok();
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_EQ(result.code(), StatusCode::kAborted);
  EXPECT_EQ(ReadOnce(cluster, local, Oid(1, 1)), "fast");
}

TEST(WalterBasicTest, CommitCausalityAcrossSites) {
  // Alice posts at site 0; Bob reads it at site 1 and replies; nobody can see
  // Bob's reply without Alice's post (Section 1's causality example).
  Cluster cluster(LogicOptions(3));
  WalterClient* alice = cluster.AddClient(0);
  WalterClient* bob = cluster.AddClient(1);
  WalterClient* carol = cluster.AddClient(2);

  ASSERT_TRUE(CommitWrite(cluster, alice, Oid(0, 1), "alice-post").ok());
  cluster.RunFor(Seconds(2));  // propagate to Bob's site

  ASSERT_EQ(ReadOnce(cluster, bob, Oid(0, 1)), "alice-post");
  ASSERT_TRUE(CommitWrite(cluster, bob, Oid(1, 1), "bob-reply").ok());
  cluster.RunFor(Seconds(3));  // propagate everywhere

  // At Carol's site, if the reply is visible the post must be too.
  auto reply = ReadOnce(cluster, carol, Oid(1, 1));
  auto post = ReadOnce(cluster, carol, Oid(0, 1));
  ASSERT_EQ(reply, "bob-reply");
  EXPECT_EQ(post, "alice-post");
}

}  // namespace
}  // namespace walter
