// Tests for the discrete-event simulator, CPU resource and group-commit disk.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/disk.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace walter {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.After(Micros(30), [&] { order.push_back(3); });
  sim.After(Micros(10), [&] { order.push_back(1); });
  sim.After(Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Micros(30));
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.After(Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.After(Micros(1), [&] {
    ++fired;
    sim.After(Micros(1), [&] {
      ++fired;
      sim.After(Micros(1), [&] { ++fired; });
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), Micros(3));
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.After(Micros(10), [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelOneOfMany) {
  Simulator sim;
  int fired = 0;
  sim.After(Micros(1), [&] { ++fired; });
  EventId id = sim.After(Micros(2), [&] { fired += 100; });
  sim.After(Micros(3), [&] { ++fired; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.After(Micros(10), [&] { ++fired; });
  sim.After(Micros(20), [&] { ++fired; });
  sim.RunUntil(Micros(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(15));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.After(Micros(-5), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, CancelAfterFireIsSafe) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.After(Micros(1), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // The event already fired and its slot was recycled: cancelling the stale id
  // must be a no-op, even after another event has reused the slot.
  EventId later = sim.After(Micros(1), [&] { fired += 10; });
  sim.Cancel(id);
  sim.Cancel(id);  // idempotent
  sim.Run();
  EXPECT_EQ(fired, 11);
  (void)later;
}

TEST(SimulatorTest, CancelReleasesCallableImmediately) {
  Simulator sim;
  auto guard = std::make_shared<int>(42);
  EventId id = sim.After(Seconds(10), [guard] { (void)*guard; });
  ASSERT_EQ(guard.use_count(), 2);
  sim.Cancel(id);
  // The captured state must be dropped at cancel time, not when the event's
  // deadline passes — cancelled RPC timeouts must not pin their closures.
  EXPECT_EQ(guard.use_count(), 1);
}

TEST(SimulatorTest, GenerationGuardsSlotReuseAfterCancel) {
  Simulator sim;
  int fired = 0;
  EventId old_id = sim.After(Micros(10), [&] { fired += 100; });
  sim.Cancel(old_id);
  // Keep scheduling until some event reuses the cancelled event's slot (same
  // low 32 bits). Its generation differs, so cancelling via the stale id must
  // not touch it.
  EventId reused = 0;
  for (int i = 0; i < 64 && reused == 0; ++i) {
    EventId id = sim.After(Micros(1), [&] { ++fired; });
    if ((id & 0xffffffffu) == (old_id & 0xffffffffu)) {
      reused = id;
    }
  }
  ASSERT_NE(reused, 0u) << "slot free list should reuse the cancelled slot";
  EXPECT_NE(reused, old_id) << "reused slot must carry a fresh generation";
  sim.Cancel(old_id);  // stale: must not cancel the new occupant
  sim.Run();
  EXPECT_GE(fired, 1);
  EXPECT_LT(fired, 100);
}

TEST(SimulatorTest, RescheduleFromWithinCallback) {
  Simulator sim;
  // A callback that cancels a sibling and schedules a replacement while the
  // heap is mid-pop; the replacement and cancellation must both take effect.
  int fired = 0;
  EventId sibling = sim.After(Micros(5), [&] { fired += 100; });
  sim.After(Micros(1), [&] {
    sim.Cancel(sibling);
    sim.After(Micros(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(2));
}

TEST(SimulatorTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> values;
    for (int i = 0; i < 5; ++i) {
      values.push_back(sim.rng().Next());
    }
    return values;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(ResourceTest, SerializesWorkAtCapacityOne) {
  Simulator sim;
  Resource cpu(&sim, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    cpu.Execute(Micros(10), [&] { completions.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Micros(10));
  EXPECT_EQ(completions[1], Micros(20));
  EXPECT_EQ(completions[2], Micros(30));
  EXPECT_EQ(cpu.completed(), 3u);
  EXPECT_EQ(cpu.busy_time(), Micros(30));
}

TEST(ResourceTest, ParallelismAtHigherCapacity) {
  Simulator sim;
  Resource cpu(&sim, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    cpu.Execute(Micros(10), [&] { completions.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], Micros(10));
  EXPECT_EQ(completions[1], Micros(10));
  EXPECT_EQ(completions[2], Micros(20));
  EXPECT_EQ(completions[3], Micros(20));
}

TEST(ResourceTest, QueueLengthReflectsBacklog) {
  Simulator sim;
  Resource cpu(&sim, 1);
  for (int i = 0; i < 5; ++i) {
    cpu.Execute(Micros(10), [] {});
  }
  EXPECT_EQ(cpu.busy(), 1);
  EXPECT_EQ(cpu.queue_length(), 4u);
  sim.Run();
  EXPECT_EQ(cpu.queue_length(), 0u);
}

TEST(DiskTest, MemoryDiskCompletesImmediately) {
  Simulator sim;
  Disk disk(&sim, DiskConfig::Memory());
  bool done = false;
  disk.Flush([&] { done = true; });
  EXPECT_TRUE(done);  // synchronous for the memory config
}

TEST(DiskTest, GroupCommitBatchesConcurrentRecords) {
  Simulator sim;
  DiskConfig config;
  config.flush_latency = Millis(1);
  config.jitter = 0;
  Disk disk(&sim, config);
  // First record starts a flush; the next three arrive during it and share the
  // second flush.
  int done = 0;
  disk.Flush([&] { ++done; });
  sim.After(Micros(100), [&] {
    disk.Flush([&] { ++done; });
    disk.Flush([&] { ++done; });
    disk.Flush([&] { ++done; });
  });
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(disk.flushes(), 2u);  // 1 record + batched 3
  EXPECT_EQ(disk.records(), 4u);
}

TEST(DiskTest, BackToBackFlushLatencyBounds) {
  Simulator sim;
  DiskConfig config;
  config.flush_latency = Millis(1);
  config.jitter = 0;
  Disk disk(&sim, config);
  SimTime t0 = 0;
  SimTime t1 = 0;
  disk.Flush([&] { t0 = sim.Now(); });
  disk.Flush([&] { t1 = sim.Now(); });  // joins the *next* batch
  sim.Run();
  EXPECT_EQ(t0, Millis(1));
  EXPECT_EQ(t1, Millis(2));
}

}  // namespace
}  // namespace walter
