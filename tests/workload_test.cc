// The million-user scenario layer: Zipfian key pickers (seeded permutations,
// skew ordering), rate schedules (constant / flash crowd / diurnal),
// the thinning-based open-loop driver (deterministic, window-bounded
// accounting), and the virtual social graph at full WaltSocial scale
// (1M users, power-law fanout, hot celebrities) — all pure functions of
// their seeds, so every assertion here is exact replay, not statistics
// about one lucky run.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace walter {
namespace {

// --- ZipfKeyPicker -------------------------------------------------------------

TEST(ZipfKeyPickerTest, RankMapIsABijection) {
  ZipfKeyPicker picker(997, 1.1, /*seed=*/5);  // prime size: no easy aliasing
  std::set<uint64_t> seen;
  for (uint64_t r = 0; r < picker.keys(); ++r) {
    uint64_t k = picker.KeyOfRank(r);
    ASSERT_LT(k, picker.keys());
    ASSERT_TRUE(seen.insert(k).second) << "rank " << r << " aliases key " << k;
  }
  EXPECT_EQ(seen.size(), picker.keys());
}

TEST(ZipfKeyPickerTest, SeedsScatterTheHotRanks) {
  // Different seeds heat different keys: co-locating rank 0 at key 0 would
  // alias every picker's hot key with whatever a bench populated first.
  ZipfKeyPicker a(4096, 1.1, 1);
  ZipfKeyPicker b(4096, 1.1, 2);
  bool differs = false;
  for (uint64_t r = 0; r < 8; ++r) {
    differs = differs || a.KeyOfRank(r) != b.KeyOfRank(r);
  }
  EXPECT_TRUE(differs);
  // And deterministic: the same seed is the same permutation.
  ZipfKeyPicker a2(4096, 1.1, 1);
  for (uint64_t r = 0; r < 64; ++r) {
    EXPECT_EQ(a.KeyOfRank(r), a2.KeyOfRank(r));
  }
}

TEST(ZipfKeyPickerTest, PickIsDeterministicAndSkewed) {
  constexpr uint64_t kKeys = 2048;
  ZipfKeyPicker picker(kKeys, 1.3, /*seed=*/7);
  Rng rng_a(9);
  Rng rng_b(9);
  std::map<uint64_t, uint64_t> freq;
  for (int i = 0; i < 200000; ++i) {
    uint64_t k = picker.Pick(rng_a);
    ASSERT_EQ(k, picker.Pick(rng_b)) << "same rng seed must replay the same keys";
    ++freq[k];
  }
  // Popularity follows rank: the hottest key dominates, and frequency decays
  // down the rank order.
  uint64_t hot = freq[picker.KeyOfRank(0)];
  uint64_t warm = freq[picker.KeyOfRank(20)];
  uint64_t cold = freq[picker.KeyOfRank(1000)];
  EXPECT_GT(hot, 10000u) << "s=1.3 concentrates >5% of draws on rank 0";
  EXPECT_GT(hot, warm * 4);
  EXPECT_GT(warm, cold);
}

TEST(ZipfKeyPickerTest, HigherExponentIsMoreSkewed) {
  constexpr uint64_t kKeys = 2048;
  constexpr int kDraws = 100000;
  auto hot_share = [&](double s) {
    ZipfKeyPicker picker(kKeys, s, /*seed=*/7);
    Rng rng(11);
    uint64_t hot_key = picker.KeyOfRank(0);
    int hits = 0;
    for (int i = 0; i < kDraws; ++i) {
      hits += picker.Pick(rng) == hot_key ? 1 : 0;
    }
    return static_cast<double>(hits) / kDraws;
  };
  double s09 = hot_share(0.9);
  double s11 = hot_share(1.1);
  double s13 = hot_share(1.3);
  EXPECT_LT(s09, s11);
  EXPECT_LT(s11, s13);
}

// --- RateSchedule ----------------------------------------------------------------

TEST(RateScheduleTest, ConstantIsFlat) {
  RateSchedule s = RateSchedule::Constant(1234.5);
  EXPECT_EQ(s.peak(), 1234.5);
  EXPECT_EQ(s.RateAt(0), 1234.5);
  EXPECT_EQ(s.RateAt(Seconds(1)), 1234.5);
  EXPECT_EQ(s.RateAt(Seconds(3600)), 1234.5);
}

TEST(RateScheduleTest, FlashCrowdRampsUpHoldsAndRampsDown) {
  const double base = 100.0;
  RateSchedule s = RateSchedule::FlashCrowd(base, 4.0, /*start=*/Millis(100),
                                            /*ramp=*/Millis(100), /*hold=*/Millis(200),
                                            /*step=*/Millis(10));
  EXPECT_EQ(s.peak(), 400.0);
  EXPECT_EQ(s.RateAt(0), base);
  EXPECT_EQ(s.RateAt(Millis(99)), base);
  // Mid-ramp: strictly between base and peak.
  double mid = s.RateAt(Millis(150));
  EXPECT_GT(mid, base);
  EXPECT_LT(mid, 400.0);
  // Peak plateau covers [start+ramp, start+ramp+hold).
  EXPECT_EQ(s.RateAt(Millis(200)), 400.0);
  EXPECT_EQ(s.RateAt(Millis(350)), 400.0);
  // Symmetric ramp down, then base forever.
  double down = s.RateAt(Millis(450));
  EXPECT_GT(down, base);
  EXPECT_LT(down, 400.0);
  EXPECT_EQ(s.RateAt(Millis(500)), base);
  EXPECT_EQ(s.RateAt(Seconds(10)), base);
}

TEST(RateScheduleTest, DiurnalRepeatsEveryPeriodAndPhaseShifts) {
  const SimDuration period = Seconds(10);
  RateSchedule day = RateSchedule::Diurnal(100.0, 0.8, period, /*phase=*/0.0);
  // Periodic: one full period later is the same rate, at any sample point.
  for (SimDuration t = 0; t < period; t += Millis(137)) {
    EXPECT_EQ(day.RateAt(t), day.RateAt(t + period));
    EXPECT_EQ(day.RateAt(t), day.RateAt(t + 3 * period));
  }
  // Amplitude: samples swing around base within [base*(1-a), base*(1+a)], and
  // the extremes get close to both bounds (24 steps sample near the peaks).
  double lo = 1e18;
  double hi = 0;
  for (SimDuration t = 0; t < period; t += Millis(50)) {
    double r = day.RateAt(t);
    EXPECT_GE(r, 100.0 * 0.2 - 1e-9);
    EXPECT_LE(r, 100.0 * 1.8 + 1e-9);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 100.0 * 0.3);
  EXPECT_GT(hi, 100.0 * 1.7);
  EXPECT_GE(day.peak(), hi);
  // Anti-phase (the per-site imbalance shape): phase 0.5 equals phase 0
  // shifted by half a period — the same 24 steps up to the fp rounding of
  // evaluating sin at shifted arguments.
  RateSchedule night = RateSchedule::Diurnal(100.0, 0.8, period, /*phase=*/0.5);
  for (SimDuration t = 0; t < period; t += Millis(97)) {
    EXPECT_NEAR(night.RateAt(t), day.RateAt(t + period / 2), 1e-6);
  }
}

// --- ScheduledLoad ----------------------------------------------------------------

TEST(ScheduledLoadTest, DeterministicArrivalsAndWindowedCounts) {
  auto run_once = [](bool succeed) {
    Simulator sim(1);
    ScheduledLoad load(
        &sim, RateSchedule::Constant(10000.0),
        [&sim, succeed](std::function<void(bool)> done) {
          // Completes 100us after arrival — inside the window for all but the
          // last 100us of arrivals.
          sim.After(100, [done = std::move(done), succeed]() { done(succeed); });
        },
        /*seed=*/42);
    return load.Run(/*warmup=*/Millis(10), /*measure=*/Millis(100), /*drain=*/Millis(50));
  };

  ScheduledLoadResult a = run_once(true);
  ScheduledLoadResult b = run_once(true);
  // Same seed, same schedule: byte-identical accounting.
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.latency.count(), b.latency.count());

  // ~1000 arrivals in a 100ms window at 10k/s (Poisson, seeded — the exact
  // count is pinned by the seed; the band just catches a rate-math break).
  EXPECT_GT(a.offered, 800u);
  EXPECT_LT(a.offered, 1200u);
  EXPECT_EQ(a.failed, 0u);
  // Latency tracks in-window arrivals; completions land in-window except
  // arrivals inside the last 100us.
  EXPECT_EQ(a.latency.count(), a.offered);
  EXPECT_LE(a.completed, a.offered);
  EXPECT_GE(a.completed + 5, a.offered);
  EXPECT_NEAR(a.seconds, 0.1, 1e-9);
  EXPECT_NEAR(a.OfferedRate(), 10000.0, 2000.0);

  ScheduledLoadResult f = run_once(false);
  EXPECT_EQ(f.offered, a.offered) << "success/failure must not perturb arrivals";
  EXPECT_EQ(f.completed, 0u);
  EXPECT_EQ(f.failed, f.offered);
}

TEST(ScheduledLoadTest, CompletionsAfterTheWindowDoNotCountAsGoodput) {
  Simulator sim(1);
  uint64_t launched = 0;
  ScheduledLoad load(
      &sim, RateSchedule::Constant(5000.0),
      [&sim, &launched](std::function<void(bool)> done) {
        ++launched;
        // Completes 80ms after arrival: every arrival in the last 80ms of the
        // 100ms window finishes during the drain — work done, goodput not.
        sim.After(Millis(80), [done = std::move(done)]() { done(true); });
      },
      /*seed=*/43);
  ScheduledLoadResult r = load.Run(Millis(10), Millis(100), Millis(200));
  EXPECT_GT(r.offered, 300u);
  EXPECT_LT(r.completed, r.offered) << "drain stragglers must not inflate goodput";
  EXPECT_GT(r.completed, 0u);
  // Latency still follows every in-window arrival to completion.
  EXPECT_EQ(r.latency.count(), r.offered);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GE(launched, r.offered);
}

// --- SocialGraph -----------------------------------------------------------------

TEST(SocialGraphTest, MillionUserPermutationRoundTrips) {
  SocialGraphOptions options;
  options.users = 1'000'000;
  options.seed = 3;
  SocialGraph g(options);
  ASSERT_EQ(g.users(), 1'000'000u);
  // rank -> user -> rank is the identity; sampled across the whole space plus
  // the edges.
  for (uint64_t r = 0; r < g.users(); r += 9973) {
    EXPECT_EQ(g.RankOf(g.UserOfRank(r)), r);
  }
  EXPECT_EQ(g.RankOf(g.UserOfRank(0)), 0u);
  EXPECT_EQ(g.RankOf(g.UserOfRank(g.users() - 1)), g.users() - 1);
  // user ids and popularity are uncorrelated: the top ranks are not the low
  // ids.
  bool scattered = false;
  for (uint64_t r = 0; r < 8; ++r) {
    scattered = scattered || g.UserOfRank(r) >= 8;
  }
  EXPECT_TRUE(scattered);
}

TEST(SocialGraphTest, CelebritiesAreExactlyTheTopRanks) {
  SocialGraphOptions options;
  options.users = 1'000'000;
  options.celebrities = 64;
  SocialGraph g(options);
  uint64_t count = 0;
  for (uint64_t u = 0; u < g.users(); ++u) {
    count += g.IsCelebrity(u) ? 1 : 0;
  }
  EXPECT_EQ(count, 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(g.IsCelebrity(g.Celebrity(i)));
  }
  EXPECT_FALSE(g.IsCelebrity(g.UserOfRank(64)));
}

TEST(SocialGraphTest, FollowerCountsArePowerLawWithCelebrityFanout) {
  SocialGraphOptions options;
  options.users = 1'000'000;
  SocialGraph g(options);

  uint64_t max_regular = 0;
  double sum = 0;
  uint64_t sampled = 0;
  for (uint64_t u = 0; u < g.users(); u += 997) {
    if (g.IsCelebrity(u)) {
      continue;
    }
    uint64_t c = g.FollowerCount(u);
    EXPECT_GE(c, options.min_followers);
    EXPECT_LE(c, options.follower_cap);
    max_regular = std::max(max_regular, c);
    sum += static_cast<double>(c);
    ++sampled;
  }
  double mean = sum / static_cast<double>(sampled);
  // Pareto(1.16) from lo=8: the mean sits well above the floor, and the tail
  // reaches far beyond it.
  EXPECT_GT(mean, 16.0);
  EXPECT_LT(mean, 500.0);
  EXPECT_GT(max_regular, 1000u);

  // Every celebrity draws from the celebrity range: fanout that melts a
  // shard, orders of magnitude above a regular account.
  for (uint64_t i = 0; i < options.celebrities; ++i) {
    uint64_t c = g.FollowerCount(g.Celebrity(i));
    EXPECT_GE(c, options.celebrity_min);
    EXPECT_LE(c, options.celebrity_cap);
  }
}

TEST(SocialGraphTest, EdgesAreStableBoundedAndNeverSelf) {
  SocialGraphOptions options;
  options.users = 1'000'000;
  SocialGraph g(options);
  for (uint64_t u = 1; u < g.users(); u += 49999) {
    uint64_t followers = std::min<uint64_t>(g.FollowerCount(u), 200);
    for (uint64_t i = 0; i < followers; ++i) {
      uint64_t f = g.Follower(u, i);
      ASSERT_LT(f, g.users());
      ASSERT_NE(f, u) << "nobody follows themselves";
      ASSERT_EQ(f, g.Follower(u, i)) << "follower lists must be stable";
    }
    uint64_t followees = g.FolloweeCount(u);
    EXPECT_GE(followees, 1u);
    EXPECT_LE(followees, 512u) << "timeline reads stay bounded";
    for (uint64_t i = 0; i < std::min<uint64_t>(followees, 64); ++i) {
      uint64_t f = g.Followee(u, i);
      ASSERT_LT(f, g.users());
      ASSERT_NE(f, u);
      ASSERT_EQ(f, g.Followee(u, i));
    }
  }
}

TEST(SocialGraphTest, FolloweesAndPicksAreBiasedTowardPopularUsers) {
  SocialGraphOptions options;
  options.users = 1'000'000;
  options.zipf_s = 1.1;
  SocialGraph g(options);

  // Followee edges point disproportionately at low ranks (u^3 bias): the top
  // 12.5% by popularity draws half the edges in expectation (P(u^3 < 1/8) =
  // 1/2) versus 12.5% for uniform edges. Assert well above uniform and below
  // the mean, leaving sampling-noise headroom on both sides.
  uint64_t top = 0;
  uint64_t edges = 0;
  for (uint64_t u = 0; u < g.users(); u += 1999) {
    for (uint64_t i = 0; i < 4; ++i) {
      top += g.RankOf(g.Followee(u, i)) < g.users() / 8 ? 1 : 0;
      ++edges;
    }
  }
  EXPECT_GT(top * 5, edges * 2);

  // PickUser concentrates on the top ranks too, deterministically per seed.
  Rng rng_a(5);
  Rng rng_b(5);
  uint64_t top_picks = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t u = g.PickUser(rng_a);
    ASSERT_EQ(u, g.PickUser(rng_b));
    top_picks += g.RankOf(u) < 100 ? 1 : 0;
  }
  // Zipf(1e6, 1.1): the top-100 ranks carry a large constant share of draws.
  EXPECT_GT(top_picks, kDraws / 10);
}

}  // namespace
}  // namespace walter
