// ReTwis tests (Section 7 / 8.7): the same application logic on both backends
// (Walter with csets, Redis-like with native lists), including multi-site
// posting which only the Walter backend supports.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/retwis/retwis.h"
#include "src/core/cluster.h"

namespace walter {
namespace {

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

template <typename Pred>
void Drive(Simulator& sim, Pred done) {
  while (!done() && sim.Step()) {
  }
  ASSERT_TRUE(done());
}

// Runs the same scenario against any backend.
void FollowAndPostScenario(Simulator& sim, RetwisBackend& app) {
  // 2 follows 1, 3 follows 1; 1 posts twice; follower timelines see both.
  int done = 0;
  app.Follow(2, 1, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(sim, [&] { return done == 1; });
  app.Follow(3, 1, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(sim, [&] { return done == 2; });

  app.Post(1, "first!", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(sim, [&] { return done == 3; });
  app.Post(1, "second!", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(sim, [&] { return done == 4; });

  for (RetwisBackend::UserId u : {1, 2, 3}) {
    std::vector<std::string> timeline;
    bool got = false;
    app.Status(u, [&](Status s, std::vector<std::string> posts) {
      ASSERT_TRUE(s.ok());
      timeline = std::move(posts);
      got = true;
    });
    Drive(sim, [&] { return got; });
    ASSERT_EQ(timeline.size(), 2u) << "user " << u;
    EXPECT_EQ(timeline[0], "second!");  // newest first
    EXPECT_EQ(timeline[1], "first!");
  }

  // A non-follower's timeline stays empty.
  std::vector<std::string> other;
  bool got = false;
  app.Status(9, [&](Status s, std::vector<std::string> posts) {
    ASSERT_TRUE(s.ok());
    other = std::move(posts);
    got = true;
  });
  Drive(sim, [&] { return got; });
  EXPECT_TRUE(other.empty());
}

TEST(RetwisTest, WalterBackendFollowAndPost) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  RetwisOnWalter app(client);
  FollowAndPostScenario(cluster.sim(), app);
}

TEST(RetwisTest, RedisBackendFollowAndPost) {
  Simulator sim(1);
  Network net(&sim, Topology::Ec2Subset(1));
  RedisServer::Options options;
  options.site = 0;
  options.perf = RedisPerfModel::Instant();
  RedisServer server(&sim, &net, options);
  RedisClient client(&net, 0, kClientPortBase, 0);
  RetwisOnRedis app(&client);
  FollowAndPostScenario(sim, app);
}

TEST(RetwisTest, StatusReturnsAtMostTen) {
  Cluster cluster(LogicOptions(1));
  WalterClient* client = cluster.AddClient(0);
  RetwisOnWalter app(client);
  for (int i = 0; i < 15; ++i) {
    bool done = false;
    app.Post(1, "p" + std::to_string(i), [&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    Drive(cluster.sim(), [&] { return done; });
  }
  std::vector<std::string> timeline;
  bool got = false;
  app.Status(1, [&](Status s, std::vector<std::string> posts) {
    ASSERT_TRUE(s.ok());
    timeline = std::move(posts);
    got = true;
  });
  Drive(cluster.sim(), [&] { return got; });
  ASSERT_EQ(timeline.size(), 10u);
  EXPECT_EQ(timeline[0], "p14");
  EXPECT_EQ(timeline[9], "p5");
}

TEST(RetwisTest, WalterBackendPostsFromMultipleSites) {
  // The point of the port (Section 7): with csets, different sites can add
  // posts to the same timeline without conflicts — Redis cannot do this.
  Cluster cluster(LogicOptions(2));
  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);
  RetwisOnWalter app0(c0);
  RetwisOnWalter app1(c1);

  // User 4 follows users 2 (homed at site 0) and 3 (homed at site 1), so
  // posts by 2 and 3 fan out into 4's timeline from different sites.
  int done = 0;
  app0.Follow(4, 2, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  app1.Follow(4, 3, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(cluster.sim(), [&] { return done == 2; });
  cluster.RunFor(Seconds(3));  // both follow edges visible everywhere

  // Concurrent posts from both sites.
  done = 0;
  app0.Post(2, "from site 0", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  app1.Post(3, "from site 1", [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive(cluster.sim(), [&] { return done == 2; });
  cluster.RunFor(Seconds(3));

  for (SiteId s = 0; s < 2; ++s) {
    RetwisOnWalter app(s == 0 ? c0 : c1);
    std::vector<std::string> timeline;
    bool got = false;
    app.Status(4, [&](Status st, std::vector<std::string> posts) {
      ASSERT_TRUE(st.ok());
      timeline = std::move(posts);
      got = true;
    });
    Drive(cluster.sim(), [&] { return got; });
    ASSERT_EQ(timeline.size(), 2u) << "site " << s;
  }
}

}  // namespace
}  // namespace walter
