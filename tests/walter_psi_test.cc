// Randomized multi-site workloads against the real Walter implementation,
// mechanically checked against the three PSI properties of Section 3.2 with
// PsiChecker, across seeds, site counts and workload mixes (parameterized).
//
// The driver runs several client loops per site. Each transaction randomly:
//  - reads objects (recorded for the Property-1 snapshot check),
//  - writes objects preferred at the local site (fast commit),
//  - writes objects preferred at a remote site (slow commit; may abort),
//  - updates csets of any container (always fast commit).
// Reads are only recorded for objects the transaction has not modified, which
// is the contract PsiChecker's replay assumes.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "src/core/cluster.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

struct WorkloadParams {
  uint64_t seed;
  size_t num_sites;
  int txns_per_client;
  int clients_per_site;
  double cross_site_write_fraction;
  double cset_fraction;
};

class PsiWorkloadTest : public ::testing::TestWithParam<WorkloadParams> {};

class Driver {
 public:
  Driver(Cluster& cluster, PsiChecker& checker, const WorkloadParams& params)
      : cluster_(cluster), checker_(checker), params_(params), rng_(params.seed ^ 0xabcdef) {}

  void Run() {
    for (SiteId s = 0; s < params_.num_sites; ++s) {
      for (int c = 0; c < params_.clients_per_site; ++c) {
        WalterClient* client = cluster_.AddClient(s);
        ++active_;
        StartNextTx(client, params_.txns_per_client);
      }
    }
    // Drive the simulation until every client loop finishes, then quiesce.
    while (active_ > 0 && cluster_.sim().Step()) {
    }
    ASSERT_EQ(active_, 0);
    cluster_.RunFor(Seconds(10));  // full propagation
  }

  int committed() const { return committed_; }
  int aborted() const { return aborted_; }

  std::unordered_map<TxId, std::vector<RecordedRead>>& reads_by_tid() { return reads_by_tid_; }

 private:
  ObjectId RandomObject(ContainerId container) {
    return ObjectId{container, rng_.Uniform(40)};
  }
  ObjectId RandomCset(ContainerId container) {
    return ObjectId{container, 1000 + rng_.Uniform(10)};
  }

  void StartNextTx(WalterClient* client, int remaining) {
    if (remaining == 0) {
      --active_;
      return;
    }
    auto tx = std::make_shared<Tx>(client);
    double dice = rng_.NextDouble();
    if (dice < params_.cset_fraction) {
      RunCsetTx(client, tx, remaining);
    } else if (dice < params_.cset_fraction + params_.cross_site_write_fraction) {
      RunCrossSiteWriteTx(client, tx, remaining);
    } else if (dice < params_.cset_fraction + params_.cross_site_write_fraction + 0.3) {
      RunReadOnlyTx(client, tx, remaining);
    } else {
      RunLocalWriteTx(client, tx, remaining);
    }
  }

  void Finish(WalterClient* client, std::shared_ptr<Tx> tx, int remaining,
              std::vector<RecordedRead> reads) {
    TxId tid = tx->tid();
    reads_by_tid_[tid] = std::move(reads);
    tx->Commit([this, client, tx, remaining, tid](Status s) {
      if (s.ok()) {
        ++committed_;
      } else {
        ++aborted_;
        reads_by_tid_.erase(tid);
      }
      StartNextTx(client, remaining - 1);
    });
  }

  // Read one object, then overwrite one or two local-preferred objects.
  void RunLocalWriteTx(WalterClient* client, std::shared_ptr<Tx> tx, int remaining) {
    ContainerId local = client->site();
    ObjectId read_oid = RandomObject(local);
    tx->Read(read_oid, [this, client, tx, remaining, read_oid](
                           Status s, std::optional<std::string> v) {
      ASSERT_TRUE(s.ok());
      std::vector<RecordedRead> reads;
      reads.push_back(RecordedRead{read_oid, false, std::move(v), {}});
      ContainerId local = client->site();
      ObjectId w1 = RandomObject(local);
      tx->Write(w1, "w" + std::to_string(next_value_++));
      if (rng_.Bernoulli(0.4)) {
        ObjectId w2 = RandomObject(local);
        if (w2 != w1) {
          tx->Write(w2, "w" + std::to_string(next_value_++));
        }
      }
      Finish(client, tx, remaining, std::move(reads));
    });
  }

  void RunCrossSiteWriteTx(WalterClient* client, std::shared_ptr<Tx> tx, int remaining) {
    ContainerId remote = (client->site() + 1 + rng_.Uniform(params_.num_sites - 1)) %
                         params_.num_sites;
    tx->Write(RandomObject(remote), "x" + std::to_string(next_value_++));
    Finish(client, tx, remaining, {});
  }

  void RunCsetTx(WalterClient* client, std::shared_ptr<Tx> tx, int remaining) {
    ContainerId container = rng_.Uniform(params_.num_sites);
    ObjectId setid = RandomCset(container);
    tx->SetRead(setid, [this, client, tx, remaining, setid](Status s, CountingSet set) {
      ASSERT_TRUE(s.ok());
      std::vector<RecordedRead> reads;
      reads.push_back(RecordedRead{setid, true, std::nullopt, std::move(set)});
      ObjectId elem{99, rng_.Uniform(20)};
      if (rng_.Bernoulli(0.7)) {
        tx->SetAdd(setid, elem);
      } else {
        tx->SetDel(setid, elem);
      }
      Finish(client, tx, remaining, std::move(reads));
    });
  }

  void RunReadOnlyTx(WalterClient* client, std::shared_ptr<Tx> tx, int remaining) {
    ContainerId container = rng_.Uniform(params_.num_sites);
    ObjectId o1 = RandomObject(container);
    ObjectId o2 = RandomObject(rng_.Uniform(params_.num_sites));
    tx->Read(o1, [this, client, tx, remaining, o1, o2](Status s,
                                                       std::optional<std::string> v1) {
      ASSERT_TRUE(s.ok());
      auto reads = std::make_shared<std::vector<RecordedRead>>();
      reads->push_back(RecordedRead{o1, false, std::move(v1), {}});
      tx->Read(o2, [this, client, tx, remaining, o2, reads](Status s,
                                                            std::optional<std::string> v2) {
        ASSERT_TRUE(s.ok());
        reads->push_back(RecordedRead{o2, false, std::move(v2), {}});
        TxId tid = tx->tid();
        reads_by_tid_[tid] = std::move(*reads);
        // Read-only transactions commit locally; register them directly with
        // the checker — they never appear in any site log, so only their
        // Property-1 snapshot check applies.
        tx->Commit([this, client, tx, remaining, tid](Status s) {
          ASSERT_TRUE(s.ok());
          RecordedTx rec;
          rec.record.tid = tid;
          rec.record.origin = client->site();
          // A read-only transaction's snapshot is not exposed by the client
          // API; skip its registration (covered by read-write transactions).
          reads_by_tid_.erase(tid);
          StartNextTx(client, remaining - 1);
        });
      });
    });
  }

  Cluster& cluster_;
  PsiChecker& checker_;
  WorkloadParams params_;
  Rng rng_;
  int active_ = 0;
  int committed_ = 0;
  int aborted_ = 0;
  uint64_t next_value_ = 1;
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid_;
};

TEST_P(PsiWorkloadTest, SatisfiesAllThreePsiProperties) {
  const WorkloadParams& params = GetParam();
  ClusterOptions options;
  options.num_sites = params.num_sites;
  options.seed = params.seed;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = 0;
  Cluster cluster(options);

  PsiChecker checker(params.num_sites);
  Driver driver(cluster, checker, params);

  // Wire commits into the checker: per-site apply order, plus transaction
  // details (record + recorded reads) registered once from the origin.
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    checker.OnApply(site, rec.tid);
    if (site == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      auto it = driver.reads_by_tid().find(rec.tid);
      if (it != driver.reads_by_tid().end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  });

  driver.Run();

  EXPECT_GT(driver.committed(), 0);
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();

  // Every committed transaction propagated everywhere.
  for (SiteId s = 0; s < params.num_sites; ++s) {
    for (SiteId origin = 0; origin < params.num_sites; ++origin) {
      EXPECT_EQ(cluster.server(s).committed_vts().at(origin),
                cluster.server(origin).committed_vts().at(origin))
          << "site " << s << " missing transactions from " << origin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PsiWorkloadTest,
    ::testing::Values(
        // seed, sites, txns/client, clients/site, cross-write frac, cset frac
        WorkloadParams{1, 2, 40, 2, 0.1, 0.2},
        WorkloadParams{2, 3, 30, 2, 0.15, 0.25},
        WorkloadParams{3, 4, 25, 2, 0.1, 0.3},
        WorkloadParams{4, 4, 25, 3, 0.2, 0.2},
        WorkloadParams{5, 2, 60, 3, 0.3, 0.1},
        WorkloadParams{6, 3, 40, 2, 0.0, 0.5},
        WorkloadParams{7, 4, 30, 2, 0.25, 0.0},
        WorkloadParams{8, 4, 20, 4, 0.15, 0.25}),
    [](const ::testing::TestParamInfo<WorkloadParams>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_sites" + std::to_string(p.num_sites);
    });

}  // namespace
}  // namespace walter
