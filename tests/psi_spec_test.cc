// Tests of the executable SI and PSI specifications (Figures 1-7) and the
// anomaly matrix of Figure 8.
#include <gtest/gtest.h>

#include "src/psi/psi_spec.h"
#include "src/psi/si_spec.h"

namespace walter {
namespace {

ObjectId A() { return ObjectId{1, 1}; }
ObjectId B() { return ObjectId{1, 2}; }
ObjectId Set() { return ObjectId{2, 1}; }
ObjectId El(uint64_t n) { return ObjectId{3, n}; }

// --- Snapshot isolation spec -------------------------------------------------

TEST(SiSpecTest, ReadsSnapshotAtStart) {
  SiSpec si;
  auto w = si.StartTx();
  si.Write(w, A(), "1");
  EXPECT_EQ(si.CommitTx(w), TxOutcome::kCommitted);

  auto r = si.StartTx();
  EXPECT_EQ(si.Read(r, A()), "1");
  auto w2 = si.StartTx();
  si.Write(w2, A(), "2");
  EXPECT_EQ(si.CommitTx(w2), TxOutcome::kCommitted);
  // r still reads the snapshot from its start (no non-repeatable read).
  EXPECT_EQ(si.Read(r, A()), "1");
}

TEST(SiSpecTest, OwnWritesVisible) {
  SiSpec si;
  auto x = si.StartTx();
  si.Write(x, A(), "mine");
  EXPECT_EQ(si.Read(x, A()), "mine");
}

TEST(SiSpecTest, WriteConflictAborts) {
  SiSpec si;
  auto t1 = si.StartTx();
  auto t2 = si.StartTx();
  si.Write(t1, A(), "1");
  si.Write(t2, A(), "2");
  EXPECT_EQ(si.CommitTx(t1), TxOutcome::kCommitted);
  EXPECT_EQ(si.CommitTx(t2), TxOutcome::kAborted);  // lost update prevented
}

TEST(SiSpecTest, DisjointWritesBothCommit) {
  SiSpec si;
  auto t1 = si.StartTx();
  auto t2 = si.StartTx();
  si.Write(t1, A(), "1");
  si.Write(t2, B(), "1");
  EXPECT_EQ(si.CommitTx(t1), TxOutcome::kCommitted);
  EXPECT_EQ(si.CommitTx(t2), TxOutcome::kCommitted);
}

// Short fork (write skew) is allowed by SI: both read A=B=0, write disjointly.
TEST(SiSpecTest, ShortForkAllowed) {
  SiSpec si;
  auto init = si.StartTx();
  si.Write(init, A(), "0");
  si.Write(init, B(), "0");
  ASSERT_EQ(si.CommitTx(init), TxOutcome::kCommitted);

  auto t1 = si.StartTx();
  auto t2 = si.StartTx();
  EXPECT_EQ(si.Read(t1, A()), "0");
  EXPECT_EQ(si.Read(t1, B()), "0");
  EXPECT_EQ(si.Read(t2, A()), "0");
  EXPECT_EQ(si.Read(t2, B()), "0");
  si.Write(t1, A(), "1");
  si.Write(t2, B(), "1");
  EXPECT_EQ(si.CommitTx(t1), TxOutcome::kCommitted);
  EXPECT_EQ(si.CommitTx(t2), TxOutcome::kCommitted);

  auto t3 = si.StartTx();
  EXPECT_EQ(si.Read(t3, A()), "1");
  EXPECT_EQ(si.Read(t3, B()), "1");  // state merged after commit
}

TEST(SiSpecTest, NondeterministicBranchCanAbort) {
  SiSpec si;
  si.set_nondeterministic_abort(true);
  auto t1 = si.StartTx();
  auto t2 = si.StartTx();
  si.Write(t1, A(), "1");
  si.Write(t2, A(), "2");
  // t2 is still executing and conflicts: the spec may choose to abort t1.
  EXPECT_EQ(si.CommitTx(t1), TxOutcome::kAborted);
}

// --- PSI spec ----------------------------------------------------------------

TEST(PsiSpecTest, LocalCommitVisibleLocallyOnly) {
  PsiSpec psi(2);
  auto x = psi.StartTx(0);
  psi.Write(x, A(), "v");
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);

  auto local = psi.StartTx(0);
  EXPECT_EQ(psi.Read(local, A()), "v");
  auto remote = psi.StartTx(1);
  EXPECT_EQ(psi.Read(remote, A()), std::nullopt);  // not yet propagated

  psi.PropagateAll();
  auto remote2 = psi.StartTx(1);
  EXPECT_EQ(psi.Read(remote2, A()), "v");
  EXPECT_TRUE(psi.GloballyVisible(x));
}

TEST(PsiSpecTest, ConflictWithPropagatingTransactionAborts) {
  PsiSpec psi(2);
  auto x = psi.StartTx(0);
  psi.Write(x, A(), "site0");
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);
  // x has not propagated to site 1; a conflicting write there must abort
  // ("currently propagating" clause of Figure 5).
  auto y = psi.StartTx(1);
  psi.Write(y, A(), "site1");
  EXPECT_EQ(psi.CommitTx(y), TxOutcome::kAborted);
}

TEST(PsiSpecTest, PropagationRespectsCausality) {
  PsiSpec psi(3);
  auto x = psi.StartTx(0);
  psi.Write(x, A(), "first");
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);
  ASSERT_TRUE(psi.PropagateTo(x, 1));

  // y at site 1 starts after x committed there: y causally follows x.
  auto y = psi.StartTx(1);
  EXPECT_EQ(psi.Read(y, A()), "first");
  psi.Write(y, B(), "second");
  ASSERT_EQ(psi.CommitTx(y), TxOutcome::kCommitted);

  // y cannot reach site 2 before x does (the upon-statement guard).
  EXPECT_FALSE(psi.PropagateTo(y, 2));
  ASSERT_TRUE(psi.PropagateTo(x, 2));
  EXPECT_TRUE(psi.PropagateTo(y, 2));
}

TEST(PsiSpecTest, LongForkAllowed) {
  // Figure 8's long fork: T1 and T3 write disjoint objects at different sites;
  // T2/T4 observe the fork; after propagation T5 sees both writes.
  PsiSpec psi(2);
  auto t1 = psi.StartTx(0);
  psi.Write(t1, A(), "1");
  ASSERT_EQ(psi.CommitTx(t1), TxOutcome::kCommitted);
  auto t3 = psi.StartTx(1);
  psi.Write(t3, B(), "1");
  ASSERT_EQ(psi.CommitTx(t3), TxOutcome::kCommitted);

  // Forked state: each site sees only its own write.
  auto t2 = psi.StartTx(0);
  EXPECT_EQ(psi.Read(t2, A()), "1");
  EXPECT_EQ(psi.Read(t2, B()), std::nullopt);
  auto t4 = psi.StartTx(1);
  EXPECT_EQ(psi.Read(t4, A()), std::nullopt);
  EXPECT_EQ(psi.Read(t4, B()), "1");

  psi.PropagateAll();
  auto t5 = psi.StartTx(0);
  EXPECT_EQ(psi.Read(t5, A()), "1");
  EXPECT_EQ(psi.Read(t5, B()), "1");
}

TEST(PsiSpecTest, DirtyReadPrevented) {
  PsiSpec psi(1);
  auto t1 = psi.StartTx(0);
  psi.Write(t1, A(), "uncommitted");
  auto t2 = psi.StartTx(0);
  EXPECT_EQ(psi.Read(t2, A()), std::nullopt);  // no dirty read
}

TEST(PsiSpecTest, CsetOpsNeverConflict) {
  PsiSpec psi(2);
  auto x = psi.StartTx(0);
  psi.SetAdd(x, Set(), El(1));
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);
  // Concurrent cset update at the other site, before propagation: commits.
  auto y = psi.StartTx(1);
  psi.SetAdd(y, Set(), El(2));
  psi.SetDel(y, Set(), El(1));
  EXPECT_EQ(psi.CommitTx(y), TxOutcome::kCommitted);

  psi.PropagateAll();
  auto reader = psi.StartTx(0);
  CountingSet set = psi.SetRead(reader, Set());
  EXPECT_EQ(set.Count(El(1)), 0);  // add at 0, del at 1
  EXPECT_EQ(set.Count(El(2)), 1);
  EXPECT_EQ(psi.SetReadId(reader, Set(), El(2)), 1);
}

TEST(PsiSpecTest, CsetAntiElementAcrossSites) {
  PsiSpec psi(2);
  auto y = psi.StartTx(1);
  psi.SetDel(y, Set(), El(5));  // remove from empty: count -1
  ASSERT_EQ(psi.CommitTx(y), TxOutcome::kCommitted);
  auto x = psi.StartTx(0);
  psi.SetAdd(x, Set(), El(5));
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);
  psi.PropagateAll();
  auto reader = psi.StartTx(0);
  EXPECT_EQ(psi.SetReadId(reader, Set(), El(5)), 0);  // annihilated
}

TEST(PsiSpecTest, OwnCsetOpsVisibleBeforeCommit) {
  PsiSpec psi(1);
  auto x = psi.StartTx(0);
  psi.SetAdd(x, Set(), El(1));
  psi.SetAdd(x, Set(), El(1));
  EXPECT_EQ(psi.SetReadId(x, Set(), El(1)), 2);
}

TEST(PsiSpecTest, OutcomeDecidedOnce) {
  // Once committed at its site, a transaction commits everywhere (Figure 4's
  // upon statement never aborts).
  PsiSpec psi(3);
  auto x = psi.StartTx(0);
  psi.Write(x, A(), "v");
  ASSERT_EQ(psi.CommitTx(x), TxOutcome::kCommitted);
  psi.PropagateAll();
  EXPECT_TRUE(psi.GloballyVisible(x));
}

TEST(PsiSpecTest, WriteConflictAtSameSiteAborts) {
  PsiSpec psi(2);
  auto t1 = psi.StartTx(0);
  auto t2 = psi.StartTx(0);
  psi.Write(t1, A(), "1");
  psi.Write(t2, A(), "2");
  EXPECT_EQ(psi.CommitTx(t1), TxOutcome::kCommitted);
  EXPECT_EQ(psi.CommitTx(t2), TxOutcome::kAborted);
}

}  // namespace
}  // namespace walter
