// Figure 8's anomaly matrix, demonstrated against the real Walter cluster:
// PSI prevents dirty reads, non-repeatable reads, lost updates and conflicting
// forks, while allowing short forks and (unlike snapshot isolation) long forks.
#include <gtest/gtest.h>

#include <optional>

#include "src/core/cluster.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

template <typename Pred>
void RunUntil(Cluster& cluster, Pred done) {
  while (!done() && cluster.sim().Step()) {
  }
  ASSERT_TRUE(done());
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

// Dirty read: T1 has written A<-1 but not committed; T2 must not see it.
TEST(PsiAnomalyTest, DirtyReadPrevented) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  Tx t1(c);
  t1.Write(Oid(1, 1), "1");
  // Push the buffered write to the server without committing.
  bool flushed = false;
  t1.Read(Oid(1, 2), [&](Status, std::optional<std::string>) { flushed = true; });
  RunUntil(cluster, [&] { return flushed; });

  EXPECT_EQ(ReadOnce(cluster, c, Oid(1, 1)), std::nullopt);  // no dirty read
  bool aborted = false;
  t1.Abort([&] { aborted = true; });
  RunUntil(cluster, [&] { return aborted; });
}

// Non-repeatable read: T2 reads A twice around T1's commit; both reads agree.
TEST(PsiAnomalyTest, NonRepeatableReadPrevented) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "0").ok());

  Tx t2(c);
  std::optional<std::string> first;
  std::optional<std::string> second;
  bool done1 = false;
  bool done2 = false;
  t2.Read(Oid(1, 1), [&](Status, std::optional<std::string> v) {
    first = std::move(v);
    done1 = true;
  });
  RunUntil(cluster, [&] { return done1; });
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "1").ok());
  t2.Read(Oid(1, 1), [&](Status, std::optional<std::string> v) {
    second = std::move(v);
    done2 = true;
  });
  RunUntil(cluster, [&] { return done2; });
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, "0");
}

// Lost update: both read A=0 and write; one must abort.
TEST(PsiAnomalyTest, LostUpdatePrevented) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "0").ok());

  Tx t1(c);
  Tx t2(c);
  int reads = 0;
  t1.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { ++reads; });
  t2.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { ++reads; });
  RunUntil(cluster, [&] { return reads == 2; });
  t1.Write(Oid(1, 1), "1");
  t2.Write(Oid(1, 1), "2");
  int ok = 0;
  int bad = 0;
  int commits = 0;
  auto tally = [&](Status s) {
    (s.ok() ? ok : bad)++;
    ++commits;
  };
  t1.Commit(tally);
  t2.Commit(tally);
  RunUntil(cluster, [&] { return commits == 2; });
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(bad, 1);
}

// Short fork (write skew) is allowed: disjoint writes from one snapshot both
// commit; the merged state is visible afterwards.
TEST(PsiAnomalyTest, ShortForkAllowed) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "0").ok());
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 2), "0").ok());

  Tx t1(c);
  Tx t2(c);
  int reads = 0;
  t1.Read(Oid(1, 1), [&](Status, std::optional<std::string>) { ++reads; });
  t2.Read(Oid(1, 2), [&](Status, std::optional<std::string>) { ++reads; });
  RunUntil(cluster, [&] { return reads == 2; });
  t1.Write(Oid(1, 1), "1");
  t2.Write(Oid(1, 2), "1");
  int commits = 0;
  t1.Commit([&](Status s) {
    EXPECT_TRUE(s.ok());
    ++commits;
  });
  t2.Commit([&](Status s) {
    EXPECT_TRUE(s.ok());
    ++commits;
  });
  RunUntil(cluster, [&] { return commits == 2; });
  EXPECT_EQ(ReadOnce(cluster, c, Oid(1, 1)), "1");
  EXPECT_EQ(ReadOnce(cluster, c, Oid(1, 2)), "1");
}

// Long fork is allowed by PSI (and is exactly what asynchronous replication
// buys): concurrent disjoint updates at different sites leave the two sites
// with different orderings until propagation merges them.
TEST(PsiAnomalyTest, LongForkAllowedThenMerged) {
  Cluster cluster(LogicOptions(2));
  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);

  // Concurrent commits at the two sites (before any propagation batch).
  int commits = 0;
  Tx t1(c0);
  t1.Write(Oid(0, 1), "1");  // A, preferred at site 0
  t1.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    ++commits;
  });
  Tx t3(c1);
  t3.Write(Oid(1, 1), "1");  // B, preferred at site 1
  t3.Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    ++commits;
  });
  RunUntil(cluster, [&] { return commits == 2; });

  // Forked: site 0 sees A=1, B unset; site 1 sees B=1, A unset.
  EXPECT_EQ(ReadOnce(cluster, c0, Oid(0, 1)), "1");
  EXPECT_EQ(ReadOnce(cluster, c0, Oid(1, 1)), std::nullopt);
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(1, 1)), "1");
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), std::nullopt);

  // Merged after propagation: T5 sees both.
  cluster.RunFor(Seconds(3));
  EXPECT_EQ(ReadOnce(cluster, c0, Oid(1, 1)), "1");
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), "1");
}

// Conflicting fork is precluded: concurrent writes to the SAME object from two
// sites cannot both commit — the non-preferred writer's 2PC vote fails.
TEST(PsiAnomalyTest, ConflictingForkPrecluded) {
  Cluster cluster(LogicOptions(2));
  WalterClient* c0 = cluster.AddClient(0);
  WalterClient* c1 = cluster.AddClient(1);

  // Site 1 fast-commits object (1,1); site 0 concurrently slow-commits it.
  int commits = 0;
  Status s_fast = Status::Internal("");
  Status s_slow = Status::Internal("");
  Tx fast(c1);
  fast.Write(Oid(1, 1), "fast");
  fast.Commit([&](Status s) {
    s_fast = s;
    ++commits;
  });
  Tx slow(c0);
  slow.Write(Oid(1, 1), "slow");
  slow.Commit([&](Status s) {
    s_slow = s;
    ++commits;
  });
  RunUntil(cluster, [&] { return commits == 2; });
  // Exactly one survives (which one depends on message timing).
  EXPECT_NE(s_fast.ok(), s_slow.ok());

  // Both sites converge on the surviving value — no ad-hoc merge needed.
  cluster.RunFor(Seconds(3));
  auto v0 = ReadOnce(cluster, c0, Oid(1, 1));
  auto v1 = ReadOnce(cluster, c1, Oid(1, 1));
  EXPECT_EQ(v0, v1);
  EXPECT_TRUE(v0 == "fast" || v0 == "slow");
}

// Read-modify-write works under PSI because write-write conflicts abort: a
// counter incremented concurrently never loses updates (Section 3.4).
TEST(PsiAnomalyTest, AtomicCounterViaReadModifyWrite) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "0").ok());

  int total_committed = 0;
  int attempts_left = 30;
  std::function<void()> attempt = [&]() {
    if (attempts_left <= 0) {
      return;
    }
    --attempts_left;
    auto tx = std::make_shared<Tx>(c);
    tx->Read(Oid(1, 1), [&, tx](Status s, std::optional<std::string> v) {
      ASSERT_TRUE(s.ok());
      int current = std::stoi(v.value_or("0"));
      tx->Write(Oid(1, 1), std::to_string(current + 1));
      tx->Commit([&, tx](Status s) {
        if (s.ok()) {
          ++total_committed;
        }
        attempt();  // retry loop (aborted increments retry)
      });
    });
  };
  attempt();
  attempt();  // two interleaved clients' worth of attempts
  cluster.RunUntilIdle();
  EXPECT_EQ(ReadOnce(cluster, c, Oid(1, 1)), std::to_string(total_committed));
}

// Conditional write (compare-and-set) built from read + conditional commit.
TEST(PsiAnomalyTest, ConditionalWrite) {
  Cluster cluster(LogicOptions(1));
  WalterClient* c = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c, Oid(1, 1), "expected").ok());

  Tx tx(c);
  bool done = false;
  Status result = Status::Internal("");
  tx.Read(Oid(1, 1), [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    if (v == "expected") {
      tx.Write(Oid(1, 1), "updated");
      tx.Commit([&](Status s) {
        result = s;
        done = true;
      });
    } else {
      tx.Abort([&] { done = true; });
    }
  });
  RunUntil(cluster, [&] { return done; });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(ReadOnce(cluster, c, Oid(1, 1)), "updated");
}

}  // namespace
}  // namespace walter
