// Runtime seam tests: WallClock scaling, Executor mailbox + timer semantics,
// PostSync from foreign threads, cross-thread Payload aliasing (the TSan
// regression for the ref-counted buffer contract), a threaded-cluster commit
// smoke with a PSI check, and sim-mode determinism (two identical sim-mode
// runs produce identical commit streams — the property the figure benches'
// byte-identity rests on, asserted here at test scale).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/cluster.h"
#include "src/psi/checker.h"
#include "src/runtime/executor.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t container, uint64_t local) { return ObjectId{container, local}; }

// --- WallClock ---------------------------------------------------------------

TEST(WallClockTest, VirtualTimeTracksScaledRealTime) {
  WallClock clock(/*time_scale=*/8.0);
  SimTime a = clock.VirtualNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SimTime b = clock.VirtualNow();
  // 20ms real at 8x is 160ms virtual; allow generous scheduling slack below,
  // but the scale factor must clearly show through.
  EXPECT_GE(b - a, 8 * 10 * 1000);
}

TEST(WallClockTest, RealForInvertsVirtualNow) {
  WallClock clock(/*time_scale=*/4.0);
  // A virtual instant one (virtual) second out lies 250ms of real time out.
  auto real = clock.RealFor(clock.VirtualNow() + Seconds(1));
  auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                   real - std::chrono::steady_clock::now())
                   .count();
  EXPECT_GT(delta, 150);
  EXPECT_LT(delta, 350);
}

// --- Executor ----------------------------------------------------------------

TEST(ExecutorTest, PostedClosuresRunOnTheExecutorThread) {
  WallClock clock;
  Simulator sim(1);
  Executor exec(&sim, &clock);
  exec.Start();

  std::atomic<int> ran{0};
  std::thread::id loop_thread;
  std::atomic<bool> captured{false};
  exec.Post([&]() {
    loop_thread = std::this_thread::get_id();
    EXPECT_EQ(Executor::Current(), &exec);
    captured.store(true);
    ran.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) {
    exec.Post([&]() { ran.fetch_add(1); });
  }
  while (ran.load() < 101) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(captured.load());
  EXPECT_NE(loop_thread, std::this_thread::get_id());
  EXPECT_EQ(Executor::Current(), nullptr);  // main thread runs no loop
  exec.Stop();
}

TEST(ExecutorTest, TimersFireAtScaledWallTime) {
  WallClock clock(/*time_scale=*/10.0);
  Simulator sim(1);
  Executor exec(&sim, &clock);

  std::atomic<bool> fired{false};
  // 100ms virtual at 10x = 10ms real. Schedule before Start so the timer is
  // in the queue when the loop begins (construction-time scheduling, the same
  // shape Cluster uses for gossip kickoff).
  sim.After(Millis(100), [&]() { fired.store(true); });
  exec.Start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exec.Stop();
  EXPECT_TRUE(fired.load());
  EXPECT_GE(sim.Now(), Millis(100));
}

TEST(ExecutorTest, PostSyncRunsInlineWithoutThreadAndBlocksWithOne) {
  WallClock clock;
  Simulator sim(1);
  Executor exec(&sim, &clock);

  // No thread running: PostSync runs inline on the caller.
  bool inline_ran = false;
  exec.PostSync([&]() { inline_ran = true; });
  EXPECT_TRUE(inline_ran);

  exec.Start();
  std::atomic<int> value{0};
  exec.PostSync([&]() { value.store(7); });
  EXPECT_EQ(value.load(), 7);  // PostSync returned only after fn finished
  exec.Stop();
}

TEST(ExecutorTest, PumpForAdvancesVirtualTimeOnCallerThread) {
  WallClock clock(/*time_scale=*/50.0);
  Simulator sim(1);
  Executor exec(&sim, &clock);

  bool fired = false;
  sim.After(Millis(20), [&]() {
    fired = true;
    EXPECT_EQ(Executor::Current(), &exec);
  });
  exec.PumpFor(Millis(40));  // 40ms virtual at 50x is <1ms real
  EXPECT_TRUE(fired);
  EXPECT_GE(sim.Now(), Millis(20));
}

// --- Payload cross-thread aliasing (TSan regression) -------------------------

// The threaded dispatch path copies a Payload into a closure handed to the
// destination executor while the sender keeps its own reference for resends:
// refcount traffic on one control block from many threads at once. With
// anything but an atomic refcount this test is a reliable TSan report (and a
// plausible double-free); it must stay clean under -fsanitize=thread.
TEST(PayloadTest, CrossThreadAliasingIsRaceFree) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  Payload shared(std::string(1024, 'p'));

  std::vector<std::thread> threads;
  std::atomic<uint64_t> checksum{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &checksum]() {
      for (int i = 0; i < kRounds; ++i) {
        Payload alias = shared;           // refcount increment
        Payload moved = std::move(alias); // ownership transfer, no refcount op
        checksum.fetch_add(static_cast<uint64_t>(moved.size()),
                           std::memory_order_relaxed);
        // `moved` dies here: refcount decrement racing all other threads.
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(checksum.load(), uint64_t{kThreads} * kRounds * 1024);
  EXPECT_EQ(shared.size(), 1024u);  // original untouched throughout
}

// --- Threaded cluster smoke ---------------------------------------------------

// Commits through the full stack on real threads: 2 sites x some clients on
// worker executors, local and cross-site writes, then a convergence wait and
// a PSI check over the recorded history. Guarantee-based (no event-order
// asserts): this is the runtime-equivalence contract of the threaded mode.
TEST(ThreadedRuntimeTest, CommitsSatisfyPsiAndConverge) {
  constexpr size_t kSites = 2;
  ClusterOptions options;
  options.num_sites = kSites;
  options.seed = 7;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Seconds(1);
  options.runtime.workers = 2;
  options.runtime.time_scale = 5.0;
  Cluster cluster(options);

  std::mutex mu;
  std::vector<std::vector<TxRecord>> logs(kSites);
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    std::lock_guard<std::mutex> lk(mu);
    logs[site].push_back(rec);
  });

  constexpr int kPerClient = 20;
  struct ClientState {
    WalterClient* client = nullptr;
    int committed = 0;
    int attempted = 0;
  };
  std::vector<std::unique_ptr<ClientState>> states;
  for (SiteId s = 0; s < kSites; ++s) {
    for (int c = 0; c < 2; ++c) {
      auto st = std::make_unique<ClientState>();
      st->client = cluster.AddClient(s);
      states.push_back(std::move(st));
    }
  }

  std::atomic<int> active{static_cast<int>(states.size())};
  // Each client's chain runs entirely on its owner executor: the kickoff is
  // posted, and every continuation (RPC completion, commit callback) is
  // delivered there by the network.
  std::function<void(ClientState*)> next = [&](ClientState* st) {
    if (st->attempted == kPerClient) {
      active.fetch_sub(1);
      return;
    }
    int i = st->attempted++;
    auto tx = std::make_shared<Tx>(st->client);
    SiteId home = st->client->site();
    tx->Write(Oid(home, static_cast<uint64_t>(i % 8)), "v" + std::to_string(i));
    if (i % 5 == 0) {
      tx->Write(Oid((home + 1) % kSites, static_cast<uint64_t>(i % 8)),
                "w" + std::to_string(i));  // cross-site slow commit
    }
    tx->Commit([&, st, tx](Status s) {
      if (s.ok()) {
        ++st->committed;
      }
      next(st);
    });
  };

  cluster.StartThreads();
  for (auto& st : states) {
    cluster.client_executor(st->client)->Post([&, sp = st.get()]() { next(sp); });
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (active.load() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(active.load(), 0) << "client chains did not finish";

  // Propagation convergence, observed through the owner executors.
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    VectorTimestamp v0 = cluster.SnapshotCommittedVts(0);
    converged = true;
    for (SiteId s = 1; s < kSites; ++s) {
      if (!(cluster.SnapshotCommittedVts(s) == v0)) {
        converged = false;
        break;
      }
    }
  }
  cluster.StopThreads();
  ASSERT_TRUE(converged) << "sites did not converge before the deadline";

  int committed = 0;
  for (auto& st : states) {
    committed += st->committed;
  }
  EXPECT_GT(committed, 0);
  EXPECT_EQ(cluster.server(0).committed_vts(), cluster.server(1).committed_vts());

  PsiChecker checker(kSites);
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : logs[s]) {
      checker.OnApply(s, rec.tid);
    }
  }
  for (SiteId s = 0; s < kSites; ++s) {
    for (const TxRecord& rec : logs[s]) {
      if (rec.origin == s) {
        RecordedTx recorded;
        recorded.record = rec;
        checker.OnCommit(std::move(recorded));
      }
    }
  }
  Status result = checker.Check();
  EXPECT_TRUE(result.ok()) << result.ToString();
}

// --- Sim-mode determinism ----------------------------------------------------

// Two sim-mode runs of the same seeded workload must produce identical commit
// streams (site, origin, seqno, tid, startVTS) — the invariant behind the
// figure benches' byte-identity. The runtime seam must never disturb it.
TEST(SimDeterminismTest, IdenticalSeedsProduceIdenticalCommitStreams) {
  auto run = [](uint64_t seed) {
    ClusterOptions options;
    options.num_sites = 3;
    options.seed = seed;
    options.server.gossip_interval = 0;
    Cluster cluster(options);
    std::vector<std::string> stream;
    cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
      stream.push_back(std::to_string(site) + ":" + std::to_string(rec.origin) + ":" +
                       std::to_string(rec.version.seqno) + ":" + std::to_string(rec.tid) +
                       ":" + rec.start_vts.ToString());
    });
    Rng rng(seed);
    std::vector<WalterClient*> clients;
    for (SiteId s = 0; s < 3; ++s) {
      clients.push_back(cluster.AddClient(s));
    }
    std::function<void(WalterClient*, int)> go = [&](WalterClient* client, int left) {
      if (left == 0) {
        return;
      }
      auto tx = std::make_shared<Tx>(client);
      ContainerId c = rng.Uniform(3);
      tx->Write(Oid(c, rng.Uniform(10)), "v" + std::to_string(left));
      tx->Commit([&, client, left, tx](Status) { go(client, left - 1); });
    };
    for (WalterClient* client : clients) {
      go(client, 15);
    }
    cluster.RunUntilIdle();
    return stream;
  };
  std::vector<std::string> a = run(11);
  std::vector<std::string> b = run(11);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
}

}  // namespace
}  // namespace walter
