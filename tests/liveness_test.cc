// End-to-end liveness tests: the bank-transfer commit hang regression, and the
// watchdog catching a deliberately stuck transaction (dropped commit ack) with
// a precise stage/site verdict instead of an infinite hang.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/core/cluster.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"

namespace walter {
namespace {

class LivenessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer& t = Tracer::Get();
    t.SetListener(nullptr);
    t.SetEnabled(true);
    t.Clear();
  }
  void TearDown() override { SetUp(); }
};

int64_t Balance(const std::optional<std::string>& raw) {
  return raw ? std::strtoll(raw->c_str(), nullptr, 10) : 0;
}

// The exact shape that used to hang: the Tx handle is kept alive only by the
// read-callback chain, and the commit callback does NOT capture the handle.
// When Commit's flush continuation was guarded by the Tx's alive-token, the
// handle died right after Commit returned, the flush response was dropped, and
// the commit RPC was never sent — no error, no progress, silence.
void Transfer(WalterClient* client, ObjectId from, ObjectId to, int64_t amount,
              std::function<void(bool moved)> done, int retries = 5) {
  auto tx = std::make_shared<Tx>(client);
  tx->Read(from, [=](Status s, std::optional<std::string> from_raw) {
    if (!s.ok()) {
      done(false);
      return;
    }
    int64_t from_balance = Balance(from_raw);
    if (from_balance < amount) {
      tx->Abort([done] { done(false); });
      return;
    }
    tx->Read(to, [=](Status s, std::optional<std::string> to_raw) {
      if (!s.ok()) {
        done(false);
        return;
      }
      tx->Write(from, std::to_string(from_balance - amount));
      tx->Write(to, std::to_string(Balance(to_raw) + amount));
      tx->Commit([=](Status s) {
        if (s.ok()) {
          done(true);
        } else if (retries > 0) {
          Transfer(client, from, to, amount, done, retries - 1);
        } else {
          done(false);
        }
      });
    });
  });
}

TEST_F(LivenessTest, BankTransferRepro) {
  ClusterOptions options;
  options.num_sites = 2;
  Cluster cluster(options);
  WatchdogOptions wd;
  wd.budget = Seconds(20);
  wd.abort_on_stuck = false;  // report through the API so the test can assert
  LivenessWatchdog watchdog(&cluster.sim(), wd);
  WalterClient* client = cluster.AddClient(0);

  const ObjectId alice{0, 1};
  const ObjectId bob{0, 2};
  const ObjectId carol{0, 3};
  {
    Tx tx(client);
    tx.Write(alice, "100");
    tx.Write(bob, "100");
    tx.Write(carol, "0");
    bool done = false;
    tx.Commit([&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }

  // Two transfers race on Alice's account; write-write conflicts retry.
  int completed = 0;
  int moved = 0;
  auto on_done = [&](bool ok) {
    if (ok) {
      ++moved;
    }
    ++completed;
  };
  Transfer(client, alice, bob, 30, on_done);
  Transfer(client, alice, carol, 50, on_done);
  while (completed < 2 && !watchdog.fired() && cluster.sim().Step()) {
  }

  ASSERT_FALSE(watchdog.fired()) << watchdog.reports()[0].verdict;
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(moved, 2);

  // Money is conserved.
  int64_t total = 0;
  {
    Tx tx(client);
    bool done = false;
    tx.MultiRead({alice, bob, carol}, [&](Status s, auto values) {
      ASSERT_TRUE(s.ok());
      for (const auto& v : values) {
        total += Balance(v);
      }
      done = true;
    });
    while (!done && cluster.sim().Step()) {
    }
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(watchdog.in_flight(), 0u);
}

// Drop every response to a commit-carrying RPC: the transaction commits on the
// server, the ack never reaches the client, and the client retries forever.
// The watchdog must convert that hang into a verdict naming the last stage the
// transaction reached (the commit ack) and the site it reached it on.
TEST_F(LivenessTest, DroppedCommitAckProducesStageAndSiteVerdict) {
  ClusterOptions options;
  options.num_sites = 2;
  // Retry far past the watchdog budget so the client alone never gives up.
  options.client.max_attempts = 1000;
  Cluster cluster(options);

  WatchdogOptions wd;
  wd.budget = Seconds(15);
  wd.abort_on_stuck = false;
  LivenessWatchdog watchdog(&cluster.sim(), wd);
  StuckReport report;
  watchdog.SetOnStuck([&](const StuckReport& r) { report = r; });

  WalterClient* client = cluster.AddClient(0);

  // Remember the rpc_id of every commit-carrying request, then swallow the
  // matching responses (retransmissions mint fresh ids and are re-remembered).
  auto commit_rpcs = std::make_shared<std::set<uint64_t>>();
  cluster.net().SetDropFilter([commit_rpcs](const Message& msg, const Address&,
                                            const Address&) {
    if (!msg.is_response && msg.type == kClientOp && msg.rpc_id != 0) {
      if (ClientOpRequest::Deserialize(msg.payload).commit_after) {
        commit_rpcs->insert(msg.rpc_id);
      }
      return false;
    }
    return msg.is_response && commit_rpcs->contains(msg.rpc_id);
  });

  bool commit_returned = false;
  Tx tx(client);
  tx.Write(ObjectId{0, 1}, "stuck");
  tx.Commit([&](Status) { commit_returned = true; });
  cluster.RunFor(Seconds(60));

  EXPECT_FALSE(commit_returned);
  ASSERT_TRUE(watchdog.fired());
  EXPECT_EQ(report.tid, tx.tid());
  // The transaction got all the way to the server sending the ack at site 0;
  // the verdict pinpoints that as the last stage reached.
  EXPECT_EQ(report.stage, TraceKind::kCommitAck);
  EXPECT_EQ(report.site, 0u);
  EXPECT_NE(report.verdict.find("stuck at stage commit_ack on site 0"),
            std::string::npos);
  if (getenv("DUMP_SLICE")) {
    std::fprintf(stderr, "%s\n%s", report.verdict.c_str(),
                 report.trace_jsonl.c_str());
  }
  // The causal slice is real JSONL containing the commit path of this tx.
  EXPECT_FALSE(report.trace_jsonl.empty());
  EXPECT_NE(report.trace_jsonl.find("\"kind\":\"commit_ack\""), std::string::npos);
  EXPECT_NE(report.trace_jsonl.find("\"tid\":" + std::to_string(tx.tid())),
            std::string::npos);
}

// With a bounded retry budget the client must not hang either: Commit surfaces
// kUnavailable once the budget is spent, and the watchdog sees the transaction
// retire (kClientDone carries the error).
TEST_F(LivenessTest, CommitSurfacesUnavailableWhenServerNeverAnswers) {
  ClusterOptions options;
  options.num_sites = 2;  // default max_attempts = 4
  Cluster cluster(options);
  WatchdogOptions wd;
  wd.budget = Seconds(60);
  wd.abort_on_stuck = false;
  LivenessWatchdog watchdog(&cluster.sim(), wd);
  WalterClient* client = cluster.AddClient(0);

  // Swallow every client-op response: the server answers, nobody hears it.
  cluster.net().SetDropFilter([](const Message& msg, const Address&, const Address& to) {
    return msg.is_response && msg.type == kClientOp && to.port >= kClientPortBase;
  });

  std::optional<Status> result;
  Tx tx(client);
  tx.Write(ObjectId{0, 1}, "doomed");
  tx.Commit([&](Status s) { result = s; });
  cluster.RunFor(Seconds(120));

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->code(), StatusCode::kUnavailable);
  EXPECT_FALSE(watchdog.fired());
  EXPECT_EQ(watchdog.in_flight(), 0u);  // kClientDone retired it, error and all
}

}  // namespace
}  // namespace walter
