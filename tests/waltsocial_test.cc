// WaltSocial application tests (Section 7): befriend atomicity, wall posting,
// multi-site behaviour of the social graph, and the album-creation example of
// Section 2 (no partial writes visible).
#include <gtest/gtest.h>

#include "src/apps/waltsocial/waltsocial.h"
#include "src/core/cluster.h"

namespace walter {
namespace {

ClusterOptions LogicOptions(size_t num_sites) {
  ClusterOptions o;
  o.num_sites = num_sites;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  return o;
}

class WaltSocialTest : public ::testing::Test {
 protected:
  WaltSocialTest() : cluster_(LogicOptions(2)) {
    for (SiteId s = 0; s < 2; ++s) {
      clients_.push_back(cluster_.AddClient(s));
      apps_.emplace_back(clients_.back());
    }
  }

  // Creates user `u` homed at u % 2.
  void CreateUser(UserId u) {
    bool done = false;
    apps_[u % 2].CreateUser(u, "profile-" + std::to_string(u), [&](Status s) {
      ASSERT_TRUE(s.ok());
      done = true;
    });
    Drive([&] { return done; });
  }

  template <typename Pred>
  void Drive(Pred done) {
    while (!done() && cluster_.sim().Step()) {
    }
    ASSERT_TRUE(done());
  }

  WaltSocial::UserInfo ReadInfo(UserId u, SiteId at_site) {
    WaltSocial::UserInfo info;
    bool done = false;
    apps_[at_site].ReadInfo(u, [&](Status s, WaltSocial::UserInfo got) {
      EXPECT_TRUE(s.ok());
      info = std::move(got);
      done = true;
    });
    while (!done && cluster_.sim().Step()) {
    }
    return info;
  }

  Cluster cluster_;
  std::vector<WalterClient*> clients_;
  std::vector<WaltSocial> apps_;
};

TEST_F(WaltSocialTest, CreateAndReadProfile) {
  CreateUser(0);
  WaltSocial::UserInfo info = ReadInfo(0, 0);
  EXPECT_EQ(info.profile, "profile-0");
  EXPECT_TRUE(info.friends.empty());
}

TEST_F(WaltSocialTest, BefriendIsSymmetricAndAtomic) {
  CreateUser(0);
  CreateUser(1);
  bool done = false;
  apps_[0].Befriend(0, 1, [&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  Drive([&] { return done; });

  // Visible at the acting site immediately.
  WaltSocial::UserInfo info0 = ReadInfo(0, 0);
  EXPECT_TRUE(info0.friends.Contains(WaltSocial::ProfileOid(1)));
  WaltSocial::UserInfo info1 = ReadInfo(1, 0);
  EXPECT_TRUE(info1.friends.Contains(WaltSocial::ProfileOid(0)));

  // Never one-sided at any site (atomicity): after propagation site 1 agrees.
  cluster_.RunFor(Seconds(3));
  info0 = ReadInfo(0, 1);
  info1 = ReadInfo(1, 1);
  EXPECT_EQ(info0.friends.Contains(WaltSocial::ProfileOid(1)),
            info1.friends.Contains(WaltSocial::ProfileOid(0)));
  EXPECT_TRUE(info0.friends.Contains(WaltSocial::ProfileOid(1)));
}

TEST_F(WaltSocialTest, UnfriendRemovesBothEdges) {
  CreateUser(0);
  CreateUser(1);
  bool done = false;
  apps_[0].Befriend(0, 1, [&](Status s) { done = s.ok(); });
  Drive([&] { return done; });
  done = false;
  apps_[0].Unfriend(0, 1, [&](Status s) { done = s.ok(); });
  Drive([&] { return done; });
  EXPECT_FALSE(ReadInfo(0, 0).friends.Contains(WaltSocial::ProfileOid(1)));
  EXPECT_FALSE(ReadInfo(1, 0).friends.Contains(WaltSocial::ProfileOid(0)));
}

TEST_F(WaltSocialTest, ConcurrentBefriendsFromBothSitesMerge) {
  CreateUser(0);
  CreateUser(1);
  CreateUser(2);
  CreateUser(3);
  // User 0 (site 0) befriends 2; user 1 (site 1) befriends 0 — concurrently.
  // Friend lists are csets, so both merge without conflict.
  int done = 0;
  apps_[0].Befriend(0, 2, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  apps_[1].Befriend(1, 0, [&](Status s) {
    ASSERT_TRUE(s.ok());
    ++done;
  });
  Drive([&] { return done == 2; });
  cluster_.RunFor(Seconds(3));

  for (SiteId s = 0; s < 2; ++s) {
    WaltSocial::UserInfo info = ReadInfo(0, s);
    EXPECT_TRUE(info.friends.Contains(WaltSocial::ProfileOid(2))) << "site " << s;
    EXPECT_TRUE(info.friends.Contains(WaltSocial::ProfileOid(1))) << "site " << s;
  }
}

TEST_F(WaltSocialTest, PostMessageAppearsOnRecipientWall) {
  CreateUser(0);
  CreateUser(1);
  bool done = false;
  apps_[0].PostMessage(0, 1, "hi bob", [&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  Drive([&] { return done; });
  WaltSocial::UserInfo info = ReadInfo(1, 0);
  EXPECT_EQ(info.messages.PresentElements().size(), 1u);
}

TEST_F(WaltSocialTest, StatusUpdateLandsOnOwnWallAndHistory) {
  CreateUser(0);
  bool done = false;
  apps_[0].StatusUpdate(0, "feeling great", [&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  Drive([&] { return done; });
  WaltSocial::UserInfo info = ReadInfo(0, 0);
  ASSERT_EQ(info.messages.PresentElements().size(), 1u);

  // The status text itself is readable through the wall's oid.
  ObjectId status_oid = info.messages.PresentElements()[0];
  Tx tx(clients_[0]);
  std::optional<std::string> text;
  bool read_done = false;
  tx.Read(status_oid, [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    text = std::move(v);
    read_done = true;
  });
  Drive([&] { return read_done; });
  EXPECT_EQ(text, "feeling great");
}

TEST_F(WaltSocialTest, AlbumCreationIsAtomicNoOrphanOrDanglingPost) {
  // Section 2's motivating example: creating an album posts news on the wall
  // and updates the album set in ONE transaction. Any snapshot that sees the
  // wall post also sees the album.
  CreateUser(0);
  ObjectId album;
  bool done = false;
  apps_[0].AddAlbum(0, "holiday", [&](Status s, ObjectId a) {
    ASSERT_TRUE(s.ok());
    album = a;
    done = true;
  });
  Drive([&] { return done; });

  done = false;
  ObjectId photo;
  apps_[0].AddPhoto(0, album, "jpeg-bytes", [&](Status s, ObjectId p) {
    ASSERT_TRUE(s.ok());
    photo = p;
    done = true;
  });
  Drive([&] { return done; });

  // One snapshot: wall mentions the album AND the album list contains it.
  Tx tx(clients_[0]);
  CountingSet wall;
  CountingSet albums;
  int reads = 0;
  tx.SetRead(WaltSocial::MessageListOid(0), [&](Status s, CountingSet set) {
    ASSERT_TRUE(s.ok());
    wall = std::move(set);
    ++reads;
  });
  Drive([&] { return reads == 1; });
  tx.SetRead(WaltSocial::AlbumListOid(0), [&](Status s, CountingSet set) {
    ASSERT_TRUE(s.ok());
    albums = std::move(set);
    ++reads;
  });
  Drive([&] { return reads == 2; });
  EXPECT_EQ(wall.PresentElements().size(), 1u);   // album announcement
  EXPECT_TRUE(albums.Contains(album));

  std::vector<ObjectId> photos;
  done = false;
  apps_[0].ListAlbumPhotos(0, album, [&](Status s, std::vector<ObjectId> got) {
    ASSERT_TRUE(s.ok());
    photos = std::move(got);
    done = true;
  });
  Drive([&] { return done; });
  ASSERT_EQ(photos.size(), 1u);
  EXPECT_EQ(photos[0], photo);
}

TEST_F(WaltSocialTest, CrossSitePostUsesFastCommitOnly) {
  // User 1 is homed at site 1; user 0 (site 0) posts on user 1's wall. The
  // written objects live in the sender's container and the recipient's wall is
  // a cset, so the transaction fast-commits with no cross-site coordination —
  // the paper's applications never use slow commit (Section 6).
  CreateUser(0);
  CreateUser(1);
  uint64_t slow_before = cluster_.server(0).stats().slow_commits;
  bool done = false;
  apps_[0].PostMessage(0, 1, "cross-site", [&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  Drive([&] { return done; });
  EXPECT_EQ(cluster_.server(0).stats().slow_commits, slow_before);
  cluster_.RunFor(Seconds(3));
  EXPECT_EQ(ReadInfo(1, 1).messages.PresentElements().size(), 1u);
}

}  // namespace
}  // namespace walter
