// Automatic failure detection and recovery orchestration: a RecoveryRig
// deployment detects a dead site by missed heartbeats, declares the failure by
// quorum, runs the aggressive recovery of Section 5.7 (surviving prefix,
// container re-homing) with no manual intervention, and automatically
// reintegrates the site once it returns and catches up.
#include <gtest/gtest.h>

#include <optional>

#include "src/fault/recovery_rig.h"

namespace walter {
namespace {

ObjectId Oid(uint64_t c, uint64_t l) { return ObjectId{c, l}; }

ClusterOptions RigOptions(size_t n, uint64_t seed = 1) {
  ClusterOptions o;
  o.num_sites = n;
  o.seed = seed;
  o.server.perf = PerfModel::Instant();
  o.server.disk = DiskConfig::Memory();
  o.server.gossip_interval = 0;
  o.server.resend_backoff_cap = Seconds(5);  // keep post-heal catch-up snappy
  return o;
}

FailureDetector::Options FastDetection() {
  FailureDetector::Options fd;
  fd.heartbeat_interval = Millis(200);
  fd.suspicion_window = Millis(1500);
  return fd;
}

Status CommitWrite(Cluster& cluster, WalterClient* client, const ObjectId& oid,
                   std::string value) {
  Tx tx(client);
  tx.Write(oid, std::move(value));
  Status result = Status::Internal("unfinished");
  bool done = false;
  tx.Commit([&](Status s) {
    result = s;
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return result;
}

std::optional<std::string> ReadOnce(Cluster& cluster, WalterClient* client,
                                    const ObjectId& oid) {
  Tx tx(client);
  std::optional<std::string> value;
  bool done = false;
  tx.Read(oid, [&](Status s, std::optional<std::string> v) {
    EXPECT_TRUE(s.ok());
    value = std::move(v);
    done = true;
  });
  while (!done && cluster.sim().Step()) {
  }
  return value;
}

// The headline scenario: site 0 crashes and nobody calls any recovery API.
// The detectors declare it by quorum, remove it, re-home its containers at a
// survivor where writes fast-commit again, and — once the machine is
// physically restarted — reintegrate it and hand its lease back.
TEST(FailureDetectorTest, CrashIsDetectedRecoveredAndReintegratedAutomatically) {
  Cluster cluster(RigOptions(3));
  RecoveryRig rig(&cluster, FastDetection());
  rig.Start();

  WalterClient* c0 = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "survives").ok());
  cluster.RunFor(Seconds(2));  // propagate everywhere

  rig.CrashSite(0);
  cluster.RunFor(Seconds(10));

  // Quorum declared the failure and the survivors removed site 0; the
  // detection leader (lowest surviving id) ran the recovery exactly once.
  EXPECT_FALSE(rig.config(1).IsActive(0));
  EXPECT_FALSE(rig.config(2).IsActive(0));
  EXPECT_EQ(rig.detector(1).recoveries_started(), 1u);
  EXPECT_EQ(rig.detector(2).recoveries_started(), 0u);

  // The surviving prefix is readable at the survivors.
  WalterClient* c1 = cluster.AddClient(1);
  EXPECT_EQ(ReadOnce(cluster, c1, Oid(0, 1)), "survives");

  // Container 0 was re-homed to a survivor; once the lease-settle blackout
  // passes, writes to it fast-commit there.
  SiteId np = cluster.directory(1).Get(0).preferred_site;
  ASSERT_NE(np, 0u);
  cluster.RunFor(ConfigService::kLeaseSettle);
  WalterClient* cn = cluster.AddClient(np);
  uint64_t fast_before = cluster.server(np).stats().fast_commits;
  ASSERT_TRUE(CommitWrite(cluster, cn, Oid(0, 2), "rehomed").ok());
  EXPECT_GT(cluster.server(np).stats().fast_commits, fast_before);

  // The machine comes back; reintegration is automatic.
  rig.RestartSite(0);
  cluster.RunFor(Seconds(20));
  EXPECT_TRUE(rig.config(0).IsActive(0));
  EXPECT_TRUE(rig.config(1).IsActive(0));
  EXPECT_GE(rig.detector(1).reintegrations_started(), 1u);
  EXPECT_EQ(cluster.directory(2).Get(0).preferred_site, 0u);

  // The reintegrated site caught up (including the interim write) and holds
  // its lease again: local writes fast-commit.
  cluster.RunFor(ConfigService::kLeaseSettle);
  WalterClient* c0b = cluster.AddClient(0);
  EXPECT_EQ(ReadOnce(cluster, c0b, Oid(0, 2)), "rehomed");
  uint64_t fast0 = cluster.server(0).stats().fast_commits;
  ASSERT_TRUE(CommitWrite(cluster, c0b, Oid(0, 3), "back").ok());
  EXPECT_GT(cluster.server(0).stats().fast_commits, fast0);
}

// An isolated (but alive) site is removed; when the network heals, it learns
// of its own removal through the heartbeat channel's Paxos catch-up, truncates
// its silently-committed tail, and is reintegrated automatically.
TEST(FailureDetectorTest, IsolatedSiteIsRemovedThenReintegratedAfterHeal) {
  Cluster cluster(RigOptions(3));
  RecoveryRig rig(&cluster, FastDetection());
  rig.Start();

  WalterClient* c0 = cluster.AddClient(0);
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 1), "survives").ok());
  cluster.RunFor(Seconds(2));

  cluster.net().IsolateSite(0, true);
  // Site 0 still thinks it holds its lease and fast-commits a transaction
  // that can never propagate: the documented data-loss window of aggressive
  // recovery. It will be discarded.
  ASSERT_TRUE(CommitWrite(cluster, c0, Oid(0, 2), "lost").ok());
  cluster.RunFor(Seconds(10));
  EXPECT_FALSE(rig.config(1).IsActive(0));
  EXPECT_GE(rig.detector(1).recoveries_started(), 1u);

  cluster.net().IsolateSite(0, false);
  cluster.RunFor(Seconds(30));

  // Reintegrated; the lost transaction is gone everywhere, including at its
  // origin (truncated when site 0 learned its removal).
  EXPECT_TRUE(rig.config(0).IsActive(0));
  EXPECT_TRUE(rig.config(1).IsActive(0));
  for (SiteId s = 0; s < 3; ++s) {
    WalterClient* c = cluster.AddClient(s);
    EXPECT_EQ(ReadOnce(cluster, c, Oid(0, 1)), "survives") << "site " << s;
    EXPECT_EQ(ReadOnce(cluster, c, Oid(0, 2)), std::nullopt) << "site " << s;
  }
  // Every site converged to the same committed state.
  for (SiteId s = 1; s < 3; ++s) {
    EXPECT_EQ(cluster.server(s).committed_vts(), cluster.server(0).committed_vts());
  }
}

// A lossy (but live) link must not cost a site its membership: the suspicion
// deadline stretches with the observed loss rate.
TEST(FailureDetectorTest, MessageLossDoesNotTriggerRemoval) {
  Cluster cluster(RigOptions(3, /*seed=*/7));
  RecoveryRig rig(&cluster, FastDetection());
  rig.Start();
  cluster.RunFor(Seconds(5));  // learn baseline loss = 0

  cluster.net().SetLossProbability(0.3);
  cluster.RunFor(Seconds(30));
  cluster.net().SetLossProbability(0);

  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_TRUE(rig.config(s).IsActive(0));
    EXPECT_TRUE(rig.config(s).IsActive(1));
    EXPECT_TRUE(rig.config(s).IsActive(2));
    EXPECT_EQ(rig.detector(s).recoveries_started(), 0u) << "site " << s;
  }
  // At least one detector measured real loss and stretched its deadline.
  double max_loss = 0;
  for (SiteId s = 0; s < 3; ++s) {
    for (SiteId p = 0; p < 3; ++p) {
      if (p != s) {
        max_loss = std::max(max_loss, rig.detector(s).ObservedLoss(p));
      }
    }
  }
  EXPECT_GT(max_loss, 0.05);
}

}  // namespace
}  // namespace walter
