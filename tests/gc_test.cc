// Stability-frontier garbage collection (GcCoordinator + server GC hooks).
//
// The central property is invisibility: a cluster running aggressive GC must
// produce exactly the same client-visible history as one running none, because
// the frontier only ever covers state every site has durably committed and no
// live snapshot can still read. The remaining tests pin down the failure
// modes: stale snapshots fail stop instead of reading folded state, snapshot
// pins and dead sites stall the frontier (visibly, with a reason), §5.7
// removal un-stalls it, and a replacement server skips resending records a
// retention-aware checkpoint already truncated.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cluster.h"
#include "src/core/gc_coordinator.h"
#include "src/psi/checker.h"

namespace walter {
namespace {

// ---------------------------------------------------------------------------
// GC equivalence: identical seeded workloads, with and without aggressive GC,
// must observe byte-identical reads and identical final state.
// ---------------------------------------------------------------------------

struct WorkloadResult {
  std::vector<std::string> observed_reads;  // every committed read, in order
  std::vector<std::string> final_values;    // per-site store contents at the end
  uint64_t folded_entries = 0;
  size_t total_entries = 0;
  Status psi = Status::Ok();
  uint64_t committed = 0;
};

WorkloadResult RunMixedWorkload(ClusterOptions options) {
  constexpr int kSitesN = 3;
  constexpr int kTxPerLoop = 50;
  Cluster cluster(options);

  PsiChecker checker(kSitesN);
  std::unordered_map<TxId, std::vector<RecordedRead>> reads_by_tid;
  cluster.ObserveCommits([&](SiteId site, const TxRecord& rec) {
    checker.OnApply(site, rec.tid);
    if (site == rec.origin) {
      RecordedTx recorded;
      recorded.record = rec;
      auto it = reads_by_tid.find(rec.tid);
      if (it != reads_by_tid.end()) {
        recorded.reads = it->second;
      }
      checker.OnCommit(std::move(recorded));
    }
  });

  WorkloadResult result;
  auto rng = std::make_shared<Rng>(options.seed * 31 + 7);
  int in_flight = 0;
  uint64_t counter = 0;

  // Read-modify-write loops over a small keyspace, so objects accumulate deep
  // histories (the state GC must fold) and transactions conflict regularly.
  std::function<void(WalterClient*, SiteId, int)> run_one = [&](WalterClient* client,
                                                                SiteId site, int remaining) {
    if (remaining == 0) {
      --in_flight;
      return;
    }
    auto tx = std::make_shared<Tx>(client);
    ObjectId oid{rng->Uniform(kSitesN), rng->Uniform(6)};
    tx->Read(oid, [&, tx, client, site, remaining, oid](Status s,
                                                        std::optional<std::string> v) {
      if (!s.ok()) {
        run_one(client, site, remaining - 1);
        return;
      }
      TxId tid = tx->tid();
      reads_by_tid[tid] = {RecordedRead{oid, false, v, {}}};
      tx->Write(oid, "v" + std::to_string(++counter));
      tx->Commit([&, tx, client, site, remaining, tid, v](Status s) {
        if (s.ok()) {
          result.observed_reads.push_back(v.value_or("<nil>"));
        } else {
          reads_by_tid.erase(tid);
        }
        run_one(client, site, remaining - 1);
      });
    });
  };

  for (SiteId s = 0; s < kSitesN; ++s) {
    for (int c = 0; c < 2; ++c) {
      ++in_flight;
      run_one(cluster.AddClient(s), s, kTxPerLoop);
    }
  }
  while (in_flight > 0 && cluster.sim().Step()) {
  }
  EXPECT_EQ(in_flight, 0);
  cluster.RunFor(Seconds(30));  // converge (and give GC time to drain)

  for (SiteId s = 0; s < kSitesN; ++s) {
    WalterServer& server = cluster.server(s);
    result.folded_entries += server.stats().gc_folded_entries;
    result.total_entries += server.store().TotalEntryCount();
    for (SiteId owner = 0; owner < kSitesN; ++owner) {
      for (uint64_t k = 0; k < 6; ++k) {
        auto v = server.store().ReadRegularVersioned(ObjectId{owner, k},
                                                     server.committed_vts());
        result.final_values.push_back(v ? v->first : "<nil>");
      }
    }
  }
  result.psi = checker.Check();
  result.committed = checker.committed_count();
  return result;
}

ClusterOptions MixedWorkloadOptions(uint64_t seed) {
  ClusterOptions options;
  options.num_sites = 3;
  options.seed = seed;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(200);
  return options;
}

TEST(GcEquivalenceTest, AggressiveGcIsInvisibleToClients) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    ClusterOptions off = MixedWorkloadOptions(seed);
    off.gc.enabled = false;

    ClusterOptions on = MixedWorkloadOptions(seed);
    on.gc.interval = Millis(20);  // adversarial cadence: folds mid-transaction
    on.gc.checkpoint_every = Millis(100);

    WorkloadResult base = RunMixedWorkload(off);
    WorkloadResult gc = RunMixedWorkload(on);
    SCOPED_TRACE("seed " + std::to_string(seed));

    EXPECT_TRUE(base.psi.ok()) << base.psi.ToString();
    EXPECT_TRUE(gc.psi.ok()) << gc.psi.ToString();
    EXPECT_GT(gc.committed, 100u);
    EXPECT_EQ(gc.committed, base.committed);
    // Every read every committed transaction observed, in commit order, is
    // identical — GC never changed what any client saw.
    EXPECT_EQ(gc.observed_reads, base.observed_reads);
    // And the final readable state matches at every site.
    EXPECT_EQ(gc.final_values, base.final_values);
    // The run was not vacuous: GC folded real history, and the retained
    // entry count ended strictly below the GC-free run's.
    EXPECT_GT(gc.folded_entries, 0u);
    EXPECT_LT(gc.total_entries, base.total_entries);
  }
}

// ---------------------------------------------------------------------------
// Fail-stop below the frontier: a snapshot older than the GC frontier is
// refused (kUnavailable + counted), never served from folded state.
// ---------------------------------------------------------------------------

TEST(GcTest, StaleSnapshotReadFailsStop) {
  ClusterOptions options;
  options.num_sites = 2;
  options.server.gossip_interval = 0;  // manual control; no coordinator
  Cluster cluster(options);
  WalterClient* client = cluster.AddClient(0);

  // Establish some committed state.
  auto tx0 = std::make_shared<Tx>(client);
  tx0->Write(ObjectId{0, 1}, "one");
  tx0->Commit([](Status s) { ASSERT_TRUE(s.ok()); });
  cluster.RunUntilIdle();

  // Fix a snapshot at the current committed state.
  auto stale = std::make_shared<Tx>(client);
  std::optional<std::string> first;
  stale->Read(ObjectId{0, 1}, [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    first = v;
  });
  cluster.RunUntilIdle();
  ASSERT_EQ(first, std::make_optional<std::string>("one"));

  // Advance the world past the snapshot, then GC beyond it (bypassing the
  // coordinator — this is exactly the misuse the read path must survive).
  auto tx1 = std::make_shared<Tx>(client);
  tx1->Write(ObjectId{0, 1}, "two");
  tx1->Commit([](Status s) { ASSERT_TRUE(s.ok()); });
  cluster.RunUntilIdle();
  cluster.server(0).DriveGc(cluster.server(0).committed_vts());

  Status read_status = Status::Ok();
  stale->Read(ObjectId{0, 2}, [&](Status s, std::optional<std::string>) {
    read_status = s;
  });
  cluster.RunUntilIdle();
  EXPECT_EQ(read_status.code(), StatusCode::kUnavailable) << read_status.ToString();
  EXPECT_GE(cluster.server(0).stats().gc_stale_reads, 1u);
  stale->Abort();
  cluster.RunUntilIdle();
}

// ---------------------------------------------------------------------------
// Stall semantics: pins and dead sites hold the frontier, visibly.
// ---------------------------------------------------------------------------

TEST(GcTest, SnapshotPinStallsFrontierUntilReleased) {
  ClusterOptions options;
  options.num_sites = 2;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(100);
  options.gc.interval = Millis(50);
  Cluster cluster(options);
  ASSERT_NE(cluster.gc(), nullptr);
  WalterClient* writer = cluster.AddClient(0);

  auto commit_one = [&](const std::string& value) {
    auto tx = std::make_shared<Tx>(writer);
    tx->Write(ObjectId{0, 1}, value);
    tx->Commit([](Status s) { ASSERT_TRUE(s.ok()); });
  };
  commit_one("a");
  cluster.RunFor(Seconds(1));
  uint64_t fenced = cluster.gc()->last_frontier().at(0);

  // A long-running snapshot pins the frontier where it started.
  WalterClient* reader = cluster.AddClient(0);
  auto held = std::make_shared<Tx>(reader);
  held->Read(ObjectId{0, 1}, [](Status s, std::optional<std::string>) {
    ASSERT_TRUE(s.ok());
  });
  cluster.RunFor(Millis(200));
  ASSERT_EQ(cluster.pin_registry(0).active(), 1u);

  commit_one("b");
  commit_one("c");
  cluster.RunFor(Seconds(2));
  EXPECT_LT(cluster.gc()->last_frontier().at(0),
            cluster.server(0).committed_vts().at(0));
  EXPECT_GT(cluster.gc()->stalls(), 0u);
  EXPECT_EQ(cluster.gc()->last_stall_reason(), GcStallReason::kSnapshotPin);
  EXPECT_EQ(cluster.gc()->last_stall_site(), 0u);

  // Releasing the snapshot lets the frontier catch up to committed state.
  held->Abort();
  cluster.RunFor(Seconds(2));
  EXPECT_EQ(cluster.pin_registry(0).active(), 0u);
  EXPECT_GT(cluster.gc()->last_frontier().at(0), fenced);
  EXPECT_EQ(cluster.gc()->last_frontier().at(0),
            cluster.server(0).committed_vts().at(0));
  EXPECT_EQ(cluster.gc()->last_stall_reason(), GcStallReason::kNone);
}

TEST(GcTest, DeadSiteFreezesFrontierAndRemovalResumes) {
  ClusterOptions options;
  options.num_sites = 3;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(100);
  // f = 0: one durable replica suffices, so commits keep flowing at the
  // survivors while site 2 is down — isolating the dead-site frontier freeze
  // from the (orthogonal) ds-durability quorum loss.
  options.server.f = 0;
  options.gc.interval = Millis(50);
  Cluster cluster(options);
  ASSERT_NE(cluster.gc(), nullptr);
  WalterClient* writer = cluster.AddClient(0);

  auto commit_one = [&](uint64_t k) {
    auto tx = std::make_shared<Tx>(writer);
    tx->Write(ObjectId{0, k % 4}, "w" + std::to_string(k));
    tx->Commit([](Status s) { ASSERT_TRUE(s.ok()); });
  };
  for (uint64_t k = 0; k < 5; ++k) {
    commit_one(k);
    cluster.RunFor(Millis(100));
  }
  cluster.RunFor(Seconds(1));
  uint64_t frozen_at = cluster.gc()->last_frontier().at(0);
  EXPECT_GT(frozen_at, 0u);

  // A crashed (but still in-config) site freezes the frontier at its last
  // known floor: GC must not collect past what the site might need on wakeup.
  cluster.server(2).Crash();
  for (uint64_t k = 5; k < 10; ++k) {
    commit_one(k);
    cluster.RunFor(Millis(100));
  }
  cluster.RunFor(Seconds(2));
  EXPECT_EQ(cluster.gc()->last_frontier().at(0), frozen_at);
  EXPECT_GT(cluster.gc()->stalls(), 0u);
  EXPECT_EQ(cluster.gc()->last_stall_reason(), GcStallReason::kDeadSite);
  EXPECT_EQ(cluster.gc()->last_stall_site(), 2u);

  // §5.7 removal (here: the membership probe excluding the site) drops it
  // from the frontier; GC resumes over the survivors.
  cluster.gc()->SetMembershipProbe([](SiteId s) { return s != 2; });
  cluster.RunFor(Seconds(2));
  EXPECT_GT(cluster.gc()->last_frontier().at(0), frozen_at);
  EXPECT_EQ(cluster.gc()->last_frontier().at(0),
            cluster.server(0).committed_vts().at(0));
}

// ---------------------------------------------------------------------------
// Replacement servers vs retention-aware checkpoints.
// ---------------------------------------------------------------------------

TEST(GcTest, ReplacementSkipsRecordsTruncatedByCheckpoint) {
  ClusterOptions options;
  options.num_sites = 2;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(100);
  options.gc.interval = Millis(50);
  options.gc.checkpoint_every = Millis(200);
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);

  int committed = 0;
  std::function<void(int)> commit_chain = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    auto tx = std::make_shared<Tx>(writer);
    tx->Write(ObjectId{0, static_cast<uint64_t>(remaining % 8)},
              "x" + std::to_string(remaining));
    tx->Commit([&, remaining](Status s) {
      ASSERT_TRUE(s.ok());
      ++committed;
      commit_chain(remaining - 1);
    });
  };
  commit_chain(40);
  cluster.RunFor(Seconds(5));
  ASSERT_EQ(committed, 40);

  // Sustained GC released the globally-visible local commits (the satellite
  // fix for unbounded retention) and truncated their WAL records.
  EXPECT_EQ(cluster.server(0).retained_local_commits(), 0u);
  EXPECT_GT(cluster.server(0).stats().wal_truncated_bytes, 0u);

  // A replacement server starts with fresh cumulative-ack state. Seqnos whose
  // records were released *and* truncated are provably durable at every site,
  // so propagation must skip them instead of failing to re-serve them.
  cluster.server(0).Crash();
  cluster.ReplaceServer(0);
  cluster.RunFor(Seconds(3));

  auto fresh = std::make_shared<Tx>(cluster.AddClient(0));
  bool done = false;
  fresh->Write(ObjectId{0, 1}, "after-replacement");
  fresh->Commit([&](Status s) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  cluster.RunFor(Seconds(3));
  ASSERT_TRUE(done);
  EXPECT_EQ(cluster.server(0).committed_vts(), cluster.server(1).committed_vts());
}

// ---------------------------------------------------------------------------
// frontier_gossip mode: servers fold from floors piggybacked on propagation
// acks; no coordinator exists, yet the frontier still advances everywhere.
// ---------------------------------------------------------------------------

TEST(GcTest, FrontierGossipModeFoldsWithoutCoordinator) {
  ClusterOptions options;
  options.num_sites = 2;
  options.seed = 9;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(100);
  options.server.frontier_gossip = true;
  Cluster cluster(options);
  EXPECT_EQ(cluster.gc(), nullptr);  // the coordinator stands down

  for (SiteId s = 0; s < 2; ++s) {
    WalterClient* client = cluster.AddClient(s);
    for (int k = 0; k < 10; ++k) {
      auto tx = std::make_shared<Tx>(client);
      tx->Write(ObjectId{s, static_cast<uint64_t>(k % 3)}, "g" + std::to_string(k));
      tx->Commit([](Status s) { ASSERT_TRUE(s.ok()); });
      cluster.RunFor(Millis(50));
    }
  }
  cluster.RunFor(Seconds(5));

  for (SiteId s = 0; s < 2; ++s) {
    const VectorTimestamp& frontier = cluster.server(s).store().gc_frontier();
    for (SiteId o = 0; o < 2; ++o) {
      EXPECT_GT(frontier.at(o), 0u) << "site " << s << " frontier at origin " << o;
    }
    EXPECT_GT(cluster.server(s).stats().gc_folded_entries, 0u) << "site " << s;
  }

  // Reads still work against the folded state. (RunFor, not RunUntilIdle:
  // gossip is on, so the simulator never goes idle.)
  auto tx = std::make_shared<Tx>(cluster.AddClient(0));
  std::optional<std::string> value;
  tx->Read(ObjectId{1, 0}, [&](Status s, std::optional<std::string> v) {
    ASSERT_TRUE(s.ok());
    value = v;
  });
  cluster.RunFor(Seconds(1));
  EXPECT_EQ(value, std::make_optional<std::string>("g9"));
  tx->Abort();
  cluster.RunFor(Seconds(1));
}

// ---------------------------------------------------------------------------
// Bounded memory: sustained single-key churn stays flat with GC on.
// ---------------------------------------------------------------------------

TEST(GcTest, SustainedChurnKeepsHistoriesBounded) {
  ClusterOptions options;
  options.num_sites = 2;
  options.server.perf = PerfModel::Instant();
  options.server.disk = DiskConfig::Memory();
  options.server.gossip_interval = Millis(100);
  options.gc.interval = Millis(50);
  options.gc.checkpoint_every = Millis(250);
  Cluster cluster(options);
  WalterClient* writer = cluster.AddClient(0);

  int committed = 0;
  std::function<void(int)> commit_chain = [&](int remaining) {
    if (remaining == 0) {
      return;
    }
    auto tx = std::make_shared<Tx>(writer);
    tx->Write(ObjectId{0, static_cast<uint64_t>(remaining % 5)},
              "c" + std::to_string(remaining));
    tx->Commit([&, remaining](Status s) {
      ASSERT_TRUE(s.ok());
      ++committed;
      commit_chain(remaining - 1);
    });
  };
  commit_chain(300);
  cluster.RunFor(Seconds(30));
  ASSERT_EQ(committed, 300);

  for (SiteId s = 0; s < 2; ++s) {
    // 300 updates over 5 objects: without GC each site retains ~300 entries;
    // with it, only the post-frontier tail (one folded base per object).
    EXPECT_LT(cluster.server(s).store().TotalEntryCount(), 30u) << "site " << s;
    EXPECT_EQ(cluster.server(s).retained_local_commits(), 0u) << "site " << s;
    EXPECT_GT(cluster.server(s).stats().gc_runs, 0u) << "site " << s;
  }
  // WAL prefixes were truncated, and dedup outcomes age out by time.
  EXPECT_GT(cluster.server(0).stats().wal_truncated_bytes, 0u);
  cluster.RunFor(Seconds(40));  // > tx_outcome_retention
  EXPECT_EQ(cluster.server(0).retained_tx_outcomes(), 0u);
}

}  // namespace
}  // namespace walter
